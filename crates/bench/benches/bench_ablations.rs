//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * fast Walsh–Hadamard restore vs the naive O(m²) matrix multiply,
//! * LDPJoinSketch+ with vs without the non-target mass removal of Algorithm 5,
//! * group-scaled vs paper-literal non-target subtraction,
//! * median vs mean combining of the per-row estimators.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldpjs_common::hadamard::{fwht_in_place, hadamard_multiply_naive};
use ldpjs_common::stats::{mean, median};
use ldpjs_core::protocol::build_private_sketch;
use ldpjs_core::{Epsilon, SketchParams};
use ldpjs_data::PaperDataset;
use ldpjs_experiments::{estimate_join, Method, PlusKnobs};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

/// FWHT vs naive Hadamard multiplication on a single sketch row.
fn bench_ablation_fwht(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_fwht");
    for &m in &[256usize, 1024, 4096] {
        let mut rng = StdRng::seed_from_u64(1);
        let row: Vec<f64> = (0..m).map(|_| rng.gen_range(-10.0..10.0)).collect();
        group.bench_with_input(BenchmarkId::new("fwht", m), &row, |b, row| {
            b.iter(|| {
                let mut copy = row.clone();
                fwht_in_place(&mut copy);
                black_box(copy)
            })
        });
        // The naive multiply is O(m²); keep it to the smaller sizes so the bench finishes.
        if m <= 1024 {
            group.bench_with_input(BenchmarkId::new("naive", m), &row, |b, row| {
                b.iter(|| black_box(hadamard_multiply_naive(row)))
            });
        }
    }
    group.finish();
}

/// LDPJoinSketch+ with group-scaled vs paper-literal non-target subtraction, and plain
/// LDPJoinSketch as the "no separation at all" reference. Criterion reports runtime; the
/// accuracy comparison is printed by the fig-level binaries and EXPERIMENTS.md.
fn bench_ablation_fap(c: &mut Criterion) {
    let workload = PaperDataset::Zipf { alpha: 1.1 }.generate_join(0.0001, 7);
    let params = SketchParams::new(18, 1024).unwrap();
    let mut group = c.benchmark_group("ablation_fap");
    group.sample_size(10);
    group.bench_function("plain_ldpjoinsketch", |b| {
        b.iter(|| {
            black_box(
                estimate_join(
                    Method::LdpJoinSketch,
                    &workload,
                    params,
                    eps(4.0),
                    PlusKnobs::default(),
                    3,
                )
                .unwrap(),
            )
        })
    });
    for (label, literal) in [("plus_group_scaled", false), ("plus_paper_literal", true)] {
        let knobs = PlusKnobs {
            sampling_rate: 0.1,
            threshold: 0.001,
            paper_literal_subtraction: literal,
            variance_weighted_recombination: false,
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &knobs, |b, &knobs| {
            b.iter(|| {
                black_box(
                    estimate_join(
                        Method::LdpJoinSketchPlus,
                        &workload,
                        params,
                        eps(4.0),
                        knobs,
                        3,
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

/// LDPJoinSketch+ phase-2 recombination: plain sum of the rescaled partial estimates vs the
/// inverse-variance weighting of `PlusConfig::variance_weighted_recombination`. Runtime is
/// near-identical (the weighting reuses the per-row products); the knob's accuracy effect is
/// asserted by the unit test in `ldpjs_core::plus` and reported by the fig-level binaries.
fn bench_ablation_recombination(c: &mut Criterion) {
    let workload = PaperDataset::Zipf { alpha: 1.1 }.generate_join(0.0001, 9);
    let params = SketchParams::new(18, 1024).unwrap();
    let mut group = c.benchmark_group("ablation_recombination");
    group.sample_size(10);
    for (label, weighted) in [("plain_sum", false), ("variance_weighted", true)] {
        let knobs = PlusKnobs {
            sampling_rate: 0.1,
            threshold: 0.001,
            paper_literal_subtraction: false,
            variance_weighted_recombination: weighted,
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &knobs, |b, &knobs| {
            b.iter(|| {
                black_box(
                    estimate_join(
                        Method::LdpJoinSketchPlus,
                        &workload,
                        params,
                        eps(4.0),
                        knobs,
                        5,
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

/// Median vs mean combining of the k per-row estimators (the paper uses the median; the mean
/// is the natural ablation and is cheaper but not robust to heavy-tailed rows).
fn bench_ablation_combiner(c: &mut Criterion) {
    let workload = PaperDataset::Zipf { alpha: 1.5 }.generate_join(0.0001, 7);
    let params = SketchParams::new(18, 1024).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let sa = build_private_sketch(&workload.table_a, params, eps(4.0), 3, &mut rng).unwrap();
    let sb = build_private_sketch(&workload.table_b, params, eps(4.0), 3, &mut rng).unwrap();
    let products = sa.row_products(&sb).unwrap();
    c.bench_function("ablation_combiner/median", |b| {
        b.iter(|| black_box(median(black_box(&products)).unwrap()))
    });
    c.bench_function("ablation_combiner/mean", |b| {
        b.iter(|| black_box(mean(black_box(&products)).unwrap()))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_ablation_fwht, bench_ablation_fap, bench_ablation_recombination, bench_ablation_combiner
);
criterion_main!(benches);
