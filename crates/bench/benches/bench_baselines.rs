//! Throughput benches of the baseline mechanisms (k-RR, FLH, Apple-HCMS) and the non-private
//! sketches, so the efficiency comparison of Fig. 13 has per-component backing numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldpjs_core::{Epsilon, SketchParams};
use ldpjs_data::{ValueGenerator, ZipfGenerator};
use ldpjs_ldp::{estimate_join_from_oracles, FlhOracle, FrequencyOracle, HcmsOracle, KrrOracle};
use ldpjs_sketch::{AgmsSketch, CountMeanSketch, CountMinSketch, FastAgmsSketch};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn eps() -> Epsilon {
    Epsilon::new(4.0).unwrap()
}

fn data(n: usize, domain: u64) -> Vec<u64> {
    let gen = ZipfGenerator::new(1.3, domain);
    let mut rng = StdRng::seed_from_u64(11);
    gen.sample_many(n, &mut rng)
}

fn bench_oracle_collection(c: &mut Criterion) {
    let values = data(20_000, 10_000);
    let params = SketchParams::new(18, 1024).unwrap();
    let mut group = c.benchmark_group("baselines_collect_20k_reports");
    group.sample_size(10);
    group.bench_function("k-RR", |b| {
        b.iter(|| {
            let mut oracle = KrrOracle::new(eps(), 10_000);
            let mut rng = StdRng::seed_from_u64(1);
            oracle.collect(black_box(&values), &mut rng);
            black_box(oracle.estimate(0))
        })
    });
    group.bench_function("FLH", |b| {
        b.iter(|| {
            let mut oracle = FlhOracle::new_fast(eps(), 2);
            let mut rng = StdRng::seed_from_u64(1);
            oracle.collect(black_box(&values), &mut rng);
            black_box(oracle.estimate(0))
        })
    });
    group.bench_function("Apple-HCMS", |b| {
        b.iter(|| {
            let mut oracle = HcmsOracle::new(params, eps(), 3);
            let mut rng = StdRng::seed_from_u64(1);
            oracle.collect(black_box(&values), &mut rng);
            black_box(oracle.estimate(0))
        })
    });
    group.finish();
}

fn bench_oracle_join_estimation(c: &mut Criterion) {
    let domain = 10_000u64;
    let a = data(20_000, domain);
    let b_vals = data(20_000, domain);
    let mut rng = StdRng::seed_from_u64(5);
    let mut krr_a = KrrOracle::new(eps(), domain);
    let mut krr_b = KrrOracle::new(eps(), domain);
    krr_a.collect(&a, &mut rng);
    krr_b.collect(&b_vals, &mut rng);
    c.bench_function("baselines_join_estimate/k-RR_domain_scan", |b| {
        b.iter(|| black_box(estimate_join_from_oracles(&krr_a, &krr_b, domain)))
    });
}

fn bench_nonprivate_sketches(c: &mut Criterion) {
    let values = data(50_000, 50_000);
    let params = SketchParams::new(18, 1024).unwrap();
    let mut group = c.benchmark_group("nonprivate_sketch_build_50k");
    group.sample_size(10);
    group.bench_function("AGMS", |b| {
        b.iter(|| {
            let mut sk = AgmsSketch::new(18, 3);
            sk.update_all(black_box(&values));
            black_box(sk.second_moment())
        })
    });
    group.bench_function("Fast-AGMS", |b| {
        b.iter(|| {
            let mut sk = FastAgmsSketch::new(params, 3);
            sk.update_all(black_box(&values));
            black_box(sk.frequency(0))
        })
    });
    group.bench_function("Count-Min", |b| {
        b.iter(|| {
            let mut sk = CountMinSketch::new(params, 3);
            sk.update_all(black_box(&values));
            black_box(sk.frequency_upper_bound(0))
        })
    });
    group.bench_function("Count-Mean", |b| {
        b.iter(|| {
            let mut sk = CountMeanSketch::new(params, 3);
            sk.update_all(black_box(&values));
            black_box(sk.frequency(0))
        })
    });
    group.finish();
}

fn bench_domain_scan_scaling(c: &mut Criterion) {
    // How frequency-oracle join estimation scales with the domain size — the efficiency issue
    // the paper raises for the baselines.
    let mut group = c.benchmark_group("baselines_domain_scan_scaling");
    group.sample_size(10);
    for domain in [1_000u64, 10_000, 100_000] {
        let a = data(20_000, domain);
        let b_vals = data(20_000, domain);
        let mut rng = StdRng::seed_from_u64(9);
        let mut oa = KrrOracle::new(eps(), domain);
        let mut ob = KrrOracle::new(eps(), domain);
        oa.collect(&a, &mut rng);
        ob.collect(&b_vals, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(domain), &domain, |bch, &d| {
            bch.iter(|| black_box(estimate_join_from_oracles(&oa, &ob, d)))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets =
        bench_oracle_collection,
        bench_oracle_join_estimation,
        bench_nonprivate_sketches,
        bench_domain_scan_scaling
);
criterion_main!(benches);
