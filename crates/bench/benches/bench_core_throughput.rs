//! Microbenchmarks of the core LDPJoinSketch primitives: client-side encoding/perturbation,
//! server-side report absorption, Hadamard restore, join-size and frequency estimation.
//!
//! These are the building blocks every figure-level experiment is composed of; tracking their
//! throughput separately makes regressions attributable.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use ldpjs_core::client::LdpJoinSketchClient;
use ldpjs_core::protocol::build_private_sketch;
use ldpjs_core::server::LdpJoinSketch;
use ldpjs_core::{Epsilon, SketchParams};
use ldpjs_data::{ValueGenerator, ZipfGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn params() -> SketchParams {
    SketchParams::new(18, 1024).unwrap()
}

fn eps() -> Epsilon {
    Epsilon::new(4.0).unwrap()
}

fn bench_client_perturb(c: &mut Criterion) {
    let client = LdpJoinSketchClient::new(params(), eps(), 7);
    let mut rng = StdRng::seed_from_u64(1);
    let mut value = 0u64;
    c.bench_function("core/client_perturb_one_value", |b| {
        b.iter(|| {
            value = value.wrapping_add(1) % 100_000;
            black_box(client.perturb(black_box(value), &mut rng))
        })
    });
}

fn bench_server_absorb(c: &mut Criterion) {
    let client = LdpJoinSketchClient::new(params(), eps(), 7);
    let mut rng = StdRng::seed_from_u64(2);
    let gen = ZipfGenerator::new(1.3, 100_000);
    let values = gen.sample_many(10_000, &mut rng);
    let reports = client.perturb_all(&values, &mut rng);
    c.bench_function("core/server_absorb_10k_reports", |b| {
        b.iter_batched(
            || LdpJoinSketch::new(params(), eps(), 7),
            |mut sketch| {
                sketch.absorb_all(black_box(&reports)).unwrap();
                black_box(sketch)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_hadamard_restore(c: &mut Criterion) {
    let mut group = c.benchmark_group("core/hadamard_restore");
    for &m in &[256usize, 1024, 4096] {
        let p = SketchParams::new(18, m).unwrap();
        let client = LdpJoinSketchClient::new(p, eps(), 3);
        let mut rng = StdRng::seed_from_u64(3);
        let gen = ZipfGenerator::new(1.3, 50_000);
        let values = gen.sample_many(20_000, &mut rng);
        let reports = client.perturb_all(&values, &mut rng);
        let mut sketch = LdpJoinSketch::new(p, eps(), 3);
        sketch.absorb_all(&reports).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(m), &sketch, |b, sketch| {
            b.iter(|| black_box(sketch.restored_matrix()))
        });
    }
    group.finish();
}

fn bench_estimation(c: &mut Criterion) {
    let gen = ZipfGenerator::new(1.3, 50_000);
    let mut rng = StdRng::seed_from_u64(4);
    let a = gen.sample_many(50_000, &mut rng);
    let b_vals = gen.sample_many(50_000, &mut rng);
    let mut sa = build_private_sketch(&a, params(), eps(), 9, &mut rng).unwrap();
    let mut sb = build_private_sketch(&b_vals, params(), eps(), 9, &mut rng).unwrap();
    sa.finalize();
    sb.finalize();
    c.bench_function("core/join_size_estimate", |b| {
        b.iter(|| black_box(sa.join_size(&sb).unwrap()))
    });
    c.bench_function("core/frequency_estimate_one_value", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 1) % 1000;
            black_box(sa.frequency(black_box(v)))
        })
    });
    let candidates: Vec<u64> = (0..10_000).collect();
    c.bench_function("core/frequency_scan_10k_candidates", |b| {
        b.iter(|| black_box(sa.frequencies(black_box(&candidates))))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_client_perturb, bench_server_absorb, bench_hadamard_restore, bench_estimation
);
criterion_main!(benches);
