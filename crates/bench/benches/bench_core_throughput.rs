//! Microbenchmarks of the core LDPJoinSketch primitives: client-side encoding/perturbation
//! (sequential and parallel fan-out), server-side report absorption (sequential and via the
//! sharded ingestion engine), the one-shot Hadamard finalization, and the zero-copy join-size
//! and frequency estimators.
//!
//! These are the building blocks every figure-level experiment is composed of; tracking their
//! throughput separately makes regressions attributable.
//!
//! Besides the human-readable medians, this bench writes machine-readable results to
//! `BENCH_core.json` at the workspace root (override with the `BENCH_CORE_JSON` env var) so
//! the performance trajectory is tracked across PRs. The file also carries the frozen
//! pre-refactor baseline of the clone-heavy estimator path for comparison. Set
//! `BENCH_SMOKE=1` to run a seconds-fast smoke pass (CI uses this to keep the writer
//! compiling and the JSON schema exercised).

use criterion::{BatchSize, Bencher, Criterion};
use ldpjs_core::aggregator::{AggregatorInstruments, ShardedAggregator};
use ldpjs_core::client::LdpJoinSketchClient;
use ldpjs_core::protocol::{
    build_private_sketch, ldp_join_estimate_chunked, ldp_join_plus_estimate_chunked,
};
use ldpjs_core::server::SketchBuilder;
use ldpjs_core::{
    Epsilon, LdpJoinSketchPlus, PlusConfig, PlusReportBatch, PlusTableRole, SketchParams,
};
use ldpjs_data::{StreamingJoinWorkload, ValueGenerator, ZipfGenerator};
use ldpjs_metrics::telemetry::{Stability, Telemetry};
use ldpjs_service::{PlusAttributeConfig, ServiceConfig, SketchService, WindowRange};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn params() -> SketchParams {
    SketchParams::new(18, 1024).unwrap()
}

fn eps() -> Epsilon {
    Epsilon::new(4.0).unwrap()
}

fn smoke() -> bool {
    std::env::var_os("BENCH_SMOKE").is_some_and(|v| v != "0")
}

/// One machine-readable benchmark record.
struct Record {
    name: String,
    method: &'static str,
    n: usize,
    k: usize,
    m: usize,
    median_ns: f64,
}

/// Collects `(name, median)` pairs from the Criterion shim into typed records.
struct Recorder {
    records: Vec<Record>,
}

impl Recorder {
    fn new() -> Self {
        Recorder {
            records: Vec::new(),
        }
    }

    /// Run one benchmark and attach the `(method, n, k, m)` metadata to its median.
    fn bench<F>(
        &mut self,
        c: &mut Criterion,
        name: &str,
        method: &'static str,
        n: usize,
        p: SketchParams,
        f: F,
    ) where
        F: FnMut(&mut Bencher),
    {
        c.bench_function(name, f);
        self.records.push(Record {
            name: name.to_string(),
            method,
            n,
            k: p.rows(),
            m: p.columns(),
            median_ns: c.last_median_ns().expect("bench just ran"),
        });
    }
}

fn bench_client_perturb(c: &mut Criterion, rec: &mut Recorder) {
    let client = LdpJoinSketchClient::new(params(), eps(), 7);
    let mut rng = StdRng::seed_from_u64(1);
    let mut value = 0u64;
    rec.bench(
        c,
        "core/client_perturb_one_value",
        "client_perturb",
        1,
        params(),
        |b| {
            b.iter(|| {
                value = value.wrapping_add(1) % 100_000;
                black_box(client.perturb(black_box(value), &mut rng))
            })
        },
    );

    // Sequential vs parallel fan-out over the same value slice. The parallel path is
    // thread-count-invariant, so the comparison is apples-to-apples.
    let n = if smoke() { 20_000 } else { 200_000 };
    let gen = ZipfGenerator::new(1.3, 100_000);
    let values = gen.sample_many(n, &mut rng);
    rec.bench(
        c,
        &format!("core/client_perturb_all_{n}_sequential"),
        "client_perturb_all_sequential",
        n,
        params(),
        |b| {
            b.iter(|| {
                let mut r = StdRng::seed_from_u64(2);
                black_box(client.perturb_all(black_box(&values), &mut r))
            })
        },
    );
    for threads in [2usize, 4, 8] {
        rec.bench(
            c,
            &format!("core/client_perturb_all_{n}_parallel_{threads}threads"),
            "client_perturb_all_parallel",
            n,
            params(),
            |b| b.iter(|| black_box(client.perturb_all_parallel(black_box(&values), 2, threads))),
        );
    }

    // Batched SIMD-lane perturbation straight into the packed sign-split wire shape (the
    // producer side of the zero-copy ingest pipeline) — same pinned RNG stream as the
    // sequential lane, so the outputs are bit-identical reports in a 6x smaller shape.
    rec.bench(
        c,
        &format!("core/client_perturb_batch_{n}_packed"),
        "client_perturb_batch",
        n,
        params(),
        |b| {
            b.iter(|| {
                let mut r = StdRng::seed_from_u64(2);
                black_box(client.perturb_batch(black_box(&values), &mut r).unwrap())
            })
        },
    );
}

fn bench_server_ingest(c: &mut Criterion, rec: &mut Recorder) {
    let client = LdpJoinSketchClient::new(params(), eps(), 7);
    let mut rng = StdRng::seed_from_u64(2);
    let gen = ZipfGenerator::new(1.3, 100_000);
    let n_small = 10_000;
    let small = client.perturb_all(&gen.sample_many(n_small, &mut rng), &mut rng);
    rec.bench(
        c,
        "core/server_absorb_10k_reports",
        "server_absorb",
        n_small,
        params(),
        |b| {
            b.iter_batched(
                || SketchBuilder::new(params(), eps(), 7),
                |mut builder| {
                    builder.absorb_all(black_box(&small)).unwrap();
                    black_box(builder)
                },
                BatchSize::SmallInput,
            )
        },
    );

    // The sharded ingestion engine on a heavier batch, across shard counts (shards = 1 is
    // the sequential reference plus the engine's fixed overhead).
    let n_big = if smoke() { 20_000 } else { 400_000 };
    let big_values = gen.sample_many(n_big, &mut rng);
    let big = client.perturb_all_parallel(&big_values, 5, 8);
    for shards in [1usize, 2, 4, 8] {
        rec.bench(
            c,
            &format!("core/sharded_ingest_{n_big}_reports_{shards}shards"),
            "sharded_ingest",
            n_big,
            params(),
            |b| {
                b.iter_batched(
                    || ShardedAggregator::new(params(), eps(), 7, shards).unwrap(),
                    |mut engine| {
                        engine.ingest(black_box(&big)).unwrap();
                        black_box(engine)
                    },
                    BatchSize::SmallInput,
                )
            },
        );
    }

    // The packed SoA ingest lane: the same reports born packed at the client
    // (`perturb_batch`), absorbed through the sign-split histogram scatter + SIMD drain
    // kernels. This is the consumer side of the zero-copy pipeline and the lane the
    // release perf gate (`tests/perf_smoke.rs`) holds at >= 4x the frozen scalar
    // reference.
    let packed = client.perturb_batch(&big_values, &mut rng).unwrap();
    for shards in [1usize, 4] {
        rec.bench(
            c,
            &format!("core/sharded_ingest_batched_{n_big}_reports_{shards}shards"),
            "sharded_ingest_batched",
            n_big,
            params(),
            |b| {
                b.iter_batched(
                    || ShardedAggregator::new(params(), eps(), 7, shards).unwrap(),
                    |mut engine| {
                        engine.ingest_batch(black_box(&packed)).unwrap();
                        black_box(engine)
                    },
                    BatchSize::SmallInput,
                )
            },
        );
    }

    // The telemetry-overhead pair: the exact same packed ingest with and without an
    // attached `AggregatorInstruments` bundle (shared-atomic counter bumps + per-shard
    // gauge refresh on the hot path). The CI perf gate (`tests/perf_smoke.rs`) holds the
    // instrumented lane within 3% of the uninstrumented one.
    let shards = 4usize;
    let telemetry = Telemetry::new();
    let instruments = AggregatorInstruments {
        shard_reports: (0..shards)
            .map(|s| {
                telemetry.gauge(
                    &format!("bench_shard_reports{{shard=\"{s}\"}}"),
                    Stability::Environment,
                )
            })
            .collect(),
        parallel_batches: telemetry.counter("bench_parallel_batches", Stability::Environment),
        inline_batches: telemetry.counter("bench_inline_batches", Stability::Environment),
        rollbacks: telemetry.counter("bench_rollbacks", Stability::Environment),
    };
    for (label, instruments) in [
        ("uninstrumented", None),
        ("instrumented", Some(instruments)),
    ] {
        rec.bench(
            c,
            &format!("core/telemetry_overhead_ingest_batched_{n_big}_reports_{label}"),
            "telemetry_overhead",
            n_big,
            params(),
            |b| {
                b.iter_batched(
                    || {
                        let mut engine =
                            ShardedAggregator::new(params(), eps(), 7, shards).unwrap();
                        engine.set_instruments(instruments.clone());
                        engine
                    },
                    |mut engine| {
                        engine.ingest_batch(black_box(&packed)).unwrap();
                        black_box(engine)
                    },
                    BatchSize::SmallInput,
                )
            },
        );
    }
}

fn bench_finalize_restore(c: &mut Criterion, rec: &mut Recorder) {
    let mut group_sizes: Vec<usize> = vec![256, 1024];
    if !smoke() {
        group_sizes.push(4096);
    }
    for m in group_sizes {
        let p = SketchParams::new(18, m).unwrap();
        let client = LdpJoinSketchClient::new(p, eps(), 3);
        let mut rng = StdRng::seed_from_u64(3);
        let gen = ZipfGenerator::new(1.3, 50_000);
        let n = if smoke() { 2_000 } else { 20_000 };
        let reports = client.perturb_all(&gen.sample_many(n, &mut rng), &mut rng);
        let mut builder = SketchBuilder::new(p, eps(), 3);
        builder.absorb_all(&reports).unwrap();
        rec.bench(
            c,
            &format!("core/finalize_restore/{m}"),
            "finalize_restore",
            n,
            p,
            |b| {
                b.iter_batched(
                    || builder.clone(),
                    |builder| black_box(builder.finalize()),
                    BatchSize::SmallInput,
                )
            },
        );
    }
}

fn bench_estimation(c: &mut Criterion, rec: &mut Recorder) {
    let gen = ZipfGenerator::new(1.3, 50_000);
    let mut rng = StdRng::seed_from_u64(4);
    let n = if smoke() { 5_000 } else { 50_000 };
    let a = gen.sample_many(n, &mut rng);
    let b_vals = gen.sample_many(n, &mut rng);
    let sa = build_private_sketch(&a, params(), eps(), 9, &mut rng).unwrap();
    let sb = build_private_sketch(&b_vals, params(), eps(), 9, &mut rng).unwrap();
    rec.bench(
        c,
        "core/join_size_estimate",
        "join_size",
        n,
        params(),
        |b| b.iter(|| black_box(sa.join_size(&sb).unwrap())),
    );
    rec.bench(
        c,
        "core/frequency_estimate_one_value",
        "frequency",
        n,
        params(),
        |b| {
            let mut v = 0u64;
            b.iter(|| {
                v = (v + 1) % 1000;
                black_box(sa.frequency(black_box(v)))
            })
        },
    );
    let candidates: Vec<u64> = (0..10_000).collect();
    rec.bench(
        c,
        "core/frequency_scan_10k_candidates",
        "frequencies",
        n,
        params(),
        |b| b.iter(|| black_box(sa.frequencies(black_box(&candidates)))),
    );
    // The indexed lane: candidate buckets/signs hashed once into a `DomainIndex`, scans
    // gather counters by precomputed offset instead of re-hashing 10k × k candidates.
    let index = ldpjs_core::DomainIndex::new(sa.hashes(), std::sync::Arc::new(candidates.clone()));
    rec.bench(
        c,
        "core/frequency_scan_10k_candidates_indexed",
        "frequencies_indexed",
        n,
        params(),
        |b| b.iter(|| black_box(sa.frequencies_indexed(black_box(&index)))),
    );
}

/// End-to-end throughput of the large-n streaming regime: the full plain and adaptive-plus
/// protocols over chunked 1M-user Zipf(2.0) streams at the narrow (18, 64) sketch of the
/// default-on superiority regression. These are whole-protocol runs (workload replay,
/// client simulation, ingestion, estimation), so their medians record the wall-clock cost
/// of the regime the `large_n` test gates on — the entry the perf trajectory tracks.
fn bench_large_n_streaming(rec: &mut Recorder) {
    // Whole-protocol iterations are ~a second each in release; keep the sample count low
    // and separate from the microbench Criterion instance.
    let mut c = Criterion::default()
        .sample_size(if smoke() { 1 } else { 3 })
        .warm_up_time(std::time::Duration::from_millis(1))
        .measurement_time(std::time::Duration::from_millis(1));
    let n = if smoke() { 50_000 } else { 1_000_000 };
    let p = SketchParams::new(18, 64).unwrap();
    let gen = ZipfGenerator::new(2.0, 20_000);
    let w = StreamingJoinWorkload::generate("bench-large-n", &gen, n, 8_192, 4100).unwrap();
    let domain = w.domain();
    rec.bench(
        &mut c,
        &format!("core/large_n_streaming_plain_join_{n}"),
        "large_n_streaming_plain",
        n,
        p,
        |b| {
            b.iter(|| {
                black_box(
                    ldp_join_estimate_chunked(&w.table_a, &w.table_b, p, eps(), 80, 90, 2).unwrap(),
                )
            })
        },
    );
    let mut cfg = PlusConfig::new(p, eps());
    cfg.sampling_rate = 0.05;
    cfg.adaptive = true;
    cfg.seed = 800;
    rec.bench(
        &mut c,
        &format!("core/large_n_streaming_plus_join_{n}"),
        "large_n_streaming_plus",
        n,
        p,
        |b| {
            b.iter(|| {
                black_box(
                    ldp_join_plus_estimate_chunked(&w.table_a, &w.table_b, &domain, cfg, 900)
                        .unwrap(),
                )
            })
        },
    );
}

/// The online sketch service: continuous batch ingestion into the live engine, and the
/// cached query layer — a cold `All`-range join query pays the 8-window merge + restore +
/// row product, the repeated query is a hash lookup. The cold/cached pair is the service's
/// headline trade-off, tracked as `service_query_{cold,cached}` in BENCH_core.json.
fn bench_service(c: &mut Criterion, rec: &mut Recorder) {
    let windows = 8usize;
    let n_window = if smoke() { 4_000 } else { 32_000 };
    let mut config = ServiceConfig::new(params(), eps());
    config.shards = 2;
    config.epoch_reports = u64::MAX >> 1; // rotation driven explicitly below
    config.retained_windows = windows;
    let mut service = SketchService::new(config).unwrap();
    let a = service.register_attribute("bench.a", 7).unwrap();
    let b = service.register_attribute("bench.b", 7).unwrap();
    let gen = ZipfGenerator::new(1.3, 100_000);
    let mut rng = StdRng::seed_from_u64(11);
    for attr in [a, b] {
        let client = service.client(attr).unwrap();
        for _ in 0..windows {
            let reports = client.perturb_all(&gen.sample_many(n_window, &mut rng), &mut rng);
            service.ingest(attr, &reports).unwrap();
            service.rotate(attr).unwrap();
        }
    }

    let ingest_values = gen.sample_many(8_192, &mut rng);
    let batch = service
        .client(a)
        .unwrap()
        .perturb_all(&ingest_values, &mut rng);
    rec.bench(
        c,
        "service/ingest_throughput_8192_report_batch",
        "service_ingest_throughput",
        8_192,
        params(),
        |bn| {
            bn.iter(|| {
                service.ingest(a, black_box(&batch)).unwrap();
                black_box(service.live_reports(a).unwrap())
            })
        },
    );

    // The same epoch payload carried in the packed sign-split shape end to end:
    // `perturb_batch` at the client, `SketchService::ingest_batch` into the live engine.
    let packed = service
        .client(a)
        .unwrap()
        .perturb_batch(&ingest_values, &mut rng)
        .unwrap();
    rec.bench(
        c,
        "service/ingest_throughput_batched_8192_report_batch",
        "service_ingest_throughput_batched",
        8_192,
        params(),
        |bn| {
            bn.iter(|| {
                service.ingest_batch(a, black_box(&packed)).unwrap();
                black_box(service.live_reports(a).unwrap())
            })
        },
    );

    let n_total = 2 * windows * n_window;
    rec.bench(
        c,
        "service/query_cold_all_windows_join",
        "service_query_cold",
        n_total,
        params(),
        |bn| {
            bn.iter(|| {
                service.clear_cache();
                black_box(service.join_size(a, b, WindowRange::All).unwrap())
            })
        },
    );
    // Prime once, then every query is a memoized lookup.
    service.clear_cache();
    service.join_size(a, b, WindowRange::All).unwrap();
    rec.bench(
        c,
        "service/query_cached_all_windows_join",
        "service_query_cached",
        n_total,
        params(),
        |bn| bn.iter(|| black_box(service.join_size(a, b, WindowRange::All).unwrap())),
    );
}

/// The windowed LDPJoinSketch+ serving path: labeled three-lane batch ingestion, and the
/// cold/cached cost of a plus join-size query — cold pays the per-lane window merge, three
/// restores, cross-window FI re-discovery over the public domain, and the `JoinEst` kernel;
/// the repeat is a hash lookup. Tracked as `service_plus_ingest_throughput` and
/// `service_plus_query_{cold,cached}` in BENCH_core.json.
fn bench_service_plus(c: &mut Criterion, rec: &mut Recorder) {
    let windows = 8usize;
    let n_window = if smoke() { 4_000 } else { 32_000 };
    let n = windows * n_window;
    let chunk = 2_000usize;
    let p = params();
    let generator = ZipfGenerator::new(2.0, 4_096);
    let w = StreamingJoinWorkload::generate("bench-plus-svc", &generator, n, chunk, 4200).unwrap();
    let domain = w.domain();

    let mut plus_cfg = PlusConfig::new(p, eps());
    plus_cfg.sampling_rate = 0.05;
    plus_cfg.adaptive = true;
    plus_cfg.seed = 4300;
    let est = LdpJoinSketchPlus::new(plus_cfg).unwrap();
    let rng_seed = 4400u64;
    let discovery = est
        .discover_frequent_items_chunked(&w.table_a, &w.table_b, &domain, rng_seed)
        .unwrap();

    let mut config = ServiceConfig::new(p, eps());
    config.epoch_reports = u64::MAX >> 1; // rotation driven explicitly below
    config.retained_windows = windows;
    let mut service = SketchService::new(config).unwrap();
    let attr_cfg = PlusAttributeConfig::from_plus_config(&plus_cfg, domain.clone());
    let a = service
        .register_plus_attribute("bench.plus.a", plus_cfg.seed, attr_cfg.clone())
        .unwrap();
    let b = service
        .register_plus_attribute("bench.plus.b", plus_cfg.seed, attr_cfg)
        .unwrap();

    // Drive the full labeled stream in, sealing `windows` epochs per attribute, and keep
    // one emitted batch around as the ingest-throughput payload.
    let batches_per_window = n.div_ceil(chunk).div_ceil(windows);
    let mut payload = PlusReportBatch::default();
    for (attr, table, role) in [
        (a, &w.table_a, PlusTableRole::A),
        (b, &w.table_b, PlusTableRole::B),
    ] {
        let mut in_window = 0usize;
        est.stream_plus_reports(
            table,
            role,
            &discovery.frequent_items,
            rng_seed,
            true,
            &mut |batch| {
                if payload.is_empty() {
                    payload = batch.clone();
                }
                service.ingest_plus(attr, batch)?;
                in_window += 1;
                if in_window == batches_per_window {
                    service.rotate(attr)?;
                    in_window = 0;
                }
                Ok(())
            },
        )
        .unwrap();
        service.rotate(attr).unwrap();
    }

    rec.bench(
        c,
        &format!("service/plus_ingest_throughput_{chunk}_report_batch"),
        "service_plus_ingest_throughput",
        chunk,
        p,
        |bn| {
            bn.iter(|| {
                service.ingest_plus(a, black_box(&payload)).unwrap();
                black_box(service.live_reports(a).unwrap())
            })
        },
    );

    let n_total = 2 * n;
    rec.bench(
        c,
        "service/plus_query_cold_all_windows_join",
        "service_plus_query_cold",
        n_total,
        p,
        |bn| {
            bn.iter(|| {
                service.clear_cache();
                black_box(service.plus_join_size(a, b, WindowRange::All).unwrap())
            })
        },
    );
    // Prime once, then every query is a memoized lookup.
    service.clear_cache();
    service.plus_join_size(a, b, WindowRange::All).unwrap();
    rec.bench(
        c,
        "service/plus_query_cached_all_windows_join",
        "service_plus_query_cached",
        n_total,
        p,
        |bn| bn.iter(|| black_box(service.plus_join_size(a, b, WindowRange::All).unwrap())),
    );
}

/// The clone-heavy estimator medians measured immediately before the zero-copy
/// builder/finalize refactor, on this repository's reference machine (k = 18, m = 1024;
/// same workloads as the current benches). Kept in the JSON so every future run can be
/// compared against the pre-refactor hot path without checking out an old commit.
const BASELINE_PRE_REFACTOR: &[(&str, &str, usize, usize, usize, f64)] = &[
    (
        "core/client_perturb_one_value",
        "client_perturb",
        1,
        18,
        1024,
        71.0,
    ),
    (
        "core/server_absorb_10k_reports",
        "server_absorb",
        10_000,
        18,
        1024,
        13_491.0,
    ),
    (
        "core/hadamard_restore/256",
        "finalize_restore",
        20_000,
        18,
        256,
        21_898.0,
    ),
    (
        "core/hadamard_restore/1024",
        "finalize_restore",
        20_000,
        18,
        1024,
        92_027.0,
    ),
    (
        "core/hadamard_restore/4096",
        "finalize_restore",
        20_000,
        18,
        4096,
        419_441.0,
    ),
    (
        "core/join_size_estimate",
        "join_size",
        50_000,
        18,
        1024,
        18_274.0,
    ),
    (
        "core/frequency_estimate_one_value",
        "frequency",
        50_000,
        18,
        1024,
        3_935.0,
    ),
    (
        "core/frequency_scan_10k_candidates",
        "frequencies",
        50_000,
        18,
        1024,
        3_075_000.0,
    ),
];

fn json_record(name: &str, method: &str, n: usize, k: usize, m: usize, median_ns: f64) -> String {
    format!(
        "    {{\"name\": \"{name}\", \"method\": \"{method}\", \"n\": {n}, \"k\": {k}, \
         \"m\": {m}, \"median_ns\": {median_ns:.1}}}"
    )
}

/// The `"name"` field of one serialized record line, if it has one.
fn record_name(line: &str) -> Option<&str> {
    let rest = &line[line.find("\"name\": \"")? + 9..];
    Some(&rest[..rest.find('"')?])
}

/// The `results` entries of a previously written BENCH_core.json, in file order. Missing
/// or unrecognizable files merge as empty.
fn existing_results(path: &str) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Some(start) = text.find("\"results\": [") else {
        return Vec::new();
    };
    let Some(len) = text[start..].find(']') else {
        return Vec::new();
    };
    text[start..start + len]
        .lines()
        .skip(1)
        .map(|l| l.trim_end().trim_end_matches(',').to_string())
        .filter(|l| record_name(l).is_some())
        .collect()
}

fn write_json(records: &[Record]) {
    let path = std::env::var("BENCH_CORE_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_core.json").to_string()
    });
    // Merge this run into the existing file BY NAME: a bench that ran replaces its old
    // entry in place, benches this (possibly filtered) run skipped keep their last
    // result, and nothing is ever appended twice — so partial runs no longer drop or
    // duplicate entries.
    let mut fresh: Vec<(String, String)> = records
        .iter()
        .map(|r| {
            (
                r.name.clone(),
                json_record(&r.name, r.method, r.n, r.k, r.m, r.median_ns),
            )
        })
        .collect();
    let mut seen = std::collections::HashSet::new();
    let mut current: Vec<String> = Vec::new();
    for line in existing_results(&path) {
        let name = record_name(&line).expect("filtered above").to_string();
        if !seen.insert(name.clone()) {
            continue; // drop duplicates a previous writer bug left behind
        }
        match fresh.iter().position(|(n, _)| *n == name) {
            Some(pos) => current.push(fresh.remove(pos).1),
            None => current.push(line),
        }
    }
    for (name, line) in fresh {
        if seen.insert(name) {
            current.push(line);
        }
    }
    let baseline: Vec<String> = BASELINE_PRE_REFACTOR
        .iter()
        .map(|&(name, method, n, k, m, ns)| json_record(name, method, n, k, m, ns))
        .collect();
    let json = format!(
        "{{\n  \"schema\": \"ldpjs-bench-core-v1\",\n  \"smoke\": {},\n  \"results\": [\n{}\n  ],\n  \"baseline_pre_refactor\": [\n{}\n  ]\n}}\n",
        smoke(),
        current.join(",\n"),
        baseline.join(",\n"),
    );
    match std::fs::write(&path, json) {
        Ok(()) => println!("\nwrote machine-readable results to {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}

fn main() {
    let samples = if smoke() { 3 } else { 20 };
    let mut c = Criterion::default()
        .sample_size(samples)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .configure_from_args();
    let mut rec = Recorder::new();
    bench_client_perturb(&mut c, &mut rec);
    bench_server_ingest(&mut c, &mut rec);
    bench_finalize_restore(&mut c, &mut rec);
    bench_estimation(&mut c, &mut rec);
    bench_service(&mut c, &mut rec);
    bench_service_plus(&mut c, &mut rec);
    bench_large_n_streaming(&mut rec);
    write_json(&rec.records);
}
