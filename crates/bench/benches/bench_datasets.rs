//! Benches of the workload generators (Table II): how fast each dataset stand-in produces
//! rows and computes ground truth. Generation cost matters because every figure regenerates
//! its workloads from seeds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldpjs_common::stats::exact_join_size;
use ldpjs_data::{GaussianGenerator, PaperDataset, ValueGenerator, ZipfGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("datasets_generate_20k_rows");
    group.sample_size(20);
    group.bench_function("zipf_1.1", |b| {
        let gen = ZipfGenerator::new(1.1, 100_000);
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            black_box(gen.sample_many(20_000, &mut rng))
        })
    });
    group.bench_function("gaussian", |b| {
        let gen = GaussianGenerator::centered(75_949);
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            black_box(gen.sample_many(20_000, &mut rng))
        })
    });
    group.finish();
}

fn bench_table2_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("datasets_table2_workload");
    group.sample_size(10);
    for dataset in PaperDataset::figure5_suite() {
        let name = dataset.info().name;
        group.bench_with_input(BenchmarkId::from_parameter(&name), &dataset, |b, d| {
            b.iter(|| black_box(d.generate_join(1e-9, 7)))
        });
    }
    group.finish();
}

fn bench_ground_truth(c: &mut Criterion) {
    let w = PaperDataset::Zipf { alpha: 1.1 }.generate_join(0.0005, 7);
    c.bench_function("datasets_exact_join_size_20k", |b| {
        b.iter(|| {
            black_box(exact_join_size(
                black_box(&w.table_a),
                black_box(&w.table_b),
            ))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_generators, bench_table2_workloads, bench_ground_truth
);
criterion_main!(benches);
