//! Figure-level benches: one Criterion benchmark per evaluation figure, each running the same
//! pipeline as the corresponding `ldpjs-experiments` binary at a reduced scale.
//!
//! These benches measure the end-to-end cost of regenerating each figure's data point(s) and
//! double as smoke tests that every experiment pipeline stays runnable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldpjs_common::stats::median;
use ldpjs_core::multiway::{build_edge_sketch, build_vertex_sketch, ldp_chain_join_3};
use ldpjs_core::{Epsilon, SketchParams};
use ldpjs_data::PaperDataset;
use ldpjs_experiments::{estimate_join, Method, PlusKnobs};
use ldpjs_sketch::compass::JoinAttribute;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const BENCH_SCALE: f64 = 0.0001;

fn params() -> SketchParams {
    SketchParams::new(18, 1024).unwrap()
}

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

/// Fig. 5: one accuracy evaluation (all methods would be too slow per iteration, so the bench
/// parameterises over the method and runs the full protocol once per iteration).
fn bench_fig5_accuracy(c: &mut Criterion) {
    let workload = PaperDataset::Zipf { alpha: 1.1 }.generate_join(BENCH_SCALE, 7);
    let mut group = c.benchmark_group("fig5_accuracy");
    group.sample_size(10);
    for method in [
        Method::Fagms,
        Method::AppleHcms,
        Method::LdpJoinSketch,
        Method::LdpJoinSketchPlus,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(method.name()),
            &method,
            |b, &m| {
                b.iter(|| {
                    black_box(
                        estimate_join(m, &workload, params(), eps(4.0), PlusKnobs::default(), 3)
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

/// Fig. 6: space sweep (varying m at fixed k) for LDPJoinSketch.
fn bench_fig6_space(c: &mut Criterion) {
    let workload = PaperDataset::Zipf { alpha: 2.0 }.generate_join(BENCH_SCALE, 7);
    let mut group = c.benchmark_group("fig6_space");
    group.sample_size(10);
    for m in [512usize, 2048] {
        let p = SketchParams::new(18, m).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(m), &p, |b, &p| {
            b.iter(|| {
                black_box(
                    estimate_join(
                        Method::LdpJoinSketch,
                        &workload,
                        p,
                        eps(10.0),
                        PlusKnobs::default(),
                        5,
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

/// Fig. 7: communication accounting (cheap; measures the bookkeeping path).
fn bench_fig7_communication(c: &mut Criterion) {
    let workload = PaperDataset::Zipf { alpha: 1.1 }.generate_join(BENCH_SCALE, 7);
    c.bench_function("fig7_communication/ldpjoinsketch", |b| {
        b.iter(|| {
            let out = estimate_join(
                Method::LdpJoinSketch,
                &workload,
                params(),
                eps(4.0),
                PlusKnobs::default(),
                11,
            )
            .unwrap();
            black_box(out.communication_bits)
        })
    });
}

/// Fig. 8: the ε sweep for LDPJoinSketch (one protocol run per ε per iteration).
fn bench_fig8_epsilon(c: &mut Criterion) {
    let workload = PaperDataset::Zipf { alpha: 1.5 }.generate_join(BENCH_SCALE, 7);
    let mut group = c.benchmark_group("fig8_epsilon");
    group.sample_size(10);
    for e in [0.5f64, 4.0, 10.0] {
        group.bench_with_input(BenchmarkId::from_parameter(e), &e, |b, &e| {
            b.iter(|| {
                black_box(
                    estimate_join(
                        Method::LdpJoinSketch,
                        &workload,
                        params(),
                        eps(e),
                        PlusKnobs::default(),
                        3,
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

/// Fig. 9: sketch-parameter sweeps (m and k).
fn bench_fig9_params(c: &mut Criterion) {
    let workload = PaperDataset::Zipf { alpha: 1.1 }.generate_join(BENCH_SCALE, 7);
    let mut group = c.benchmark_group("fig9_params");
    group.sample_size(10);
    for (k, m) in [(18usize, 512usize), (18, 4096), (9, 1024), (36, 1024)] {
        let p = SketchParams::new(k, m).unwrap();
        group.bench_with_input(BenchmarkId::new("k_m", format!("{k}x{m}")), &p, |b, &p| {
            b.iter(|| {
                black_box(
                    estimate_join(
                        Method::LdpJoinSketch,
                        &workload,
                        p,
                        eps(10.0),
                        PlusKnobs::default(),
                        3,
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

/// Fig. 10 / Fig. 11: the LDPJoinSketch+ knob sweeps (sampling rate r and threshold θ).
fn bench_fig10_fig11_plus_knobs(c: &mut Criterion) {
    let workload = PaperDataset::Zipf { alpha: 1.1 }.generate_join(BENCH_SCALE, 7);
    let mut group = c.benchmark_group("fig10_fig11_plus_knobs");
    group.sample_size(10);
    for (label, knobs) in [
        (
            "r=0.1_theta=1e-3",
            PlusKnobs {
                sampling_rate: 0.1,
                threshold: 1e-3,
                paper_literal_subtraction: false,
                variance_weighted_recombination: false,
            },
        ),
        (
            "r=0.3_theta=1e-3",
            PlusKnobs {
                sampling_rate: 0.3,
                threshold: 1e-3,
                paper_literal_subtraction: false,
                variance_weighted_recombination: false,
            },
        ),
        (
            "r=0.1_theta=1e-1",
            PlusKnobs {
                sampling_rate: 0.1,
                threshold: 1e-1,
                paper_literal_subtraction: false,
                variance_weighted_recombination: false,
            },
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &knobs, |b, &knobs| {
            b.iter(|| {
                black_box(
                    estimate_join(
                        Method::LdpJoinSketchPlus,
                        &workload,
                        params(),
                        eps(4.0),
                        knobs,
                        3,
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

/// Fig. 12: skewness sweep.
fn bench_fig12_skewness(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_skewness");
    group.sample_size(10);
    for alpha in [1.1f64, 1.9] {
        let workload = PaperDataset::Zipf { alpha }.generate_join(BENCH_SCALE, 7);
        group.bench_with_input(BenchmarkId::from_parameter(alpha), &workload, |b, w| {
            b.iter(|| {
                black_box(
                    estimate_join(
                        Method::LdpJoinSketch,
                        w,
                        params(),
                        eps(4.0),
                        PlusKnobs::default(),
                        3,
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

/// Fig. 13: offline (construction) vs online (query) phases, benchmarked separately.
fn bench_fig13_efficiency(c: &mut Criterion) {
    let workload = PaperDataset::Zipf { alpha: 1.1 }.generate_join(BENCH_SCALE, 7);
    let mut rng = StdRng::seed_from_u64(1);
    let sa = ldpjs_core::protocol::build_private_sketch(
        &workload.table_a,
        params(),
        eps(4.0),
        3,
        &mut rng,
    )
    .unwrap();
    let sb = ldpjs_core::protocol::build_private_sketch(
        &workload.table_b,
        params(),
        eps(4.0),
        3,
        &mut rng,
    )
    .unwrap();
    c.bench_function("fig13_efficiency/offline_construction", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            black_box(
                ldpjs_core::protocol::build_private_sketch(
                    &workload.table_a,
                    params(),
                    eps(4.0),
                    3,
                    &mut rng,
                )
                .unwrap(),
            )
        })
    });
    c.bench_function("fig13_efficiency/online_query", |b| {
        b.iter(|| black_box(sa.join_size(&sb).unwrap()))
    });
}

/// Fig. 14: frequency estimation over the observed distinct values.
fn bench_fig14_frequency(c: &mut Criterion) {
    let workload = PaperDataset::Zipf { alpha: 1.5 }.generate_join(BENCH_SCALE, 7);
    let mut rng = StdRng::seed_from_u64(3);
    let sketch = ldpjs_core::protocol::build_private_sketch(
        &workload.table_a,
        params(),
        eps(4.0),
        3,
        &mut rng,
    )
    .unwrap();
    let distinct: Vec<u64> = ldpjs_common::stats::frequency_table(&workload.table_a)
        .keys()
        .copied()
        .collect();
    c.bench_function("fig14_frequency/scan_distinct_values", |b| {
        b.iter(|| black_box(sketch.frequencies(black_box(&distinct))))
    });
}

/// Fig. 15: one 3-way LDP chain-join estimation round.
fn bench_fig15_multiway(c: &mut Criterion) {
    let chain = PaperDataset::Zipf { alpha: 1.5 }.generate_chain(BENCH_SCALE, 7);
    let attr_a = JoinAttribute::from_seed(1, 9, 256);
    let attr_b = JoinAttribute::from_seed(2, 9, 256);
    let t3_b = chain.t3_b_column();
    c.bench_function("fig15_multiway/3way_chain_estimate", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(4);
            let s1 = build_vertex_sketch(&chain.t1, &attr_a, eps(4.0), &mut rng).unwrap();
            let s2 = build_edge_sketch(&chain.t2, &attr_a, &attr_b, eps(4.0), &mut rng).unwrap();
            let s3 = build_vertex_sketch(&t3_b, &attr_b, eps(4.0), &mut rng).unwrap();
            let est = ldp_chain_join_3(&s1, &attr_a, &s2, &s3, &attr_b).unwrap();
            black_box(median(&[est]).unwrap())
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets =
        bench_fig5_accuracy,
        bench_fig6_space,
        bench_fig7_communication,
        bench_fig8_epsilon,
        bench_fig9_params,
        bench_fig10_fig11_plus_knobs,
        bench_fig12_skewness,
        bench_fig13_efficiency,
        bench_fig14_frequency,
        bench_fig15_multiway
);
criterion_main!(benches);
