//! Benchmark-only crate: see the `benches/` directory. This library target exists only so the
//! package has a compilation unit; all content lives in the Criterion benches.

#![forbid(unsafe_code)]
