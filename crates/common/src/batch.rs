//! Sign-split packed report batches and their scatter-accumulate kernels.
//!
//! The LDPJoinSketch ingest hot path moves exactly one piece of information per client
//! report into the server's counters: *which* flat counter `j·m + l` the report targets and
//! *which way* (`y ∈ {−1, +1}`) it pushes. The array-of-structs `ClientReport` wire shape
//! (24 bytes in memory) makes the server-side scatter memory-bandwidth-bound long before it
//! is compute-bound; a [`ReportBatch`] packs the same information into 4 bytes per report —
//! two `u32` index arrays, one per sign — so a 400k-report batch streams 1.6 MB instead of
//! 9.6 MB and the scatter kernel has **no sign math left at all**: each lane is a pure
//! `counters[idx] ± 1` histogram.
//!
//! # Why the accumulation order may be changed freely
//!
//! Sketch counters are exact integer `±1` report sums in `f64`. Integer-valued `f64`
//! addition is exact (and therefore associative and commutative) while magnitudes stay
//! below `2^53`, and adding `+1` and `−1` contributions in any interleaving can never
//! produce `−0.0` (round-to-nearest returns `+0.0` for the sum of opposite equal values).
//! So accumulating a batch as per-counter *net* deltas (`#plus − #minus`, an `i32`) and
//! adding each net delta once is **bit-for-bit identical** to replaying the reports one by
//! one in their original order — the property tests in `ldpjs-core` pin this against the
//! scalar reference path.
//!
//! # Kernel shape (measured on the bench workload, 400k reports, k = 18, m = 1024)
//!
//! The scatter accumulates into a dense `i32` scratch (k·m entries, 72 KB at the bench
//! shape — L2-resident, hot counters L1-resident), four interleaved streams per sign lane
//! to hide store-to-load forwarding latency on repeated hot counters, then drains the
//! scratch into the `f64` counters in one vectorized sweep. This runs at ~0.7–0.9 ns per
//! report where the array-of-structs scalar path costs ~3.1–3.6 ns. The drain is an
//! elementwise `i32 → f64` convert-add behind the same runtime SIMD dispatch pattern as
//! the FWHT kernels in [`crate::hadamard`]; conversion of an `i32` to `f64` is exact, so
//! every drain kernel is trivially bit-identical.
//!
//! Index validity is a **construction invariant** of [`ReportBatch`] (fields are private;
//! every constructor and push validates), which is what lets the hot kernels skip
//! per-report bounds checks without an extra validation sweep.

use crate::error::{Error, Result};

/// A packed, sign-split batch of LDPJoinSketch client reports for a `rows × cols` sketch.
///
/// Each report is stored as its flat counter index `row·cols + col` (`u32`) in one of two
/// lanes: `plus` for `y = +1` reports, `minus` for `y = −1`. The per-report order inside
/// the batch is *not* meaningful — see the module docs for why reordering is exact — and
/// conversions from report streams are free to interleave the lanes however they arrive.
///
/// All stored indices are `< rows·cols` by construction; the accumulate kernels rely on
/// that invariant (fields are private and every mutating entry point validates).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReportBatch {
    rows: usize,
    cols: usize,
    /// `lanes[0]` holds the flat indices of the `y = +1` reports, `lanes[1]` the `y = −1`
    /// ones. An array (rather than two named fields) lets the hot push select the lane by
    /// index — a data dependency instead of an unpredictable sign branch.
    lanes: [Vec<u32>; 2],
}

/// Batches with at least this many reports per counter-array quarter take the
/// scratch-and-drain path; smaller ones scatter `±1.0` directly into the `f64` counters
/// (zeroing and draining a whole scratch costs more than it saves on tiny batches).
/// Both paths produce bit-identical counters, so the cutoff is purely a latency knob.
const SCRATCH_CUTOFF_DIVISOR: usize = 4;

impl ReportBatch {
    /// An empty batch for a `rows × cols` sketch.
    ///
    /// # Errors
    /// Returns [`Error::InvalidSketchParameter`] if `rows·cols` overflows the `u32` flat
    /// index space (no practical sketch comes close).
    pub fn new(rows: usize, cols: usize) -> Result<Self> {
        Self::with_capacity(rows, cols, 0)
    }

    /// An empty batch with pre-reserved space for `capacity` reports (split evenly across
    /// the sign lanes).
    ///
    /// # Errors
    /// Returns [`Error::InvalidSketchParameter`] if `rows·cols` overflows `u32`.
    pub fn with_capacity(rows: usize, cols: usize, capacity: usize) -> Result<Self> {
        let counters = rows.checked_mul(cols).ok_or_else(|| {
            Error::InvalidSketchParameter(format!(
                "sketch shape {rows}x{cols} overflows the counter space"
            ))
        })?;
        if u32::try_from(counters).is_err() {
            return Err(Error::InvalidSketchParameter(format!(
                "sketch shape {rows}x{cols} does not fit packed u32 report indices"
            )));
        }
        Ok(ReportBatch {
            rows,
            cols,
            lanes: [
                Vec::with_capacity(capacity / 2 + 1),
                Vec::with_capacity(capacity / 2 + 1),
            ],
        })
    }

    /// Number of sketch rows this batch is shaped for.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of sketch columns this batch is shaped for.
    #[inline]
    pub fn columns(&self) -> usize {
        self.cols
    }

    /// Total number of reports in the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.lanes[0].len() + self.lanes[1].len()
    }

    /// `true` if the batch holds no reports.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lanes[0].is_empty() && self.lanes[1].is_empty()
    }

    /// The flat counter indices of the `y = +1` reports.
    #[inline]
    pub fn plus_indices(&self) -> &[u32] {
        &self.lanes[0]
    }

    /// The flat counter indices of the `y = −1` reports.
    #[inline]
    pub fn minus_indices(&self) -> &[u32] {
        &self.lanes[1]
    }

    /// Drop all reports, keeping the allocations (the reuse hook for chunked drivers).
    #[inline]
    pub fn clear(&mut self) {
        self.lanes[0].clear();
        self.lanes[1].clear();
    }

    /// Append one report.
    ///
    /// # Errors
    /// Returns [`Error::ReportOutOfRange`] if `(row, col)` does not fit the batch shape;
    /// the batch is unchanged in that case.
    #[inline]
    pub fn push(&mut self, row: usize, col: usize, negative: bool) -> Result<()> {
        if row >= self.rows || col >= self.cols {
            return Err(Error::ReportOutOfRange {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        let idx = (row * self.cols + col) as u32;
        // Lane selection by index: the report sign is effectively random, so an
        // if/else here mispredicts ~50% of the time and dominates the push cost.
        self.lanes[usize::from(negative)].push(idx);
        Ok(())
    }

    /// Append every report of `other` (which must have the same shape).
    ///
    /// # Errors
    /// Returns [`Error::IncompatibleSketches`] on a shape mismatch; the batch is unchanged.
    pub fn append(&mut self, other: &Self) -> Result<()> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(Error::IncompatibleSketches(format!(
                "cannot append a {}x{} report batch to a {}x{} one",
                other.rows, other.cols, self.rows, self.cols
            )));
        }
        self.lanes[0].extend_from_slice(&other.lanes[0]);
        self.lanes[1].extend_from_slice(&other.lanes[1]);
        Ok(())
    }

    /// Reports in shard `shard` of a contiguous `shards`-way split (both sign lanes are
    /// split independently into `ceil(len/shards)`-sized chunks, mirroring the sharded
    /// aggregation engine's chunking of report slices).
    pub fn shard_len(&self, shard: usize, shards: usize) -> usize {
        shard_chunk(&self.lanes[0], shard, shards).len()
            + shard_chunk(&self.lanes[1], shard, shards).len()
    }

    /// Accumulate every report into `counters` (`counters[idx] += ±1.0`, net-delta form).
    ///
    /// Allocates a transient scratch for large batches; prefer
    /// [`ReportBatch::accumulate_into_with`] with a reused scratch on repeated calls.
    ///
    /// # Panics
    /// Panics if `counters.len() != rows·cols`.
    pub fn accumulate_into(&self, counters: &mut [f64]) {
        let mut scratch = Vec::new();
        self.accumulate_into_with(counters, &mut scratch);
    }

    /// [`ReportBatch::accumulate_into`] with a caller-owned scratch buffer (resized and
    /// zeroed as needed, left zeroed afterwards so it can be handed straight back in).
    ///
    /// # Panics
    /// Panics if `counters.len() != rows·cols`.
    pub fn accumulate_into_with(&self, counters: &mut [f64], scratch: &mut Vec<i32>) {
        assert_eq!(
            counters.len(),
            self.rows * self.cols,
            "counter array does not match the batch shape"
        );
        accumulate(&self.lanes[0], &self.lanes[1], counters, scratch);
    }

    /// Accumulate only shard `shard` of a `shards`-way split (see
    /// [`ReportBatch::shard_len`]) — the parallel fan-out hook of the sharded aggregator.
    ///
    /// # Panics
    /// Panics if `counters.len() != rows·cols`.
    pub fn accumulate_shard_into_with(
        &self,
        shard: usize,
        shards: usize,
        counters: &mut [f64],
        scratch: &mut Vec<i32>,
    ) {
        assert_eq!(
            counters.len(),
            self.rows * self.cols,
            "counter array does not match the batch shape"
        );
        accumulate(
            shard_chunk(&self.lanes[0], shard, shards),
            shard_chunk(&self.lanes[1], shard, shards),
            counters,
            scratch,
        );
    }
}

/// Contiguous chunk `shard` of a `shards`-way split of `lane` (empty when out of range).
fn shard_chunk(lane: &[u32], shard: usize, shards: usize) -> &[u32] {
    let chunk = lane.len().div_ceil(shards.max(1)).max(1);
    let start = (shard * chunk).min(lane.len());
    let end = ((shard + 1) * chunk).min(lane.len());
    &lane[start..end]
}

/// The shared accumulate body: small batches scatter `±1.0` straight into the counters,
/// large ones take the i32-scratch histogram + vectorized drain. Bit-identical either way
/// (see the module docs).
fn accumulate(plus: &[u32], minus: &[u32], counters: &mut [f64], scratch: &mut Vec<i32>) {
    let n = plus.len() + minus.len();
    if n == 0 {
        return;
    }
    if n < counters.len() / SCRATCH_CUTOFF_DIVISOR {
        for &idx in plus {
            counters[idx as usize] += 1.0;
        }
        for &idx in minus {
            counters[idx as usize] -= 1.0;
        }
        return;
    }
    if scratch.len() != counters.len() {
        scratch.clear();
        scratch.resize(counters.len(), 0);
    }
    debug_assert_eq!(scratch.len(), counters.len());
    scatter_lane(scratch, plus, 1);
    scatter_lane(scratch, minus, -1);
    drain_dispatch(counters, scratch);
}

/// Histogram one sign lane into the scratch, four interleaved streams to break
/// store-to-load forwarding chains on hot (high-frequency) counters.
fn scatter_lane(scratch: &mut [i32], lane: &[u32], delta: i32) {
    debug_assert!(lane.iter().all(|&i| (i as usize) < scratch.len()));
    let q = lane.len() / 4;
    let (a, rest) = lane.split_at(q);
    let (b, rest) = rest.split_at(q);
    let (c, rest) = rest.split_at(q);
    let (d, tail) = rest.split_at(q);
    for i in 0..q {
        #[allow(unsafe_code)]
        // SAFETY: `i < q` and the four streams each have exactly `q` elements by the
        // `split_at` arithmetic above, so every `get_unchecked(i)` is in bounds. Every
        // index stored in a `ReportBatch` lane is `< rows·cols` by construction (all
        // constructors validate), and `scratch.len() == rows·cols` is asserted by every
        // accumulate entry point before reaching this kernel, so every
        // `get_unchecked_mut` is in bounds too.
        unsafe {
            *scratch.get_unchecked_mut(*a.get_unchecked(i) as usize) += delta;
            *scratch.get_unchecked_mut(*b.get_unchecked(i) as usize) += delta;
            *scratch.get_unchecked_mut(*c.get_unchecked(i) as usize) += delta;
            *scratch.get_unchecked_mut(*d.get_unchecked(i) as usize) += delta;
        }
    }
    for &idx in tail {
        #[allow(unsafe_code)]
        // SAFETY: same invariant as above.
        unsafe {
            *scratch.get_unchecked_mut(idx as usize) += delta;
        }
    }
}

/// Drain the net deltas into the counters (`counters[i] += scratch[i] as f64`) and zero the
/// scratch, routed to the widest available vector ISA. Every kernel performs the identical
/// elementwise exact `i32 → f64` conversion and one `f64` add per counter, so the results
/// are bit-identical across targets.
fn drain_dispatch(counters: &mut [f64], scratch: &mut [i32]) {
    debug_assert_eq!(counters.len(), scratch.len());
    #[cfg(target_arch = "x86_64")]
    {
        if counters.len() >= 16 && std::arch::is_x86_feature_detected!("avx512f") {
            #[allow(unsafe_code)]
            // SAFETY: the runtime guard above proves `avx512f` — the exact feature set
            // `drain_avx512` is compiled with — is available on this CPU, and the
            // `counters.len() == scratch.len()` precondition is asserted at fn entry.
            unsafe {
                simd::drain_avx512(counters, scratch)
            };
            crate::dispatch::bump(&crate::dispatch::DRAIN_AVX512);
            return;
        }
        if counters.len() >= 8 && std::arch::is_x86_feature_detected!("avx2") {
            #[allow(unsafe_code)]
            // SAFETY: the runtime guard above proves `avx2` — the exact feature set
            // `drain_avx2` is compiled with — is available on this CPU, and the
            // `counters.len() == scratch.len()` precondition is asserted at fn entry.
            unsafe {
                simd::drain_avx2(counters, scratch)
            };
            crate::dispatch::bump(&crate::dispatch::DRAIN_AVX2);
            return;
        }
    }
    crate::dispatch::bump(&crate::dispatch::DRAIN_PORTABLE);
    for (c, s) in counters.iter_mut().zip(scratch.iter_mut()) {
        *c += *s as f64;
        *s = 0;
    }
}

/// Explicit-SIMD drain kernels (x86-64), same dispatch idiom as the FWHT kernels.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod simd {
    use std::arch::x86_64::*;

    /// 8 counters per step: exact `i32 → f64` convert, one add, zero the scratch.
    ///
    /// # Safety
    ///
    /// The CPU must support `avx512f` (callers check via `is_x86_feature_detected!`),
    /// and `counters` and `scratch` must have equal lengths.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn drain_avx512(counters: &mut [f64], scratch: &mut [i32]) {
        debug_assert_eq!(counters.len(), scratch.len());
        let n = counters.len();
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: `i + 8 <= n` bounds every access; loads/stores are unaligned.
            unsafe {
                let s = _mm256_loadu_si256(scratch.as_ptr().add(i) as *const __m256i);
                let c = _mm512_loadu_pd(counters.as_ptr().add(i));
                let sum = _mm512_add_pd(c, _mm512_cvtepi32_pd(s));
                _mm512_storeu_pd(counters.as_mut_ptr().add(i), sum);
                _mm256_storeu_si256(
                    scratch.as_mut_ptr().add(i) as *mut __m256i,
                    _mm256_setzero_si256(),
                );
            }
            i += 8;
        }
        for j in i..n {
            counters[j] += scratch[j] as f64;
            scratch[j] = 0;
        }
    }

    /// 4 counters per step, AVX2.
    ///
    /// # Safety
    ///
    /// The CPU must support `avx2` (callers check via `is_x86_feature_detected!`),
    /// and `counters` and `scratch` must have equal lengths.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn drain_avx2(counters: &mut [f64], scratch: &mut [i32]) {
        debug_assert_eq!(counters.len(), scratch.len());
        let n = counters.len();
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: `i + 4 <= n` bounds every access; loads/stores are unaligned.
            unsafe {
                let s = _mm_loadu_si128(scratch.as_ptr().add(i) as *const __m128i);
                let c = _mm256_loadu_pd(counters.as_ptr().add(i));
                let sum = _mm256_add_pd(c, _mm256_cvtepi32_pd(s));
                _mm256_storeu_pd(counters.as_mut_ptr().add(i), sum);
                _mm_storeu_si128(
                    scratch.as_mut_ptr().add(i) as *mut __m128i,
                    _mm_setzero_si128(),
                );
            }
            i += 4;
        }
        for j in i..n {
            counters[j] += scratch[j] as f64;
            scratch[j] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic report stream (index, negative) pairs without an RNG dependency.
    fn pseudo_reports(n: usize, rows: usize, cols: usize, seed: u64) -> Vec<(usize, usize, bool)> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                // SplitMix64 step.
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^= z >> 31;
                (
                    (z as usize >> 8) % rows,
                    (z as usize >> 24) % cols,
                    z & 1 == 1,
                )
            })
            .collect()
    }

    fn reference_counters(reports: &[(usize, usize, bool)], rows: usize, cols: usize) -> Vec<f64> {
        let mut counters = vec![0.0; rows * cols];
        for &(r, c, neg) in reports {
            counters[r * cols + c] += if neg { -1.0 } else { 1.0 };
        }
        counters
    }

    #[test]
    fn rejects_unrepresentable_shapes() {
        assert!(ReportBatch::new(1 << 20, 1 << 20).is_err());
        assert!(ReportBatch::new(usize::MAX, 2).is_err());
        assert!(ReportBatch::new(1 << 10, 1 << 10).is_ok());
    }

    #[test]
    fn push_validates_and_leaves_batch_unchanged_on_error() {
        let mut batch = ReportBatch::new(4, 8).unwrap();
        batch.push(3, 7, false).unwrap();
        assert!(matches!(
            batch.push(4, 0, true),
            Err(Error::ReportOutOfRange { row: 4, .. })
        ));
        assert!(batch.push(0, 8, true).is_err());
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.plus_indices(), &[31]);
        assert!(batch.minus_indices().is_empty());
    }

    #[test]
    fn accumulate_matches_sequential_replay_bitwise() {
        // Spans the small-batch direct path and the scratch path, with remainders that
        // exercise the interleave tail.
        for (rows, cols, n) in [
            (3, 8, 2),
            (3, 8, 5),
            (18, 64, 400),
            (18, 64, 4099),
            (1, 1, 9),
        ] {
            let reports = pseudo_reports(n, rows, cols, 0xC0FFEE + n as u64);
            let mut batch = ReportBatch::new(rows, cols).unwrap();
            for &(r, c, neg) in &reports {
                batch.push(r, c, neg).unwrap();
            }
            assert_eq!(batch.len(), n);
            let mut counters = vec![0.0; rows * cols];
            batch.accumulate_into(&mut counters);
            let reference = reference_counters(&reports, rows, cols);
            for (i, (a, b)) in counters.iter().zip(reference.iter()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "counter {i} at shape {rows}x{cols}"
                );
            }
        }
    }

    #[test]
    fn sharded_accumulation_covers_every_report_exactly_once() {
        let (rows, cols, n) = (7, 32, 5000);
        let reports = pseudo_reports(n, rows, cols, 42);
        let mut batch = ReportBatch::new(rows, cols).unwrap();
        for &(r, c, neg) in &reports {
            batch.push(r, c, neg).unwrap();
        }
        let reference = reference_counters(&reports, rows, cols);
        for shards in [1usize, 2, 4, 7, 13] {
            let mut counters = vec![0.0; rows * cols];
            let mut scratch = Vec::new();
            let mut total = 0;
            for shard in 0..shards {
                total += batch.shard_len(shard, shards);
                batch.accumulate_shard_into_with(shard, shards, &mut counters, &mut scratch);
            }
            assert_eq!(total, n, "{shards} shards");
            for (a, b) in counters.iter().zip(reference.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{shards} shards");
            }
        }
    }

    #[test]
    fn scratch_is_left_zeroed_for_reuse() {
        let mut batch = ReportBatch::new(2, 16).unwrap();
        for i in 0..320 {
            batch.push(i % 2, i % 16, i % 3 == 0).unwrap();
        }
        let mut counters = vec![0.0; 32];
        let mut scratch = Vec::new();
        batch.accumulate_into_with(&mut counters, &mut scratch);
        assert_eq!(scratch.len(), 32);
        assert!(scratch.iter().all(|&s| s == 0));
        // Second use over the reused scratch doubles the counters exactly.
        let first = counters.clone();
        batch.accumulate_into_with(&mut counters, &mut scratch);
        for (a, b) in counters.iter().zip(first.iter()) {
            assert_eq!(a.to_bits(), (b * 2.0).to_bits());
        }
    }

    #[test]
    fn append_requires_matching_shape() {
        let mut a = ReportBatch::new(2, 8).unwrap();
        let mut b = ReportBatch::new(2, 8).unwrap();
        b.push(1, 3, true).unwrap();
        a.append(&b).unwrap();
        assert_eq!(a.len(), 1);
        let c = ReportBatch::new(2, 16).unwrap();
        assert!(a.append(&c).is_err());
        a.clear();
        assert!(a.is_empty());
        assert!(a.plus_indices().is_empty() && a.minus_indices().is_empty());
    }
}
