//! Process-wide SIMD kernel dispatch accounting.
//!
//! The FWHT restore ([`crate::hadamard`]) and histogram drain ([`crate::batch`]) kernels
//! pick the widest vector ISA the CPU offers at runtime. Which tier actually ran is
//! invisible from the outside — all tiers are bit-identical by contract — yet it is
//! exactly what an operator needs when a deployment's restore throughput regresses on new
//! hardware. This module keeps one process-wide relaxed atomic per `(kernel, tier)` pair;
//! the dispatchers bump them and [`kernel_dispatch_snapshot`] reads them.
//!
//! The counters are *environment* telemetry: their split across tiers is a property of
//! the machine, never of the workload seed, so the service exports them outside its
//! deterministic snapshot. Consumers that want per-component attribution (several
//! services in one process share these statics) subtract a baseline snapshot taken at
//! construction time via [`KernelDispatchSnapshot::delta_since`].

use std::sync::atomic::{AtomicU64, Ordering};

pub(crate) static FWHT_AVX512: AtomicU64 = AtomicU64::new(0);
pub(crate) static FWHT_AVX2: AtomicU64 = AtomicU64::new(0);
pub(crate) static FWHT_PORTABLE: AtomicU64 = AtomicU64::new(0);
pub(crate) static DRAIN_AVX512: AtomicU64 = AtomicU64::new(0);
pub(crate) static DRAIN_AVX2: AtomicU64 = AtomicU64::new(0);
pub(crate) static DRAIN_PORTABLE: AtomicU64 = AtomicU64::new(0);

#[inline]
pub(crate) fn bump(cell: &AtomicU64) {
    cell.fetch_add(1, Ordering::Relaxed);
}

/// Cumulative per-tier dispatch counts since process start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelDispatchSnapshot {
    /// FWHT restores executed by the AVX-512 kernel.
    pub fwht_avx512: u64,
    /// FWHT restores executed by the AVX2 kernel.
    pub fwht_avx2: u64,
    /// FWHT restores executed by the portable radix-2 kernel.
    pub fwht_portable: u64,
    /// Histogram drains executed by the AVX-512 kernel.
    pub drain_avx512: u64,
    /// Histogram drains executed by the AVX2 kernel.
    pub drain_avx2: u64,
    /// Histogram drains executed by the portable scalar loop.
    pub drain_portable: u64,
}

impl KernelDispatchSnapshot {
    /// Counts accumulated since `baseline` (saturating, so a stale baseline from another
    /// epoch of the process can never underflow).
    pub fn delta_since(&self, baseline: &KernelDispatchSnapshot) -> KernelDispatchSnapshot {
        KernelDispatchSnapshot {
            fwht_avx512: self.fwht_avx512.saturating_sub(baseline.fwht_avx512),
            fwht_avx2: self.fwht_avx2.saturating_sub(baseline.fwht_avx2),
            fwht_portable: self.fwht_portable.saturating_sub(baseline.fwht_portable),
            drain_avx512: self.drain_avx512.saturating_sub(baseline.drain_avx512),
            drain_avx2: self.drain_avx2.saturating_sub(baseline.drain_avx2),
            drain_portable: self.drain_portable.saturating_sub(baseline.drain_portable),
        }
    }

    /// `(series suffix, count)` pairs in a fixed order, for exporters.
    pub fn series(&self) -> [(&'static str, u64); 6] {
        [
            ("fwht_avx512", self.fwht_avx512),
            ("fwht_avx2", self.fwht_avx2),
            ("fwht_portable", self.fwht_portable),
            ("drain_avx512", self.drain_avx512),
            ("drain_avx2", self.drain_avx2),
            ("drain_portable", self.drain_portable),
        ]
    }
}

/// Read the process-wide dispatch counters.
pub fn kernel_dispatch_snapshot() -> KernelDispatchSnapshot {
    KernelDispatchSnapshot {
        fwht_avx512: FWHT_AVX512.load(Ordering::Relaxed),
        fwht_avx2: FWHT_AVX2.load(Ordering::Relaxed),
        fwht_portable: FWHT_PORTABLE.load(Ordering::Relaxed),
        drain_avx512: DRAIN_AVX512.load(Ordering::Relaxed),
        drain_avx2: DRAIN_AVX2.load(Ordering::Relaxed),
        drain_portable: DRAIN_PORTABLE.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fwht_dispatch_is_counted_on_exactly_one_tier() {
        let before = kernel_dispatch_snapshot();
        let mut data = vec![1.0f64; 64];
        crate::hadamard::fwht_in_place(&mut data);
        let delta = kernel_dispatch_snapshot().delta_since(&before);
        let fwht_total = delta.fwht_avx512 + delta.fwht_avx2 + delta.fwht_portable;
        // Parallel tests may add more, but at least this call must have landed once.
        assert!(fwht_total >= 1, "no FWHT tier counted: {delta:?}");
    }

    #[test]
    fn delta_since_saturates_instead_of_underflowing() {
        let big = KernelDispatchSnapshot {
            fwht_portable: 10,
            ..Default::default()
        };
        let small = KernelDispatchSnapshot::default();
        assert_eq!(small.delta_since(&big), KernelDispatchSnapshot::default());
        assert_eq!(big.delta_since(&small).fwht_portable, 10);
    }
}
