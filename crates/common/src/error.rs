//! Workspace-wide error type.
//!
//! The library is small enough that a single flat error enum keeps call sites simple while
//! still giving callers programmatic access to the failure reason.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the LDPJoinSketch workspace.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A privacy budget was not a positive, finite number.
    InvalidEpsilon(f64),
    /// A sketch parameter (`k` or `m`) was invalid; the message explains which one and why.
    InvalidSketchParameter(String),
    /// Two sketches that must share parameters (and hash seeds) to be combined did not.
    IncompatibleSketches(String),
    /// A dataset/workload parameter was invalid (empty table, zero domain, bad skew, …).
    InvalidWorkload(String),
    /// A client report referenced an index outside the sketch it was sent to.
    ReportOutOfRange {
        /// Row index carried by the report.
        row: usize,
        /// Column index carried by the report.
        col: usize,
        /// Number of rows of the receiving sketch.
        rows: usize,
        /// Number of columns of the receiving sketch.
        cols: usize,
    },
    /// An estimator was asked to run with an empty input where at least one element is required.
    EmptyInput(String),
    /// A sketch-service call referenced a join attribute that was never registered.
    UnknownAttribute(String),
    /// A sketch-service query asked for epoch windows the snapshot ring does not hold
    /// (nothing sealed yet, or the windows were evicted by the retention bound).
    WindowUnavailable(String),
    /// A query (or ingestion call) addressed an attribute whose estimator mode cannot
    /// serve it — e.g. a plus join-size query against a plain attribute, plain report
    /// ingestion into a plus attribute, or a kernel dispatched on the wrong input shape.
    /// Answering with the wrong kernel would silently produce a wrong estimate, so the
    /// mismatch is a first-class error instead.
    ModeMismatch(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidEpsilon(eps) => {
                write!(f, "privacy budget must be positive and finite, got {eps}")
            }
            Error::InvalidSketchParameter(msg) => write!(f, "invalid sketch parameter: {msg}"),
            Error::IncompatibleSketches(msg) => write!(f, "incompatible sketches: {msg}"),
            Error::InvalidWorkload(msg) => write!(f, "invalid workload: {msg}"),
            Error::ReportOutOfRange {
                row,
                col,
                rows,
                cols,
            } => write!(
                f,
                "client report targets counter ({row}, {col}) but the sketch is {rows}x{cols}"
            ),
            Error::EmptyInput(msg) => write!(f, "empty input: {msg}"),
            Error::UnknownAttribute(msg) => write!(f, "unknown join attribute: {msg}"),
            Error::WindowUnavailable(msg) => write!(f, "window unavailable: {msg}"),
            Error::ModeMismatch(msg) => write!(f, "estimator mode mismatch: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = Error::InvalidEpsilon(-1.0);
        assert!(e.to_string().contains("-1"));
        let e = Error::ReportOutOfRange {
            row: 3,
            col: 9,
            rows: 2,
            cols: 8,
        };
        assert!(e.to_string().contains("(3, 9)"));
        assert!(e.to_string().contains("2x8"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::InvalidEpsilon(0.0), Error::InvalidEpsilon(0.0));
        assert_ne!(
            Error::InvalidSketchParameter("k".into()),
            Error::InvalidSketchParameter("m".into())
        );
    }

    #[test]
    fn service_variants_are_human_readable() {
        let e = Error::UnknownAttribute("orders.user_id".into());
        assert!(e.to_string().contains("orders.user_id"));
        let e = Error::WindowUnavailable("no sealed windows".into());
        assert!(e.to_string().contains("no sealed windows"));
        let e = Error::ModeMismatch("plus query on plain attribute".into());
        assert!(e.to_string().contains("plus query on plain attribute"));
    }

    #[test]
    fn error_implements_std_error() {
        fn takes_error<E: std::error::Error>(_: E) {}
        takes_error(Error::EmptyInput("no reports".into()));
    }
}
