//! Walsh–Hadamard transform utilities.
//!
//! The Hadamard mechanism (Apple-HCMS, and Algorithm 1 of the paper) encodes a one-hot
//! vector `v` with `v[h_j(d)] = ξ_j(d)`, multiplies it by the Hadamard matrix `H_m`, and
//! samples a single coordinate of the result. Because `v` has a single non-zero entry the
//! client never materialises `H_m`: the sampled coordinate is simply
//! `w[l] = H_m[h_j(d), l] · ξ_j(d)` and an individual matrix entry is
//! `H_m[a, b] = (-1)^{popcount(a & b)}`.
//!
//! The server, on the other hand, must undo the transform on whole sketch rows
//! (`M ← M · H_mᵀ`, Algorithm 2 line 6). For that we provide an in-place
//! **fast Walsh–Hadamard transform** ([`fwht_in_place`]) which runs in `O(m log m)` per row
//! instead of the naive `O(m²)` matrix multiply (kept as [`hadamard_multiply_naive`] for
//! tests and the ablation bench).
//!
//! All routines require `m` to be a power of two, matching the recursive definition of `H_m`.

/// Returns `true` if `m` is a positive power of two (a valid Hadamard order).
#[inline]
pub fn is_valid_order(m: usize) -> bool {
    m > 0 && m.is_power_of_two()
}

/// Entry `H_m[row, col] ∈ {-1, +1}` of the (non-normalised) Hadamard matrix of order `m`.
///
/// Uses the Sylvester construction identity `H[r, c] = (-1)^{popcount(r & c)}`.
///
/// # Panics
/// Panics in debug builds if `row` or `col` is outside `[0, m)` or `m` is not a power of two.
#[inline]
pub fn hadamard_entry(m: usize, row: usize, col: usize) -> i64 {
    debug_assert!(
        is_valid_order(m),
        "Hadamard order must be a power of two, got {m}"
    );
    debug_assert!(
        row < m && col < m,
        "Hadamard index ({row},{col}) out of range for order {m}"
    );
    if ((row & col).count_ones() & 1) == 1 {
        -1
    } else {
        1
    }
}

/// Entry `H_m[row, col]` as an `f64`.
#[inline]
pub fn hadamard_entry_f64(m: usize, row: usize, col: usize) -> f64 {
    hadamard_entry(m, row, col) as f64
}

/// In-place fast Walsh–Hadamard transform of a length-`2^t` slice.
///
/// Computes `data ← data · H_m` (equivalently `H_m · data` since `H_m` is symmetric) without
/// normalisation, in `O(m log m)` time and `O(1)` extra space.
///
/// Internally the radix-2 butterfly levels are fused in pairs (radix-4 passes) and executed
/// by a runtime-dispatched kernel (AVX-512 / AVX2 / portable). Every output element is the
/// same association-ordered chain of IEEE-754 additions as the textbook level-by-level
/// radix-2 loop, so the result is **bit-identical** to it on every target.
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
pub fn fwht_in_place(data: &mut [f64]) {
    fwht_dispatch(data, None);
}

/// [`fwht_in_place`] with a de-bias post-scale folded into the final butterfly pass.
///
/// Equivalent to `fwht_in_place(data)` followed by `for v in data { *v *= scale }` — and
/// bit-identical to that two-pass form, because each output is multiplied by `scale`
/// exactly once *after* its last addition — but one sweep over the data cheaper. This is
/// the restore kernel used by the server-side sketch finalisation.
///
/// Scaling **after** the transform (not before) is load-bearing: sketch counters are exact
/// integers, so the unscaled transform stays exact and spectra of disjoint report sets add
/// and subtract with zero rounding error. The post-scale then touches each counter once,
/// which is what lets the service's incremental span ledger assemble a merged restore from
/// prefix-summed spectra bit-identically to restoring the merged counters.
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
pub fn fwht_scaled_in_place(data: &mut [f64], scale: f64) {
    fwht_dispatch(data, Some(scale));
}

/// Validate the order and route to the best available kernel.
fn fwht_dispatch(data: &mut [f64], scale: Option<f64>) {
    let n = data.len();
    assert!(
        is_valid_order(n),
        "FWHT length must be a power of two, got {n}"
    );
    #[cfg(target_arch = "x86_64")]
    {
        // The SIMD kernels run the same butterflies in the same per-element association
        // order as the portable one — vector shuffles only re-route which register lane an
        // operand sits in, never which operands meet or in what order — so all kernels are
        // bit-identical (pinned by `prop_fwht_bit_identical_*` against the radix-2
        // reference, which exercises whichever kernel this machine dispatches to).
        if n >= 32 && std::arch::is_x86_feature_detected!("avx512f") {
            #[allow(unsafe_code)]
            // SAFETY: the `is_x86_feature_detected!("avx512f")` guard above proves the
            // kernel's required CPU feature, and `n` was just validated as a power of two
            // and is ≥ 32 — exactly the kernel's documented contract.
            unsafe {
                simd::fwht_kernel_avx512(data, scale)
            };
            crate::dispatch::bump(&crate::dispatch::FWHT_AVX512);
            return;
        }
        if n >= 32 && std::arch::is_x86_feature_detected!("avx2") {
            #[allow(unsafe_code)]
            // SAFETY: the `is_x86_feature_detected!("avx2")` guard above proves the
            // kernel's required CPU feature, and `n` was just validated as a power of two
            // and is ≥ 32 — exactly the kernel's documented contract.
            unsafe {
                simd::fwht_kernel_avx2(data, scale)
            };
            crate::dispatch::bump(&crate::dispatch::FWHT_AVX2);
            return;
        }
    }
    crate::dispatch::bump(&crate::dispatch::FWHT_PORTABLE);
    fwht_kernel(data, scale);
}

/// Explicit-SIMD FWHT kernels (x86-64).
///
/// The autovectorizer handles the strided passes at `h ≥ vector width` but scalarizes (or
/// worse, gather/scatters) the in-chunk head pass, which dominates the restore profile —
/// so the two hot passes are written directly against the vector ISA. Each SIMD butterfly
/// performs exactly the adds and subtracts of the scalar kernel, on the same operands, in
/// the same association order; shuffles and blends move data between lanes but never
/// change the arithmetic, so the results are bit-identical to the portable kernel (and to
/// the textbook radix-2 loop), as the property tests pin.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod simd {
    use super::radix8_oct_pass;
    use std::arch::x86_64::*;

    /// Levels `1/2/4` on one 8-lane vector: per level, partner lane `i ^ X` is brought in
    /// by a shuffle, the sum lands in the lower partner and the difference in the upper
    /// (`v[i∧¬X] ± v[i∨X]`), selected by a blend mask — two arithmetic ops per level.
    ///
    /// # Safety
    /// The CPU must support `avx512f`. Callers are same-feature kernels, which the
    /// dispatcher only enters behind a runtime `is_x86_feature_detected!` check.
    #[target_feature(enable = "avx512f")]
    #[inline]
    unsafe fn inlane512(v: __m512d) -> __m512d {
        // X = 1: swap adjacent pair within each 128-bit lane.
        let sh = _mm512_permute_pd::<0x55>(v);
        let v = _mm512_mask_blend_pd(0xAA, _mm512_add_pd(v, sh), _mm512_sub_pd(sh, v));
        // X = 2: swap 128-bit blocks within each 256-bit half.
        let sh = _mm512_shuffle_f64x2::<0xB1>(v, v);
        let v = _mm512_mask_blend_pd(0xCC, _mm512_add_pd(v, sh), _mm512_sub_pd(sh, v));
        // X = 4: swap 256-bit halves.
        let sh = _mm512_shuffle_f64x2::<0x4E>(v, v);
        _mm512_mask_blend_pd(0xF0, _mm512_add_pd(v, sh), _mm512_sub_pd(sh, v))
    }

    /// Radix-16 head pass (levels 1/2/4/8) over contiguous 16-element chunks.
    ///
    /// # Safety
    /// The CPU must support `avx512f` (guaranteed by the dispatcher's runtime check);
    /// `data.len()` must be a multiple of 16 (the plan only routes here for n ≥ 32 powers
    /// of two).
    #[target_feature(enable = "avx512f")]
    unsafe fn hex_pass_avx512<const SCALED: bool>(data: &mut [f64], s: f64) {
        debug_assert_eq!(data.len() % 16, 0);
        let sv = _mm512_set1_pd(s);
        for hex in data.chunks_exact_mut(16) {
            let p = hex.as_mut_ptr();
            // SAFETY: `hex` is exactly 16 f64s, so the unaligned loads/stores at offsets
            // 0 and 8 stay in bounds; `inlane512` shares this kernel's CPU feature.
            unsafe {
                let a = inlane512(_mm512_loadu_pd(p));
                let b = inlane512(_mm512_loadu_pd(p.add(8)));
                let (mut lo, mut hi) = (_mm512_add_pd(a, b), _mm512_sub_pd(a, b));
                if SCALED {
                    lo = _mm512_mul_pd(lo, sv);
                    hi = _mm512_mul_pd(hi, sv);
                }
                _mm512_storeu_pd(p, lo);
                _mm512_storeu_pd(p.add(8), hi);
            }
        }
    }

    /// Strided radix-8 pass (levels `h/2h/4h`, `h` a multiple of 8): eight unit-stride
    /// streams, pure vertical adds/subs — no shuffles at all.
    ///
    /// # Safety
    /// The CPU must support `avx512f` (guaranteed by the dispatcher's runtime check);
    /// `h` must be a multiple of 8 and `data.len()` a multiple of `8h`.
    #[target_feature(enable = "avx512f")]
    unsafe fn radix8_pass_avx512<const SCALED: bool>(data: &mut [f64], h: usize, s: f64) {
        debug_assert_eq!(h % 8, 0);
        debug_assert_eq!(data.len() % (8 * h), 0);
        let sv = _mm512_set1_pd(s);
        for block in data.chunks_exact_mut(8 * h) {
            let p = block.as_mut_ptr();
            for i in (0..h).step_by(8) {
                // SAFETY: `i + 7 ≤ h − 1` (the loop bound, `h` a multiple of 8), so every
                // 8-lane access at offset `i + q·h`, q < 8, ends at or before `8h − 1` —
                // inside the 8h-element block.
                unsafe {
                    let x0 = _mm512_loadu_pd(p.add(i));
                    let x1 = _mm512_loadu_pd(p.add(i + h));
                    let x2 = _mm512_loadu_pd(p.add(i + 2 * h));
                    let x3 = _mm512_loadu_pd(p.add(i + 3 * h));
                    let x4 = _mm512_loadu_pd(p.add(i + 4 * h));
                    let x5 = _mm512_loadu_pd(p.add(i + 5 * h));
                    let x6 = _mm512_loadu_pd(p.add(i + 6 * h));
                    let x7 = _mm512_loadu_pd(p.add(i + 7 * h));
                    let (y0, y1) = (_mm512_add_pd(x0, x1), _mm512_sub_pd(x0, x1));
                    let (y2, y3) = (_mm512_add_pd(x2, x3), _mm512_sub_pd(x2, x3));
                    let (y4, y5) = (_mm512_add_pd(x4, x5), _mm512_sub_pd(x4, x5));
                    let (y6, y7) = (_mm512_add_pd(x6, x7), _mm512_sub_pd(x6, x7));
                    let (z0, z2) = (_mm512_add_pd(y0, y2), _mm512_sub_pd(y0, y2));
                    let (z1, z3) = (_mm512_add_pd(y1, y3), _mm512_sub_pd(y1, y3));
                    let (z4, z6) = (_mm512_add_pd(y4, y6), _mm512_sub_pd(y4, y6));
                    let (z5, z7) = (_mm512_add_pd(y5, y7), _mm512_sub_pd(y5, y7));
                    let mut w = [
                        _mm512_add_pd(z0, z4),
                        _mm512_add_pd(z1, z5),
                        _mm512_add_pd(z2, z6),
                        _mm512_add_pd(z3, z7),
                        _mm512_sub_pd(z0, z4),
                        _mm512_sub_pd(z1, z5),
                        _mm512_sub_pd(z2, z6),
                        _mm512_sub_pd(z3, z7),
                    ];
                    for (q, w) in w.iter_mut().enumerate() {
                        if SCALED {
                            *w = _mm512_mul_pd(*w, sv);
                        }
                        _mm512_storeu_pd(p.add(i + q * h), *w);
                    }
                }
            }
        }
    }

    /// Strided radix-4 pass (levels `h/2h`, `h` a multiple of 8), vertical like radix-8.
    ///
    /// # Safety
    /// The CPU must support `avx512f` (guaranteed by the dispatcher's runtime check);
    /// `h` must be a multiple of 8 and `data.len()` a multiple of `4h`.
    #[target_feature(enable = "avx512f")]
    unsafe fn radix4_pass_avx512<const SCALED: bool>(data: &mut [f64], h: usize, s: f64) {
        debug_assert_eq!(h % 8, 0);
        debug_assert_eq!(data.len() % (4 * h), 0);
        let sv = _mm512_set1_pd(s);
        for block in data.chunks_exact_mut(4 * h) {
            let p = block.as_mut_ptr();
            for i in (0..h).step_by(8) {
                // SAFETY: `i + 7 ≤ h − 1` (the loop bound, `h` a multiple of 8), so every
                // 8-lane access at offset `i + q·h`, q < 4, ends at or before `4h − 1` —
                // inside the 4h-element block.
                unsafe {
                    let x0 = _mm512_loadu_pd(p.add(i));
                    let x1 = _mm512_loadu_pd(p.add(i + h));
                    let x2 = _mm512_loadu_pd(p.add(i + 2 * h));
                    let x3 = _mm512_loadu_pd(p.add(i + 3 * h));
                    let (u, v) = (_mm512_add_pd(x0, x1), _mm512_sub_pd(x0, x1));
                    let (w, t) = (_mm512_add_pd(x2, x3), _mm512_sub_pd(x2, x3));
                    let mut o = [
                        _mm512_add_pd(u, w),
                        _mm512_add_pd(v, t),
                        _mm512_sub_pd(u, w),
                        _mm512_sub_pd(v, t),
                    ];
                    for (q, o) in o.iter_mut().enumerate() {
                        if SCALED {
                            *o = _mm512_mul_pd(*o, sv);
                        }
                        _mm512_storeu_pd(p.add(i + q * h), *o);
                    }
                }
            }
        }
    }

    /// Levels `1/2` on one 4-lane vector (level 4 crosses 256-bit vectors and is done
    /// vertically by the caller).
    ///
    /// # Safety
    /// The CPU must support `avx2`. Callers are same-feature kernels, which the
    /// dispatcher only enters behind a runtime `is_x86_feature_detected!` check.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn inlane256(v: __m256d) -> __m256d {
        // X = 1: swap adjacent pair within each 128-bit lane.
        let sh = _mm256_permute_pd::<0x5>(v);
        let v = _mm256_blend_pd::<0xA>(_mm256_add_pd(v, sh), _mm256_sub_pd(sh, v));
        // X = 2: swap 128-bit halves.
        let sh = _mm256_permute2f128_pd::<0x01>(v, v);
        _mm256_blend_pd::<0xC>(_mm256_add_pd(v, sh), _mm256_sub_pd(sh, v))
    }

    /// Radix-16 head pass (levels 1/2/4/8) over contiguous 16-element chunks, AVX2.
    ///
    /// # Safety
    /// The CPU must support `avx2` (guaranteed by the dispatcher's runtime check);
    /// `data.len()` must be a multiple of 16 (the plan only routes here for n ≥ 32 powers
    /// of two).
    #[target_feature(enable = "avx2")]
    unsafe fn hex_pass_avx2<const SCALED: bool>(data: &mut [f64], s: f64) {
        debug_assert_eq!(data.len() % 16, 0);
        let sv = _mm256_set1_pd(s);
        for hex in data.chunks_exact_mut(16) {
            let p = hex.as_mut_ptr();
            // SAFETY: `hex` is exactly 16 f64s, so the unaligned loads/stores at offsets
            // 0/4/8/12 stay in bounds; `inlane256` shares this kernel's CPU feature.
            unsafe {
                let a0 = inlane256(_mm256_loadu_pd(p));
                let a1 = inlane256(_mm256_loadu_pd(p.add(4)));
                let b0 = inlane256(_mm256_loadu_pd(p.add(8)));
                let b1 = inlane256(_mm256_loadu_pd(p.add(12)));
                // Level 4: vertical between the halves of each octet.
                let (a0, a1) = (_mm256_add_pd(a0, a1), _mm256_sub_pd(a0, a1));
                let (b0, b1) = (_mm256_add_pd(b0, b1), _mm256_sub_pd(b0, b1));
                // Level 8: vertical between the octets.
                let mut o = [
                    _mm256_add_pd(a0, b0),
                    _mm256_add_pd(a1, b1),
                    _mm256_sub_pd(a0, b0),
                    _mm256_sub_pd(a1, b1),
                ];
                for (q, o) in o.iter_mut().enumerate() {
                    if SCALED {
                        *o = _mm256_mul_pd(*o, sv);
                    }
                    _mm256_storeu_pd(p.add(4 * q), *o);
                }
            }
        }
    }

    /// Strided radix-8 pass, AVX2 (4-lane steps; `h` is a multiple of 8 ≥ 8).
    ///
    /// # Safety
    /// The CPU must support `avx2` (guaranteed by the dispatcher's runtime check);
    /// `h` must be a multiple of 4 and `data.len()` a multiple of `8h`.
    #[target_feature(enable = "avx2")]
    unsafe fn radix8_pass_avx2<const SCALED: bool>(data: &mut [f64], h: usize, s: f64) {
        debug_assert_eq!(h % 4, 0);
        debug_assert_eq!(data.len() % (8 * h), 0);
        let sv = _mm256_set1_pd(s);
        for block in data.chunks_exact_mut(8 * h) {
            let p = block.as_mut_ptr();
            for i in (0..h).step_by(4) {
                // SAFETY: `i + 3 ≤ h − 1` (the loop bound, `h` a multiple of 4), so every
                // 4-lane access at offset `i + q·h`, q < 8, ends at or before `8h − 1` —
                // inside the 8h-element block.
                unsafe {
                    let x0 = _mm256_loadu_pd(p.add(i));
                    let x1 = _mm256_loadu_pd(p.add(i + h));
                    let x2 = _mm256_loadu_pd(p.add(i + 2 * h));
                    let x3 = _mm256_loadu_pd(p.add(i + 3 * h));
                    let x4 = _mm256_loadu_pd(p.add(i + 4 * h));
                    let x5 = _mm256_loadu_pd(p.add(i + 5 * h));
                    let x6 = _mm256_loadu_pd(p.add(i + 6 * h));
                    let x7 = _mm256_loadu_pd(p.add(i + 7 * h));
                    let (y0, y1) = (_mm256_add_pd(x0, x1), _mm256_sub_pd(x0, x1));
                    let (y2, y3) = (_mm256_add_pd(x2, x3), _mm256_sub_pd(x2, x3));
                    let (y4, y5) = (_mm256_add_pd(x4, x5), _mm256_sub_pd(x4, x5));
                    let (y6, y7) = (_mm256_add_pd(x6, x7), _mm256_sub_pd(x6, x7));
                    let (z0, z2) = (_mm256_add_pd(y0, y2), _mm256_sub_pd(y0, y2));
                    let (z1, z3) = (_mm256_add_pd(y1, y3), _mm256_sub_pd(y1, y3));
                    let (z4, z6) = (_mm256_add_pd(y4, y6), _mm256_sub_pd(y4, y6));
                    let (z5, z7) = (_mm256_add_pd(y5, y7), _mm256_sub_pd(y5, y7));
                    let mut w = [
                        _mm256_add_pd(z0, z4),
                        _mm256_add_pd(z1, z5),
                        _mm256_add_pd(z2, z6),
                        _mm256_add_pd(z3, z7),
                        _mm256_sub_pd(z0, z4),
                        _mm256_sub_pd(z1, z5),
                        _mm256_sub_pd(z2, z6),
                        _mm256_sub_pd(z3, z7),
                    ];
                    for (q, w) in w.iter_mut().enumerate() {
                        if SCALED {
                            *w = _mm256_mul_pd(*w, sv);
                        }
                        _mm256_storeu_pd(p.add(i + q * h), *w);
                    }
                }
            }
        }
    }

    /// Strided radix-4 pass, AVX2.
    ///
    /// # Safety
    /// The CPU must support `avx2` (guaranteed by the dispatcher's runtime check);
    /// `h` must be a multiple of 4 and `data.len()` a multiple of `4h`.
    #[target_feature(enable = "avx2")]
    unsafe fn radix4_pass_avx2<const SCALED: bool>(data: &mut [f64], h: usize, s: f64) {
        debug_assert_eq!(h % 4, 0);
        debug_assert_eq!(data.len() % (4 * h), 0);
        let sv = _mm256_set1_pd(s);
        for block in data.chunks_exact_mut(4 * h) {
            let p = block.as_mut_ptr();
            for i in (0..h).step_by(4) {
                // SAFETY: `i + 3 ≤ h − 1` (the loop bound, `h` a multiple of 4), so every
                // 4-lane access at offset `i + q·h`, q < 4, ends at or before `4h − 1` —
                // inside the 4h-element block.
                unsafe {
                    let x0 = _mm256_loadu_pd(p.add(i));
                    let x1 = _mm256_loadu_pd(p.add(i + h));
                    let x2 = _mm256_loadu_pd(p.add(i + 2 * h));
                    let x3 = _mm256_loadu_pd(p.add(i + 3 * h));
                    let (u, v) = (_mm256_add_pd(x0, x1), _mm256_sub_pd(x0, x1));
                    let (w, t) = (_mm256_add_pd(x2, x3), _mm256_sub_pd(x2, x3));
                    let mut o = [
                        _mm256_add_pd(u, w),
                        _mm256_add_pd(v, t),
                        _mm256_sub_pd(u, w),
                        _mm256_sub_pd(v, t),
                    ];
                    for (q, o) in o.iter_mut().enumerate() {
                        if SCALED {
                            *o = _mm256_mul_pd(*o, sv);
                        }
                        _mm256_storeu_pd(p.add(i + q * h), *o);
                    }
                }
            }
        }
    }

    /// The shared pass plan (head + greedy radix-8/radix-4 tail, scale folded into the
    /// final pass), expanded into the body of each explicitly-declared per-ISA kernel —
    /// every pass call is a direct same-feature call, and the kernel declarations stay
    /// visible to `ldpjs-xtask lint`'s `#[target_feature]` dispatch registry (an earlier
    /// form of this macro generated the whole `fn`, hiding it from line-level tooling).
    macro_rules! simd_plan {
        ($data:ident, $scale:ident, $hex:ident, $r8:ident, $r4:ident) => {{
            let n = $data.len();
            debug_assert!(n.is_power_of_two() && n >= 32);
            let s = $scale.unwrap_or(1.0);
            let levels = n.trailing_zeros();
            let mut h;
            let mut remaining;
            if levels == 5 {
                // n == 32: radix-8 head so the tail level count is 2, not 1.
                radix8_oct_pass::<false>($data, 1.0);
                h = 8;
                remaining = 2;
            } else {
                // SAFETY: the head pass shares this kernel's CPU feature, and `n` is a
                // power of two ≥ 64 here, hence a multiple of 16.
                unsafe { $hex::<false>($data, 1.0) };
                h = 16;
                remaining = levels - 4;
            }
            while remaining > 0 {
                if remaining == 3 || remaining > 4 {
                    if $scale.is_some() && remaining == 3 {
                        // SAFETY: same CPU feature as this kernel; `h` is a multiple of 8
                        // and `n = h · 2^remaining` is a multiple of 8h.
                        unsafe { $r8::<true>($data, h, s) };
                    } else {
                        // SAFETY: same CPU feature as this kernel; `h` is a multiple of 8
                        // and `n = h · 2^remaining` is a multiple of 8h.
                        unsafe { $r8::<false>($data, h, 1.0) };
                    }
                    h *= 8;
                    remaining -= 3;
                } else {
                    if $scale.is_some() && remaining == 2 {
                        // SAFETY: same CPU feature as this kernel; `h` is a multiple of 8
                        // and `n = h · 2^remaining` is a multiple of 4h.
                        unsafe { $r4::<true>($data, h, s) };
                    } else {
                        // SAFETY: same CPU feature as this kernel; `h` is a multiple of 8
                        // and `n = h · 2^remaining` is a multiple of 4h.
                        unsafe { $r4::<false>($data, h, 1.0) };
                    }
                    h *= 4;
                    remaining -= 2;
                }
            }
            debug_assert_eq!(h, n);
        }};
    }

    /// Runtime-dispatched AVX-512 FWHT kernel: radix-16 head + strided radix-8/4 tail.
    ///
    /// # Safety
    /// The caller must prove `avx512f` is available (an `is_x86_feature_detected!`
    /// runtime check) and pass a `data` whose length is a power of two ≥ 32.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn fwht_kernel_avx512(data: &mut [f64], scale: Option<f64>) {
        simd_plan!(
            data,
            scale,
            hex_pass_avx512,
            radix8_pass_avx512,
            radix4_pass_avx512
        );
    }

    /// Runtime-dispatched AVX2 FWHT kernel: radix-16 head + strided radix-8/4 tail.
    ///
    /// # Safety
    /// The caller must prove `avx2` is available (an `is_x86_feature_detected!` runtime
    /// check) and pass a `data` whose length is a power of two ≥ 32.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn fwht_kernel_avx2(data: &mut [f64], scale: Option<f64>) {
        simd_plan!(
            data,
            scale,
            hex_pass_avx2,
            radix8_pass_avx2,
            radix4_pass_avx2
        );
    }
}

/// One radix-4 pass at stride `h` over contiguous quads (`h == 1`), optionally scaling the
/// outputs (used only when this is the transform's final pass).
#[inline(always)]
fn radix4_quad_pass<const SCALED: bool>(data: &mut [f64], s: f64) {
    for quad in data.chunks_exact_mut(4) {
        let (a, b, c, e) = (quad[0], quad[1], quad[2], quad[3]);
        let u = a + b;
        let v = a - b;
        let w = c + e;
        let t = c - e;
        if SCALED {
            quad[0] = (u + w) * s;
            quad[1] = (v + t) * s;
            quad[2] = (u - w) * s;
            quad[3] = (v - t) * s;
        } else {
            quad[0] = u + w;
            quad[1] = v + t;
            quad[2] = u - w;
            quad[3] = v - t;
        }
    }
}

/// One radix-4 pass at stride `h > 1`, optionally scaling the outputs (final pass only).
#[inline(always)]
fn radix4_pass<const SCALED: bool>(data: &mut [f64], h: usize, s: f64) {
    for block in data.chunks_exact_mut(4 * h) {
        let (q0, rest) = block.split_at_mut(h);
        let (q1, rest) = rest.split_at_mut(h);
        let (q2, q3) = rest.split_at_mut(h);
        for (((x0, x1), x2), x3) in q0.iter_mut().zip(q1).zip(q2).zip(q3) {
            let (a, b, c, e) = (*x0, *x1, *x2, *x3);
            let u = a + b;
            let v = a - b;
            let w = c + e;
            let t = c - e;
            if SCALED {
                *x0 = (u + w) * s;
                *x1 = (v + t) * s;
                *x2 = (u - w) * s;
                *x3 = (v - t) * s;
            } else {
                *x0 = u + w;
                *x1 = v + t;
                *x2 = u - w;
                *x3 = v - t;
            }
        }
    }
}

/// The radix-8 butterfly: three fused radix-2 levels (`h`, `2h`, `4h`) on the eight values
/// at strides `0..8h`, in exactly the association order the three separate levels produce.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn butterfly8(x0: f64, x1: f64, x2: f64, x3: f64, x4: f64, x5: f64, x6: f64, x7: f64) -> [f64; 8] {
    // Level h: pairs (0,1) (2,3) (4,5) (6,7).
    let (y0, y1) = (x0 + x1, x0 - x1);
    let (y2, y3) = (x2 + x3, x2 - x3);
    let (y4, y5) = (x4 + x5, x4 - x5);
    let (y6, y7) = (x6 + x7, x6 - x7);
    // Level 2h: pairs (0,2) (1,3) (4,6) (5,7).
    let (z0, z2) = (y0 + y2, y0 - y2);
    let (z1, z3) = (y1 + y3, y1 - y3);
    let (z4, z6) = (y4 + y6, y4 - y6);
    let (z5, z7) = (y5 + y7, y5 - y7);
    // Level 4h: pairs (0,4) (1,5) (2,6) (3,7).
    [
        z0 + z4,
        z1 + z5,
        z2 + z6,
        z3 + z7,
        z0 - z4,
        z1 - z5,
        z2 - z6,
        z3 - z7,
    ]
}

/// One radix-8 pass at stride `h == 1` over contiguous octets, optionally scaling the
/// outputs (used only when this is the transform's final pass, i.e. `n == 8`).
#[inline(always)]
fn radix8_oct_pass<const SCALED: bool>(data: &mut [f64], s: f64) {
    for oct in data.chunks_exact_mut(8) {
        let w = butterfly8(
            oct[0], oct[1], oct[2], oct[3], oct[4], oct[5], oct[6], oct[7],
        );
        for (o, w) in oct.iter_mut().zip(w) {
            *o = if SCALED { w * s } else { w };
        }
    }
}

/// One in-lane radix-2 level on a vector of eight values: partner is `v[i ^ X]`, the lower
/// partner takes the sum, the upper one the difference — written as whole-vector shuffle /
/// add / sub / blend so the SLP vectorizer maps it to two vector ops and two shuffles
/// instead of eight scalar chains. Every output is the single add or sub (same operands,
/// same operand order) the textbook level performs, so this stays bit-identical.
#[inline(always)]
fn inlane_level<const X: usize>(v: [f64; 8]) -> [f64; 8] {
    let sh: [f64; 8] = std::array::from_fn(|i| v[i ^ X]);
    let p: [f64; 8] = std::array::from_fn(|i| v[i] + sh[i]);
    let q: [f64; 8] = std::array::from_fn(|i| sh[i] - v[i]);
    std::array::from_fn(|i| if i & X == 0 { p[i] } else { q[i] })
}

/// One radix-16 pass at stride `h == 1` over contiguous 16-element chunks: the four lowest
/// levels (`1`, `2`, `4`, `8`) fused into a single head sweep, optionally scaling the
/// outputs (used as the final pass only when `n == 16`).
///
/// Levels `1/2/4` are in-lane shuffle butterflies on each eight-element half
/// ([`inlane_level`]); level `8` pairs the halves vertically. Everything stays in
/// registers — no strided traffic for the low levels at all, which is what the strided
/// passes are worst at (sub-vector strides force scalar shuffles).
#[inline(always)]
fn radix16_hex_pass<const SCALED: bool>(data: &mut [f64], s: f64) {
    for hex in data.chunks_exact_mut(16) {
        let mut a: [f64; 8] = std::array::from_fn(|i| hex[i]);
        let mut b: [f64; 8] = std::array::from_fn(|i| hex[i + 8]);
        a = inlane_level::<4>(inlane_level::<2>(inlane_level::<1>(a)));
        b = inlane_level::<4>(inlane_level::<2>(inlane_level::<1>(b)));
        for i in 0..8 {
            let (p, q) = (a[i] + b[i], a[i] - b[i]);
            if SCALED {
                hex[i] = p * s;
                hex[i + 8] = q * s;
            } else {
                hex[i] = p;
                hex[i + 8] = q;
            }
        }
    }
}

/// One radix-8 pass at stride `h > 1`, optionally scaling the outputs (final pass only).
///
/// Eight parallel input/output streams at stride `h`: every lane `i` is an independent
/// butterfly, so the loop vectorizes vertically with no shuffles once `h` reaches the
/// vector width.
#[inline(always)]
fn radix8_pass<const SCALED: bool>(data: &mut [f64], h: usize, s: f64) {
    for block in data.chunks_exact_mut(8 * h) {
        let (q0, rest) = block.split_at_mut(h);
        let (q1, rest) = rest.split_at_mut(h);
        let (q2, rest) = rest.split_at_mut(h);
        let (q3, rest) = rest.split_at_mut(h);
        let (q4, rest) = rest.split_at_mut(h);
        let (q5, rest) = rest.split_at_mut(h);
        let (q6, q7) = rest.split_at_mut(h);
        for i in 0..h {
            let w = butterfly8(q0[i], q1[i], q2[i], q3[i], q4[i], q5[i], q6[i], q7[i]);
            if SCALED {
                q0[i] = w[0] * s;
                q1[i] = w[1] * s;
                q2[i] = w[2] * s;
                q3[i] = w[3] * s;
                q4[i] = w[4] * s;
                q5[i] = w[5] * s;
                q6[i] = w[6] * s;
                q7[i] = w[7] * s;
            } else {
                q0[i] = w[0];
                q1[i] = w[1];
                q2[i] = w[2];
                q3[i] = w[3];
                q4[i] = w[4];
                q5[i] = w[5];
                q6[i] = w[6];
                q7[i] = w[7];
            }
        }
    }
}

/// The fused-radix FWHT body shared by every dispatch target.
///
/// Three radix-2 levels (`h`, `2h`, `4h`) of the textbook loop are fused into one radix-8
/// pass whose butterfly performs each output's additions in exactly the association order
/// the three separate levels produce — so fusion is bit-identical while cutting the number
/// of load/store sweeps over the row from `log2(n)` to `⌈log2(n)/3⌉`. A single radix-2 or
/// radix-4 head pass first reduces the level count to a multiple of three. The optional
/// `scale` multiplies each output exactly once inside the *final* pass, after its last
/// addition — so the unscaled intermediate arithmetic stays exact on integer inputs.
#[inline(always)]
fn fwht_kernel(data: &mut [f64], scale: Option<f64>) {
    let n = data.len();
    let s = scale.unwrap_or(1.0);
    match n {
        1 => {
            if scale.is_some() {
                data[0] *= s;
            }
            return;
        }
        2 => {
            let (a, b) = (data[0], data[1]);
            if scale.is_some() {
                data[0] = (a + b) * s;
                data[1] = (a - b) * s;
            } else {
                data[0] = a + b;
                data[1] = a - b;
            }
            return;
        }
        4 => {
            if scale.is_some() {
                radix4_quad_pass::<true>(data, s);
            } else {
                radix4_quad_pass::<false>(data, 1.0);
            }
            return;
        }
        8 => {
            if scale.is_some() {
                radix8_oct_pass::<true>(data, s);
            } else {
                radix8_oct_pass::<false>(data, 1.0);
            }
            return;
        }
        16 => {
            if scale.is_some() {
                radix16_hex_pass::<true>(data, s);
            } else {
                radix16_hex_pass::<false>(data, 1.0);
            }
            return;
        }
        _ => {}
    }
    // Head pass (n ≥ 32): eat the low levels in one contiguous in-register sweep — the
    // radix-16 head covers levels 1/2/4/8, so every strided tail pass runs at `h ≥ 16`,
    // wide enough to vectorize vertically. `n == 32` takes the radix-8 head instead so the
    // tail level count is never 1 (strided passes come in radix-4/radix-8 only).
    let levels = n.trailing_zeros();
    let mut h;
    let mut remaining;
    if levels == 5 {
        radix8_oct_pass::<false>(data, 1.0);
        h = 8;
        remaining = 2;
    } else {
        radix16_hex_pass::<false>(data, 1.0);
        h = 16;
        remaining = levels - 4;
    }
    // Tail: strided radix-8 (3 levels) passes, greedily, switching to radix-4 (2 levels)
    // so the remainder lands on zero; the final pass absorbs the post-scale.
    while remaining > 0 {
        if remaining == 3 || remaining > 4 {
            if scale.is_some() && remaining == 3 {
                radix8_pass::<true>(data, h, s);
            } else {
                radix8_pass::<false>(data, h, 1.0);
            }
            h *= 8;
            remaining -= 3;
        } else {
            if scale.is_some() && remaining == 2 {
                radix4_pass::<true>(data, h, s);
            } else {
                radix4_pass::<false>(data, h, 1.0);
            }
            h *= 4;
            remaining -= 2;
        }
    }
    debug_assert_eq!(h, n);
}

/// The textbook level-by-level radix-2 FWHT, kept verbatim as the bit-identity reference
/// for the fused kernels (tests only).
#[cfg(test)]
fn fwht_radix2_reference(data: &mut [f64]) {
    let n = data.len();
    assert!(
        is_valid_order(n),
        "FWHT length must be a power of two, got {n}"
    );
    let mut h = 1;
    while h < n {
        let mut i = 0;
        while i < n {
            for j in i..i + h {
                let x = data[j];
                let y = data[j + h];
                data[j] = x + y;
                data[j + h] = x - y;
            }
            i += h * 2;
        }
        h *= 2;
    }
}

/// Naive `O(m²)` multiplication `out[c] = Σ_r data[r]·H_m[r, c]`.
///
/// Exists only as the reference implementation for tests and the FWHT ablation benchmark.
pub fn hadamard_multiply_naive(data: &[f64]) -> Vec<f64> {
    let m = data.len();
    assert!(
        is_valid_order(m),
        "Hadamard order must be a power of two, got {m}"
    );
    let mut out = vec![0.0; m];
    for (c, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (r, &v) in data.iter().enumerate() {
            acc += v * hadamard_entry_f64(m, r, c);
        }
        *o = acc;
    }
    out
}

/// Applies the inverse Hadamard transform in place: `data ← data · H_m / m`.
///
/// Because `H_m · H_m = m · I`, the inverse is the forward transform followed by a division
/// by `m`. Provided for symmetry; the server-side sketch restore uses the un-normalised
/// [`fwht_in_place`] because the paper's de-bias constants already account for scaling.
pub fn fwht_inverse_in_place(data: &mut [f64]) {
    let m = data.len() as f64;
    fwht_in_place(data);
    for v in data.iter_mut() {
        *v /= m;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn order_validation() {
        assert!(is_valid_order(1));
        assert!(is_valid_order(2));
        assert!(is_valid_order(1024));
        assert!(!is_valid_order(0));
        assert!(!is_valid_order(3));
        assert!(!is_valid_order(1000));
    }

    #[test]
    fn h1_and_h2_match_definition() {
        assert_eq!(hadamard_entry(1, 0, 0), 1);
        // H_2 = [[1, 1], [1, -1]]
        assert_eq!(hadamard_entry(2, 0, 0), 1);
        assert_eq!(hadamard_entry(2, 0, 1), 1);
        assert_eq!(hadamard_entry(2, 1, 0), 1);
        assert_eq!(hadamard_entry(2, 1, 1), -1);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn h4_matches_recursive_definition() {
        // H_4 from the paper's Example 1.
        let expected = [[1, 1, 1, 1], [1, -1, 1, -1], [1, 1, -1, -1], [1, -1, -1, 1]];
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(hadamard_entry(4, r, c), expected[r][c], "H_4[{r},{c}]");
            }
        }
    }

    #[test]
    fn rows_are_orthogonal() {
        let m = 32;
        for r1 in 0..m {
            for r2 in 0..m {
                let dot: i64 = (0..m)
                    .map(|c| hadamard_entry(m, r1, c) * hadamard_entry(m, r2, c))
                    .sum();
                if r1 == r2 {
                    assert_eq!(dot, m as i64);
                } else {
                    assert_eq!(dot, 0);
                }
            }
        }
    }

    #[test]
    fn fwht_matches_naive_on_one_hot() {
        let m = 16;
        for pos in 0..m {
            let mut v = vec![0.0; m];
            v[pos] = 1.0;
            let naive = hadamard_multiply_naive(&v);
            fwht_in_place(&mut v);
            for c in 0..m {
                assert_close(v[c], naive[c]);
                assert_close(v[c], hadamard_entry_f64(m, pos, c));
            }
        }
    }

    #[test]
    fn fwht_is_involution_up_to_scale() {
        let m = 64;
        let original: Vec<f64> = (0..m).map(|i| (i as f64).sin()).collect();
        let mut v = original.clone();
        fwht_in_place(&mut v);
        fwht_inverse_in_place(&mut v);
        for (a, b) in v.iter().zip(original.iter()) {
            assert_close(*a, *b);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fwht_rejects_non_power_of_two() {
        let mut v = vec![0.0; 6];
        fwht_in_place(&mut v);
    }

    /// Deterministic pseudo-random counter-like vector (small exact integers, as sketch
    /// counters are) mixed with irrational magnitudes to exercise rounding.
    fn seeded_vec(seed: u64, m: usize) -> Vec<f64> {
        (0..m)
            .map(|i| {
                let x = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add((i as u64).wrapping_mul(1442695040888963407));
                ((x >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect()
    }

    /// Every compiled kernel — portable, AVX2, AVX-512 — produces the same bits on the
    /// same input (the dispatcher's proptests only exercise the one kernel it picks).
    #[test]
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)]
    fn all_kernels_bit_identical() {
        for pow in 5u32..=13 {
            let m = 1usize << pow;
            for scale in [None, Some(18.0 * 1.3130352854993312)] {
                let data = seeded_vec(0xBEEF ^ pow as u64, m);
                let mut portable = data.clone();
                fwht_kernel(&mut portable, scale);
                if std::arch::is_x86_feature_detected!("avx2") {
                    let mut v = data.clone();
                    // SAFETY: guarded by the runtime feature check above.
                    unsafe { simd::fwht_kernel_avx2(&mut v, scale) };
                    for (a, b) in v.iter().zip(portable.iter()) {
                        assert_eq!(a.to_bits(), b.to_bits(), "avx2 vs portable, order {m}");
                    }
                }
                if std::arch::is_x86_feature_detected!("avx512f") {
                    let mut v = data.clone();
                    // SAFETY: guarded by the runtime feature check above.
                    unsafe { simd::fwht_kernel_avx512(&mut v, scale) };
                    for (a, b) in v.iter().zip(portable.iter()) {
                        assert_eq!(a.to_bits(), b.to_bits(), "avx512 vs portable, order {m}");
                    }
                }
            }
        }
    }

    #[test]
    fn fused_kernel_is_bit_identical_to_radix2_all_orders() {
        for pow in 0u32..=13 {
            let m = 1usize << pow;
            let data = seeded_vec(0x5EED ^ pow as u64, m);
            let mut reference = data.clone();
            fwht_radix2_reference(&mut reference);
            let mut fused = data.clone();
            fwht_in_place(&mut fused);
            for (a, b) in fused.iter().zip(reference.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "order {m}");
            }
        }
    }

    #[test]
    fn scaled_kernel_is_bit_identical_to_fwht_then_scale() {
        for pow in 0u32..=13 {
            let m = 1usize << pow;
            let scale = 18.0 * 1.3130352854993312; // a realistic k·c_ε de-bias factor
            let data = seeded_vec(0xACE ^ pow as u64, m);
            let mut reference = data.clone();
            fwht_radix2_reference(&mut reference);
            for v in reference.iter_mut() {
                *v *= scale;
            }
            let mut fused = data.clone();
            fwht_scaled_in_place(&mut fused, scale);
            for (a, b) in fused.iter().zip(reference.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "order {m}");
            }
        }
    }

    proptest! {
        #[test]
        fn prop_fwht_bit_identical_to_radix2(pow in 0u32..11, seed in any::<u64>()) {
            let m = 1usize << pow;
            let data = seeded_vec(seed, m);
            let mut reference = data.clone();
            fwht_radix2_reference(&mut reference);
            let mut fused = data;
            fwht_in_place(&mut fused);
            for (a, b) in fused.iter().zip(reference.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        #[test]
        fn prop_fwht_bit_identical_scaled(pow in 0u32..11, seed in any::<u64>(), scale in 0.01f64..100.0) {
            let m = 1usize << pow;
            let data = seeded_vec(seed, m);
            let mut reference = data.clone();
            fwht_radix2_reference(&mut reference);
            for v in reference.iter_mut() {
                *v *= scale;
            }
            let mut fused = data;
            fwht_scaled_in_place(&mut fused, scale);
            for (a, b) in fused.iter().zip(reference.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        #[test]
        fn prop_fwht_matches_naive(pow in 0u32..8, seed in any::<u64>()) {
            let m = 1usize << pow;
            // Deterministic pseudo-random vector from the seed.
            let data: Vec<f64> = (0..m)
                .map(|i| {
                    let x = seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
                    ((x >> 33) as f64 / (1u64 << 31) as f64) - 1.0
                })
                .collect();
            let naive = hadamard_multiply_naive(&data);
            let mut fast = data.clone();
            fwht_in_place(&mut fast);
            for (a, b) in fast.iter().zip(naive.iter()) {
                prop_assert!((a - b).abs() < 1e-6);
            }
        }

        #[test]
        fn prop_entries_are_signs(pow in 0u32..10, r in any::<usize>(), c in any::<usize>()) {
            let m = 1usize << pow;
            let e = hadamard_entry(m, r % m, c % m);
            prop_assert!(e == 1 || e == -1);
            // Symmetry of the Sylvester construction.
            prop_assert_eq!(e, hadamard_entry(m, c % m, r % m));
        }

        #[test]
        fn prop_parseval(pow in 1u32..8, seed in any::<u64>()) {
            // ||H v||² = m ||v||² for the unnormalised transform.
            let m = 1usize << pow;
            let data: Vec<f64> = (0..m)
                .map(|i| {
                    let x = seed.wrapping_mul(2862933555777941757).wrapping_add(i as u64 * 3037000493);
                    ((x >> 33) as f64 / (1u64 << 31) as f64) - 1.0
                })
                .collect();
            let norm: f64 = data.iter().map(|v| v * v).sum();
            let mut t = data.clone();
            fwht_in_place(&mut t);
            let tnorm: f64 = t.iter().map(|v| v * v).sum();
            prop_assert!((tnorm - m as f64 * norm).abs() < 1e-6 * (1.0 + tnorm.abs()));
        }
    }
}
