//! Walsh–Hadamard transform utilities.
//!
//! The Hadamard mechanism (Apple-HCMS, and Algorithm 1 of the paper) encodes a one-hot
//! vector `v` with `v[h_j(d)] = ξ_j(d)`, multiplies it by the Hadamard matrix `H_m`, and
//! samples a single coordinate of the result. Because `v` has a single non-zero entry the
//! client never materialises `H_m`: the sampled coordinate is simply
//! `w[l] = H_m[h_j(d), l] · ξ_j(d)` and an individual matrix entry is
//! `H_m[a, b] = (-1)^{popcount(a & b)}`.
//!
//! The server, on the other hand, must undo the transform on whole sketch rows
//! (`M ← M · H_mᵀ`, Algorithm 2 line 6). For that we provide an in-place
//! **fast Walsh–Hadamard transform** ([`fwht_in_place`]) which runs in `O(m log m)` per row
//! instead of the naive `O(m²)` matrix multiply (kept as [`hadamard_multiply_naive`] for
//! tests and the ablation bench).
//!
//! All routines require `m` to be a power of two, matching the recursive definition of `H_m`.

/// Returns `true` if `m` is a positive power of two (a valid Hadamard order).
#[inline]
pub fn is_valid_order(m: usize) -> bool {
    m > 0 && m.is_power_of_two()
}

/// Entry `H_m[row, col] ∈ {-1, +1}` of the (non-normalised) Hadamard matrix of order `m`.
///
/// Uses the Sylvester construction identity `H[r, c] = (-1)^{popcount(r & c)}`.
///
/// # Panics
/// Panics in debug builds if `row` or `col` is outside `[0, m)` or `m` is not a power of two.
#[inline]
pub fn hadamard_entry(m: usize, row: usize, col: usize) -> i64 {
    debug_assert!(
        is_valid_order(m),
        "Hadamard order must be a power of two, got {m}"
    );
    debug_assert!(
        row < m && col < m,
        "Hadamard index ({row},{col}) out of range for order {m}"
    );
    if ((row & col).count_ones() & 1) == 1 {
        -1
    } else {
        1
    }
}

/// Entry `H_m[row, col]` as an `f64`.
#[inline]
pub fn hadamard_entry_f64(m: usize, row: usize, col: usize) -> f64 {
    hadamard_entry(m, row, col) as f64
}

/// In-place fast Walsh–Hadamard transform of a length-`2^t` slice.
///
/// Computes `data ← data · H_m` (equivalently `H_m · data` since `H_m` is symmetric) without
/// normalisation, in `O(m log m)` time and `O(1)` extra space.
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
pub fn fwht_in_place(data: &mut [f64]) {
    let n = data.len();
    assert!(
        is_valid_order(n),
        "FWHT length must be a power of two, got {n}"
    );
    let mut h = 1;
    while h < n {
        let mut i = 0;
        while i < n {
            for j in i..i + h {
                let x = data[j];
                let y = data[j + h];
                data[j] = x + y;
                data[j + h] = x - y;
            }
            i += h * 2;
        }
        h *= 2;
    }
}

/// Naive `O(m²)` multiplication `out[c] = Σ_r data[r]·H_m[r, c]`.
///
/// Exists only as the reference implementation for tests and the FWHT ablation benchmark.
pub fn hadamard_multiply_naive(data: &[f64]) -> Vec<f64> {
    let m = data.len();
    assert!(
        is_valid_order(m),
        "Hadamard order must be a power of two, got {m}"
    );
    let mut out = vec![0.0; m];
    for (c, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (r, &v) in data.iter().enumerate() {
            acc += v * hadamard_entry_f64(m, r, c);
        }
        *o = acc;
    }
    out
}

/// Applies the inverse Hadamard transform in place: `data ← data · H_m / m`.
///
/// Because `H_m · H_m = m · I`, the inverse is the forward transform followed by a division
/// by `m`. Provided for symmetry; the server-side sketch restore uses the un-normalised
/// [`fwht_in_place`] because the paper's de-bias constants already account for scaling.
pub fn fwht_inverse_in_place(data: &mut [f64]) {
    let m = data.len() as f64;
    fwht_in_place(data);
    for v in data.iter_mut() {
        *v /= m;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn order_validation() {
        assert!(is_valid_order(1));
        assert!(is_valid_order(2));
        assert!(is_valid_order(1024));
        assert!(!is_valid_order(0));
        assert!(!is_valid_order(3));
        assert!(!is_valid_order(1000));
    }

    #[test]
    fn h1_and_h2_match_definition() {
        assert_eq!(hadamard_entry(1, 0, 0), 1);
        // H_2 = [[1, 1], [1, -1]]
        assert_eq!(hadamard_entry(2, 0, 0), 1);
        assert_eq!(hadamard_entry(2, 0, 1), 1);
        assert_eq!(hadamard_entry(2, 1, 0), 1);
        assert_eq!(hadamard_entry(2, 1, 1), -1);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn h4_matches_recursive_definition() {
        // H_4 from the paper's Example 1.
        let expected = [[1, 1, 1, 1], [1, -1, 1, -1], [1, 1, -1, -1], [1, -1, -1, 1]];
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(hadamard_entry(4, r, c), expected[r][c], "H_4[{r},{c}]");
            }
        }
    }

    #[test]
    fn rows_are_orthogonal() {
        let m = 32;
        for r1 in 0..m {
            for r2 in 0..m {
                let dot: i64 = (0..m)
                    .map(|c| hadamard_entry(m, r1, c) * hadamard_entry(m, r2, c))
                    .sum();
                if r1 == r2 {
                    assert_eq!(dot, m as i64);
                } else {
                    assert_eq!(dot, 0);
                }
            }
        }
    }

    #[test]
    fn fwht_matches_naive_on_one_hot() {
        let m = 16;
        for pos in 0..m {
            let mut v = vec![0.0; m];
            v[pos] = 1.0;
            let naive = hadamard_multiply_naive(&v);
            fwht_in_place(&mut v);
            for c in 0..m {
                assert_close(v[c], naive[c]);
                assert_close(v[c], hadamard_entry_f64(m, pos, c));
            }
        }
    }

    #[test]
    fn fwht_is_involution_up_to_scale() {
        let m = 64;
        let original: Vec<f64> = (0..m).map(|i| (i as f64).sin()).collect();
        let mut v = original.clone();
        fwht_in_place(&mut v);
        fwht_inverse_in_place(&mut v);
        for (a, b) in v.iter().zip(original.iter()) {
            assert_close(*a, *b);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fwht_rejects_non_power_of_two() {
        let mut v = vec![0.0; 6];
        fwht_in_place(&mut v);
    }

    proptest! {
        #[test]
        fn prop_fwht_matches_naive(pow in 0u32..8, seed in any::<u64>()) {
            let m = 1usize << pow;
            // Deterministic pseudo-random vector from the seed.
            let data: Vec<f64> = (0..m)
                .map(|i| {
                    let x = seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
                    ((x >> 33) as f64 / (1u64 << 31) as f64) - 1.0
                })
                .collect();
            let naive = hadamard_multiply_naive(&data);
            let mut fast = data.clone();
            fwht_in_place(&mut fast);
            for (a, b) in fast.iter().zip(naive.iter()) {
                prop_assert!((a - b).abs() < 1e-6);
            }
        }

        #[test]
        fn prop_entries_are_signs(pow in 0u32..10, r in any::<usize>(), c in any::<usize>()) {
            let m = 1usize << pow;
            let e = hadamard_entry(m, r % m, c % m);
            prop_assert!(e == 1 || e == -1);
            // Symmetry of the Sylvester construction.
            prop_assert_eq!(e, hadamard_entry(m, c % m, r % m));
        }

        #[test]
        fn prop_parseval(pow in 1u32..8, seed in any::<u64>()) {
            // ||H v||² = m ||v||² for the unnormalised transform.
            let m = 1usize << pow;
            let data: Vec<f64> = (0..m)
                .map(|i| {
                    let x = seed.wrapping_mul(2862933555777941757).wrapping_add(i as u64 * 3037000493);
                    ((x >> 33) as f64 / (1u64 << 31) as f64) - 1.0
                })
                .collect();
            let norm: f64 = data.iter().map(|v| v * v).sum();
            let mut t = data.clone();
            fwht_in_place(&mut t);
            let tnorm: f64 = t.iter().map(|v| v * v).sum();
            prop_assert!((tnorm - m as f64 * norm).abs() < 1e-6 * (1.0 + tnorm.abs()));
        }
    }
}
