//! Seeded hash families for sketching.
//!
//! Fast-AGMS style sketches need two hash functions per row `j`:
//!
//! * a **bucket hash** `h_j : D -> [m]` deciding which counter an update touches
//!   (pairwise independence suffices), and
//! * a **sign hash** `ξ_j : D -> {-1, +1}` drawn from a 4-wise independent family so that the
//!   variance analysis of the inner-product estimator (Lemma 2–4 of the paper) holds.
//!
//! Both are implemented as polynomial hash functions over the Mersenne prime `p = 2^61 − 1`:
//! a degree-1 polynomial gives pairwise independence, a degree-3 polynomial gives 4-wise
//! independence. Coefficients are drawn from a seeded [`rand::rngs::StdRng`] so an entire
//! family is reproducible from a single `u64` seed — the server and every client must agree
//! on the family, which in the LDP protocol is public information.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Mersenne prime `2^61 − 1` used as the field modulus for polynomial hashing.
pub const MERSENNE_P: u64 = (1 << 61) - 1;

/// Reduce a 128-bit product modulo `2^61 − 1` using the standard Mersenne folding trick.
#[inline]
fn mod_mersenne(x: u128) -> u64 {
    // x = hi * 2^61 + lo  ==>  x ≡ hi + lo (mod 2^61 - 1)
    let lo = (x & (MERSENNE_P as u128)) as u64;
    let hi = (x >> 61) as u64;
    let mut r = lo.wrapping_add(hi);
    if r >= MERSENNE_P {
        r -= MERSENNE_P;
    }
    r
}

/// Multiply two residues modulo `2^61 − 1`.
#[inline]
fn mul_mod(a: u64, b: u64) -> u64 {
    mod_mersenne((a as u128) * (b as u128))
}

/// Add two residues modulo `2^61 − 1`.
#[inline]
fn add_mod(a: u64, b: u64) -> u64 {
    let mut r = a.wrapping_add(b);
    if r >= MERSENNE_P {
        r -= MERSENNE_P;
    }
    r
}

/// A pairwise-independent bucket hash `h : u64 -> [m]`.
///
/// Implemented as `((a·x + b) mod p) mod m` with `a ∈ [1, p)`, `b ∈ [0, p)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketHash {
    a: u64,
    b: u64,
    m: usize,
}

impl BucketHash {
    /// Draw a bucket hash with range `[0, m)` from `rng`.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, m: usize) -> Self {
        assert!(m > 0, "bucket hash range must be non-empty");
        BucketHash {
            a: rng.gen_range(1..MERSENNE_P),
            b: rng.gen_range(0..MERSENNE_P),
            m,
        }
    }

    /// Number of buckets `m`.
    #[inline]
    pub fn buckets(&self) -> usize {
        self.m
    }

    /// Evaluate `h(x) ∈ [0, m)`.
    #[inline]
    pub fn hash(&self, x: u64) -> usize {
        self.hash_residue(mod_mersenne(x as u128))
    }

    /// [`BucketHash::hash`] on an already-reduced residue of `x` (the fused pair
    /// evaluation reduces `x` once and feeds both hashes).
    #[inline]
    fn hash_residue(&self, xr: u64) -> usize {
        let v = add_mod(mul_mod(self.a, xr), self.b);
        // Hadamard sketches always use a power-of-two m; a mask is the same value as the
        // division-based `v % m` but avoids a hardware integer divide on the hot path.
        if self.m.is_power_of_two() {
            (v as usize) & (self.m - 1)
        } else {
            (v % self.m as u64) as usize
        }
    }
}

/// A 4-wise independent sign hash `ξ : u64 -> {-1, +1}`.
///
/// Implemented as the low bit of a degree-3 polynomial over `GF(2^61 − 1)`:
/// `ξ(x) = 2·((a₃x³ + a₂x² + a₁x + a₀ mod p) mod 2) − 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignHash {
    coeffs: [u64; 4],
}

impl SignHash {
    /// Draw a sign hash from `rng`.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut coeffs = [0u64; 4];
        for c in &mut coeffs {
            *c = rng.gen_range(0..MERSENNE_P);
        }
        // Ensure the polynomial is not identically constant in the degenerate all-zero case.
        if coeffs.iter().all(|&c| c == 0) {
            coeffs[1] = 1;
        }
        SignHash { coeffs }
    }

    /// Evaluate the polynomial at `x` (Horner's rule) and return the residue.
    #[inline]
    fn poly(&self, x: u64) -> u64 {
        self.poly_residue(mod_mersenne(x as u128))
    }

    /// [`SignHash::poly`] on an already-reduced residue of `x`.
    #[inline]
    fn poly_residue(&self, x: u64) -> u64 {
        let mut acc = self.coeffs[3];
        for &c in [self.coeffs[2], self.coeffs[1], self.coeffs[0]].iter() {
            acc = add_mod(mul_mod(acc, x), c);
        }
        acc
    }

    /// Evaluate `ξ(x) ∈ {-1, +1}`.
    #[inline]
    pub fn sign(&self, x: u64) -> i64 {
        if self.poly(x) & 1 == 1 {
            1
        } else {
            -1
        }
    }

    /// Evaluate the sign as an `f64` (convenient for sketch arithmetic).
    #[inline]
    pub fn sign_f64(&self, x: u64) -> f64 {
        self.sign(x) as f64
    }
}

/// The `(h_j, ξ_j)` pair attached to one sketch row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashPair {
    /// Bucket hash `h_j : D -> [m]`.
    pub bucket: BucketHash,
    /// Sign hash `ξ_j : D -> {-1,+1}`.
    pub sign: SignHash,
}

impl HashPair {
    /// Draw a fresh `(h, ξ)` pair with `m` buckets from `rng`.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, m: usize) -> Self {
        HashPair {
            bucket: BucketHash::sample(rng, m),
            sign: SignHash::sample(rng),
        }
    }

    /// `h_j(x)`.
    #[inline]
    pub fn bucket_of(&self, x: u64) -> usize {
        self.bucket.hash(x)
    }

    /// `ξ_j(x)` as `±1`.
    #[inline]
    pub fn sign_of(&self, x: u64) -> i64 {
        self.sign.sign(x)
    }

    /// Fused evaluation of both hashes: `(h_j(x), neg)` where `neg = 1` iff
    /// `ξ_j(x) = −1`, sharing a single Mersenne reduction of `x`.
    ///
    /// This is the batched client perturbation's hot accessor: the sign comes back as a
    /// bit so callers can apply it to an `f64` with a sign-bit XOR (multiplying by `±1.0`
    /// is exactly a sign-bit flip), and it is bit-identical to evaluating
    /// [`HashPair::bucket_of`] and [`HashPair::sign_of`] separately — both reductions of
    /// the same `x` yield the same residue.
    #[inline]
    pub fn bucket_and_sign_neg(&self, x: u64) -> (usize, u64) {
        let xr = mod_mersenne(x as u128);
        let bucket = self.bucket.hash_residue(xr);
        let neg = (self.sign.poly_residue(xr) & 1) ^ 1;
        (bucket, neg)
    }
}

/// The full set of `k` hash pairs shared by clients and server for one sketch.
///
/// In the LDP protocol the hash family is public: the server publishes a seed, every client
/// derives the same family deterministically, and only the reports themselves are perturbed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowHashes {
    pairs: Vec<HashPair>,
    m: usize,
    seed: u64,
}

impl RowHashes {
    /// Derive `k` hash pairs with `m` buckets from `seed`.
    ///
    /// # Panics
    /// Panics if `k == 0` or `m == 0`.
    pub fn from_seed(seed: u64, k: usize, m: usize) -> Self {
        assert!(k > 0, "a sketch needs at least one row");
        assert!(m > 0, "a sketch needs at least one column");
        let mut rng = StdRng::seed_from_u64(seed);
        let pairs = (0..k).map(|_| HashPair::sample(&mut rng, m)).collect();
        RowHashes { pairs, m, seed }
    }

    /// Number of rows `k`.
    #[inline]
    pub fn rows(&self) -> usize {
        self.pairs.len()
    }

    /// Number of columns `m`.
    #[inline]
    pub fn columns(&self) -> usize {
        self.m
    }

    /// The seed the family was derived from.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The `(h_j, ξ_j)` pair of row `j`.
    ///
    /// # Panics
    /// Panics if `j >= k`.
    #[inline]
    pub fn pair(&self, j: usize) -> &HashPair {
        &self.pairs[j]
    }

    /// Iterate over all `(h_j, ξ_j)` pairs in row order.
    pub fn iter(&self) -> impl Iterator<Item = &HashPair> {
        self.pairs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn bucket_hash_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let h = BucketHash::sample(&mut rng, 64);
        for x in 0..10_000u64 {
            assert!(h.hash(x) < 64);
        }
    }

    #[test]
    fn bucket_hash_is_deterministic() {
        let mut rng1 = StdRng::seed_from_u64(1);
        let mut rng2 = StdRng::seed_from_u64(1);
        let h1 = BucketHash::sample(&mut rng1, 1024);
        let h2 = BucketHash::sample(&mut rng2, 1024);
        for x in [0u64, 1, 42, u64::MAX, 1 << 40] {
            assert_eq!(h1.hash(x), h2.hash(x));
        }
    }

    #[test]
    fn bucket_hash_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = 16;
        let h = BucketHash::sample(&mut rng, m);
        let n = 160_000u64;
        let mut counts = vec![0u64; m];
        for x in 0..n {
            counts[h.hash(x)] += 1;
        }
        let expected = n as f64 / m as f64;
        for &c in &counts {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(
                dev < 0.1,
                "bucket count {c} deviates {dev} from uniform {expected}"
            );
        }
    }

    #[test]
    fn sign_hash_is_plus_minus_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = SignHash::sample(&mut rng);
        for x in 0..1000u64 {
            let v = s.sign(x);
            assert!(v == 1 || v == -1);
            assert_eq!(v as f64, s.sign_f64(x));
        }
    }

    #[test]
    fn sign_hash_is_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = SignHash::sample(&mut rng);
        let n = 100_000u64;
        let sum: i64 = (0..n).map(|x| s.sign(x)).sum();
        // Mean should be close to 0; allow 4 standard deviations (sqrt(n)).
        assert!((sum as f64).abs() < 4.0 * (n as f64).sqrt(), "sum = {sum}");
    }

    #[test]
    fn sign_hash_pairs_are_roughly_uncorrelated() {
        // 2-wise (and empirically 4-wise) independence implies E[ξ(x)ξ(y)] ≈ 0 for x != y.
        let mut rng = StdRng::seed_from_u64(9);
        let s = SignHash::sample(&mut rng);
        let n = 50_000u64;
        let sum: i64 = (0..n).map(|x| s.sign(2 * x) * s.sign(2 * x + 1)).sum();
        assert!((sum as f64).abs() < 4.0 * (n as f64).sqrt(), "sum = {sum}");
    }

    #[test]
    fn row_hashes_shape_and_determinism() {
        let f1 = RowHashes::from_seed(99, 18, 1024);
        let f2 = RowHashes::from_seed(99, 18, 1024);
        assert_eq!(f1.rows(), 18);
        assert_eq!(f1.columns(), 1024);
        assert_eq!(f1.seed(), 99);
        assert_eq!(f1, f2);
        let f3 = RowHashes::from_seed(100, 18, 1024);
        assert_ne!(f1, f3);
    }

    #[test]
    fn row_hashes_rows_are_distinct() {
        let f = RowHashes::from_seed(4, 8, 256);
        // Different rows should (with overwhelming probability) hash at least one value differently.
        let mut all_same = true;
        for j in 1..f.rows() {
            for x in 0..64u64 {
                if f.pair(0).bucket_of(x) != f.pair(j).bucket_of(x)
                    || f.pair(0).sign_of(x) != f.pair(j).sign_of(x)
                {
                    all_same = false;
                }
            }
        }
        assert!(!all_same);
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn row_hashes_rejects_zero_rows() {
        let _ = RowHashes::from_seed(0, 0, 16);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn row_hashes_rejects_zero_columns() {
        let _ = RowHashes::from_seed(0, 4, 0);
    }

    #[test]
    fn mod_mersenne_matches_naive() {
        for &x in &[
            0u128,
            1,
            MERSENNE_P as u128,
            (MERSENNE_P as u128) * 5 + 17,
            u128::from(u64::MAX) * 3,
        ] {
            assert_eq!(mod_mersenne(x) as u128, x % (MERSENNE_P as u128));
        }
    }

    proptest! {
        #[test]
        fn prop_mod_mersenne_matches_naive(x in any::<u128>()) {
            // Restrict to products of two 61-bit residues, the only inputs we ever feed it.
            let x = x % ((MERSENNE_P as u128) * (MERSENNE_P as u128));
            prop_assert_eq!(mod_mersenne(x) as u128, x % (MERSENNE_P as u128));
        }

        #[test]
        fn prop_mul_mod_matches_naive(a in 0..MERSENNE_P, b in 0..MERSENNE_P) {
            let expected = ((a as u128) * (b as u128)) % (MERSENNE_P as u128);
            prop_assert_eq!(mul_mod(a, b) as u128, expected);
        }

        #[test]
        fn prop_bucket_hash_in_range(seed in any::<u64>(), m in 1usize..5000, x in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let h = BucketHash::sample(&mut rng, m);
            prop_assert!(h.hash(x) < m);
        }

        #[test]
        fn prop_sign_hash_valid(seed in any::<u64>(), x in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = SignHash::sample(&mut rng);
            let v = s.sign(x);
            prop_assert!(v == 1 || v == -1);
        }

        #[test]
        fn prop_fused_pair_matches_separate_evaluation(seed in any::<u64>(), m in 1usize..5000, x in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let pair = HashPair::sample(&mut rng, m);
            let (bucket, neg) = pair.bucket_and_sign_neg(x);
            prop_assert_eq!(bucket, pair.bucket_of(x));
            prop_assert_eq!(neg, u64::from(pair.sign_of(x) < 0));
        }

        #[test]
        fn prop_row_hashes_deterministic(seed in any::<u64>(), k in 1usize..8, m_pow in 1u32..8, x in any::<u64>()) {
            let m = 1usize << m_pow;
            let a = RowHashes::from_seed(seed, k, m);
            let b = RowHashes::from_seed(seed, k, m);
            for j in 0..k {
                prop_assert_eq!(a.pair(j).bucket_of(x), b.pair(j).bucket_of(x));
                prop_assert_eq!(a.pair(j).sign_of(x), b.pair(j).sign_of(x));
            }
        }
    }
}
