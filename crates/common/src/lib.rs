//! # ldpjs-common
//!
//! Shared substrates used by every other crate in the LDPJoinSketch workspace:
//!
//! * [`hash`] — seeded pairwise / 4-wise independent hash families. The fast-AGMS
//!   construction (and therefore LDPJoinSketch) needs, for every sketch row `j`, a bucket
//!   hash `h_j : D -> [m]` and a 4-wise independent sign hash `ξ_j : D -> {-1,+1}`.
//! * [`hadamard`] — Walsh–Hadamard matrix entries and the in-place fast Walsh–Hadamard
//!   transform used by the Hadamard mechanism on both the client and the server side.
//! * [`batch`] — sign-split packed report batches ([`batch::ReportBatch`]) and the
//!   histogram scatter/drain kernels behind the batched server-side ingest path.
//! * [`rr`] — the binary randomized-response primitive and the de-bias constant
//!   `c_ε = (e^ε + 1)/(e^ε − 1)`.
//! * [`privacy`] — the validated privacy-budget type [`privacy::Epsilon`].
//! * [`stats`] — medians, means and frequency-moment helpers shared by the estimators
//!   and the evaluation harness.
//! * [`stream`] — replayable bounded-memory value streams ([`stream::ChunkedValues`]), the
//!   substrate of the large-n regime subsystem.
//! * [`error`] — the workspace-wide error type.
//!
//! Everything here is pure computation with deterministic, seedable randomness so that
//! experiments and property tests are reproducible.

#![warn(missing_docs)]
// The only crate in the workspace allowed to contain `unsafe` (the SIMD kernels in
// `hadamard` and `batch`); every block is opted in with `#[allow(unsafe_code)]` plus a
// `// SAFETY:` contract, and `ldpjs-xtask lint` machine-checks both.
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod batch;
pub mod dispatch;
pub mod error;
pub mod hadamard;
pub mod hash;
pub mod privacy;
pub mod rr;
pub mod stats;
pub mod stream;

pub use batch::ReportBatch;
pub use dispatch::{kernel_dispatch_snapshot, KernelDispatchSnapshot};
pub use error::{Error, Result};
pub use hash::{BucketHash, HashPair, RowHashes, SignHash};
pub use privacy::Epsilon;
pub use stream::{ChunkedTuples, ChunkedValues, SliceChunks, TupleSliceChunks};

/// The type of a private join-attribute value.
///
/// The paper treats join values as elements of a large discrete domain `D`; we follow the
/// common LDP-literature convention of identifying `D` with `{0, 1, …, |D|-1}` and encode
/// every value as a `u64`.
pub type Value = u64;
