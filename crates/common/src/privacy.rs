//! The privacy-budget type.
//!
//! Every LDP mechanism in the workspace takes an [`Epsilon`], the ε of ε-local differential
//! privacy (Definition 1 of the paper). Centralising the validation (positive, finite) and the
//! derived quantities (`e^ε`, keep/flip probabilities, the de-bias constant `c_ε`) avoids
//! re-deriving them slightly differently in every mechanism.

use crate::error::{Error, Result};

/// A validated privacy budget ε > 0.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Epsilon(f64);

impl Epsilon {
    /// Create a new privacy budget.
    ///
    /// # Errors
    /// Returns [`Error::InvalidEpsilon`] if `eps` is not strictly positive and finite.
    pub fn new(eps: f64) -> Result<Self> {
        if eps.is_finite() && eps > 0.0 {
            Ok(Epsilon(eps))
        } else {
            Err(Error::InvalidEpsilon(eps))
        }
    }

    /// The raw ε value.
    #[inline]
    pub fn value(&self) -> f64 {
        self.0
    }

    /// `e^ε`.
    #[inline]
    pub fn exp(&self) -> f64 {
        self.0.exp()
    }

    /// Probability of *keeping* the true sign in binary randomized response:
    /// `Pr[B = +1] = e^ε / (e^ε + 1)`.
    #[inline]
    pub fn keep_probability(&self) -> f64 {
        let e = self.exp();
        e / (e + 1.0)
    }

    /// Probability of *flipping* the sign: `Pr[B = -1] = 1 / (e^ε + 1)`.
    #[inline]
    pub fn flip_probability(&self) -> f64 {
        1.0 / (self.exp() + 1.0)
    }

    /// The de-bias constant `c_ε = (e^ε + 1) / (e^ε − 1)` of Algorithm 2.
    ///
    /// Satisfies `E[c_ε · B] = 1` where `B` is the binary randomized-response bit.
    #[inline]
    pub fn c_eps(&self) -> f64 {
        let e = self.exp();
        (e + 1.0) / (e - 1.0)
    }

    /// Keep probability of k-ary randomized response over a domain of size `domain`:
    /// `p = e^ε / (e^ε + |D| − 1)`.
    #[inline]
    pub fn krr_keep_probability(&self, domain: usize) -> f64 {
        let e = self.exp();
        e / (e + domain as f64 - 1.0)
    }

    /// Probability that k-RR outputs one *specific* other value:
    /// `q = 1 / (e^ε + |D| − 1)`.
    #[inline]
    pub fn krr_other_probability(&self, domain: usize) -> f64 {
        1.0 / (self.exp() + domain as f64 - 1.0)
    }
}

impl std::fmt::Display for Epsilon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ε={}", self.0)
    }
}

impl TryFrom<f64> for Epsilon {
    type Error = Error;

    fn try_from(value: f64) -> Result<Self> {
        Epsilon::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn accepts_positive_finite() {
        assert!(Epsilon::new(0.1).is_ok());
        assert!(Epsilon::new(4.0).is_ok());
        assert!(Epsilon::new(10.0).is_ok());
    }

    #[test]
    fn rejects_invalid() {
        assert_eq!(Epsilon::new(0.0), Err(Error::InvalidEpsilon(0.0)));
        assert_eq!(Epsilon::new(-1.0), Err(Error::InvalidEpsilon(-1.0)));
        assert!(Epsilon::new(f64::NAN).is_err());
        assert!(Epsilon::new(f64::INFINITY).is_err());
    }

    #[test]
    fn probabilities_sum_to_one() {
        let eps = Epsilon::new(2.0).unwrap();
        assert!((eps.keep_probability() + eps.flip_probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn c_eps_debiases_the_rr_bit() {
        // E[B] = p - q = (e^ε - 1)/(e^ε + 1) = 1 / c_ε, so c_ε * E[B] = 1.
        let eps = Epsilon::new(1.5).unwrap();
        let mean_b = eps.keep_probability() - eps.flip_probability();
        assert!((eps.c_eps() * mean_b - 1.0).abs() < 1e-12);
    }

    #[test]
    fn krr_probabilities_are_consistent() {
        let eps = Epsilon::new(3.0).unwrap();
        let d = 100;
        let p = eps.krr_keep_probability(d);
        let q = eps.krr_other_probability(d);
        // p + (d-1) q = 1
        assert!((p + (d as f64 - 1.0) * q - 1.0).abs() < 1e-12);
        // LDP ratio is exactly e^ε between keeping and any other output.
        assert!((p / q - eps.exp()).abs() < 1e-9);
    }

    #[test]
    fn display_and_conversion() {
        let eps: Epsilon = 4.0f64.try_into().unwrap();
        assert_eq!(eps.value(), 4.0);
        assert_eq!(eps.to_string(), "ε=4");
        let bad: std::result::Result<Epsilon, _> = (-3.0f64).try_into();
        assert!(bad.is_err());
    }

    proptest! {
        #[test]
        fn prop_probabilities_valid(e in 0.01f64..20.0) {
            let eps = Epsilon::new(e).unwrap();
            let p = eps.keep_probability();
            let q = eps.flip_probability();
            prop_assert!(p > 0.5 && p < 1.0);
            prop_assert!(q > 0.0 && q < 0.5);
            prop_assert!((p + q - 1.0).abs() < 1e-12);
            // Larger ε keeps more often.
            prop_assert!(eps.c_eps() >= 1.0);
        }

        #[test]
        fn prop_ldp_ratio_bounded(e in 0.01f64..20.0) {
            // keep/flip ratio of binary RR equals e^ε exactly — the core of Theorem 1's proof.
            let eps = Epsilon::new(e).unwrap();
            let ratio = eps.keep_probability() / eps.flip_probability();
            prop_assert!((ratio - eps.exp()).abs() < 1e-6 * eps.exp());
        }

        #[test]
        fn prop_krr_valid(e in 0.01f64..20.0, d in 2usize..100_000) {
            let eps = Epsilon::new(e).unwrap();
            let p = eps.krr_keep_probability(d);
            let q = eps.krr_other_probability(d);
            prop_assert!(p > q);
            prop_assert!((p + (d as f64 - 1.0) * q - 1.0).abs() < 1e-9);
        }
    }
}
