//! Randomized-response primitives.
//!
//! The Hadamard-style mechanisms (LDPJoinSketch, FAP, Apple-HCMS) all finish the client-side
//! pipeline with the same **binary randomized response** step: multiply the sampled ±1
//! coordinate by `-1` with probability `1/(e^ε+1)` (Algorithm 1 line 5–6). k-RR uses the
//! k-ary generalisation. Both live here so the mechanisms share one audited implementation.

use rand::Rng;

use crate::privacy::Epsilon;

/// Sample the binary randomized-response bit `B ∈ {-1, +1}` with
/// `Pr[B = -1] = 1/(e^ε + 1)`.
#[inline]
pub fn sample_sign_bit<R: Rng + ?Sized>(rng: &mut R, eps: Epsilon) -> f64 {
    if rng.gen_bool(eps.flip_probability()) {
        -1.0
    } else {
        1.0
    }
}

/// Apply binary randomized response to a ±1 coordinate: returns `B · w`.
#[inline]
pub fn perturb_sign<R: Rng + ?Sized>(rng: &mut R, eps: Epsilon, w: f64) -> f64 {
    sample_sign_bit(rng, eps) * w
}

/// k-ary randomized response over the domain `{0, …, domain-1}`.
///
/// Keeps the true value with probability `e^ε/(e^ε + |D| − 1)` and otherwise reports a value
/// drawn uniformly from the *other* `|D| − 1` values.
///
/// # Panics
/// Panics if `domain < 2` or `value >= domain`.
pub fn krr_perturb<R: Rng + ?Sized>(rng: &mut R, eps: Epsilon, domain: u64, value: u64) -> u64 {
    krr_perturb_with_p(
        rng,
        eps.krr_keep_probability(domain as usize),
        domain,
        value,
    )
}

/// [`krr_perturb`] with a precomputed keep probability, for callers that perturb many values
/// at a fixed `(ε, domain)` and want to pay for `e^ε` once (e.g. the FLH oracle's inner k-RR
/// over its hashed domain `[g]`).
pub fn krr_perturb_with_p<R: Rng + ?Sized>(
    rng: &mut R,
    keep_probability: f64,
    domain: u64,
    value: u64,
) -> u64 {
    assert!(domain >= 2, "k-RR needs a domain of at least two values");
    assert!(
        value < domain,
        "value {value} outside domain of size {domain}"
    );
    if rng.gen_bool(keep_probability) {
        value
    } else {
        // Uniform over the other domain-1 values: draw from [0, domain-1) and skip `value`.
        let r = rng.gen_range(0..domain - 1);
        if r >= value {
            r + 1
        } else {
            r
        }
    }
}

/// The unbiased frequency estimate of k-RR aggregation.
///
/// Given `count` observations of a value among `n` perturbed reports over a domain of size
/// `domain`, returns the de-biased estimate of the number of users truly holding the value:
/// `f̃ = (count − n·q) / (p − q)`.
#[inline]
pub fn krr_debias(count: f64, n: f64, domain: usize, eps: Epsilon) -> f64 {
    let p = eps.krr_keep_probability(domain);
    let q = eps.krr_other_probability(domain);
    (count - n * q) / (p - q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sign_bit_mean_matches_expectation() {
        let eps = Epsilon::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| sample_sign_bit(&mut rng, eps)).sum();
        let mean = sum / n as f64;
        let expected = eps.keep_probability() - eps.flip_probability();
        assert!(
            (mean - expected).abs() < 0.01,
            "mean {mean} expected {expected}"
        );
    }

    #[test]
    fn debiased_sign_bit_has_unit_mean() {
        let eps = Epsilon::new(0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 400_000;
        let sum: f64 = (0..n)
            .map(|_| eps.c_eps() * sample_sign_bit(&mut rng, eps))
            .sum();
        let mean = sum / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "debiased mean {mean}");
    }

    #[test]
    fn perturb_sign_preserves_magnitude() {
        let eps = Epsilon::new(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let y = perturb_sign(&mut rng, eps, 1.0);
            assert!(y == 1.0 || y == -1.0);
            let y = perturb_sign(&mut rng, eps, -1.0);
            assert!(y == 1.0 || y == -1.0);
        }
    }

    #[test]
    fn krr_stays_in_domain_and_keeps_often_for_large_eps() {
        let eps = Epsilon::new(8.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let domain = 50u64;
        let mut kept = 0;
        let trials = 10_000;
        for _ in 0..trials {
            let out = krr_perturb(&mut rng, eps, domain, 17);
            assert!(out < domain);
            if out == 17 {
                kept += 1;
            }
        }
        let keep_rate = kept as f64 / trials as f64;
        let expected = eps.krr_keep_probability(domain as usize);
        assert!(
            (keep_rate - expected).abs() < 0.02,
            "keep rate {keep_rate} expected {expected}"
        );
    }

    #[test]
    fn krr_debias_recovers_counts_in_expectation() {
        let eps = Epsilon::new(2.0).unwrap();
        let domain = 20u64;
        let mut rng = StdRng::seed_from_u64(11);
        // 30% of users hold value 3, the rest hold value 7.
        let n = 100_000usize;
        let mut counts = vec![0f64; domain as usize];
        for i in 0..n {
            let true_val = if i % 10 < 3 { 3 } else { 7 };
            counts[krr_perturb(&mut rng, eps, domain, true_val) as usize] += 1.0;
        }
        let est3 = krr_debias(counts[3], n as f64, domain as usize, eps);
        let est7 = krr_debias(counts[7], n as f64, domain as usize, eps);
        let est0 = krr_debias(counts[0], n as f64, domain as usize, eps);
        assert!(
            (est3 - 0.3 * n as f64).abs() < 0.03 * n as f64,
            "est3 = {est3}"
        );
        assert!(
            (est7 - 0.7 * n as f64).abs() < 0.03 * n as f64,
            "est7 = {est7}"
        );
        assert!(est0.abs() < 0.03 * n as f64, "est0 = {est0}");
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn krr_rejects_out_of_domain_value() {
        let eps = Epsilon::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = krr_perturb(&mut rng, eps, 10, 10);
    }

    proptest! {
        #[test]
        fn prop_krr_output_in_domain(seed in any::<u64>(), e in 0.1f64..10.0, d in 2u64..1000, v in any::<u64>()) {
            let eps = Epsilon::new(e).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let value = v % d;
            let out = krr_perturb(&mut rng, eps, d, value);
            prop_assert!(out < d);
        }

        #[test]
        fn prop_sign_bit_is_sign(seed in any::<u64>(), e in 0.1f64..10.0) {
            let eps = Epsilon::new(e).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let b = sample_sign_bit(&mut rng, eps);
            prop_assert!(b == 1.0 || b == -1.0);
        }
    }
}
