//! Small statistics helpers shared by estimators and the evaluation harness.
//!
//! The final LDPJoinSketch estimate is the *median* of `k` per-row estimators (Theorem 5);
//! frequency estimates are per-row *means* (Theorem 7); and the error analysis is expressed
//! in terms of the frequency moments `F1` and `F2` (Definition 3). These helpers implement
//! those aggregations once, with care around empty inputs and NaNs.

use std::collections::BTreeMap;

/// Median of a slice of `f64` values.
///
/// Uses `select_nth_unstable` (expected `O(n)`), averaging the two middle elements when the
/// length is even. Returns `None` for an empty slice; `NaN` values are treated as largest.
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v = values.to_vec();
    let n = v.len();
    let cmp = |a: &f64, b: &f64| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Less);
    if n % 2 == 1 {
        let (_, mid, _) = v.select_nth_unstable_by(n / 2, cmp);
        Some(*mid)
    } else {
        let (_, hi, _) = v.select_nth_unstable_by(n / 2, cmp);
        let hi = *hi;
        let (_, lo, _) = v.select_nth_unstable_by(n / 2 - 1, cmp);
        Some((*lo + hi) / 2.0)
    }
}

/// Arithmetic mean of a slice. Returns `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Sample variance (denominator `n − 1`). Returns `None` if fewer than two values.
pub fn variance(values: &[f64]) -> Option<f64> {
    if values.len() < 2 {
        return None;
    }
    let mu = mean(values)?;
    let ss: f64 = values.iter().map(|v| (v - mu) * (v - mu)).sum();
    Some(ss / (values.len() - 1) as f64)
}

/// Exact frequency table of a stream of values.
///
/// Returns a `BTreeMap` so iterating the table (e.g. collecting the distinct domain for a
/// figure run) visits keys in sorted order — callers that sum float estimates over the
/// table get bit-identical totals run to run, which `HashMap`'s seeded iteration order
/// does not guarantee.
pub fn frequency_table(values: &[u64]) -> BTreeMap<u64, u64> {
    let mut table = BTreeMap::new();
    for &v in values {
        *table.entry(v).or_insert(0) += 1;
    }
    table
}

/// First frequency moment `F1 = Σ_d f(d)` — simply the stream length.
pub fn f1(values: &[u64]) -> u64 {
    values.len() as u64
}

/// Second frequency moment `F2 = Σ_d f(d)²` (the self-join size).
pub fn f2(values: &[u64]) -> u64 {
    frequency_table(values).values().map(|&c| c * c).sum()
}

/// Exact join size `|A ⋈ B| = Σ_d f_A(d)·f_B(d)` — the inner product of frequency vectors.
pub fn exact_join_size(a: &[u64], b: &[u64]) -> u64 {
    let fa = frequency_table(a);
    let fb = frequency_table(b);
    // Iterate over the smaller table for efficiency.
    let (small, large) = if fa.len() <= fb.len() {
        (&fa, &fb)
    } else {
        (&fb, &fa)
    };
    small
        .iter()
        .map(|(d, &ca)| ca * large.get(d).copied().unwrap_or(0))
        .sum()
}

/// Exact three-way chain join size `|T1(A) ⋈ T2(A,B) ⋈ T3(B)| = Σ_{(a,b)∈T2} f_{T1}(a)·f_{T3}(b)`.
pub fn exact_chain_join_3(t1: &[u64], t2: &[(u64, u64)], t3: &[u64]) -> u64 {
    let f1 = frequency_table(t1);
    let f3 = frequency_table(t3);
    t2.iter()
        .map(|&(a, b)| f1.get(&a).copied().unwrap_or(0) * f3.get(&b).copied().unwrap_or(0))
        .sum()
}

/// Exact four-way chain join size `|T1(A) ⋈ T2(A,B) ⋈ T3(B,C) ⋈ T4(C)|`.
///
/// Computed as `Σ_{(a,b)∈T2} f_{T1}(a) · (Σ_{(b',c)∈T3, b'=b} f_{T4}(c))` using a pre-aggregated
/// map from `b` to the joined weight of `T3 ⋈ T4`.
pub fn exact_chain_join_4(t1: &[u64], t2: &[(u64, u64)], t3: &[(u64, u64)], t4: &[u64]) -> u64 {
    let f1 = frequency_table(t1);
    let f4 = frequency_table(t4);
    let mut w3: BTreeMap<u64, u64> = BTreeMap::new();
    for &(b, c) in t3 {
        *w3.entry(b).or_insert(0) += f4.get(&c).copied().unwrap_or(0);
    }
    t2.iter()
        .map(|&(a, b)| f1.get(&a).copied().unwrap_or(0) * w3.get(&b).copied().unwrap_or(0))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), Some(2.5));
        assert_eq!(median(&[5.0]), Some(5.0));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        assert_eq!(median(&[1.0, 1.0, 1.0, 1.0, 1e18]), Some(1.0));
    }

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[1.0, 2.0, 3.0]), Some(1.0));
        assert_eq!(variance(&[1.0]), None);
    }

    #[test]
    fn frequency_moments() {
        let data = [1u64, 1, 1, 2, 2, 9];
        assert_eq!(f1(&data), 6);
        assert_eq!(f2(&data), 9 + 4 + 1);
        let table = frequency_table(&data);
        assert_eq!(table[&1], 3);
        assert_eq!(table[&2], 2);
        assert_eq!(table[&9], 1);
        assert_eq!(table.get(&5), None);
    }

    #[test]
    fn frequency_table_iterates_in_sorted_key_order() {
        // Regression: fig14 collects `table.keys()` as the evaluation domain and sums
        // float MSE terms over it; with a hash map the visit order (and thus the float
        // sums) varied run to run. The table must yield sorted keys.
        let data = [9u64, 3, 3, 7, 1, 9, 9];
        let keys: Vec<u64> = frequency_table(&data).keys().copied().collect();
        assert_eq!(keys, vec![1, 3, 7, 9]);
    }

    #[test]
    fn join_size_small_example() {
        // A = {1,1,2,3}, B = {1,2,2,4} => |A ⋈ B| = 2*1 + 1*2 + 0 + 0 = 4
        let a = [1u64, 1, 2, 3];
        let b = [1u64, 2, 2, 4];
        assert_eq!(exact_join_size(&a, &b), 4);
        // Join is symmetric.
        assert_eq!(exact_join_size(&b, &a), 4);
        // Self join equals F2.
        assert_eq!(exact_join_size(&a, &a), f2(&a));
    }

    #[test]
    fn join_size_disjoint_is_zero() {
        assert_eq!(exact_join_size(&[1, 2, 3], &[4, 5, 6]), 0);
        assert_eq!(exact_join_size(&[], &[1, 2]), 0);
    }

    #[test]
    fn chain_join_3_small_example() {
        // T1 = {1,1,2}; T2 = {(1,10),(2,20),(3,10)}; T3 = {10,10,20}
        // (1,10): f1(1)=2 * f3(10)=2 -> 4 ; (2,20): 1*1 -> 1 ; (3,10): 0*2 -> 0; total 5
        let t1 = [1u64, 1, 2];
        let t2 = [(1u64, 10u64), (2, 20), (3, 10)];
        let t3 = [10u64, 10, 20];
        assert_eq!(exact_chain_join_3(&t1, &t2, &t3), 5);
    }

    #[test]
    fn chain_join_4_small_example() {
        let t1 = [1u64, 1];
        let t2 = [(1u64, 10u64), (2, 10)];
        let t3 = [(10u64, 100u64), (10, 200)];
        let t4 = [100u64, 100, 200];
        // w3[10] = f4(100) + f4(200) = 2 + 1 = 3
        // (1,10): f1(1)=2 * 3 = 6; (2,10): 0 * 3 = 0 => 6
        assert_eq!(exact_chain_join_4(&t1, &t2, &t3, &t4), 6);
    }

    #[test]
    fn chain_join_4_consistent_with_3_when_t4_matches_everything() {
        // If T4 holds exactly one copy of every C value appearing in T3, the 4-way join equals
        // the 3-way join of T1, T2, and the projection of T3 on B (with multiplicity).
        let t1 = [1u64, 2, 2];
        let t2 = [(1u64, 5u64), (2, 6), (2, 5)];
        let t3 = [(5u64, 50u64), (6, 60), (5, 51)];
        let t4 = [50u64, 60, 51];
        let proj: Vec<u64> = t3.iter().map(|&(b, _)| b).collect();
        assert_eq!(
            exact_chain_join_4(&t1, &t2, &t3, &t4),
            exact_chain_join_3(&t1, &t2, &proj)
        );
    }

    proptest! {
        #[test]
        fn prop_median_is_order_statistic(mut v in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let med = median(&v).unwrap();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let n = v.len();
            let expected = if n % 2 == 1 { v[n / 2] } else { (v[n / 2 - 1] + v[n / 2]) / 2.0 };
            prop_assert!((med - expected).abs() < 1e-9);
        }

        #[test]
        fn prop_join_size_symmetric(a in proptest::collection::vec(0u64..50, 0..200),
                                    b in proptest::collection::vec(0u64..50, 0..200)) {
            prop_assert_eq!(exact_join_size(&a, &b), exact_join_size(&b, &a));
        }

        #[test]
        fn prop_self_join_equals_f2(a in proptest::collection::vec(0u64..100, 0..300)) {
            prop_assert_eq!(exact_join_size(&a, &a), f2(&a));
        }

        #[test]
        fn prop_f2_at_least_f1_when_nonempty(a in proptest::collection::vec(0u64..100, 1..300)) {
            // Σ f(d)² ≥ Σ f(d) because every f(d) ≥ 1 on the support.
            prop_assert!(f2(&a) >= f1(&a));
        }
    }
}
