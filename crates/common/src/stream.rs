//! Chunked value streams: the substrate of the large-n regime subsystem.
//!
//! Laptop-scale runs of the paper's evaluation materialize each join attribute as a
//! `Vec<u64>` with one entry per user. At the ≥10M-user scale the ROADMAP targets, that
//! materialization — several hundred megabytes per table, times two tables, times the
//! protocol's report buffers — is what keeps the large-n regime locked behind `#[ignore]`d
//! tests. The protocols themselves never need the whole table at once: every step (client
//! simulation, report ingestion, ground-truth histograms) is a single forward pass.
//!
//! [`ChunkedValues`] captures exactly that access pattern: a *replayable* forward pass over
//! `n` values delivered in bounded chunks. Implementors guarantee
//!
//! * **bounded memory** — no call materializes more than `chunk_len()` values at a time, and
//! * **replayability** — every pass yields the identical value sequence (the two-phase
//!   LDPJoinSketch+ protocol replays the stream once per phase).
//!
//! [`SliceChunks`] adapts an in-memory slice, so chunked protocol runners accept both
//! streaming generators (see `ldpjs-data`'s `streaming` module) and materialized tables, and
//! tests can assert the two paths are bit-identical.

use crate::Value;

/// A replayable stream of private join-attribute values, delivered in bounded chunks.
///
/// The chunk is the unit of peak memory: consumers (and implementors) never hold more than
/// one chunk of values at a time, so a 10M-user table streams through a few tens of
/// kilobytes of buffer instead of 80 MB of `Vec`.
pub trait ChunkedValues {
    /// Total number of values (users) in the stream.
    fn total_values(&self) -> usize;

    /// Upper bound on the length of any chunk passed to the sink — the peak resident value
    /// memory of one pass.
    fn chunk_len(&self) -> usize;

    /// Replay the stream from the start, feeding each chunk to `sink` together with the
    /// global index of its first value. Chunks arrive in order and partition the stream:
    /// concatenating them yields the same `total_values()`-long sequence on every call.
    fn for_each_chunk(&self, sink: &mut dyn FnMut(u64, &[Value]));
}

/// [`ChunkedValues`] view of an in-memory slice (the adapter that lets every chunked
/// protocol runner also serve materialized tables, and lets tests compare the streaming and
/// materialized paths element-for-element).
#[derive(Debug, Clone, Copy)]
pub struct SliceChunks<'a> {
    values: &'a [Value],
    chunk: usize,
}

impl<'a> SliceChunks<'a> {
    /// View `values` as a stream of `chunk`-sized chunks.
    ///
    /// # Panics
    /// Panics if `chunk` is zero.
    pub fn new(values: &'a [Value], chunk: usize) -> Self {
        assert!(chunk > 0, "chunk length must be positive");
        SliceChunks { values, chunk }
    }
}

impl ChunkedValues for SliceChunks<'_> {
    fn total_values(&self) -> usize {
        self.values.len()
    }

    fn chunk_len(&self) -> usize {
        self.chunk
    }

    fn for_each_chunk(&self, sink: &mut dyn FnMut(u64, &[Value])) {
        for (c, chunk) in self.values.chunks(self.chunk).enumerate() {
            sink((c * self.chunk) as u64, chunk);
        }
    }
}

/// Collect a chunked stream into a `Vec` (test/diagnostic helper; defeats the memory bound
/// on purpose, so production paths should never need it).
pub fn collect_chunks(source: &dyn ChunkedValues) -> Vec<Value> {
    let mut out = Vec::with_capacity(source.total_values());
    source.for_each_chunk(&mut |_, chunk| out.extend_from_slice(chunk));
    out
}

/// The sink fed by [`ChunkedTuples::for_each_chunk`]: receives each chunk of tuples with
/// the global index of its first tuple.
pub type TupleChunkSink<'a> = dyn FnMut(u64, &[(Value, Value)]) + 'a;

/// A replayable stream of private two-attribute tuples `(a, b)`, delivered in bounded
/// chunks — the [`ChunkedValues`] counterpart for the two-dimensional edge sketches of the
/// multi-way chain estimator. Implementors give the same guarantees: bounded peak memory
/// (one chunk of tuples at a time) and bit-identical replay on every pass.
pub trait ChunkedTuples {
    /// Total number of tuples (users) in the stream.
    fn total_tuples(&self) -> usize;

    /// Upper bound on the length of any chunk passed to the sink.
    fn chunk_len(&self) -> usize;

    /// Replay the stream from the start, feeding each chunk to `sink` together with the
    /// global index of its first tuple. Chunks arrive in order and partition the stream.
    fn for_each_chunk(&self, sink: &mut TupleChunkSink<'_>);
}

/// [`ChunkedTuples`] view of an in-memory tuple slice (mirrors [`SliceChunks`]).
#[derive(Debug, Clone, Copy)]
pub struct TupleSliceChunks<'a> {
    tuples: &'a [(Value, Value)],
    chunk: usize,
}

impl<'a> TupleSliceChunks<'a> {
    /// View `tuples` as a stream of `chunk`-sized chunks.
    ///
    /// # Panics
    /// Panics if `chunk` is zero.
    pub fn new(tuples: &'a [(Value, Value)], chunk: usize) -> Self {
        assert!(chunk > 0, "chunk length must be positive");
        TupleSliceChunks { tuples, chunk }
    }
}

impl ChunkedTuples for TupleSliceChunks<'_> {
    fn total_tuples(&self) -> usize {
        self.tuples.len()
    }

    fn chunk_len(&self) -> usize {
        self.chunk
    }

    fn for_each_chunk(&self, sink: &mut TupleChunkSink<'_>) {
        for (c, chunk) in self.tuples.chunks(self.chunk).enumerate() {
            sink((c * self.chunk) as u64, chunk);
        }
    }
}

/// Collect a chunked tuple stream into a `Vec` (test/diagnostic helper).
pub fn collect_tuple_chunks(source: &dyn ChunkedTuples) -> Vec<(Value, Value)> {
    let mut out = Vec::with_capacity(source.total_tuples());
    source.for_each_chunk(&mut |_, chunk| out.extend_from_slice(chunk));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_chunks_partition_the_slice_in_order() {
        let values: Vec<u64> = (0..1003).collect();
        let source = SliceChunks::new(&values, 64);
        assert_eq!(source.total_values(), 1003);
        assert_eq!(source.chunk_len(), 64);
        let mut starts = Vec::new();
        let mut seen = Vec::new();
        source.for_each_chunk(&mut |start, chunk| {
            assert!(chunk.len() <= 64);
            starts.push(start);
            seen.extend_from_slice(chunk);
        });
        assert_eq!(seen, values);
        assert_eq!(starts[0], 0);
        assert_eq!(starts[1], 64);
        // Replay yields the identical sequence.
        assert_eq!(collect_chunks(&source), values);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_chunk_is_rejected() {
        let _ = SliceChunks::new(&[1, 2, 3], 0);
    }

    #[test]
    fn tuple_chunks_partition_the_slice_in_order() {
        let tuples: Vec<(u64, u64)> = (0..777).map(|i| (i, i * 3)).collect();
        let source = TupleSliceChunks::new(&tuples, 100);
        assert_eq!(source.total_tuples(), 777);
        assert_eq!(source.chunk_len(), 100);
        let mut starts = Vec::new();
        source.for_each_chunk(&mut |start, chunk| {
            assert!(chunk.len() <= 100);
            starts.push(start);
        });
        assert_eq!(starts, vec![0, 100, 200, 300, 400, 500, 600, 700]);
        assert_eq!(collect_tuple_chunks(&source), tuples);
        // Replay yields the identical sequence.
        assert_eq!(collect_tuple_chunks(&source), tuples);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tuple_chunk_is_rejected() {
        let _ = TupleSliceChunks::new(&[(1, 2)], 0);
    }
}
