//! The parallel sharded ingestion engine.
//!
//! LDPJoinSketch is linear in its reports ([`SketchBuilder::merge`]), so an aggregator under
//! heavy report traffic can shard: [`ShardedAggregator`] owns `N` [`SketchBuilder`] shards,
//! splits every incoming batch into contiguous chunks, and absorbs the chunks on scoped
//! worker threads (`std::thread::scope` — no report ever leaves the caller's borrow). The
//! per-report range check is hoisted out of the hot loop: one validation pass over the whole
//! batch up front, then branch-free accumulation on the workers.
//!
//! **Determinism guarantee:** the shards' counters are exact integer report sums (every
//! report contributes `±1` to exactly one counter), so counter-wise merging is associative
//! with no floating-point rounding. [`ShardedAggregator::finalize`] therefore produces
//! restored counters **bit-for-bit identical** to a single [`SketchBuilder`] absorbing the
//! same reports sequentially — for any shard count, any batch sizes, and any thread
//! interleaving. `crate::aggregator::tests` enforces this across shard counts and odd batch
//! sizes.

use ldpjs_common::batch::ReportBatch;
use ldpjs_common::error::{Error, Result};
use ldpjs_common::hash::RowHashes;
use ldpjs_common::privacy::Epsilon;
use ldpjs_metrics::telemetry::{Counter, Gauge};
use ldpjs_sketch::SketchParams;
use std::sync::Arc;

use crate::client::ClientReport;
use crate::server::{FinalizedSketch, SketchBuilder};

/// Telemetry handles an owner (typically the online service) attaches to a live engine.
///
/// Every handle is a pre-registered shared cell, so the hot path records with a couple of
/// relaxed atomic ops and no lock. All of these are *environment* metrics by nature — how
/// work splits across shards and whether the fan-out path runs at all depend on the
/// machine, not the workload seed — so owners should register them with
/// `Stability::Environment`.
#[derive(Debug, Clone, Default)]
pub struct AggregatorInstruments {
    /// Cumulative reports resident in each shard, updated after every successful ingest.
    /// Indexed by shard; extra shards beyond the vector's length go uncounted.
    pub shard_reports: Vec<Gauge>,
    /// Batches absorbed via the scoped-thread fan-out path.
    pub parallel_batches: Counter,
    /// Batches absorbed inline on the caller thread (single shard or single CPU).
    pub inline_batches: Counter,
    /// Rejected multi-shard batches whose already-applied chunks were subtracted back out
    /// (the cross-shard rollback cold path).
    pub rollbacks: Counter,
}

impl AggregatorInstruments {
    /// Refresh the per-shard residency gauges from the engine's shards.
    fn observe_shards(&self, shards: &[SketchBuilder]) {
        for (gauge, shard) in self.shard_reports.iter().zip(shards) {
            gauge.set(shard.reports());
        }
    }
}

/// A parallel, sharded report-ingestion engine producing a [`FinalizedSketch`].
///
/// ```
/// use ldpjs_core::aggregator::ShardedAggregator;
/// use ldpjs_core::client::LdpJoinSketchClient;
/// use ldpjs_core::{Epsilon, SketchParams};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let params = SketchParams::new(8, 256).unwrap();
/// let eps = Epsilon::new(4.0).unwrap();
/// let client = LdpJoinSketchClient::new(params, eps, 7);
/// let mut rng = StdRng::seed_from_u64(1);
/// let reports = client.perturb_all(&[1, 2, 3, 4, 5, 6, 7, 8], &mut rng);
///
/// let mut agg = ShardedAggregator::new(params, eps, 7, 4).unwrap();
/// agg.ingest(&reports).unwrap();
/// let sketch = agg.finalize();
/// assert_eq!(sketch.reports(), 8);
/// ```
#[derive(Debug)]
pub struct ShardedAggregator {
    shards: Vec<SketchBuilder>,
    /// One reusable scatter scratch per shard, so repeated batched ingests on a long-lived
    /// engine allocate nothing in steady state.
    scratches: Vec<Vec<i32>>,
    /// Whether spawning worker threads can actually overlap work, cached at construction
    /// (`std::thread::available_parallelism` reads cgroup state — not a hot-path call).
    /// On a single-CPU host the scoped fan-out only adds spawn/join latency, so the
    /// engine runs its shards on the caller thread instead; the result is bit-identical
    /// either way because shard counters are merged by exact integer addition.
    parallel: bool,
    /// Attached telemetry handles; `None` (the default) keeps every ingest path free of
    /// even the relaxed-atomic accounting, which is what the `telemetry_overhead` bench
    /// lane measures the instrumented path against.
    instruments: Option<AggregatorInstruments>,
}

impl ShardedAggregator {
    /// Create an engine with `num_shards` shards sharing a hash family derived from `seed`.
    ///
    /// # Errors
    /// Returns [`Error::InvalidWorkload`] if `num_shards` is zero.
    pub fn new(params: SketchParams, eps: Epsilon, seed: u64, num_shards: usize) -> Result<Self> {
        let hashes = Arc::new(RowHashes::from_seed(seed, params.rows(), params.columns()));
        Self::with_hashes(params, eps, hashes, num_shards)
    }

    /// Create an engine around an existing shared hash family.
    ///
    /// # Errors
    /// Returns [`Error::InvalidWorkload`] if `num_shards` is zero.
    pub fn with_hashes(
        params: SketchParams,
        eps: Epsilon,
        hashes: Arc<RowHashes>,
        num_shards: usize,
    ) -> Result<Self> {
        if num_shards == 0 {
            return Err(Error::InvalidWorkload(
                "a sharded aggregator needs at least one shard".into(),
            ));
        }
        let shards: Vec<SketchBuilder> = (0..num_shards)
            .map(|_| SketchBuilder::with_hashes(params, eps, Arc::clone(&hashes)))
            .collect();
        let scratches = vec![Vec::new(); num_shards];
        let parallel =
            num_shards > 1 && std::thread::available_parallelism().is_ok_and(|p| p.get() > 1);
        Ok(ShardedAggregator {
            shards,
            scratches,
            parallel,
            instruments: None,
        })
    }

    /// Attach (or with `None`, detach) telemetry handles. Uninstrumented engines pay
    /// nothing; instrumented ones pay a few relaxed atomic ops per ingest call.
    pub fn set_instruments(&mut self, instruments: Option<AggregatorInstruments>) {
        self.instruments = instruments;
    }

    /// Whether this engine absorbs multi-shard batches on worker threads (`true`) or
    /// inline on the caller thread (`false`: single shard, or a single-CPU host).
    #[inline]
    pub fn is_parallel(&self) -> bool {
        self.parallel
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Sketch parameters `(k, m)`.
    #[inline]
    pub fn params(&self) -> SketchParams {
        self.shards[0].params()
    }

    /// Privacy budget of the absorbed reports.
    #[inline]
    pub fn epsilon(&self) -> Epsilon {
        self.shards[0].epsilon()
    }

    /// Total number of reports absorbed across all shards.
    pub fn reports(&self) -> u64 {
        self.shards.iter().map(|s| s.reports()).sum()
    }

    /// Absorb a batch of array-of-structs reports, fanned out across the shards.
    ///
    /// Each shard runs one fused validate-and-apply sweep over its contiguous chunk (the
    /// [`SketchBuilder::absorb_all`] body) — one pass over the report memory instead of
    /// the separate validate-then-accumulate sweeps the engine used before. If any chunk
    /// is rejected, shards that already applied theirs subtract them back out on the cold
    /// path, so a rejected batch leaves the engine untouched. The result is bit-for-bit
    /// the one a single sequential [`SketchBuilder::absorb_all`] would have produced.
    ///
    /// # Errors
    /// Returns [`Error::ReportOutOfRange`] for the first report that does not fit the sketch.
    pub fn ingest(&mut self, reports: &[ClientReport]) -> Result<()> {
        if reports.is_empty() {
            return Ok(());
        }
        if !self.parallel {
            // Single lane anyway: one fused sweep on the caller thread, no spawn/join tax.
            self.shards[0].absorb_all(reports)?;
            if let Some(inst) = &self.instruments {
                inst.inline_batches.inc();
                inst.observe_shards(&self.shards);
            }
            return Ok(());
        }
        let chunk_len = reports.len().div_ceil(self.shards.len());
        let chunks: Vec<&[ClientReport]> = reports.chunks(chunk_len).collect();
        let results: Vec<Result<()>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .zip(chunks.iter())
                .map(|(shard, chunk)| scope.spawn(move || shard.absorb_all(chunk)))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(result) => result,
                    // Propagate a worker panic verbatim instead of minting a new one.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        if results.iter().all(Result::is_ok) {
            if let Some(inst) = &self.instruments {
                inst.parallel_batches.inc();
                inst.observe_shards(&self.shards);
            }
            return Ok(());
        }
        // Cold path: some chunk was rejected. Chunks are contiguous and in order, so the
        // error from the first failing shard names the first offending report; shards
        // that succeeded roll their (validated, applied) chunks back out.
        let mut first_err = None;
        for ((shard, chunk), result) in self.shards.iter_mut().zip(chunks).zip(results) {
            match result {
                Ok(()) => shard.unabsorb_validated(chunk),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if let Some(inst) = &self.instruments {
            inst.rollbacks.inc();
            inst.observe_shards(&self.shards);
        }
        // lint:allow(panic-freedom) — invariant: this branch is only reached when
        // `results` contained at least one `Err`, which the loop above captured.
        Err(first_err.expect("at least one shard failed"))
    }

    /// The frozen pre-batching reference path: one validation sweep over the whole batch,
    /// then contiguous AoS chunks replayed per shard with scalar `f64` adds on scoped
    /// worker threads. Kept verbatim as the bit-identity reference and the baseline the
    /// release perf gate (`tests/perf_smoke.rs`) measures the batched pipeline against.
    ///
    /// # Errors
    /// Returns [`Error::ReportOutOfRange`] for the first report that does not fit the sketch.
    pub fn ingest_reference(&mut self, reports: &[ClientReport]) -> Result<()> {
        self.shards[0].validate_batch(reports)?;
        if reports.is_empty() {
            return Ok(());
        }
        let chunk_len = reports.len().div_ceil(self.shards.len());
        std::thread::scope(|scope| {
            for (shard, chunk) in self.shards.iter_mut().zip(reports.chunks(chunk_len)) {
                scope.spawn(move || shard.accumulate_validated(chunk));
            }
        });
        Ok(())
    }

    /// Absorb an already-packed sign-split report batch in parallel.
    ///
    /// This is the zero-copy ingest entry point for pipelines carrying reports in packed SoA
    /// form end to end: each scoped worker thread scatters its contiguous shard of the batch
    /// through the interleaved histogram kernel into its own counters, reusing a per-shard
    /// scratch buffer so steady-state ingestion allocates nothing. Index validity is a
    /// construction invariant of [`ReportBatch`], so the only check here is the shape check.
    ///
    /// # Errors
    /// Returns [`Error::IncompatibleSketches`] if the batch shape does not match the sketch;
    /// the engine is untouched in that case.
    pub fn ingest_batch(&mut self, batch: &ReportBatch) -> Result<()> {
        let (k, m) = (self.params().rows(), self.params().columns());
        if batch.rows() != k || batch.columns() != m {
            return Err(Error::IncompatibleSketches(format!(
                "report batch is {}x{} but the engine's sketch is {k}x{m}",
                batch.rows(),
                batch.columns(),
            )));
        }
        if batch.is_empty() {
            return Ok(());
        }
        let shards = self.shards.len();
        if !self.parallel {
            // One CPU: run the shard kernels back to back on the caller thread — same
            // counters (exact-integer merge), none of the spawn/join latency.
            let (shard, scratch) = (&mut self.shards[0], &mut self.scratches[0]);
            shard.accumulate_batch_shard(batch, 0, 1, scratch);
            if let Some(inst) = &self.instruments {
                inst.inline_batches.inc();
                inst.observe_shards(&self.shards);
            }
            return Ok(());
        }
        std::thread::scope(|scope| {
            for (i, (shard, scratch)) in self
                .shards
                .iter_mut()
                .zip(self.scratches.iter_mut())
                .enumerate()
            {
                scope.spawn(move || shard.accumulate_batch_shard(batch, i, shards, scratch));
            }
        });
        if let Some(inst) = &self.instruments {
            inst.parallel_batches.inc();
            inst.observe_shards(&self.shards);
        }
        Ok(())
    }

    /// Absorb a batch of reports sequentially into the first shard (useful for trailing
    /// drips of reports that are not worth a thread fan-out).
    ///
    /// # Errors
    /// Returns [`Error::ReportOutOfRange`] for the first report that does not fit the sketch.
    pub fn ingest_sequential(&mut self, reports: &[ClientReport]) -> Result<()> {
        self.shards[0].absorb_all(reports)?;
        if let Some(inst) = &self.instruments {
            inst.inline_batches.inc();
            inst.observe_shards(&self.shards);
        }
        Ok(())
    }

    /// Seal the engine into a single merged [`SketchBuilder`] via the public
    /// [`SketchBuilder::merge`]: counter-wise exact integer addition over the shards, so the
    /// result is bit-for-bit the builder a sequential absorption would have produced.
    ///
    /// This is the epoch-rotation hook of the online sketch service: a sealed window keeps
    /// the merged builder (still mergeable with other windows, still exact) instead of — or
    /// alongside — the finalized estimation view.
    pub fn into_builder(self) -> SketchBuilder {
        let mut shards = self.shards.into_iter();
        let mut merged = shards
            .next()
            // lint:allow(panic-freedom) — invariant: `with_hashes` rejects zero shards,
            // so the engine always holds at least one.
            .expect("engine always holds at least one shard");
        for shard in shards {
            merged
                .merge(&shard)
                // lint:allow(panic-freedom) — invariant: every shard is cloned from one
                // template builder, so parameters, hashes and ε match by construction.
                .expect("shards share parameters, hashes and ε by construction");
        }
        merged
    }

    /// Merge all shards counter-wise and finalize: one de-bias + Hadamard restore pass over
    /// the merged counters, yielding the immutable zero-copy estimation view.
    pub fn finalize(self) -> FinalizedSketch {
        self.into_builder().finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::LdpJoinSketchClient;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn params(k: usize, m: usize) -> SketchParams {
        SketchParams::new(k, m).unwrap()
    }

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn reports_for(n: usize, p: SketchParams, e: Epsilon, seed: u64) -> Vec<ClientReport> {
        let client = LdpJoinSketchClient::new(p, e, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let values: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..500)).collect();
        client.perturb_all(&values, &mut rng)
    }

    #[test]
    fn rejects_zero_shards() {
        assert!(ShardedAggregator::new(params(4, 64), eps(2.0), 1, 0).is_err());
    }

    #[test]
    fn sharded_ingestion_is_bit_for_bit_identical_to_sequential() {
        // Property-style sweep: for every shard count and (odd and awkward) report count,
        // the parallel sharded path must produce restored counters bit-for-bit identical to
        // a single builder absorbing the same reports in order. This is the determinism
        // guarantee the engine's exact-integer counter representation provides.
        let p = params(8, 128);
        let e = eps(3.0);
        for &shards in &[1usize, 2, 4, 7] {
            for &n in &[1usize, 3, 129, 1001, 4097] {
                let reports = reports_for(n, p, e, 77 + shards as u64);
                let mut engine = ShardedAggregator::new(p, e, 77, shards).unwrap();
                engine.ingest(&reports).unwrap();
                assert_eq!(engine.reports(), n as u64);
                let sharded = engine.finalize();

                let mut single = SketchBuilder::new(p, e, 77);
                single.absorb_all(&reports).unwrap();
                let sequential = single.finalize();

                assert_eq!(sharded.reports(), sequential.reports());
                assert_eq!(
                    sharded.restored_counters(),
                    sequential.restored_counters(),
                    "shards={shards} n={n}: sharded restore diverged from sequential"
                );
            }
        }
    }

    #[test]
    fn repeated_batches_accumulate_like_one_stream() {
        // Multiple ingest calls (mixed parallel and sequential) must equal one sequential
        // absorption of the concatenated stream.
        let p = params(6, 64);
        let e = eps(2.0);
        let all = reports_for(5_003, p, e, 9);
        let (first, rest) = all.split_at(1_234);
        let (second, third) = rest.split_at(7);

        let mut engine = ShardedAggregator::new(p, e, 5, 4).unwrap();
        engine.ingest(first).unwrap();
        engine.ingest_sequential(second).unwrap();
        engine.ingest(third).unwrap();
        assert_eq!(engine.reports(), all.len() as u64);

        let mut single = SketchBuilder::new(p, e, 5);
        single.absorb_all(&all).unwrap();
        assert_eq!(
            engine.finalize().restored_counters(),
            single.finalize().restored_counters()
        );
    }

    #[test]
    fn into_builder_seals_the_merged_exact_counters() {
        // Sealing the engine must hand back the same builder a sequential absorption
        // produces, and that builder must remain mergeable (the window-merge path).
        let p = params(8, 128);
        let e = eps(3.0);
        let reports = reports_for(2_501, p, e, 13);
        let (first, second) = reports.split_at(1_200);

        let mut engine_a = ShardedAggregator::new(p, e, 13, 4).unwrap();
        engine_a.ingest(first).unwrap();
        let mut sealed_a = engine_a.into_builder();
        let mut engine_b = ShardedAggregator::new(p, e, 13, 3).unwrap();
        engine_b.ingest(second).unwrap();
        let sealed_b = engine_b.into_builder();
        sealed_a.merge(&sealed_b).unwrap();

        let mut single = SketchBuilder::new(p, e, 13);
        single.absorb_all(&reports).unwrap();
        assert_eq!(sealed_a.reports(), single.reports());
        assert_eq!(
            sealed_a.finalize().restored_counters(),
            single.finalize().restored_counters()
        );
    }

    #[test]
    fn bad_batch_is_rejected_atomically() {
        let p = params(4, 64);
        let e = eps(2.0);
        let mut engine = ShardedAggregator::new(p, e, 1, 2).unwrap();
        let mut reports = reports_for(100, p, e, 3);
        reports[57].col = 64;
        assert!(engine.ingest(&reports).is_err());
        assert_eq!(engine.reports(), 0, "rejected batch must not be absorbed");
    }

    #[test]
    fn instruments_count_batches_and_rollbacks_without_changing_results() {
        use ldpjs_metrics::telemetry::{Stability, Telemetry};
        let p = params(6, 64);
        let e = eps(2.0);
        let telemetry = Telemetry::new();
        let shards = 3usize;
        let inst = AggregatorInstruments {
            shard_reports: (0..shards)
                .map(|i| {
                    telemetry.gauge(
                        &format!("agg_shard_reports{{shard=\"{i}\"}}"),
                        Stability::Environment,
                    )
                })
                .collect(),
            parallel_batches: telemetry
                .counter("agg_parallel_batches_total", Stability::Environment),
            inline_batches: telemetry.counter("agg_inline_batches_total", Stability::Environment),
            rollbacks: telemetry.counter("agg_rollbacks_total", Stability::Environment),
        };
        let reports = reports_for(500, p, e, 21);
        let mut engine = ShardedAggregator::new(p, e, 21, shards).unwrap();
        engine.set_instruments(Some(inst.clone()));
        engine.ingest(&reports).unwrap();
        assert_eq!(
            inst.parallel_batches.get() + inst.inline_batches.get(),
            1,
            "one batch lands on exactly one path"
        );
        let resident: u64 = inst.shard_reports.iter().map(Gauge::get).sum();
        assert_eq!(
            resident, 500,
            "shard residency gauges must sum to the batch"
        );

        // A rejected batch counts a rollback on the multi-shard path (or a plain
        // rejection inline) and leaves both counters and engine untouched.
        let mut bad = reports_for(100, p, e, 22);
        bad[50].col = p.columns() + 1;
        assert!(engine.ingest(&bad).is_err());
        assert_eq!(engine.reports(), 500);
        if engine.is_parallel() {
            assert_eq!(inst.rollbacks.get(), 1);
        }
        let resident: u64 = inst.shard_reports.iter().map(Gauge::get).sum();
        assert_eq!(
            resident, 500,
            "rollback must restore shard residency gauges"
        );

        // The uninstrumented engine produces bit-identical results.
        let mut plain = ShardedAggregator::new(p, e, 21, shards).unwrap();
        plain.ingest(&reports).unwrap();
        assert_eq!(
            engine.finalize().restored_counters(),
            plain.finalize().restored_counters()
        );
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let p = params(4, 64);
        let mut engine = ShardedAggregator::new(p, eps(2.0), 1, 4).unwrap();
        engine.ingest(&[]).unwrap();
        assert_eq!(engine.reports(), 0);
    }

    #[test]
    fn more_shards_than_reports_is_fine() {
        let p = params(4, 64);
        let e = eps(2.0);
        let reports = reports_for(3, p, e, 11);
        let mut engine = ShardedAggregator::new(p, e, 11, 7).unwrap();
        engine.ingest(&reports).unwrap();
        assert_eq!(engine.reports(), 3);
        let mut single = SketchBuilder::new(p, e, 11);
        single.absorb_all(&reports).unwrap();
        assert_eq!(
            engine.finalize().restored_counters(),
            single.finalize().restored_counters()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Tentpole property: the batched bucket-wise ingest (packed `ReportBatch`,
        /// sharded fan-out, SIMD drain) is bit-identical to absorbing the same reports
        /// one `absorb()` call at a time — across batch sizes, shard counts, and report
        /// orders. Order invariance is real, not approximate: counters are exact integer
        /// sums in f64, so ±1 additions commute bitwise.
        #[test]
        fn prop_batched_ingest_is_bit_identical_to_report_by_report(
            n in 1usize..2500,
            shard_pick in 0usize..4,
            seed in any::<u64>(),
        ) {
            let shards = [1usize, 2, 4, 7][shard_pick];
            let p = params(6, 128);
            let e = eps(3.0);
            let mut reports = reports_for(n, p, e, seed);

            // Reference: one report at a time through the frozen scalar path.
            let mut reference = SketchBuilder::new(p, e, 77);
            for &r in &reports {
                reference.absorb(r).unwrap();
            }
            let reference = reference.finalize();

            // Batched single-builder path.
            let mut batched = SketchBuilder::new(p, e, 77);
            batched.absorb_all(&reports).unwrap();
            let batched = batched.finalize();
            prop_assert_eq!(batched.restored_counters(), reference.restored_counters());
            prop_assert_eq!(batched.reports(), reference.reports());

            // Sharded batched path, on a shuffled order of the same reports.
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
            use rand::seq::SliceRandom;
            reports.shuffle(&mut rng);
            let mut engine = ShardedAggregator::new(p, e, 77, shards).unwrap();
            engine.ingest(&reports).unwrap();
            let sharded = engine.finalize();
            prop_assert_eq!(sharded.restored_counters(), reference.restored_counters());
            prop_assert_eq!(sharded.reports(), reference.reports());
        }

        /// A batch containing one out-of-range report must be rejected atomically by both
        /// the batched builder path and the sharded engine: no counter moves, no report
        /// counted, and the builder keeps absorbing cleanly afterwards.
        #[test]
        fn prop_rejected_batch_rolls_back_completely(
            n in 2usize..600,
            bad_pos in any::<u64>(),
            shard_pick in 0usize..4,
            seed in any::<u64>(),
        ) {
            let shards = [1usize, 2, 4, 7][shard_pick];
            let p = params(4, 64);
            let e = eps(2.0);
            let prefix = reports_for(37, p, e, seed ^ 1);
            let mut reports = reports_for(n, p, e, seed);
            let bad_at = (bad_pos % reports.len() as u64) as usize;
            reports[bad_at].col = p.columns() + bad_at;

            let mut builder = SketchBuilder::new(p, e, 9);
            builder.absorb_all(&prefix).unwrap();
            let rejected = matches!(
                builder.absorb_all(&reports),
                Err(Error::ReportOutOfRange { .. })
            );
            prop_assert!(rejected);
            prop_assert_eq!(builder.reports(), prefix.len() as u64);

            let mut engine = ShardedAggregator::new(p, e, 9, shards).unwrap();
            engine.ingest(&prefix).unwrap();
            prop_assert!(engine.ingest(&reports).is_err());
            prop_assert_eq!(engine.reports(), prefix.len() as u64);

            // Both must match a clean absorption of just the prefix, bitwise.
            let mut clean = SketchBuilder::new(p, e, 9);
            clean.absorb_all(&prefix).unwrap();
            let clean = clean.finalize();
            let builder_final = builder.finalize();
            let engine_final = engine.finalize();
            prop_assert_eq!(
                builder_final.restored_counters(),
                clean.restored_counters()
            );
            prop_assert_eq!(
                engine_final.restored_counters(),
                clean.restored_counters()
            );
        }
    }
}
