//! The parallel sharded ingestion engine.
//!
//! LDPJoinSketch is linear in its reports ([`SketchBuilder::merge`]), so an aggregator under
//! heavy report traffic can shard: [`ShardedAggregator`] owns `N` [`SketchBuilder`] shards,
//! splits every incoming batch into contiguous chunks, and absorbs the chunks on scoped
//! worker threads (`std::thread::scope` — no report ever leaves the caller's borrow). The
//! per-report range check is hoisted out of the hot loop: one validation pass over the whole
//! batch up front, then branch-free accumulation on the workers.
//!
//! **Determinism guarantee:** the shards' counters are exact integer report sums (every
//! report contributes `±1` to exactly one counter), so counter-wise merging is associative
//! with no floating-point rounding. [`ShardedAggregator::finalize`] therefore produces
//! restored counters **bit-for-bit identical** to a single [`SketchBuilder`] absorbing the
//! same reports sequentially — for any shard count, any batch sizes, and any thread
//! interleaving. `crate::aggregator::tests` enforces this across shard counts and odd batch
//! sizes.

use ldpjs_common::error::{Error, Result};
use ldpjs_common::hash::RowHashes;
use ldpjs_common::privacy::Epsilon;
use ldpjs_sketch::SketchParams;
use std::sync::Arc;

use crate::client::ClientReport;
use crate::server::{FinalizedSketch, SketchBuilder};

/// A parallel, sharded report-ingestion engine producing a [`FinalizedSketch`].
///
/// ```
/// use ldpjs_core::aggregator::ShardedAggregator;
/// use ldpjs_core::client::LdpJoinSketchClient;
/// use ldpjs_core::{Epsilon, SketchParams};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let params = SketchParams::new(8, 256).unwrap();
/// let eps = Epsilon::new(4.0).unwrap();
/// let client = LdpJoinSketchClient::new(params, eps, 7);
/// let mut rng = StdRng::seed_from_u64(1);
/// let reports = client.perturb_all(&[1, 2, 3, 4, 5, 6, 7, 8], &mut rng);
///
/// let mut agg = ShardedAggregator::new(params, eps, 7, 4).unwrap();
/// agg.ingest(&reports).unwrap();
/// let sketch = agg.finalize();
/// assert_eq!(sketch.reports(), 8);
/// ```
#[derive(Debug)]
pub struct ShardedAggregator {
    shards: Vec<SketchBuilder>,
}

impl ShardedAggregator {
    /// Create an engine with `num_shards` shards sharing a hash family derived from `seed`.
    ///
    /// # Errors
    /// Returns [`Error::InvalidWorkload`] if `num_shards` is zero.
    pub fn new(params: SketchParams, eps: Epsilon, seed: u64, num_shards: usize) -> Result<Self> {
        let hashes = Arc::new(RowHashes::from_seed(seed, params.rows(), params.columns()));
        Self::with_hashes(params, eps, hashes, num_shards)
    }

    /// Create an engine around an existing shared hash family.
    ///
    /// # Errors
    /// Returns [`Error::InvalidWorkload`] if `num_shards` is zero.
    pub fn with_hashes(
        params: SketchParams,
        eps: Epsilon,
        hashes: Arc<RowHashes>,
        num_shards: usize,
    ) -> Result<Self> {
        if num_shards == 0 {
            return Err(Error::InvalidWorkload(
                "a sharded aggregator needs at least one shard".into(),
            ));
        }
        let shards = (0..num_shards)
            .map(|_| SketchBuilder::with_hashes(params, eps, Arc::clone(&hashes)))
            .collect();
        Ok(ShardedAggregator { shards })
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Sketch parameters `(k, m)`.
    #[inline]
    pub fn params(&self) -> SketchParams {
        self.shards[0].params()
    }

    /// Privacy budget of the absorbed reports.
    #[inline]
    pub fn epsilon(&self) -> Epsilon {
        self.shards[0].epsilon()
    }

    /// Total number of reports absorbed across all shards.
    pub fn reports(&self) -> u64 {
        self.shards.iter().map(|s| s.reports()).sum()
    }

    /// Absorb a batch of reports in parallel.
    ///
    /// The batch is validated once up front (range checks hoisted out of the per-report
    /// loop), split into one contiguous chunk per shard, and accumulated by scoped worker
    /// threads. A rejected batch leaves the engine untouched.
    ///
    /// # Errors
    /// Returns [`Error::ReportOutOfRange`] for the first report that does not fit the sketch.
    pub fn ingest(&mut self, reports: &[ClientReport]) -> Result<()> {
        self.shards[0].validate_batch(reports)?;
        if reports.is_empty() {
            return Ok(());
        }
        let chunk_len = reports.len().div_ceil(self.shards.len());
        std::thread::scope(|scope| {
            for (shard, chunk) in self.shards.iter_mut().zip(reports.chunks(chunk_len)) {
                scope.spawn(move || shard.accumulate_validated(chunk));
            }
        });
        Ok(())
    }

    /// Absorb a batch of reports sequentially into the first shard (useful for trailing
    /// drips of reports that are not worth a thread fan-out).
    ///
    /// # Errors
    /// Returns [`Error::ReportOutOfRange`] for the first report that does not fit the sketch.
    pub fn ingest_sequential(&mut self, reports: &[ClientReport]) -> Result<()> {
        self.shards[0].absorb_all(reports)
    }

    /// Seal the engine into a single merged [`SketchBuilder`] via the public
    /// [`SketchBuilder::merge`]: counter-wise exact integer addition over the shards, so the
    /// result is bit-for-bit the builder a sequential absorption would have produced.
    ///
    /// This is the epoch-rotation hook of the online sketch service: a sealed window keeps
    /// the merged builder (still mergeable with other windows, still exact) instead of — or
    /// alongside — the finalized estimation view.
    pub fn into_builder(self) -> SketchBuilder {
        let mut shards = self.shards.into_iter();
        let mut merged = shards
            .next()
            .expect("engine always holds at least one shard");
        for shard in shards {
            merged
                .merge(&shard)
                .expect("shards share parameters, hashes and ε by construction");
        }
        merged
    }

    /// Merge all shards counter-wise and finalize: one de-bias + Hadamard restore pass over
    /// the merged counters, yielding the immutable zero-copy estimation view.
    pub fn finalize(self) -> FinalizedSketch {
        self.into_builder().finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::LdpJoinSketchClient;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn params(k: usize, m: usize) -> SketchParams {
        SketchParams::new(k, m).unwrap()
    }

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn reports_for(n: usize, p: SketchParams, e: Epsilon, seed: u64) -> Vec<ClientReport> {
        let client = LdpJoinSketchClient::new(p, e, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let values: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..500)).collect();
        client.perturb_all(&values, &mut rng)
    }

    #[test]
    fn rejects_zero_shards() {
        assert!(ShardedAggregator::new(params(4, 64), eps(2.0), 1, 0).is_err());
    }

    #[test]
    fn sharded_ingestion_is_bit_for_bit_identical_to_sequential() {
        // Property-style sweep: for every shard count and (odd and awkward) report count,
        // the parallel sharded path must produce restored counters bit-for-bit identical to
        // a single builder absorbing the same reports in order. This is the determinism
        // guarantee the engine's exact-integer counter representation provides.
        let p = params(8, 128);
        let e = eps(3.0);
        for &shards in &[1usize, 2, 4, 7] {
            for &n in &[1usize, 3, 129, 1001, 4097] {
                let reports = reports_for(n, p, e, 77 + shards as u64);
                let mut engine = ShardedAggregator::new(p, e, 77, shards).unwrap();
                engine.ingest(&reports).unwrap();
                assert_eq!(engine.reports(), n as u64);
                let sharded = engine.finalize();

                let mut single = SketchBuilder::new(p, e, 77);
                single.absorb_all(&reports).unwrap();
                let sequential = single.finalize();

                assert_eq!(sharded.reports(), sequential.reports());
                assert_eq!(
                    sharded.restored_counters(),
                    sequential.restored_counters(),
                    "shards={shards} n={n}: sharded restore diverged from sequential"
                );
            }
        }
    }

    #[test]
    fn repeated_batches_accumulate_like_one_stream() {
        // Multiple ingest calls (mixed parallel and sequential) must equal one sequential
        // absorption of the concatenated stream.
        let p = params(6, 64);
        let e = eps(2.0);
        let all = reports_for(5_003, p, e, 9);
        let (first, rest) = all.split_at(1_234);
        let (second, third) = rest.split_at(7);

        let mut engine = ShardedAggregator::new(p, e, 5, 4).unwrap();
        engine.ingest(first).unwrap();
        engine.ingest_sequential(second).unwrap();
        engine.ingest(third).unwrap();
        assert_eq!(engine.reports(), all.len() as u64);

        let mut single = SketchBuilder::new(p, e, 5);
        single.absorb_all(&all).unwrap();
        assert_eq!(
            engine.finalize().restored_counters(),
            single.finalize().restored_counters()
        );
    }

    #[test]
    fn into_builder_seals_the_merged_exact_counters() {
        // Sealing the engine must hand back the same builder a sequential absorption
        // produces, and that builder must remain mergeable (the window-merge path).
        let p = params(8, 128);
        let e = eps(3.0);
        let reports = reports_for(2_501, p, e, 13);
        let (first, second) = reports.split_at(1_200);

        let mut engine_a = ShardedAggregator::new(p, e, 13, 4).unwrap();
        engine_a.ingest(first).unwrap();
        let mut sealed_a = engine_a.into_builder();
        let mut engine_b = ShardedAggregator::new(p, e, 13, 3).unwrap();
        engine_b.ingest(second).unwrap();
        let sealed_b = engine_b.into_builder();
        sealed_a.merge(&sealed_b).unwrap();

        let mut single = SketchBuilder::new(p, e, 13);
        single.absorb_all(&reports).unwrap();
        assert_eq!(sealed_a.reports(), single.reports());
        assert_eq!(
            sealed_a.finalize().restored_counters(),
            single.finalize().restored_counters()
        );
    }

    #[test]
    fn bad_batch_is_rejected_atomically() {
        let p = params(4, 64);
        let e = eps(2.0);
        let mut engine = ShardedAggregator::new(p, e, 1, 2).unwrap();
        let mut reports = reports_for(100, p, e, 3);
        reports[57].col = 64;
        assert!(engine.ingest(&reports).is_err());
        assert_eq!(engine.reports(), 0, "rejected batch must not be absorbed");
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let p = params(4, 64);
        let mut engine = ShardedAggregator::new(p, eps(2.0), 1, 4).unwrap();
        engine.ingest(&[]).unwrap();
        assert_eq!(engine.reports(), 0);
    }

    #[test]
    fn more_shards_than_reports_is_fine() {
        let p = params(4, 64);
        let e = eps(2.0);
        let reports = reports_for(3, p, e, 11);
        let mut engine = ShardedAggregator::new(p, e, 11, 7).unwrap();
        engine.ingest(&reports).unwrap();
        assert_eq!(engine.reports(), 3);
        let mut single = SketchBuilder::new(p, e, 11);
        single.absorb_all(&reports).unwrap();
        assert_eq!(
            engine.finalize().restored_counters(),
            single.finalize().restored_counters()
        );
    }
}
