//! Analytical error bounds (Theorems 4 and 5).
//!
//! The paper bounds the variance of each per-row estimator by
//! `Var[M_A[j]·M_B[j]] ≤ (2/m)·(F1(A) + (k·c_ε²−1)/2)²·(F1(B) + (k·c_ε²−1)/2)²`
//! and the error of the median-combined estimate by
//! `Pr[|Est − |A⋈B|| ≥ (4/√m)·(F1(A)+(k·c_ε²−1)/2)·(F1(B)+(k·c_ε²−1)/2)] ≤ δ`
//! with `k = 4·log(1/δ)`.
//!
//! These quantities are useful for choosing `(k, m)` given table sizes and for sanity-checking
//! measured errors in the experiments (EXPERIMENTS.md reports both).

use ldpjs_common::privacy::Epsilon;
use ldpjs_sketch::SketchParams;

/// The "privacy inflation" term `(k·c_ε² − 1)/2` that LDP adds to each table's `F1` in the
/// bounds. The paper notes it is much smaller than `F1` for realistic table sizes.
pub fn privacy_inflation(params: SketchParams, eps: Epsilon) -> f64 {
    let c = eps.c_eps();
    (params.rows() as f64 * c * c - 1.0) / 2.0
}

/// Upper bound on the variance of one per-row estimator (Theorem 4).
pub fn row_estimator_variance_bound(
    params: SketchParams,
    eps: Epsilon,
    f1_a: f64,
    f1_b: f64,
) -> f64 {
    let infl = privacy_inflation(params, eps);
    let m = params.columns() as f64;
    (2.0 / m) * (f1_a + infl).powi(2) * (f1_b + infl).powi(2)
}

/// The error radius of Theorem 5: with probability at least `1 − δ` (for `k = 4·log(1/δ)`)
/// the absolute estimation error stays below `(4/√m)·(F1(A)+infl)·(F1(B)+infl)`.
pub fn error_bound(params: SketchParams, eps: Epsilon, f1_a: f64, f1_b: f64) -> f64 {
    let infl = privacy_inflation(params, eps);
    let m = params.columns() as f64;
    (4.0 / m.sqrt()) * (f1_a + infl) * (f1_b + infl)
}

/// The failure probability `δ = e^{-k/4}` implied by the number of rows `k` (inverse of the
/// `k = 4·log(1/δ)` relation used in Theorem 5 and in Fig. 9(e)–(h)'s parameter grid).
pub fn failure_probability(params: SketchParams) -> f64 {
    (-(params.rows() as f64) / 4.0).exp()
}

// ---------------------------------------------------------------------------------------
// Group-aware extensions for the phase-2 partials of LDPJoinSketch+ (the large-n regime
// subsystem). Theorems 4/5 bound one sketch pair over full tables; phase 2 runs the same
// estimator over *groups* `A_g ⊆ A`, `B_g ⊆ B` and rescales the partial estimate by
// `scale_g = (|A|/|A_g|)·(|B|/|B_g|)`. Both the variance and the error radius therefore
// apply with the group F1s and an extra `scale_g` (radius) / `scale_g²` (variance) factor —
// the "noise amplification" the ROADMAP's parity analysis identified. These bounds are what
// the confidence-driven estimator uses to (a) damp a noise-dominated partial and (b) keep
// an inflated empirical spread from silently zeroing a signal-bearing partial.
// ---------------------------------------------------------------------------------------

/// Median-combiner variance factor: for `k` independent per-row estimators combined by the
/// sample median, the asymptotic variance is `(π/2)·Var_row/k`.
fn median_combiner_factor(params: SketchParams) -> f64 {
    std::f64::consts::FRAC_PI_2 / params.rows() as f64
}

/// Theorem 4, group-aware: upper bound on the variance of the *rescaled* phase-2 partial
/// `scale_g·median_j Est_j` over groups with first moments `f1_a_group`, `f1_b_group`.
pub fn group_variance_bound(
    params: SketchParams,
    eps: Epsilon,
    f1_a_group: f64,
    f1_b_group: f64,
    scale: f64,
) -> f64 {
    scale
        * scale
        * median_combiner_factor(params)
        * row_estimator_variance_bound(params, eps, f1_a_group, f1_b_group)
}

/// Theorem 5, group-aware: the confidence radius of the rescaled phase-2 partial — the
/// full-table radius evaluated at the group F1s, amplified by `scale_g`.
pub fn group_error_bound(
    params: SketchParams,
    eps: Epsilon,
    f1_a_group: f64,
    f1_b_group: f64,
    scale: f64,
) -> f64 {
    scale * error_bound(params, eps, f1_a_group, f1_b_group)
}

/// Variance of the median-of-rows frequency estimate `f̃_med(d)` of a sketch holding
/// `reports` users with second frequency moment `f2`:
///
/// `Var[f̃_med(d)] ≈ (π/(2k)) · ( F2/m + reports·k·c_ε² )`.
///
/// Per row, `M[j,h_j(d)]·ξ_j(d) = f(d) + collisions + noise`: every other value collides
/// with probability `1/m` contributing its squared frequency (`(F2−f(d)²)/m ≤ F2/m`), and
/// the restored counter carries LDP noise of variance `reports·k·c_ε²` (`k` from the
/// row-sampling de-bias, `c_ε` from randomized response — the constant is validated
/// empirically in `FinalizedSketch`'s tests). The median over `k` rows contributes the
/// asymptotic `π/(2k)` factor.
pub fn frequency_variance(params: SketchParams, eps: Epsilon, reports: f64, f2: f64) -> f64 {
    let c = eps.c_eps();
    let per_row = f2 / params.columns() as f64 + reports * params.rows() as f64 * c * c;
    median_combiner_factor(params) * per_row
}

/// The adaptive phase-1 threshold of LDPJoinSketch+'s confidence-driven mode: the smallest
/// share `θ` of the phase-1 sample that clears the frequent-item detection noise floor with
/// a `z ≈ 3` sigma margin,
///
/// `θ = z·√(Var[f̃_med]) / sample_reports`,
///
/// clamped into `[1/√(m·k), 0.5]` — the lower clamp is the `1/√(mk)` floor below which FI
/// discovery drowns in sketch noise (the regime the fixed-θ parity tests had to hand-tune
/// around), the upper keeps at least the majority value detectable.
pub fn adaptive_phase1_threshold(
    params: SketchParams,
    eps: Epsilon,
    sample_reports: f64,
    f2_estimate: f64,
) -> f64 {
    const Z: f64 = 3.0;
    if sample_reports <= 0.0 {
        return 0.5;
    }
    let sigma = frequency_variance(params, eps, sample_reports, f2_estimate.max(0.0)).sqrt();
    let floor = 1.0 / ((params.columns() * params.rows()) as f64).sqrt();
    (Z * sigma / sample_reports).clamp(floor, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(k: usize, m: usize) -> SketchParams {
        SketchParams::new(k, m).unwrap()
    }

    fn e(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn inflation_shrinks_with_epsilon() {
        // c_ε → 1 as ε → ∞, so the inflation tends to (k−1)/2.
        let params = p(18, 1024);
        let large = privacy_inflation(params, e(10.0));
        let small = privacy_inflation(params, e(0.5));
        assert!(large < small);
        assert!(large >= (18.0 - 1.0) / 2.0 - 1.0);
        assert!((privacy_inflation(params, e(50.0)) - 8.5).abs() < 0.1);
    }

    #[test]
    fn inflation_is_negligible_for_large_tables() {
        // The paper's claim: (k·c_ε²−1)/2 << F1 in realistic settings.
        let infl = privacy_inflation(p(18, 1024), e(4.0));
        assert!(infl < 100.0, "inflation {infl}");
        assert!(infl / 40_000_000.0 < 1e-4);
    }

    #[test]
    fn error_bound_decreases_with_m() {
        let f1 = 1.0e6;
        let b_small = error_bound(p(18, 1024), e(4.0), f1, f1);
        let b_large = error_bound(p(18, 16384), e(4.0), f1, f1);
        assert!(b_large < b_small);
        // Quadrupling m halves the bound (1/√m scaling).
        let b_4x = error_bound(p(18, 4096), e(4.0), f1, f1);
        assert!((b_small / b_4x - 2.0).abs() < 1e-9);
    }

    #[test]
    fn variance_bound_matches_formula() {
        let params = p(9, 256);
        let eps = e(2.0);
        let infl = privacy_inflation(params, eps);
        let expected = (2.0 / 256.0) * (1000.0 + infl).powi(2) * (2000.0 + infl).powi(2);
        assert!(
            (row_estimator_variance_bound(params, eps, 1000.0, 2000.0) - expected).abs() < 1e-6
        );
    }

    #[test]
    fn group_bounds_reduce_to_full_table_bounds_at_scale_one() {
        let params = p(18, 1024);
        let eps = e(4.0);
        let (f1a, f1b) = (1.0e6, 2.0e6);
        // scale = 1, full-table F1s: the radius is exactly Theorem 5's.
        assert!(
            (group_error_bound(params, eps, f1a, f1b, 1.0) - error_bound(params, eps, f1a, f1b))
                .abs()
                < 1e-9
        );
        // The variance bound at scale 1 is the per-row bound times the median factor.
        let expected = (std::f64::consts::FRAC_PI_2 / 18.0)
            * row_estimator_variance_bound(params, eps, f1a, f1b);
        assert!((group_variance_bound(params, eps, f1a, f1b, 1.0) - expected).abs() < 1e-9);
    }

    #[test]
    fn group_bounds_amplify_with_the_rescale() {
        let params = p(12, 256);
        let eps = e(4.0);
        // Halving the groups (scale 4 = (1/0.5)·(1/0.5)) amplifies the radius by 4 but the
        // group F1s shrink by 2 each, so the net radius equals the full-table one — the
        // exact cancellation that makes the *absolute* partial error scale-free and the
        // noise amplification argument about the privacy-inflation term only.
        let full = group_error_bound(params, eps, 1.0e6, 1.0e6, 1.0);
        let halved = group_error_bound(params, eps, 0.5e6, 0.5e6, 4.0);
        let infl = privacy_inflation(params, eps);
        assert!(halved > full, "inflation must amplify under rescaling");
        // Exact relation: halved = 4·(f/2+i)² vs full = (f+i)²·(4/√m)… ratio → 1 as i → 0.
        let ratio = halved / full;
        let predicted = 4.0 * (0.5e6 + infl).powi(2) / (1.0e6 + infl).powi(2);
        assert!((ratio - predicted).abs() < 1e-9);
        // Variance bound amplifies with scale² for fixed group F1s.
        let v1 = group_variance_bound(params, eps, 1.0e4, 1.0e4, 1.0);
        let v3 = group_variance_bound(params, eps, 1.0e4, 1.0e4, 3.0);
        assert!((v3 / v1 - 9.0).abs() < 1e-9);
    }

    #[test]
    fn adaptive_threshold_clears_the_noise_floor_and_clamps() {
        let params = p(18, 64);
        let eps = e(4.0);
        // Realistic phase-1 sample of a skewed 200k-user table: θ must land between the
        // 1/√(mk) floor and 0.5, and decrease when the sketch gets wider (less collision
        // noise to clear).
        let n_s = 200_000.0;
        let f2 = 0.4 * n_s * n_s;
        let theta = adaptive_phase1_threshold(params, eps, n_s, f2);
        let floor = 1.0 / ((64.0f64 * 18.0).sqrt());
        assert!(theta >= floor && theta <= 0.5, "theta {theta}");
        let wide = adaptive_phase1_threshold(p(18, 1024), eps, n_s, f2);
        assert!(wide < theta, "wider sketch should allow a lower threshold");
        // Degenerate inputs stay safe.
        assert_eq!(adaptive_phase1_threshold(params, eps, 0.0, f2), 0.5);
        let neg_f2 = adaptive_phase1_threshold(params, eps, n_s, -5.0);
        assert!(neg_f2 >= floor && neg_f2 <= 0.5);
    }

    #[test]
    fn frequency_variance_grows_with_f2_and_reports() {
        let params = p(18, 128);
        let eps = e(4.0);
        let base = frequency_variance(params, eps, 1.0e5, 1.0e9);
        assert!(frequency_variance(params, eps, 1.0e5, 2.0e9) > base);
        assert!(frequency_variance(params, eps, 2.0e5, 1.0e9) > base);
        // Wider sketch → smaller collision term.
        assert!(frequency_variance(p(18, 1024), eps, 1.0e5, 1.0e9) < base);
    }

    #[test]
    fn failure_probability_matches_k() {
        // k = 4·log(1/δ) ⇒ δ = e^{-k/4}.
        assert!((failure_probability(p(9, 64)) - (-2.25f64).exp()).abs() < 1e-12);
        assert!(failure_probability(p(36, 64)) < failure_probability(p(18, 64)));
        // k = 18 corresponds to δ ≈ 0.011, matching the paper's δ ∈ {…, 0.01, …} grid.
        let delta_18 = failure_probability(p(18, 64));
        assert!(delta_18 > 0.005 && delta_18 < 0.02);
    }
}
