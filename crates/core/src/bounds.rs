//! Analytical error bounds (Theorems 4 and 5).
//!
//! The paper bounds the variance of each per-row estimator by
//! `Var[M_A[j]·M_B[j]] ≤ (2/m)·(F1(A) + (k·c_ε²−1)/2)²·(F1(B) + (k·c_ε²−1)/2)²`
//! and the error of the median-combined estimate by
//! `Pr[|Est − |A⋈B|| ≥ (4/√m)·(F1(A)+(k·c_ε²−1)/2)·(F1(B)+(k·c_ε²−1)/2)] ≤ δ`
//! with `k = 4·log(1/δ)`.
//!
//! These quantities are useful for choosing `(k, m)` given table sizes and for sanity-checking
//! measured errors in the experiments (EXPERIMENTS.md reports both).

use ldpjs_common::privacy::Epsilon;
use ldpjs_sketch::SketchParams;

/// The "privacy inflation" term `(k·c_ε² − 1)/2` that LDP adds to each table's `F1` in the
/// bounds. The paper notes it is much smaller than `F1` for realistic table sizes.
pub fn privacy_inflation(params: SketchParams, eps: Epsilon) -> f64 {
    let c = eps.c_eps();
    (params.rows() as f64 * c * c - 1.0) / 2.0
}

/// Upper bound on the variance of one per-row estimator (Theorem 4).
pub fn row_estimator_variance_bound(
    params: SketchParams,
    eps: Epsilon,
    f1_a: f64,
    f1_b: f64,
) -> f64 {
    let infl = privacy_inflation(params, eps);
    let m = params.columns() as f64;
    (2.0 / m) * (f1_a + infl).powi(2) * (f1_b + infl).powi(2)
}

/// The error radius of Theorem 5: with probability at least `1 − δ` (for `k = 4·log(1/δ)`)
/// the absolute estimation error stays below `(4/√m)·(F1(A)+infl)·(F1(B)+infl)`.
pub fn error_bound(params: SketchParams, eps: Epsilon, f1_a: f64, f1_b: f64) -> f64 {
    let infl = privacy_inflation(params, eps);
    let m = params.columns() as f64;
    (4.0 / m.sqrt()) * (f1_a + infl) * (f1_b + infl)
}

/// The failure probability `δ = e^{-k/4}` implied by the number of rows `k` (inverse of the
/// `k = 4·log(1/δ)` relation used in Theorem 5 and in Fig. 9(e)–(h)'s parameter grid).
pub fn failure_probability(params: SketchParams) -> f64 {
    (-(params.rows() as f64) / 4.0).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(k: usize, m: usize) -> SketchParams {
        SketchParams::new(k, m).unwrap()
    }

    fn e(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn inflation_shrinks_with_epsilon() {
        // c_ε → 1 as ε → ∞, so the inflation tends to (k−1)/2.
        let params = p(18, 1024);
        let large = privacy_inflation(params, e(10.0));
        let small = privacy_inflation(params, e(0.5));
        assert!(large < small);
        assert!(large >= (18.0 - 1.0) / 2.0 - 1.0);
        assert!((privacy_inflation(params, e(50.0)) - 8.5).abs() < 0.1);
    }

    #[test]
    fn inflation_is_negligible_for_large_tables() {
        // The paper's claim: (k·c_ε²−1)/2 << F1 in realistic settings.
        let infl = privacy_inflation(p(18, 1024), e(4.0));
        assert!(infl < 100.0, "inflation {infl}");
        assert!(infl / 40_000_000.0 < 1e-4);
    }

    #[test]
    fn error_bound_decreases_with_m() {
        let f1 = 1.0e6;
        let b_small = error_bound(p(18, 1024), e(4.0), f1, f1);
        let b_large = error_bound(p(18, 16384), e(4.0), f1, f1);
        assert!(b_large < b_small);
        // Quadrupling m halves the bound (1/√m scaling).
        let b_4x = error_bound(p(18, 4096), e(4.0), f1, f1);
        assert!((b_small / b_4x - 2.0).abs() < 1e-9);
    }

    #[test]
    fn variance_bound_matches_formula() {
        let params = p(9, 256);
        let eps = e(2.0);
        let infl = privacy_inflation(params, eps);
        let expected = (2.0 / 256.0) * (1000.0 + infl).powi(2) * (2000.0 + infl).powi(2);
        assert!(
            (row_estimator_variance_bound(params, eps, 1000.0, 2000.0) - expected).abs() < 1e-6
        );
    }

    #[test]
    fn failure_probability_matches_k() {
        // k = 4·log(1/δ) ⇒ δ = e^{-k/4}.
        assert!((failure_probability(p(9, 64)) - (-2.25f64).exp()).abs() < 1e-12);
        assert!(failure_probability(p(36, 64)) < failure_probability(p(18, 64)));
        // k = 18 corresponds to δ ≈ 0.011, matching the paper's δ ∈ {…, 0.01, …} grid.
        let delta_18 = failure_probability(p(18, 64));
        assert!(delta_18 > 0.005 && delta_18 < 0.02);
    }
}
