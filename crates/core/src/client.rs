//! Client-side of LDPJoinSketch (Algorithm 1).
//!
//! Given a private join value `d`, the client
//!
//! 1. samples a sketch row `j ∈ [k]` and a Hadamard coordinate `l ∈ [m]` uniformly,
//! 2. encodes `d` as the one-hot vector `v` with `v[h_j(d)] = ξ_j(d)`,
//! 3. takes the Hadamard transform `w = v·H_m` — because `v` has a single non-zero entry this
//!    is just `w[l] = H_m[h_j(d), l]·ξ_j(d)`,
//! 4. flips the sign of `w[l]` with probability `1/(e^ε+1)` (binary randomized response), and
//! 5. reports `(y, j, l)`.
//!
//! The only difference from Apple-HCMS's client is step 2: HCMS encodes `v[h_j(d)] = 1`,
//! LDPJoinSketch encodes the fast-AGMS sign `ξ_j(d)` so that sketch *products* estimate join
//! sizes (Theorem 1 proves the output distribution still satisfies ε-LDP).

use ldpjs_common::batch::ReportBatch;
use ldpjs_common::error::{Error, Result};
use ldpjs_common::hadamard::hadamard_entry_f64;
use ldpjs_common::hash::RowHashes;
use ldpjs_common::privacy::Epsilon;
use ldpjs_common::rr::sample_sign_bit;
use ldpjs_sketch::SketchParams;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::sync::Arc;

/// Number of values per deterministic RNG stream in the parallel perturbation fan-out.
///
/// The fan-out seeds one independent `StdRng` per fixed-size chunk of the input, so the
/// produced reports depend only on `(values, base_seed)` — **not** on the worker-thread
/// count — and a run is reproducible on any machine.
pub const PARALLEL_PERTURB_CHUNK: usize = 8_192;

/// Derive the RNG seed of one perturbation chunk from the caller's base seed (SplitMix64
/// finalizer over the chunk index, so neighbouring chunks get well-separated streams).
/// Shared with the streaming protocol runners, which seed one client-simulation RNG per
/// stream chunk the same way.
#[inline]
pub(crate) fn chunk_stream_seed(base_seed: u64, chunk_index: u64) -> u64 {
    let mut z = base_seed ^ chunk_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fan a value slice out over `threads` scoped workers, perturbing each fixed-size chunk
/// with its own deterministic RNG stream. Shared by [`LdpJoinSketchClient::perturb_all_parallel`]
/// and [`crate::fap::FapClient::perturb_all_parallel`].
///
/// `fill` perturbs one whole chunk at a time into its output slot (same length as the
/// chunk), so clients can run their batched two-phase kernels per chunk instead of paying a
/// dynamic per-value call.
pub(crate) fn perturb_chunks_parallel<F>(
    values: &[u64],
    base_seed: u64,
    threads: usize,
    fill: F,
) -> Vec<ClientReport>
where
    F: Fn(&[u64], &mut StdRng, &mut [ClientReport]) + Sync,
{
    let mut reports = Vec::new();
    perturb_chunks_parallel_into(values, base_seed, threads, &mut reports, fill);
    reports
}

/// [`perturb_chunks_parallel`] into a caller-owned, reusable report buffer (cleared and
/// resized to `values.len()`), so chunked streaming drivers stop allocating a fresh report
/// vector per stream chunk.
pub(crate) fn perturb_chunks_parallel_into<F>(
    values: &[u64],
    base_seed: u64,
    threads: usize,
    reports: &mut Vec<ClientReport>,
    fill: F,
) where
    F: Fn(&[u64], &mut StdRng, &mut [ClientReport]) + Sync,
{
    reports.clear();
    reports.resize(
        values.len(),
        ClientReport {
            y: 0.0,
            row: 0,
            col: 0,
        },
    );
    // Requesting more workers than the machine has cores only adds scheduling overhead
    // (the chunk→stream mapping below makes the output identical either way), so clamp to
    // the actual parallelism, and to the number of chunks there are to hand out.
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let chunks = values.len().div_ceil(PARALLEL_PERTURB_CHUNK).max(1);
    let threads = threads.clamp(1, available).min(chunks);
    if threads == 1 {
        // Single effective worker: run inline, skipping thread spawn entirely. Chunk c's
        // RNG stream still depends only on (base_seed, c), so this path is bit-identical
        // to the fan-out below at any requested thread count.
        for (c, (vals, out)) in values
            .chunks(PARALLEL_PERTURB_CHUNK)
            .zip(reports.chunks_mut(PARALLEL_PERTURB_CHUNK))
            .enumerate()
        {
            let mut rng = StdRng::seed_from_u64(chunk_stream_seed(base_seed, c as u64));
            fill(vals, &mut rng, out);
        }
        return;
    }
    // Round-robin the fixed-size chunks over the workers: chunk c's RNG stream depends only
    // on (base_seed, c), so the thread count never changes the output.
    type ChunkTask<'a> = (u64, &'a [u64], &'a mut [ClientReport]);
    let mut worker_tasks: Vec<Vec<ChunkTask<'_>>> = (0..threads).map(|_| Vec::new()).collect();
    for (c, (vals, out)) in values
        .chunks(PARALLEL_PERTURB_CHUNK)
        .zip(reports.chunks_mut(PARALLEL_PERTURB_CHUNK))
        .enumerate()
    {
        worker_tasks[c % threads].push((c as u64, vals, out));
    }
    let fill = &fill;
    std::thread::scope(|scope| {
        for tasks in worker_tasks {
            scope.spawn(move || {
                for (c, vals, out) in tasks {
                    let mut rng = StdRng::seed_from_u64(chunk_stream_seed(base_seed, c));
                    fill(vals, &mut rng, out);
                }
            });
        }
    });
}

/// One perturbed client report `(y, j, l)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientReport {
    /// The perturbed Hadamard coefficient, always ±1.
    pub y: f64,
    /// The sampled sketch row `j ∈ [k]`.
    pub row: usize,
    /// The sampled Hadamard coordinate `l ∈ [m]`.
    pub col: usize,
}

impl ClientReport {
    /// Size of the compact wire encoding in bytes.
    pub const WIRE_SIZE: usize = 5;

    /// Encode the report into the 5-byte wire format actually shipped to the aggregator:
    /// one sign byte followed by the row and column as little-endian `u16`s.
    ///
    /// # Panics
    /// Panics if `row` or `col` does not fit in 16 bits (sketches that large are outside the
    /// supported parameter range — the Hadamard order is capped well below 2¹⁶ in practice).
    pub fn to_wire(&self) -> [u8; Self::WIRE_SIZE] {
        assert!(
            self.row <= u16::MAX as usize,
            "row {} does not fit the wire format",
            self.row
        );
        assert!(
            self.col <= u16::MAX as usize,
            "col {} does not fit the wire format",
            self.col
        );
        let row = (self.row as u16).to_le_bytes();
        let col = (self.col as u16).to_le_bytes();
        [
            if self.y >= 0.0 { 1 } else { 0 },
            row[0],
            row[1],
            col[0],
            col[1],
        ]
    }

    /// Decode a report from its wire encoding. The caller (the server) still validates the
    /// indices against its sketch dimensions when absorbing the report.
    pub fn from_wire(bytes: [u8; Self::WIRE_SIZE]) -> Self {
        ClientReport {
            y: if bytes[0] != 0 { 1.0 } else { -1.0 },
            row: u16::from_le_bytes([bytes[1], bytes[2]]) as usize,
            col: u16::from_le_bytes([bytes[3], bytes[4]]) as usize,
        }
    }
}

/// The client-side encoder/perturber of LDPJoinSketch.
///
/// The hash family is public protocol state shared with the server, so it is held behind an
/// [`Arc`] and can be cloned cheaply into many simulated clients.
#[derive(Debug, Clone)]
pub struct LdpJoinSketchClient {
    params: SketchParams,
    eps: Epsilon,
    hashes: Arc<RowHashes>,
}

impl LdpJoinSketchClient {
    /// Create a client for the sketch described by `params`, privacy budget `eps`, and the
    /// public hash-family seed `seed`.
    pub fn new(params: SketchParams, eps: Epsilon, seed: u64) -> Self {
        let hashes = Arc::new(RowHashes::from_seed(seed, params.rows(), params.columns()));
        LdpJoinSketchClient {
            params,
            eps,
            hashes,
        }
    }

    /// Create a client that shares an already-derived hash family (used by the server and by
    /// FAP so that every participant agrees on `(h_j, ξ_j)`).
    pub fn with_hashes(params: SketchParams, eps: Epsilon, hashes: Arc<RowHashes>) -> Self {
        debug_assert_eq!(hashes.rows(), params.rows());
        debug_assert_eq!(hashes.columns(), params.columns());
        LdpJoinSketchClient {
            params,
            eps,
            hashes,
        }
    }

    /// Sketch parameters `(k, m)`.
    #[inline]
    pub fn params(&self) -> SketchParams {
        self.params
    }

    /// The privacy budget ε.
    #[inline]
    pub fn epsilon(&self) -> Epsilon {
        self.eps
    }

    /// The shared public hash family.
    #[inline]
    pub fn hashes(&self) -> &Arc<RowHashes> {
        &self.hashes
    }

    /// Algorithm 1: encode and perturb one private value.
    pub fn perturb(&self, value: u64, rng: &mut dyn RngCore) -> ClientReport {
        let k = self.params.rows();
        let m = self.params.columns();
        // Line 1: sample j ~ U[k], l ~ U[m].
        let row = rng.gen_range(0..k);
        let col = rng.gen_range(0..m);
        // Lines 2–4: v[h_j(d)] = ξ_j(d); w = v·H_m; keep only w[l].
        let pair = self.hashes.pair(row);
        let bucket = pair.bucket_of(value);
        let sign = pair.sign_of(value) as f64;
        let w_l = hadamard_entry_f64(m, bucket, col) * sign;
        // Lines 5–6: randomized response on the sampled coefficient.
        let y = sample_sign_bit(rng, self.eps) * w_l;
        ClientReport { y, row, col }
    }

    /// Perturb a whole slice of values (one simulated client per element).
    ///
    /// Runs the batched two-phase pipeline of [`LdpJoinSketchClient::perturb_all_into`];
    /// the reports are bit-identical to calling [`LdpJoinSketchClient::perturb`] per value
    /// with the same RNG.
    pub fn perturb_all<R: RngCore + ?Sized>(
        &self,
        values: &[u64],
        rng: &mut R,
    ) -> Vec<ClientReport> {
        let mut out = Vec::new();
        self.perturb_all_into(values, rng, &mut out);
        out
    }

    /// Perturb a whole slice of values into a caller-owned, reusable report buffer.
    ///
    /// `out` is cleared and refilled; chunked streaming drivers reuse one buffer across
    /// chunks instead of allocating a fresh `Vec<ClientReport>` per chunk.
    ///
    /// The pipeline is split in two phases so the hot math runs in a branch-light batched
    /// lane without perturbing the RNG stream:
    ///
    /// 1. **Scalar RNG phase** — for each value, draw `(j, l, flip)` in exactly the order
    ///    the scalar [`LdpJoinSketchClient::perturb`] draws them, parking the randomized-
    ///    response sign in the report's `y` slot. The RNG therefore consumes the identical
    ///    stream, keeping every pinned-seed experiment bit-for-bit reproducible.
    /// 2. **Batched hash phase** — one RNG-free pass computing, per lane, the fused
    ///    bucket/sign hash (a single Mersenne reduction via
    ///    [`ldpjs_common::hash::HashPair::bucket_and_sign_neg`]), the Hadamard entry as a
    ///    popcount parity, and the final sign as an XOR on the `f64` sign bit — exact,
    ///    because multiplying by `±1.0` is precisely a sign-bit flip.
    pub fn perturb_all_into<R: RngCore + ?Sized>(
        &self,
        values: &[u64],
        rng: &mut R,
        out: &mut Vec<ClientReport>,
    ) {
        out.clear();
        out.resize(
            values.len(),
            ClientReport {
                y: 0.0,
                row: 0,
                col: 0,
            },
        );
        self.fill_reports(values, rng, out);
    }

    /// The two-phase batched kernel behind [`LdpJoinSketchClient::perturb_all_into`] and the
    /// parallel fan-out: fill `out` (same length as `values`) with perturbed reports.
    pub(crate) fn fill_reports<R: RngCore + ?Sized>(
        &self,
        values: &[u64],
        rng: &mut R,
        out: &mut [ClientReport],
    ) {
        debug_assert_eq!(values.len(), out.len());
        let k = self.params.rows();
        let m = self.params.columns();
        let flip_p = self.eps.flip_probability();
        // Phase 1: every RNG draw, in the scalar path's per-value order (row, column, flip).
        for slot in out.iter_mut() {
            let row = rng.gen_range(0..k);
            let col = rng.gen_range(0..m);
            let flip = rng.gen_bool(flip_p);
            *slot = ClientReport {
                y: if flip { -1.0 } else { 1.0 },
                row,
                col,
            };
        }
        // Phase 2: RNG-free batched hash/sign/Hadamard lane. `y` currently holds the
        // randomized-response sign B; the true coefficient is B·ξ_j(d)·H_m[h_j(d), l], and
        // both extra factors are ±1, so applying them is an XOR on the sign bit — exact.
        for (slot, &v) in out.iter_mut().zip(values) {
            let (bucket, neg_sign) = self.hashes.pair(slot.row).bucket_and_sign_neg(v);
            let neg_hadamard = u64::from((bucket & slot.col).count_ones()) & 1;
            slot.y = f64::from_bits(slot.y.to_bits() ^ ((neg_sign ^ neg_hadamard) << 63));
        }
    }

    /// Perturb a whole slice of values directly into a packed sign-split [`ReportBatch`],
    /// the zero-copy form the batched server ingest path consumes.
    ///
    /// The produced batch carries exactly the reports [`LdpJoinSketchClient::perturb_all`]
    /// would emit for the same `(values, rng)` — same RNG consumption, same `(j, l)` pairs,
    /// same signs — just without materialising per-report structs.
    ///
    /// # Errors
    /// Returns [`Error::InvalidSketchParameter`] if the sketch's counter space cannot be
    /// packed into 32-bit flat indices (outside the supported parameter range in practice).
    pub fn perturb_batch<R: RngCore + ?Sized>(
        &self,
        values: &[u64],
        rng: &mut R,
    ) -> Result<ReportBatch> {
        let mut batch =
            ReportBatch::with_capacity(self.params.rows(), self.params.columns(), values.len())?;
        self.perturb_batch_into(values, rng, &mut batch)?;
        Ok(batch)
    }

    /// [`LdpJoinSketchClient::perturb_batch`] into a caller-owned, reusable batch.
    ///
    /// `batch` is cleared and refilled, so a chunked driver can keep one packed buffer alive
    /// across its whole stream.
    ///
    /// # Errors
    /// Returns [`Error::IncompatibleSketches`] if `batch` was built for a different sketch
    /// shape.
    pub fn perturb_batch_into<R: RngCore + ?Sized>(
        &self,
        values: &[u64],
        rng: &mut R,
        batch: &mut ReportBatch,
    ) -> Result<()> {
        let k = self.params.rows();
        let m = self.params.columns();
        if batch.rows() != k || batch.columns() != m {
            return Err(Error::IncompatibleSketches(format!(
                "report batch is {}x{} but the client's sketch is {k}x{m}",
                batch.rows(),
                batch.columns(),
            )));
        }
        batch.clear();
        let flip_p = self.eps.flip_probability();
        for &v in values {
            let row = rng.gen_range(0..k);
            let col = rng.gen_range(0..m);
            let flip = rng.gen_bool(flip_p);
            let (bucket, neg_sign) = self.hashes.pair(row).bucket_and_sign_neg(v);
            let neg_hadamard = u64::from((bucket & col).count_ones()) & 1;
            let negative = (u64::from(flip) ^ neg_sign ^ neg_hadamard) == 1;
            batch.push(row, col, negative)?;
        }
        Ok(())
    }

    /// Perturb a whole slice of values on `threads` scoped worker threads.
    ///
    /// The slice is cut into fixed [`PARALLEL_PERTURB_CHUNK`]-value chunks, each perturbed
    /// with its own `StdRng` stream derived from `base_seed` and the chunk index (and run
    /// through the batched two-phase kernel). The output therefore depends only on
    /// `(values, base_seed)`: any thread count — including 1 — produces the identical
    /// report vector, so parallel simulation stays reproducible.
    pub fn perturb_all_parallel(
        &self,
        values: &[u64],
        base_seed: u64,
        threads: usize,
    ) -> Vec<ClientReport> {
        perturb_chunks_parallel(values, base_seed, threads, |vals, rng, out| {
            self.fill_reports(vals, rng, out);
        })
    }

    /// [`LdpJoinSketchClient::perturb_all_parallel`] into a caller-owned, reusable report
    /// buffer (cleared and refilled) — the allocation-free form the chunked streaming
    /// drivers run per stream chunk.
    pub fn perturb_all_parallel_into(
        &self,
        values: &[u64],
        base_seed: u64,
        threads: usize,
        out: &mut Vec<ClientReport>,
    ) {
        perturb_chunks_parallel_into(values, base_seed, threads, out, |vals, rng, slot| {
            self.fill_reports(vals, rng, slot);
        });
    }

    /// Communication cost of one report in bits: the perturbed bit plus the `(j, l)` indices.
    pub fn report_bits(&self) -> u64 {
        let k_bits = (self.params.rows().max(2) as f64).log2().ceil() as u64;
        let m_bits = (self.params.columns().max(2) as f64).log2().ceil() as u64;
        1 + k_bits + m_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn client(k: usize, m: usize, eps: f64, seed: u64) -> LdpJoinSketchClient {
        LdpJoinSketchClient::new(
            SketchParams::new(k, m).unwrap(),
            Epsilon::new(eps).unwrap(),
            seed,
        )
    }

    #[test]
    fn reports_have_valid_shape() {
        let c = client(18, 1024, 4.0, 7);
        let mut rng = StdRng::seed_from_u64(1);
        for v in 0..500u64 {
            let r = c.perturb(v, &mut rng);
            assert!(r.y == 1.0 || r.y == -1.0, "y must be a sign, got {}", r.y);
            assert!(r.row < 18);
            assert!(r.col < 1024);
        }
    }

    #[test]
    fn rows_and_columns_are_sampled_uniformly() {
        let c = client(4, 8, 4.0, 3);
        let mut rng = StdRng::seed_from_u64(2);
        let mut row_counts = [0u32; 4];
        let mut col_counts = [0u32; 8];
        let n = 40_000;
        for _ in 0..n {
            let r = c.perturb(123, &mut rng);
            row_counts[r.row] += 1;
            col_counts[r.col] += 1;
        }
        for &c in &row_counts {
            assert!((c as f64 - n as f64 / 4.0).abs() < 0.05 * n as f64);
        }
        for &c in &col_counts {
            assert!((c as f64 - n as f64 / 8.0).abs() < 0.05 * n as f64);
        }
    }

    #[test]
    fn unperturbed_signal_dominates_for_large_epsilon() {
        // With ε = 12 the flip probability is ≈ 6e-6, so the report essentially always equals
        // H[h_j(d), l]·ξ_j(d); reconstructing that product must match the hash family.
        let c = client(6, 64, 12.0, 11);
        let mut rng = StdRng::seed_from_u64(4);
        for v in 0..100u64 {
            let r = c.perturb(v, &mut rng);
            let pair = c.hashes().pair(r.row);
            let expected = ldpjs_common::hadamard::hadamard_entry_f64(64, pair.bucket_of(v), r.col)
                * pair.sign_of(v) as f64;
            assert_eq!(r.y, expected);
        }
    }

    #[test]
    fn empirical_ldp_ratio_is_bounded() {
        // Empirical check of Theorem 1: for two different inputs, the probability of any
        // specific output (y, j, l) differs by at most a factor e^ε (up to sampling noise).
        let eps = 1.0;
        let c = client(2, 4, eps, 5);
        let trials = 300_000;
        let mut hist_a: HashMap<(i8, usize, usize), u64> = HashMap::new();
        let mut hist_b: HashMap<(i8, usize, usize), u64> = HashMap::new();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..trials {
            let ra = c.perturb(1, &mut rng);
            *hist_a.entry((ra.y as i8, ra.row, ra.col)).or_insert(0) += 1;
            let rb = c.perturb(2, &mut rng);
            *hist_b.entry((rb.y as i8, rb.row, rb.col)).or_insert(0) += 1;
        }
        let bound = eps.exp() * 1.25; // slack for sampling noise
        for (key, &ca) in &hist_a {
            let cb = hist_b.get(key).copied().unwrap_or(0).max(1);
            let ratio = ca as f64 / cb as f64;
            assert!(
                ratio < bound && ratio > 1.0 / bound,
                "output {key:?} has probability ratio {ratio}, outside e^±ε"
            );
        }
    }

    #[test]
    fn perturb_all_matches_length_and_bits() {
        let c = client(18, 1024, 4.0, 0);
        let mut rng = StdRng::seed_from_u64(9);
        let reports = c.perturb_all(&[1, 2, 3, 4, 5], &mut rng);
        assert_eq!(reports.len(), 5);
        // 1 + ceil(log2 18) + log2 1024 = 1 + 5 + 10.
        assert_eq!(c.report_bits(), 16);
    }

    #[test]
    fn wire_format_roundtrips() {
        let c = client(18, 1024, 4.0, 3);
        let mut rng = StdRng::seed_from_u64(12);
        for v in 0..200u64 {
            let report = c.perturb(v, &mut rng);
            let decoded = ClientReport::from_wire(report.to_wire());
            assert_eq!(report, decoded);
        }
        // The wire format is exactly five bytes, matching the documented size.
        assert_eq!(
            ClientReport {
                y: -1.0,
                row: 17,
                col: 1023
            }
            .to_wire()
            .len(),
            ClientReport::WIRE_SIZE
        );
    }

    #[test]
    #[should_panic(expected = "does not fit the wire format")]
    fn wire_format_rejects_oversized_indices() {
        let _ = ClientReport {
            y: 1.0,
            row: 70_000,
            col: 0,
        }
        .to_wire();
    }

    #[test]
    fn parallel_perturbation_is_thread_count_invariant() {
        // The fan-out seeds one RNG per fixed-size chunk, so the reports depend only on
        // (values, base_seed) — never on how many workers ran the chunks.
        let c = client(8, 256, 4.0, 5);
        let n = 2 * super::PARALLEL_PERTURB_CHUNK + 137;
        let values: Vec<u64> = (0..n as u64).map(|v| v % 999).collect();
        let one = c.perturb_all_parallel(&values, 42, 1);
        assert_eq!(one.len(), n);
        for threads in [2usize, 3, 8] {
            assert_eq!(
                one,
                c.perturb_all_parallel(&values, 42, threads),
                "thread count {threads} changed the report stream"
            );
        }
        // A different base seed must give a different stream.
        assert_ne!(one, c.perturb_all_parallel(&values, 43, 4));
        // Reports still have valid shape.
        for r in &one {
            assert!(r.y == 1.0 || r.y == -1.0);
            assert!(r.row < 8 && r.col < 256);
        }
    }

    #[test]
    fn batched_perturb_is_bit_identical_to_scalar_reference() {
        // The two-phase batched kernel must consume the RNG stream exactly like the scalar
        // per-value path and produce bit-identical reports.
        for (k, m, eps_v) in [(18, 1024, 4.0), (4, 8, 0.5), (7, 128, 2.0)] {
            let c = client(k, m, eps_v, 21);
            let values: Vec<u64> = (0..3_000u64)
                .map(|v| v.wrapping_mul(0x9E37) % 977)
                .collect();
            let mut scalar_rng = StdRng::seed_from_u64(314);
            let scalar: Vec<ClientReport> = values
                .iter()
                .map(|&v| c.perturb(v, &mut scalar_rng as &mut dyn rand::RngCore))
                .collect();
            let mut batched_rng = StdRng::seed_from_u64(314);
            let batched = c.perturb_all(&values, &mut batched_rng);
            assert_eq!(scalar.len(), batched.len());
            for (i, (s, b)) in scalar.iter().zip(&batched).enumerate() {
                assert_eq!(s.row, b.row, "row diverged at {i} (k={k} m={m})");
                assert_eq!(s.col, b.col, "col diverged at {i} (k={k} m={m})");
                assert_eq!(
                    s.y.to_bits(),
                    b.y.to_bits(),
                    "y diverged at {i} (k={k} m={m}): {} vs {}",
                    s.y,
                    b.y
                );
            }
        }
    }

    #[test]
    fn perturb_all_into_reuses_the_buffer() {
        let c = client(8, 256, 4.0, 9);
        let values: Vec<u64> = (0..500u64).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let expected = c.perturb_all(&values, &mut StdRng::seed_from_u64(1));
        let mut buf = Vec::new();
        c.perturb_all_into(&values, &mut rng, &mut buf);
        assert_eq!(buf, expected);
        // Refill with a shorter slice: buffer shrinks to the new length, no stale tail.
        c.perturb_all_into(&values[..10], &mut rng, &mut buf);
        assert_eq!(buf.len(), 10);
    }

    #[test]
    fn packed_perturb_matches_the_report_stream() {
        // perturb_batch must emit, in packed form, exactly the reports perturb_all produces
        // for the same RNG stream: same flat indices, same signs, in order within each lane.
        let c = client(6, 64, 3.0, 17);
        let values: Vec<u64> = (0..2_000u64).map(|v| v % 333).collect();
        let reports = c.perturb_all(&values, &mut StdRng::seed_from_u64(5));
        let batch = c
            .perturb_batch(&values, &mut StdRng::seed_from_u64(5))
            .unwrap();
        assert_eq!(batch.len(), reports.len());
        let mut plus = Vec::new();
        let mut minus = Vec::new();
        for r in &reports {
            let flat = (r.row * 64 + r.col) as u32;
            if r.y == 1.0 {
                plus.push(flat);
            } else {
                minus.push(flat);
            }
        }
        assert_eq!(batch.plus_indices(), plus.as_slice());
        assert_eq!(batch.minus_indices(), minus.as_slice());
    }

    #[test]
    fn perturb_batch_into_rejects_mismatched_shapes() {
        let c = client(6, 64, 3.0, 17);
        let mut wrong = ldpjs_common::ReportBatch::new(6, 128).unwrap();
        let err = c
            .perturb_batch_into(&[1, 2, 3], &mut StdRng::seed_from_u64(0), &mut wrong)
            .unwrap_err();
        assert!(matches!(err, ldpjs_common::Error::IncompatibleSketches(_)));
    }

    #[test]
    fn shared_hash_family_produces_identical_deterministic_encoding() {
        let params = SketchParams::new(8, 256).unwrap();
        let eps = Epsilon::new(20.0).unwrap(); // negligible flip probability
        let c1 = LdpJoinSketchClient::new(params, eps, 42);
        let c2 = LdpJoinSketchClient::with_hashes(params, eps, Arc::clone(c1.hashes()));
        // Same RNG stream -> identical (j, l) samples and identical unperturbed signal.
        let mut rng1 = StdRng::seed_from_u64(77);
        let mut rng2 = StdRng::seed_from_u64(77);
        for v in 0..50u64 {
            assert_eq!(c1.perturb(v, &mut rng1), c2.perturb(v, &mut rng2));
        }
    }
}
