//! Frequency-Aware Perturbation (FAP, Algorithm 4).
//!
//! Phase 2 of LDPJoinSketch+ estimates the join size of high-frequency and low-frequency items
//! separately. FAP makes that possible without leaking which group a user belongs to:
//!
//! * **Target** values (the group the sketch is supposed to summarise) are encoded exactly as
//!   in Algorithm 1: `v[h_j(d)] = ξ_j(d)`.
//! * **Non-target** values are encoded *independently of their true value*: a uniformly random
//!   position `r ∈ [m]` is set to `1` (`v[r] = 1`). Their expected contribution to every
//!   restored counter is therefore `|NT|/m` (Theorem 8), which the server can subtract.
//!
//! Both branches finish with the same Hadamard sampling and randomized response, so the server
//! cannot distinguish a target report from a non-target one (Theorem 6: FAP satisfies ε-LDP).

use ldpjs_common::batch::ReportBatch;
use ldpjs_common::error::{Error, Result};
use ldpjs_common::hadamard::hadamard_entry_f64;
use ldpjs_common::privacy::Epsilon;
use ldpjs_common::rr::sample_sign_bit;
use ldpjs_sketch::SketchParams;
use rand::{Rng, RngCore};
use std::collections::HashSet;
use std::sync::Arc;

use crate::client::{ClientReport, LdpJoinSketchClient};

/// Which group of values the sketch being built is *targeting* (the `mode` argument of
/// Algorithm 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FapMode {
    /// `mode == H`: the sketch summarises high-frequency items; values outside the frequent
    /// item set are non-targets and get the randomised encoding.
    HighFrequency,
    /// `mode == L`: the sketch summarises low-frequency items; values *inside* the frequent
    /// item set are non-targets.
    LowFrequency,
}

impl FapMode {
    /// Returns `true` if a value with the given membership in the frequent-item set is a
    /// non-target under this mode — the condition `(mode == H) == (d ∉ FI)` of Algorithm 4.
    #[inline]
    pub fn is_non_target(self, in_frequent_set: bool) -> bool {
        match self {
            FapMode::HighFrequency => !in_frequent_set,
            FapMode::LowFrequency => in_frequent_set,
        }
    }
}

/// The FAP client: wraps an [`LdpJoinSketchClient`] and re-routes non-target values through
/// the value-independent random encoding.
#[derive(Debug, Clone)]
pub struct FapClient {
    inner: LdpJoinSketchClient,
    mode: FapMode,
    frequent_items: Arc<HashSet<u64>>,
}

impl FapClient {
    /// Create a FAP client.
    ///
    /// `inner` carries the sketch parameters, privacy budget and public hash family;
    /// `frequent_items` is the set `FI` broadcast by the server after phase 1.
    pub fn new(
        inner: LdpJoinSketchClient,
        mode: FapMode,
        frequent_items: Arc<HashSet<u64>>,
    ) -> Self {
        FapClient {
            inner,
            mode,
            frequent_items,
        }
    }

    /// The targeting mode.
    #[inline]
    pub fn mode(&self) -> FapMode {
        self.mode
    }

    /// The frequent item set `FI`.
    #[inline]
    pub fn frequent_items(&self) -> &Arc<HashSet<u64>> {
        &self.frequent_items
    }

    /// Sketch parameters.
    #[inline]
    pub fn params(&self) -> SketchParams {
        self.inner.params()
    }

    /// Privacy budget.
    #[inline]
    pub fn epsilon(&self) -> Epsilon {
        self.inner.epsilon()
    }

    /// Communication cost of one FAP report in bits. Both the target and the non-target
    /// branch emit the same `(y, j, l)` wire triple as the plain client, so the cost equals
    /// the inner client's — exposed here so protocol-level accounting charges each phase
    /// through the client that actually produced its reports.
    #[inline]
    pub fn report_bits(&self) -> u64 {
        self.inner.report_bits()
    }

    /// Returns `true` if `value` would be encoded with the non-target branch.
    #[inline]
    pub fn is_non_target(&self, value: u64) -> bool {
        self.mode
            .is_non_target(self.frequent_items.contains(&value))
    }

    /// Algorithm 4: encode and perturb one private value.
    pub fn perturb(&self, value: u64, rng: &mut dyn RngCore) -> ClientReport {
        if self.is_non_target(value) {
            self.perturb_non_target(rng)
        } else {
            // Target branch: exactly the LDPJoinSketch client (Algorithm 4, line 10).
            self.inner.perturb(value, rng)
        }
    }

    /// Perturb a whole group of values.
    ///
    /// Runs the batched two-phase pipeline of [`FapClient::perturb_all_into`]; the reports
    /// are bit-identical to calling [`FapClient::perturb`] per value with the same RNG.
    pub fn perturb_all<R: RngCore + ?Sized>(
        &self,
        values: &[u64],
        rng: &mut R,
    ) -> Vec<ClientReport> {
        let mut out = Vec::new();
        self.perturb_all_into(values, rng, &mut out);
        out
    }

    /// Perturb a whole group of values into a caller-owned, reusable report buffer
    /// (cleared and refilled), mirroring
    /// [`LdpJoinSketchClient::perturb_all_into`](crate::client::LdpJoinSketchClient::perturb_all_into).
    pub fn perturb_all_into<R: RngCore + ?Sized>(
        &self,
        values: &[u64],
        rng: &mut R,
        out: &mut Vec<ClientReport>,
    ) {
        out.clear();
        out.resize(
            values.len(),
            ClientReport {
                y: 0.0,
                row: 0,
                col: 0,
            },
        );
        self.fill_reports(values, rng, out);
    }

    /// The two-phase batched kernel behind [`FapClient::perturb_all_into`] and the parallel
    /// fan-out. Phase 1 draws every random quantity in the scalar per-value order (so pinned
    /// RNG streams are untouched) and *finishes* the non-target reports — their Hadamard
    /// parity `popcount(r & l)` needs no value hashing. Phase 2 is the RNG-free batched
    /// hash/sign/Hadamard lane over the target reports, identical to the plain client's.
    pub(crate) fn fill_reports<R: RngCore + ?Sized>(
        &self,
        values: &[u64],
        rng: &mut R,
        out: &mut [ClientReport],
    ) {
        debug_assert_eq!(values.len(), out.len());
        let params = self.inner.params();
        let (k, m) = (params.rows(), params.columns());
        let flip_p = self.inner.epsilon().flip_probability();
        for (slot, &v) in out.iter_mut().zip(values) {
            if self.is_non_target(v) {
                // Algorithm 4 lines 2–8: the scalar branch draws (j, l, r, flip) in this
                // order; y = flip·H_m[r, l], an XOR of two sign parities.
                let row = rng.gen_range(0..k);
                let col = rng.gen_range(0..m);
                let r = rng.gen_range(0..m);
                let flip = rng.gen_bool(flip_p);
                let neg = u64::from(flip) ^ (u64::from((r & col).count_ones()) & 1);
                *slot = ClientReport {
                    y: if neg == 1 { -1.0 } else { 1.0 },
                    row,
                    col,
                };
            } else {
                let row = rng.gen_range(0..k);
                let col = rng.gen_range(0..m);
                let flip = rng.gen_bool(flip_p);
                *slot = ClientReport {
                    y: if flip { -1.0 } else { 1.0 },
                    row,
                    col,
                };
            }
        }
        // Phase 2: fused bucket/sign hash + Hadamard parity over the target lanes only.
        for (slot, &v) in out.iter_mut().zip(values) {
            if self.is_non_target(v) {
                continue;
            }
            let (bucket, neg_sign) = self.inner.hashes().pair(slot.row).bucket_and_sign_neg(v);
            let neg_hadamard = u64::from((bucket & slot.col).count_ones()) & 1;
            slot.y = f64::from_bits(slot.y.to_bits() ^ ((neg_sign ^ neg_hadamard) << 63));
        }
    }

    /// Perturb a whole group of values directly into a packed sign-split [`ReportBatch`],
    /// carrying exactly the reports [`FapClient::perturb_all`] would emit for the same
    /// `(values, rng)`.
    ///
    /// # Errors
    /// Returns [`Error::InvalidSketchParameter`] if the sketch's counter space cannot be
    /// packed into 32-bit flat indices.
    pub fn perturb_batch<R: RngCore + ?Sized>(
        &self,
        values: &[u64],
        rng: &mut R,
    ) -> Result<ReportBatch> {
        let params = self.inner.params();
        let mut batch = ReportBatch::with_capacity(params.rows(), params.columns(), values.len())?;
        self.perturb_batch_into(values, rng, &mut batch)?;
        Ok(batch)
    }

    /// [`FapClient::perturb_batch`] into a caller-owned, reusable batch (cleared and
    /// refilled).
    ///
    /// # Errors
    /// Returns [`Error::IncompatibleSketches`] if `batch` was built for a different sketch
    /// shape.
    pub fn perturb_batch_into<R: RngCore + ?Sized>(
        &self,
        values: &[u64],
        rng: &mut R,
        batch: &mut ReportBatch,
    ) -> Result<()> {
        let params = self.inner.params();
        let (k, m) = (params.rows(), params.columns());
        if batch.rows() != k || batch.columns() != m {
            return Err(Error::IncompatibleSketches(format!(
                "report batch is {}x{} but the client's sketch is {k}x{m}",
                batch.rows(),
                batch.columns(),
            )));
        }
        batch.clear();
        let flip_p = self.inner.epsilon().flip_probability();
        for &v in values {
            let row = rng.gen_range(0..k);
            let col = rng.gen_range(0..m);
            let negative = if self.is_non_target(v) {
                let r = rng.gen_range(0..m);
                let flip = rng.gen_bool(flip_p);
                (u64::from(flip) ^ (u64::from((r & col).count_ones()) & 1)) == 1
            } else {
                let flip = rng.gen_bool(flip_p);
                let (bucket, neg_sign) = self.inner.hashes().pair(row).bucket_and_sign_neg(v);
                let neg_hadamard = u64::from((bucket & col).count_ones()) & 1;
                (u64::from(flip) ^ neg_sign ^ neg_hadamard) == 1
            };
            batch.push(row, col, negative)?;
        }
        Ok(())
    }

    /// Perturb a whole group of values on `threads` scoped worker threads, with the same
    /// deterministic per-chunk RNG streams as
    /// [`LdpJoinSketchClient::perturb_all_parallel`](crate::client::LdpJoinSketchClient::perturb_all_parallel):
    /// the output depends only on `(values, base_seed)`, never on the thread count.
    pub fn perturb_all_parallel(
        &self,
        values: &[u64],
        base_seed: u64,
        threads: usize,
    ) -> Vec<ClientReport> {
        crate::client::perturb_chunks_parallel(values, base_seed, threads, |vals, rng, out| {
            self.fill_reports(vals, rng, out);
        })
    }

    /// [`FapClient::perturb_all_parallel`] into a caller-owned, reusable report buffer
    /// (cleared and refilled), mirroring
    /// [`LdpJoinSketchClient::perturb_all_parallel_into`](crate::client::LdpJoinSketchClient::perturb_all_parallel_into).
    pub fn perturb_all_parallel_into(
        &self,
        values: &[u64],
        base_seed: u64,
        threads: usize,
        out: &mut Vec<ClientReport>,
    ) {
        crate::client::perturb_chunks_parallel_into(
            values,
            base_seed,
            threads,
            out,
            |vals, rng, slot| {
                self.fill_reports(vals, rng, slot);
            },
        );
    }

    /// The non-target branch (Algorithm 4, lines 2–8): encode `v[r] = 1` at a random position
    /// `r`, Hadamard-sample coordinate `l`, and apply randomized response. The output carries
    /// no information about the true value.
    fn perturb_non_target(&self, rng: &mut dyn RngCore) -> ClientReport {
        let params = self.inner.params();
        let (k, m) = (params.rows(), params.columns());
        let row = rng.gen_range(0..k);
        let col = rng.gen_range(0..m);
        let r = rng.gen_range(0..m);
        let w_l = hadamard_entry_f64(m, r, col);
        let y = sample_sign_bit(rng, self.inner.epsilon()) * w_l;
        ClientReport { y, row, col }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::SketchBuilder;
    use ldpjs_common::Epsilon;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn setup(mode: FapMode, fi: &[u64], eps: f64) -> FapClient {
        let params = SketchParams::new(8, 256).unwrap();
        let inner = LdpJoinSketchClient::new(params, Epsilon::new(eps).unwrap(), 17);
        FapClient::new(inner, mode, Arc::new(fi.iter().copied().collect()))
    }

    #[test]
    fn non_target_condition_matches_algorithm_4() {
        assert!(FapMode::HighFrequency.is_non_target(false));
        assert!(!FapMode::HighFrequency.is_non_target(true));
        assert!(FapMode::LowFrequency.is_non_target(true));
        assert!(!FapMode::LowFrequency.is_non_target(false));

        let client = setup(FapMode::HighFrequency, &[1, 2, 3], 4.0);
        assert!(!client.is_non_target(1));
        assert!(client.is_non_target(99));
        let client = setup(FapMode::LowFrequency, &[1, 2, 3], 4.0);
        assert!(client.is_non_target(1));
        assert!(!client.is_non_target(99));
    }

    #[test]
    fn reports_have_valid_shape() {
        let client = setup(FapMode::HighFrequency, &[5], 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for v in 0..100u64 {
            let r = client.perturb(v, &mut rng);
            assert!(r.y == 1.0 || r.y == -1.0);
            assert!(r.row < 8);
            assert!(r.col < 256);
        }
    }

    #[test]
    fn target_values_contribute_their_frequency() {
        // mode = H, all values frequent: behaves exactly like LDPJoinSketch.
        let params = SketchParams::new(12, 256).unwrap();
        let eps = Epsilon::new(6.0).unwrap();
        let inner = LdpJoinSketchClient::new(params, eps, 23);
        let client = FapClient::new(
            inner,
            FapMode::HighFrequency,
            Arc::new([7u64].into_iter().collect()),
        );
        let n = 50_000usize;
        let mut rng = StdRng::seed_from_u64(5);
        let reports = client.perturb_all(&vec![7u64; n], &mut rng);
        let mut builder = SketchBuilder::new(params, eps, 23);
        builder.absorb_all(&reports).unwrap();
        let est = builder.finalize().frequency(7);
        assert!(
            (est - n as f64).abs() < 0.1 * n as f64,
            "target frequency estimate {est}"
        );
    }

    #[test]
    fn non_target_values_spread_uniformly_and_cancel() {
        // mode = H, no value frequent: every report is non-target. The expected contribution
        // to any counter is |NT|/m, and the frequency estimate of any value (after removing
        // |NT|/m per counter) should be near zero — here we check the raw estimate is near
        // |NT|/m ≈ n/m times a small factor, i.e. the value-specific signal is gone.
        let params = SketchParams::new(12, 256).unwrap();
        let eps = Epsilon::new(6.0).unwrap();
        let inner = LdpJoinSketchClient::new(params, eps, 31);
        let client = FapClient::new(inner, FapMode::HighFrequency, Arc::new(HashSet::new()));
        let n = 80_000usize;
        let mut rng = StdRng::seed_from_u64(6);
        // Everybody holds value 7, but 7 is not frequent so it is a non-target.
        let reports = client.perturb_all(&vec![7u64; n], &mut rng);
        let mut builder = SketchBuilder::new(params, eps, 31);
        builder.absorb_all(&reports).unwrap();
        let est = builder.finalize().frequency(7);
        // If the value leaked, the estimate would be ≈ n = 80000. It must instead be on the
        // order of the collision mass n/m ≈ 312 (plus noise).
        assert!(
            est.abs() < 0.1 * n as f64,
            "non-target value leaked into the sketch: estimate {est}"
        );
    }

    #[test]
    fn non_target_mass_matches_theorem_8() {
        // The average restored counter should be |NT|/m for a sketch of pure non-targets
        // (Theorem 8). Per-row means fluctuate (each is driven by ~n/(k·m) reports), so we
        // check the mean over the whole sketch, whose standard error is √k smaller.
        let params = SketchParams::new(8, 128).unwrap();
        let eps = Epsilon::new(8.0).unwrap();
        let inner = LdpJoinSketchClient::new(params, eps, 41);
        let client = FapClient::new(inner, FapMode::HighFrequency, Arc::new(HashSet::new()));
        let n = 120_000usize;
        let mut rng = StdRng::seed_from_u64(7);
        let reports = client.perturb_all(&vec![3u64; n], &mut rng);
        let mut builder = SketchBuilder::new(params, eps, 41);
        builder.absorb_all(&reports).unwrap();
        let sketch = builder.finalize();
        let restored = sketch.restored_counters();
        let expected = n as f64 / 128.0;
        let overall_mean: f64 = restored.iter().sum::<f64>() / restored.len() as f64;
        assert!(
            (overall_mean - expected).abs() < 0.15 * expected,
            "mean counter {overall_mean}, expected ≈ {expected}"
        );
    }

    #[test]
    fn batched_fap_perturb_is_bit_identical_to_scalar_reference() {
        // Mixed target/non-target stream: the batched two-phase kernel must consume the RNG
        // exactly like the scalar per-value path and produce bit-identical reports, and the
        // packed form must carry the same stream.
        for mode in [FapMode::HighFrequency, FapMode::LowFrequency] {
            let client = setup(mode, &[1, 2, 3, 50, 51], 2.0);
            let values: Vec<u64> = (0..4_000u64).map(|v| v % 100).collect();
            let mut scalar_rng = StdRng::seed_from_u64(99);
            let scalar: Vec<ClientReport> = values
                .iter()
                .map(|&v| client.perturb(v, &mut scalar_rng as &mut dyn rand::RngCore))
                .collect();
            let batched = client.perturb_all(&values, &mut StdRng::seed_from_u64(99));
            assert_eq!(scalar.len(), batched.len());
            for (i, (s, b)) in scalar.iter().zip(&batched).enumerate() {
                assert_eq!((s.row, s.col), (b.row, b.col), "indices diverged at {i}");
                assert_eq!(s.y.to_bits(), b.y.to_bits(), "y diverged at {i} ({mode:?})");
            }
            let batch = client
                .perturb_batch(&values, &mut StdRng::seed_from_u64(99))
                .unwrap();
            assert_eq!(batch.len(), scalar.len());
            let m = client.params().columns();
            let mut plus = Vec::new();
            let mut minus = Vec::new();
            for r in &scalar {
                let flat = (r.row * m + r.col) as u32;
                if r.y == 1.0 {
                    plus.push(flat);
                } else {
                    minus.push(flat);
                }
            }
            assert_eq!(batch.plus_indices(), plus.as_slice());
            assert_eq!(batch.minus_indices(), minus.as_slice());
        }
    }

    #[test]
    fn empirical_ldp_ratio_between_target_and_non_target() {
        // Theorem 6: the server cannot distinguish a target report from a non-target report.
        // Compare the output distributions of a frequent value (target) and a rare value
        // (non-target) under mode = H.
        let params = SketchParams::new(2, 4).unwrap();
        let eps_val = 1.0;
        let inner = LdpJoinSketchClient::new(params, Epsilon::new(eps_val).unwrap(), 2);
        let client = FapClient::new(
            inner,
            FapMode::HighFrequency,
            Arc::new([1u64].into_iter().collect()),
        );
        let trials = 300_000;
        let mut rng = StdRng::seed_from_u64(8);
        let mut hist_target: HashMap<(i8, usize, usize), u64> = HashMap::new();
        let mut hist_nontarget: HashMap<(i8, usize, usize), u64> = HashMap::new();
        for _ in 0..trials {
            let rt = client.perturb(1, &mut rng); // frequent -> target
            *hist_target.entry((rt.y as i8, rt.row, rt.col)).or_insert(0) += 1;
            let rn = client.perturb(9, &mut rng); // rare -> non-target
            *hist_nontarget
                .entry((rn.y as i8, rn.row, rn.col))
                .or_insert(0) += 1;
        }
        let bound = eps_val.exp() * 1.25;
        for (key, &ct) in &hist_target {
            let cn = hist_nontarget.get(key).copied().unwrap_or(0).max(1);
            let ratio = ct as f64 / cn as f64;
            assert!(
                ratio < bound && ratio > 1.0 / bound,
                "output {key:?} separates target from non-target: ratio {ratio}"
            );
        }
    }
}
