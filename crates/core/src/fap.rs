//! Frequency-Aware Perturbation (FAP, Algorithm 4).
//!
//! Phase 2 of LDPJoinSketch+ estimates the join size of high-frequency and low-frequency items
//! separately. FAP makes that possible without leaking which group a user belongs to:
//!
//! * **Target** values (the group the sketch is supposed to summarise) are encoded exactly as
//!   in Algorithm 1: `v[h_j(d)] = ξ_j(d)`.
//! * **Non-target** values are encoded *independently of their true value*: a uniformly random
//!   position `r ∈ [m]` is set to `1` (`v[r] = 1`). Their expected contribution to every
//!   restored counter is therefore `|NT|/m` (Theorem 8), which the server can subtract.
//!
//! Both branches finish with the same Hadamard sampling and randomized response, so the server
//! cannot distinguish a target report from a non-target one (Theorem 6: FAP satisfies ε-LDP).

use ldpjs_common::hadamard::hadamard_entry_f64;
use ldpjs_common::privacy::Epsilon;
use ldpjs_common::rr::sample_sign_bit;
use ldpjs_sketch::SketchParams;
use rand::{Rng, RngCore};
use std::collections::HashSet;
use std::sync::Arc;

use crate::client::{ClientReport, LdpJoinSketchClient};

/// Which group of values the sketch being built is *targeting* (the `mode` argument of
/// Algorithm 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FapMode {
    /// `mode == H`: the sketch summarises high-frequency items; values outside the frequent
    /// item set are non-targets and get the randomised encoding.
    HighFrequency,
    /// `mode == L`: the sketch summarises low-frequency items; values *inside* the frequent
    /// item set are non-targets.
    LowFrequency,
}

impl FapMode {
    /// Returns `true` if a value with the given membership in the frequent-item set is a
    /// non-target under this mode — the condition `(mode == H) == (d ∉ FI)` of Algorithm 4.
    #[inline]
    pub fn is_non_target(self, in_frequent_set: bool) -> bool {
        match self {
            FapMode::HighFrequency => !in_frequent_set,
            FapMode::LowFrequency => in_frequent_set,
        }
    }
}

/// The FAP client: wraps an [`LdpJoinSketchClient`] and re-routes non-target values through
/// the value-independent random encoding.
#[derive(Debug, Clone)]
pub struct FapClient {
    inner: LdpJoinSketchClient,
    mode: FapMode,
    frequent_items: Arc<HashSet<u64>>,
}

impl FapClient {
    /// Create a FAP client.
    ///
    /// `inner` carries the sketch parameters, privacy budget and public hash family;
    /// `frequent_items` is the set `FI` broadcast by the server after phase 1.
    pub fn new(
        inner: LdpJoinSketchClient,
        mode: FapMode,
        frequent_items: Arc<HashSet<u64>>,
    ) -> Self {
        FapClient {
            inner,
            mode,
            frequent_items,
        }
    }

    /// The targeting mode.
    #[inline]
    pub fn mode(&self) -> FapMode {
        self.mode
    }

    /// The frequent item set `FI`.
    #[inline]
    pub fn frequent_items(&self) -> &Arc<HashSet<u64>> {
        &self.frequent_items
    }

    /// Sketch parameters.
    #[inline]
    pub fn params(&self) -> SketchParams {
        self.inner.params()
    }

    /// Privacy budget.
    #[inline]
    pub fn epsilon(&self) -> Epsilon {
        self.inner.epsilon()
    }

    /// Communication cost of one FAP report in bits. Both the target and the non-target
    /// branch emit the same `(y, j, l)` wire triple as the plain client, so the cost equals
    /// the inner client's — exposed here so protocol-level accounting charges each phase
    /// through the client that actually produced its reports.
    #[inline]
    pub fn report_bits(&self) -> u64 {
        self.inner.report_bits()
    }

    /// Returns `true` if `value` would be encoded with the non-target branch.
    #[inline]
    pub fn is_non_target(&self, value: u64) -> bool {
        self.mode
            .is_non_target(self.frequent_items.contains(&value))
    }

    /// Algorithm 4: encode and perturb one private value.
    pub fn perturb(&self, value: u64, rng: &mut dyn RngCore) -> ClientReport {
        if self.is_non_target(value) {
            self.perturb_non_target(rng)
        } else {
            // Target branch: exactly the LDPJoinSketch client (Algorithm 4, line 10).
            self.inner.perturb(value, rng)
        }
    }

    /// Perturb a whole group of values.
    pub fn perturb_all(&self, values: &[u64], rng: &mut dyn RngCore) -> Vec<ClientReport> {
        values.iter().map(|&v| self.perturb(v, rng)).collect()
    }

    /// Perturb a whole group of values on `threads` scoped worker threads, with the same
    /// deterministic per-chunk RNG streams as
    /// [`LdpJoinSketchClient::perturb_all_parallel`](crate::client::LdpJoinSketchClient::perturb_all_parallel):
    /// the output depends only on `(values, base_seed)`, never on the thread count.
    pub fn perturb_all_parallel(
        &self,
        values: &[u64],
        base_seed: u64,
        threads: usize,
    ) -> Vec<ClientReport> {
        crate::client::perturb_chunks_parallel(values, base_seed, threads, |v, rng| {
            self.perturb(v, rng)
        })
    }

    /// The non-target branch (Algorithm 4, lines 2–8): encode `v[r] = 1` at a random position
    /// `r`, Hadamard-sample coordinate `l`, and apply randomized response. The output carries
    /// no information about the true value.
    fn perturb_non_target(&self, rng: &mut dyn RngCore) -> ClientReport {
        let params = self.inner.params();
        let (k, m) = (params.rows(), params.columns());
        let row = rng.gen_range(0..k);
        let col = rng.gen_range(0..m);
        let r = rng.gen_range(0..m);
        let w_l = hadamard_entry_f64(m, r, col);
        let y = sample_sign_bit(rng, self.inner.epsilon()) * w_l;
        ClientReport { y, row, col }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::SketchBuilder;
    use ldpjs_common::Epsilon;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn setup(mode: FapMode, fi: &[u64], eps: f64) -> FapClient {
        let params = SketchParams::new(8, 256).unwrap();
        let inner = LdpJoinSketchClient::new(params, Epsilon::new(eps).unwrap(), 17);
        FapClient::new(inner, mode, Arc::new(fi.iter().copied().collect()))
    }

    #[test]
    fn non_target_condition_matches_algorithm_4() {
        assert!(FapMode::HighFrequency.is_non_target(false));
        assert!(!FapMode::HighFrequency.is_non_target(true));
        assert!(FapMode::LowFrequency.is_non_target(true));
        assert!(!FapMode::LowFrequency.is_non_target(false));

        let client = setup(FapMode::HighFrequency, &[1, 2, 3], 4.0);
        assert!(!client.is_non_target(1));
        assert!(client.is_non_target(99));
        let client = setup(FapMode::LowFrequency, &[1, 2, 3], 4.0);
        assert!(client.is_non_target(1));
        assert!(!client.is_non_target(99));
    }

    #[test]
    fn reports_have_valid_shape() {
        let client = setup(FapMode::HighFrequency, &[5], 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for v in 0..100u64 {
            let r = client.perturb(v, &mut rng);
            assert!(r.y == 1.0 || r.y == -1.0);
            assert!(r.row < 8);
            assert!(r.col < 256);
        }
    }

    #[test]
    fn target_values_contribute_their_frequency() {
        // mode = H, all values frequent: behaves exactly like LDPJoinSketch.
        let params = SketchParams::new(12, 256).unwrap();
        let eps = Epsilon::new(6.0).unwrap();
        let inner = LdpJoinSketchClient::new(params, eps, 23);
        let client = FapClient::new(
            inner,
            FapMode::HighFrequency,
            Arc::new([7u64].into_iter().collect()),
        );
        let n = 50_000usize;
        let mut rng = StdRng::seed_from_u64(5);
        let reports = client.perturb_all(&vec![7u64; n], &mut rng);
        let mut builder = SketchBuilder::new(params, eps, 23);
        builder.absorb_all(&reports).unwrap();
        let est = builder.finalize().frequency(7);
        assert!(
            (est - n as f64).abs() < 0.1 * n as f64,
            "target frequency estimate {est}"
        );
    }

    #[test]
    fn non_target_values_spread_uniformly_and_cancel() {
        // mode = H, no value frequent: every report is non-target. The expected contribution
        // to any counter is |NT|/m, and the frequency estimate of any value (after removing
        // |NT|/m per counter) should be near zero — here we check the raw estimate is near
        // |NT|/m ≈ n/m times a small factor, i.e. the value-specific signal is gone.
        let params = SketchParams::new(12, 256).unwrap();
        let eps = Epsilon::new(6.0).unwrap();
        let inner = LdpJoinSketchClient::new(params, eps, 31);
        let client = FapClient::new(inner, FapMode::HighFrequency, Arc::new(HashSet::new()));
        let n = 80_000usize;
        let mut rng = StdRng::seed_from_u64(6);
        // Everybody holds value 7, but 7 is not frequent so it is a non-target.
        let reports = client.perturb_all(&vec![7u64; n], &mut rng);
        let mut builder = SketchBuilder::new(params, eps, 31);
        builder.absorb_all(&reports).unwrap();
        let est = builder.finalize().frequency(7);
        // If the value leaked, the estimate would be ≈ n = 80000. It must instead be on the
        // order of the collision mass n/m ≈ 312 (plus noise).
        assert!(
            est.abs() < 0.1 * n as f64,
            "non-target value leaked into the sketch: estimate {est}"
        );
    }

    #[test]
    fn non_target_mass_matches_theorem_8() {
        // The average restored counter should be |NT|/m for a sketch of pure non-targets
        // (Theorem 8). Per-row means fluctuate (each is driven by ~n/(k·m) reports), so we
        // check the mean over the whole sketch, whose standard error is √k smaller.
        let params = SketchParams::new(8, 128).unwrap();
        let eps = Epsilon::new(8.0).unwrap();
        let inner = LdpJoinSketchClient::new(params, eps, 41);
        let client = FapClient::new(inner, FapMode::HighFrequency, Arc::new(HashSet::new()));
        let n = 120_000usize;
        let mut rng = StdRng::seed_from_u64(7);
        let reports = client.perturb_all(&vec![3u64; n], &mut rng);
        let mut builder = SketchBuilder::new(params, eps, 41);
        builder.absorb_all(&reports).unwrap();
        let sketch = builder.finalize();
        let restored = sketch.restored_counters();
        let expected = n as f64 / 128.0;
        let overall_mean: f64 = restored.iter().sum::<f64>() / restored.len() as f64;
        assert!(
            (overall_mean - expected).abs() < 0.15 * expected,
            "mean counter {overall_mean}, expected ≈ {expected}"
        );
    }

    #[test]
    fn empirical_ldp_ratio_between_target_and_non_target() {
        // Theorem 6: the server cannot distinguish a target report from a non-target report.
        // Compare the output distributions of a frequent value (target) and a rare value
        // (non-target) under mode = H.
        let params = SketchParams::new(2, 4).unwrap();
        let eps_val = 1.0;
        let inner = LdpJoinSketchClient::new(params, Epsilon::new(eps_val).unwrap(), 2);
        let client = FapClient::new(
            inner,
            FapMode::HighFrequency,
            Arc::new([1u64].into_iter().collect()),
        );
        let trials = 300_000;
        let mut rng = StdRng::seed_from_u64(8);
        let mut hist_target: HashMap<(i8, usize, usize), u64> = HashMap::new();
        let mut hist_nontarget: HashMap<(i8, usize, usize), u64> = HashMap::new();
        for _ in 0..trials {
            let rt = client.perturb(1, &mut rng); // frequent -> target
            *hist_target.entry((rt.y as i8, rt.row, rt.col)).or_insert(0) += 1;
            let rn = client.perturb(9, &mut rng); // rare -> non-target
            *hist_nontarget
                .entry((rn.y as i8, rn.row, rn.col))
                .or_insert(0) += 1;
        }
        let bound = eps_val.exp() * 1.25;
        for (key, &ct) in &hist_target {
            let cn = hist_nontarget.get(key).copied().unwrap_or(0).max(1);
            let ratio = ct as f64 / cn as f64;
            assert!(
                ratio < bound && ratio > 1.0 / bound,
                "output {key:?} separates target from non-target: ratio {ratio}"
            );
        }
    }
}
