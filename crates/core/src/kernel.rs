//! The unified query-engine kernels: every estimate in the workspace — plain join size,
//! LDPJoinSketch+ `JoinEst`, multi-way chain contraction, and the frequency estimators — is
//! computed by exactly one of the composable kernels below, operating on **borrowed**
//! finalized views ([`FinalizedSketch`], [`FinalizedPlusState`], [`FinalizedEdgeSketch`]).
//!
//! The offline protocol runners (`ldp_join_estimate*`,
//! [`LdpJoinSketchPlus`](crate::plus::LdpJoinSketchPlus)'s `estimate`/`estimate_chunked`,
//! `ldp_chain_join_*`), the experiment harness's method
//! registry, and the online `SketchService` query layer are all thin drivers over these
//! kernels, so an estimator fix or optimisation lands everywhere at once and the offline and
//! online paths provably share one implementation.
//!
//! * [`PlainKernel`] — Eq. 5: `median_j Σ_x M_A[j,x]·M_B[j,x]`, plus the Theorem 7 frequency
//!   estimator.
//! * [`PlusKernel`] — Algorithm 5's `JoinEst` with the confidence-driven extensions
//!   (shift-free centered low partial, collision-masked high partial, bound-capped
//!   recombination weights), over two [`FinalizedPlusState`]s. The frequent-item set is the
//!   union of the two states' sets — for windowed state this is the *cross-window
//!   reconciled* set discovered on the merged phase-1 sketches.
//! * [`ChainKernel`] — the Section VI per-replica contraction for 3-way and 4-way chains.
//!
//! [`JoinKernel`] packages the three behind one enum-dispatched `estimate` entry point whose
//! input shape is checked at run time: dispatching a kernel on the wrong input is a
//! [`Error::ModeMismatch`], never a silently wrong answer.

use ldpjs_common::error::{Error, Result};
use ldpjs_common::stats::median;

use crate::bounds;
use crate::multiway::FinalizedEdgeSketch;
use crate::plus::{PlusConfig, PlusEstimate};
use crate::plus_state::FinalizedPlusState;
use crate::server::FinalizedSketch;

/// The plain LDPJoinSketch estimator (Eq. 5 join size, Theorem 7 frequency) over two
/// finalized sketch views.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlainKernel;

impl PlainKernel {
    /// Join-size estimate `median_j Σ_x M_A[j,x]·M_B[j,x]` (Eq. 5) from borrowed restored
    /// rows. This is the canonical implementation behind
    /// [`FinalizedSketch::join_size`].
    pub fn join_size(&self, a: &FinalizedSketch, b: &FinalizedSketch) -> Result<f64> {
        let products = a.row_products(b)?;
        median(&products).ok_or_else(|| Error::EmptyInput("sketch has no rows".into()))
    }

    /// Frequency estimate of `value` (Theorem 7, mean over rows).
    pub fn frequency(&self, sketch: &FinalizedSketch, value: u64) -> f64 {
        sketch.frequency(value)
    }
}

/// The LDPJoinSketch+ estimator — Algorithm 5's `JoinEst` plus the confidence-driven
/// large-n extensions — over two finalized per-attribute plus states.
///
/// The kernel owns only estimator *knobs*; all data (sketches, group sizes, frequent items,
/// thresholds) is borrowed from the states, which is what lets the one-shot runners and the
/// online service's merged windows share it verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlusKernel {
    /// Run the confidence-driven JoinEst (shift-free centered low partial, collision-masked
    /// high partial, bound-capped weights) instead of the classic mass-subtraction form.
    pub adaptive: bool,
    /// Classic mode only: subtract the full-table high-frequency mass exactly as printed in
    /// Algorithm 5 instead of the group-scaled mass.
    pub paper_literal_subtraction: bool,
    /// Classic mode only: combine the rescaled partials by inverse-variance weight.
    pub variance_weighted_recombination: bool,
}

impl PlusKernel {
    /// The kernel a [`PlusConfig`] implies.
    pub fn from_config(config: &PlusConfig) -> Self {
        PlusKernel {
            adaptive: config.adaptive,
            paper_literal_subtraction: config.paper_literal_subtraction,
            variance_weighted_recombination: config.variance_weighted_recombination,
        }
    }

    /// `JoinEst`: estimate the two partial join sizes from the phase-2 sketches, rescale,
    /// weight, sum, and account the per-phase communication. The frequent-item set is the
    /// sorted union of the two states' sets; for merged multi-window states that union *is*
    /// the cross-window reconciliation rule (FIs re-discovered on the merged phase-1
    /// sketches, high partial re-masked below via
    /// [`FinalizedSketch::row_products_masked`]).
    ///
    /// # Errors
    /// [`Error::IncompatibleSketches`] if the states do not share hash families,
    /// [`Error::EmptyInput`] if a sketch has no rows.
    pub fn join_est(
        &self,
        state_a: &FinalizedPlusState,
        state_b: &FinalizedPlusState,
    ) -> Result<PlusEstimate> {
        state_a.check_joinable(state_b)?;
        let m = state_a.phase1().params().columns() as f64;
        let (sketch_p1_a, sketch_p1_b) = (state_a.phase1(), state_b.phase1());
        let (sample_a, sample_b) = (state_a.samples(), state_b.samples());
        let (m_la, m_ha) = (state_a.low(), state_a.high());
        let (m_lb, m_hb) = (state_b.low(), state_b.high());
        let (a1, a2) = (state_a.low_users(), state_a.high_users());
        let (b1, b2) = (state_b.low_users(), state_b.high_users());
        let (n_a, n_b) = (state_a.total_users(), state_b.total_users());
        // The degenerate-state guard the one-shot runners enforce before perturbation,
        // re-checked here because windowed spans reach the kernel directly: an empty
        // sample has no frequent-item basis, and a phase-2 group below two users makes
        // the `(n/|A_g|)·(n/|B_g|)` rescale explode (a zero group would even turn the
        // empty lane's 0-product into NaN via 0·∞) — an error, never a poisoned answer.
        if sample_a == 0 || sample_b == 0 {
            return Err(Error::InvalidWorkload(
                "plus state covers no phase-1 sample reports; widen the window span".into(),
            ));
        }
        for (group, name) in [(a1, "A1"), (a2, "A2"), (b1, "B1"), (b2, "B2")] {
            if group < 2 {
                return Err(Error::InvalidWorkload(format!(
                    "phase-2 group {name} holds {group} user(s); the (n/|A_g|)·(n/|B_g|) \
                     rescale needs at least 2 — widen the window span"
                )));
            }
        }
        let thresholds = (state_a.threshold(), state_b.threshold());
        let mut fi: Vec<u64> = state_a
            .frequent_items()
            .iter()
            .chain(state_b.frequent_items())
            .copied()
            .collect();
        fi.sort_unstable();
        fi.dedup();

        let scale_low = (n_a as f64 * n_b as f64) / (a1 as f64 * b1 as f64);
        let scale_high = (n_a as f64 * n_b as f64) / (a2 as f64 * b2 as f64);

        let (low_est, high_est, recombination_weights) = if self.adaptive {
            // Shift-free low partial: the uniform non-target (frequent-item) mass cancels
            // inside the centered product — no phase-1 mass estimate enters.
            let low_products = m_la.row_products_centered(m_lb)?;
            let low_est = median(&low_products)
                .ok_or_else(|| Error::EmptyInput("sketch has no rows".into()))?;
            // Collision-masked high partial: uniform level from the non-FI buckets, product
            // over the FI buckets, publicly-detectable FI collision rows dropped.
            let high_products_flagged = m_ha.row_products_masked(m_hb, &fi)?;
            let clean: Vec<f64> = high_products_flagged
                .iter()
                .filter(|&&(_, ok)| ok)
                .map(|&(v, _)| v)
                .collect();
            let all: Vec<f64> = high_products_flagged.iter().map(|&(v, _)| v).collect();
            let high_est = if !clean.is_empty() {
                clean.iter().sum::<f64>() / clean.len() as f64
            } else {
                median(&all).ok_or_else(|| Error::EmptyInput("sketch has no rows".into()))?
            };
            // Confidence-weighted recombination: empirical spread capped by the group-aware
            // Theorem 4 bound.
            let params = state_a.phase1().params();
            let eps = state_a.phase1().epsilon();
            let w_low = confidence_weight(
                scale_low * low_est,
                scale_low,
                &low_products,
                bounds::group_variance_bound(params, eps, a1 as f64, b1 as f64, scale_low),
            );
            let w_high = confidence_weight(
                scale_high * high_est,
                scale_high,
                &clean,
                bounds::group_variance_bound(params, eps, a2 as f64, b2 as f64, scale_high),
            );
            (low_est, high_est, (w_low, w_high))
        } else {
            // Classic Algorithm 5: estimate the frequent-item masses from phase 1 and
            // subtract the expected uniform non-target contribution per counter.
            let scale_a = n_a as f64 / sample_a.max(1) as f64;
            let scale_b = n_b as f64 / sample_b.max(1) as f64;
            let high_freq_a: f64 = fi
                .iter()
                .map(|&d| sketch_p1_a.frequency(d) * scale_a)
                .sum::<f64>()
                .clamp(0.0, n_a as f64);
            let high_freq_b: f64 = fi
                .iter()
                .map(|&d| sketch_p1_b.frequency(d) * scale_b)
                .sum::<f64>()
                .clamp(0.0, n_b as f64);
            let group_fraction = |group_len: usize, table_len: usize| {
                if self.paper_literal_subtraction {
                    1.0
                } else {
                    group_len as f64 / table_len as f64
                }
            };
            // mode == L: the non-targets are the high-frequency values.
            let nt_la = high_freq_a * group_fraction(a1, n_a);
            let nt_lb = high_freq_b * group_fraction(b1, n_b);
            let low_products = m_la.row_products_shifted(m_lb, nt_la / m, nt_lb / m)?;
            let low_est = median(&low_products)
                .ok_or_else(|| Error::EmptyInput("sketch has no rows".into()))?;
            // mode == H: the non-targets are the low-frequency values.
            let nt_ha = (n_a as f64 - high_freq_a) * group_fraction(a2, n_a);
            let nt_hb = (n_b as f64 - high_freq_b) * group_fraction(b2, n_b);
            let high_products = m_ha.row_products_shifted(m_hb, nt_ha / m, nt_hb / m)?;
            let high_est = median(&high_products)
                .ok_or_else(|| Error::EmptyInput("sketch has no rows".into()))?;
            let weights = if self.variance_weighted_recombination {
                (
                    shrinkage_weight(scale_low * low_est, scale_low, &low_products),
                    shrinkage_weight(scale_high * high_est, scale_high, &high_products),
                )
            } else {
                (1.0, 1.0)
            };
            (low_est, high_est, weights)
        };

        let join_size = recombination_weights.0 * scale_low * low_est
            + recombination_weights.1 * scale_high * high_est;

        // Per-phase communication, from the report encoding each phase's users actually
        // send (phase-1 users send plain LDPJoinSketch reports, phase-2 users send FAP
        // reports through their group's client). All three clients encode the same
        // `(y, j, l)` triple under the shared `(k, m)`, so the per-report cost is one
        // function of the sketch parameters — but it is accounted per phase, through the
        // sketch each phase built, so phases with different encodings would be charged
        // correctly.
        let per_report_bits =
            |sketch: &FinalizedSketch| crate::protocol::report_bits(sketch.params());
        let phase1_bits = per_report_bits(sketch_p1_a) * sample_a as u64
            + per_report_bits(sketch_p1_b) * sample_b as u64;
        let phase2_bits = per_report_bits(m_la) * a1 as u64
            + per_report_bits(m_lb) * b1 as u64
            + per_report_bits(m_ha) * a2 as u64
            + per_report_bits(m_hb) * b2 as u64;

        Ok(PlusEstimate {
            join_size,
            frequent_items: fi,
            low_estimate: low_est,
            high_estimate: high_est,
            phase1_users: (sample_a, sample_b),
            group_sizes: (a1, a2, b1, b2),
            recombination_weights,
            thresholds,
            phase_bits: (phase1_bits, phase2_bits),
            communication_bits: phase1_bits + phase2_bits,
        })
    }

    /// Frequency estimate of `value` from one plus state: the phase-1 sample estimate scaled
    /// back to the full table (`f̃(d)·n/|S|`), with the collision-robust median estimator in
    /// the adaptive mode and the Theorem 7 mean estimator otherwise.
    pub fn frequency(&self, state: &FinalizedPlusState, value: u64) -> f64 {
        let samples = state.samples();
        if samples == 0 {
            return 0.0;
        }
        let scale = state.total_users() as f64 / samples as f64;
        let raw = if self.adaptive {
            state.phase1().frequency_median(value)
        } else {
            state.phase1().frequency(value)
        };
        raw * scale
    }
}

/// The Section VI multi-way chain estimator: per-replica contraction of vertex and edge
/// sketches along shared attributes, median over replicas (Eq. 27).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChainKernel;

impl ChainKernel {
    /// Estimate the 3-way chain join `|T1(A) ⋈ T2(A,B) ⋈ T3(B)|`. The vertex sketches must
    /// be built over the edge sketch's attribute hash families.
    pub fn chain_3(
        &self,
        t1: &FinalizedSketch,
        t2: &FinalizedEdgeSketch,
        t3: &FinalizedSketch,
    ) -> Result<f64> {
        let attr_a = t2.attribute_a();
        let attr_b = t2.attribute_b();
        if t1.hashes().as_ref() != attr_a.hashes() || t3.hashes().as_ref() != attr_b.hashes() {
            return Err(Error::IncompatibleSketches(
                "vertex sketches must be built over the chain's attribute hash families".into(),
            ));
        }
        let k = attr_a.replicas();
        let (ma, mb) = (attr_a.buckets(), attr_b.buckets());
        let mut per_replica = Vec::with_capacity(k);
        for j in 0..k {
            let v1 = t1.row(j);
            let v3 = t3.row(j);
            let e = t2.replica(j);
            let mut acc = 0.0;
            for la in 0..ma {
                if v1[la] == 0.0 {
                    continue;
                }
                let row = &e[la * mb..(la + 1) * mb];
                let inner: f64 = row.iter().zip(v3.iter()).map(|(x, y)| x * y).sum();
                acc += v1[la] * inner;
            }
            per_replica.push(acc);
        }
        median(&per_replica).ok_or_else(|| Error::EmptyInput("no replicas".into()))
    }

    /// Estimate the 4-way chain join `|T1(A) ⋈ T2(A,B) ⋈ T3(B,C) ⋈ T4(C)|`.
    pub fn chain_4(
        &self,
        t1: &FinalizedSketch,
        t2: &FinalizedEdgeSketch,
        t3: &FinalizedEdgeSketch,
        t4: &FinalizedSketch,
    ) -> Result<f64> {
        let attr_a = t2.attribute_a();
        let attr_b = t2.attribute_b();
        let attr_c = t3.attribute_b();
        if attr_b != t3.attribute_a() {
            return Err(Error::IncompatibleSketches(
                "the two edge sketches of a 4-way chain must share attribute B's hash family"
                    .into(),
            ));
        }
        if t1.hashes().as_ref() != attr_a.hashes() || t4.hashes().as_ref() != attr_c.hashes() {
            return Err(Error::IncompatibleSketches(
                "vertex sketches must be built over the chain's attribute hash families".into(),
            ));
        }
        let k = attr_a.replicas();
        let (ma, mb, mc) = (attr_a.buckets(), attr_b.buckets(), attr_c.buckets());
        let mut per_replica = Vec::with_capacity(k);
        for j in 0..k {
            let v1 = t1.row(j);
            let v4 = t4.row(j);
            let e2 = t2.replica(j);
            let e3 = t3.replica(j);
            // w[lb] = Σ_lc e3[lb, lc] · v4[lc]
            let mut w = vec![0.0; mb];
            for lb in 0..mb {
                let row = &e3[lb * mc..(lb + 1) * mc];
                w[lb] = row.iter().zip(v4.iter()).map(|(x, y)| x * y).sum();
            }
            let mut acc = 0.0;
            for la in 0..ma {
                if v1[la] == 0.0 {
                    continue;
                }
                let row = &e2[la * mb..(la + 1) * mb];
                let inner: f64 = row.iter().zip(w.iter()).map(|(x, y)| x * y).sum();
                acc += v1[la] * inner;
            }
            per_replica.push(acc);
        }
        median(&per_replica).ok_or_else(|| Error::EmptyInput("no replicas".into()))
    }
}

/// One join query's borrowed input, shaped by the estimator family it addresses.
#[derive(Debug, Clone, Copy)]
pub enum QueryInput<'a> {
    /// Two plain finalized sketches.
    Plain(&'a FinalizedSketch, &'a FinalizedSketch),
    /// Two finalized LDPJoinSketch+ states.
    Plus(&'a FinalizedPlusState, &'a FinalizedPlusState),
    /// A 3-way chain: vertex, edge, vertex.
    Chain3(
        &'a FinalizedSketch,
        &'a FinalizedEdgeSketch,
        &'a FinalizedSketch,
    ),
}

impl QueryInput<'_> {
    fn shape(&self) -> &'static str {
        match self {
            QueryInput::Plain(..) => "plain",
            QueryInput::Plus(..) => "plus",
            QueryInput::Chain3(..) => "chain-3",
        }
    }
}

/// Enum dispatch over the three kernels: one `estimate` entry point whose input shape is
/// checked against the kernel at run time. Dispatching a kernel on the wrong input shape is
/// an [`Error::ModeMismatch`] — never a silently wrong estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JoinKernel {
    /// The plain Eq. 5 estimator.
    Plain(PlainKernel),
    /// The LDPJoinSketch+ `JoinEst`.
    Plus(PlusKernel),
    /// The multi-way chain contraction.
    Chain(ChainKernel),
}

impl JoinKernel {
    fn kind(&self) -> &'static str {
        match self {
            JoinKernel::Plain(_) => "plain",
            JoinKernel::Plus(_) => "plus",
            JoinKernel::Chain(_) => "chain-3",
        }
    }

    /// Run the kernel on a matching input, returning the join-size estimate.
    ///
    /// # Errors
    /// [`Error::ModeMismatch`] if the input shape does not match the kernel; otherwise
    /// whatever the dispatched kernel reports.
    pub fn estimate(&self, input: QueryInput<'_>) -> Result<f64> {
        match (self, input) {
            (JoinKernel::Plain(k), QueryInput::Plain(a, b)) => k.join_size(a, b),
            (JoinKernel::Plus(k), QueryInput::Plus(a, b)) => k.join_est(a, b).map(|e| e.join_size),
            (JoinKernel::Chain(k), QueryInput::Chain3(t1, t2, t3)) => k.chain_3(t1, t2, t3),
            (kernel, input) => Err(Error::ModeMismatch(format!(
                "a {} kernel cannot serve a {} query input",
                kernel.kind(),
                input.shape()
            ))),
        }
    }
}

/// The inverse-variance weight of one rescaled partial estimate against the zero prior:
/// `w = Ĵ²/(Ĵ² + σ̂²)`, with `σ̂²` estimated from the spread of the `k` per-row products
/// (each row is an independent estimator of the same partial; the median combiner's variance
/// is proportional to the per-row variance divided by `k`).
///
/// Pinned edge behavior (each unit-tested):
/// * identical row products (`σ̂² = 0`) → full weight `1` — a noiseless partial is never
///   shrunk;
/// * a negative estimate weighs by its magnitude (`Ĵ²`), exactly like a positive one;
/// * any non-finite intermediate (overflowing spread, NaN products) → full weight `1` — a
///   broken variance estimate must never silently zero out a real partial.
pub(crate) fn shrinkage_weight(rescaled_estimate: f64, scale: f64, row_products: &[f64]) -> f64 {
    let k = row_products.len();
    if k < 2 {
        return 1.0;
    }
    let mean = row_products.iter().sum::<f64>() / k as f64;
    let row_var = row_products.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / (k as f64 - 1.0);
    let sigma_sq = scale * scale * row_var / k as f64;
    weight_from(rescaled_estimate, sigma_sq)
}

/// The adaptive mode's generalization of [`shrinkage_weight`]: the empirical per-row spread
/// is capped by the group-aware Theorem 4 variance bound, so an inflated spread (a few
/// outlier rows) can never zero out a partial whose analytical confidence radius says it
/// carries signal.
pub(crate) fn confidence_weight(
    rescaled_estimate: f64,
    scale: f64,
    row_products: &[f64],
    analytic_variance_bound: f64,
) -> f64 {
    let k = row_products.len();
    if k < 2 {
        return 1.0;
    }
    let mean = row_products.iter().sum::<f64>() / k as f64;
    let row_var = row_products.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / (k as f64 - 1.0);
    let mut sigma_sq = scale * scale * row_var / k as f64;
    if analytic_variance_bound.is_finite() && analytic_variance_bound >= 0.0 {
        sigma_sq = sigma_sq.min(analytic_variance_bound);
    }
    weight_from(rescaled_estimate, sigma_sq)
}

/// `w = Ĵ²/(Ĵ² + σ̂²)` with the pinned edges: `σ̂² = 0` (or a non-finite intermediate) gives
/// full weight, so a partial is only ever *deliberately* damped by measured noise.
fn weight_from(rescaled_estimate: f64, sigma_sq: f64) -> f64 {
    let signal_sq = rescaled_estimate * rescaled_estimate;
    let denom = signal_sq + sigma_sq;
    if !denom.is_finite() || denom == 0.0 || !signal_sq.is_finite() {
        return 1.0;
    }
    let w = signal_sq / denom;
    if w.is_finite() {
        w
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::LdpJoinSketchClient;
    use crate::plus_state::{FiPolicy, PlusStateBuilder};
    use crate::server::SketchBuilder;
    use ldpjs_common::Epsilon;
    use ldpjs_sketch::SketchParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plain_sketch(seed: u64, values: &[u64]) -> FinalizedSketch {
        let p = SketchParams::new(8, 128).unwrap();
        let e = Epsilon::new(4.0).unwrap();
        let client = LdpJoinSketchClient::new(p, e, 3);
        let mut rng = StdRng::seed_from_u64(seed);
        let reports = client.perturb_all(values, &mut rng);
        let mut b = SketchBuilder::new(p, e, 3);
        b.absorb_all(&reports).unwrap();
        b.finalize()
    }

    #[test]
    fn plain_kernel_is_the_implementation_behind_join_size() {
        let values: Vec<u64> = (0..5_000).map(|i| i % 40).collect();
        let a = plain_sketch(1, &values);
        let b = plain_sketch(2, &values);
        let via_kernel = PlainKernel.join_size(&a, &b).unwrap();
        let via_sketch = a.join_size(&b).unwrap();
        assert_eq!(via_kernel.to_bits(), via_sketch.to_bits());
        assert_eq!(PlainKernel.frequency(&a, 7), a.frequency(7));
    }

    #[test]
    fn join_kernel_rejects_mismatched_input_shapes() {
        let values: Vec<u64> = (0..500).collect();
        let a = plain_sketch(1, &values);
        let b = plain_sketch(2, &values);
        let plain = JoinKernel::Plain(PlainKernel);
        assert!(plain.estimate(QueryInput::Plain(&a, &b)).is_ok());

        let policy = FiPolicy {
            threshold: 0.01,
            adaptive: false,
        };
        let domain: Vec<u64> = (0..10).collect();
        let p = SketchParams::new(8, 128).unwrap();
        let e = Epsilon::new(4.0).unwrap();
        let sa = PlusStateBuilder::new(p, e, 9).finalize(policy, &domain);
        let sb = PlusStateBuilder::new(p, e, 9).finalize(policy, &domain);
        assert!(matches!(
            plain.estimate(QueryInput::Plus(&sa, &sb)),
            Err(Error::ModeMismatch(_))
        ));
        let plus = JoinKernel::Plus(PlusKernel {
            adaptive: true,
            paper_literal_subtraction: false,
            variance_weighted_recombination: false,
        });
        assert!(matches!(
            plus.estimate(QueryInput::Plain(&a, &b)),
            Err(Error::ModeMismatch(_))
        ));
    }

    #[test]
    fn plus_kernel_rejects_degenerate_states_instead_of_serving_nan() {
        // A windowed span can reach the kernel with an empty sample or an empty phase-2
        // lane (e.g. `Latest` over one short window). The rescale of a zero-sized group
        // would turn the empty lane's 0-products into NaN via 0·∞ — the kernel must
        // refuse instead of returning (and letting the service cache) a poisoned answer.
        let p = SketchParams::new(8, 128).unwrap();
        let e = Epsilon::new(4.0).unwrap();
        let policy = FiPolicy {
            threshold: 0.01,
            adaptive: true,
        };
        let domain: Vec<u64> = (0..32).collect();
        let kernel = PlusKernel {
            adaptive: true,
            paper_literal_subtraction: false,
            variance_weighted_recombination: false,
        };
        // Entirely empty states: no sample at all.
        let empty_a = PlusStateBuilder::new(p, e, 9).finalize(policy, &domain);
        let empty_b = PlusStateBuilder::new(p, e, 9).finalize(policy, &domain);
        assert!(matches!(
            kernel.join_est(&empty_a, &empty_b),
            Err(Error::InvalidWorkload(_))
        ));
        // A sample but empty phase-2 groups: the rescale denominator would be zero.
        let client = LdpJoinSketchClient::new(p, e, 9);
        let mut rng = StdRng::seed_from_u64(3);
        let mut builder = PlusStateBuilder::new(p, e, 9);
        builder
            .absorb_batch(&crate::plus_state::PlusReportBatch {
                phase1: client.perturb_all(&[1, 2, 3, 4, 5, 6, 7, 8], &mut rng),
                low: Vec::new(),
                high: Vec::new(),
            })
            .unwrap();
        let lopsided = builder.finalize(policy, &domain);
        let err = kernel.join_est(&lopsided, &lopsided).unwrap_err();
        assert!(matches!(err, Error::InvalidWorkload(_)), "got {err}");
    }

    #[test]
    fn plus_kernel_frequency_scales_the_phase1_estimate() {
        // A state whose phase-1 lane holds a known single-value sample: the kernel must
        // scale the sample estimate back to the full table.
        let p = SketchParams::new(12, 256).unwrap();
        let e = Epsilon::new(6.0).unwrap();
        let client = LdpJoinSketchClient::new(p, e, 9);
        let mut rng = StdRng::seed_from_u64(5);
        let sample = vec![7u64; 10_000];
        let mut builder = PlusStateBuilder::new(p, e, 9);
        builder
            .absorb_batch(&crate::plus_state::PlusReportBatch {
                phase1: client.perturb_all(&sample, &mut rng),
                low: Vec::new(),
                high: Vec::new(),
            })
            .unwrap();
        let domain: Vec<u64> = (0..10).collect();
        let state = builder.finalize(
            FiPolicy {
                threshold: 0.5,
                adaptive: false,
            },
            &domain,
        );
        let kernel = PlusKernel {
            adaptive: false,
            paper_literal_subtraction: false,
            variance_weighted_recombination: false,
        };
        let est = kernel.frequency(&state, 7);
        // total == samples here, so the scale is 1 and the estimate tracks the sample count.
        assert!(
            (est - 10_000.0).abs() < 1_500.0,
            "scaled frequency {est} far from 10000"
        );
        // An empty state estimates zero.
        let empty = PlusStateBuilder::new(p, e, 9).finalize(
            FiPolicy {
                threshold: 0.5,
                adaptive: false,
            },
            &domain,
        );
        assert_eq!(kernel.frequency(&empty, 7), 0.0);
    }

    #[test]
    fn shrinkage_weight_edge_cases_are_pinned() {
        // σ̂² = 0 (all row products identical): full weight, the partial is trusted.
        let identical = vec![5.0e6; 12];
        assert_eq!(shrinkage_weight(1.0e7, 3.0, &identical), 1.0);
        assert_eq!(confidence_weight(1.0e7, 3.0, &identical, 1.0e3), 1.0);
        // Zero estimate with zero spread: still full weight (0·1 = 0 either way, but the
        // weight must not be NaN from 0/0).
        assert_eq!(shrinkage_weight(0.0, 3.0, &identical), 1.0);
        let zeros = vec![0.0; 8];
        assert_eq!(shrinkage_weight(0.0, 3.0, &zeros), 1.0);
        // A negative estimate weighs by magnitude, identically to its positive mirror.
        let spread: Vec<f64> = (0..12).map(|i| 1.0e6 + (i as f64) * 2.0e5).collect();
        let w_neg = shrinkage_weight(-2.0e6, 4.0, &spread);
        let w_pos = shrinkage_weight(2.0e6, 4.0, &spread);
        assert!((w_neg - w_pos).abs() < 1e-15);
        assert!(
            (0.0..=1.0).contains(&w_neg) && w_neg > 0.0,
            "weight {w_neg}"
        );
        // Non-finite inputs can never produce a zero/NaN weight that silently kills a
        // partial: the weight falls back to 1.
        let with_nan = vec![1.0, f64::NAN, 2.0, 3.0];
        let w = shrinkage_weight(1.0e6, 2.0, &with_nan);
        assert_eq!(w, 1.0);
        let overflow = vec![f64::MAX, -f64::MAX, f64::MAX, -f64::MAX];
        let w = shrinkage_weight(1.0e6, f64::MAX, &overflow);
        assert_eq!(w, 1.0);
        // Tiny estimate against huge measured noise is damped toward zero, but stays finite
        // and positive (the legitimate shrinkage direction still works).
        let w = shrinkage_weight(10.0, 100.0, &spread);
        assert!(w > 0.0 && w < 1e-6, "noise-dominated weight {w}");
        // The analytic cap keeps an outlier-inflated spread from zeroing a real partial.
        let outlier: Vec<f64> = (0..12)
            .map(|i| if i == 0 { 1.0e12 } else { 1.0e6 })
            .collect();
        let uncapped = shrinkage_weight(5.0e6, 4.0, &outlier);
        let capped = confidence_weight(5.0e6, 4.0, &outlier, 1.0e10);
        assert!(
            capped > uncapped,
            "the Theorem-4 cap must restore weight to an outlier-hit partial: \
             {capped} vs {uncapped}"
        );
        assert!(capped > 0.5, "capped weight {capped}");
    }
}
