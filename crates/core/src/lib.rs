//! # ldpjs-core
//!
//! The paper's primary contribution: **LDPJoinSketch** and **LDPJoinSketch+**, sketch-based
//! join size estimation under local differential privacy.
//!
//! * [`client`] — Algorithm 1, the client-side encode-and-perturb pipeline, including the
//!   deterministic parallel perturbation fan-out.
//! * [`server`] — Algorithm 2 (`PriSk`): the two-stage sketch lifecycle — a mutable
//!   [`SketchBuilder`] accumulation stage and an immutable [`FinalizedSketch`] view whose
//!   restored counters are computed once and borrowed by the Eq. 5 join-size estimator and
//!   the Theorem 7 frequency estimator.
//! * [`aggregator`] — the parallel sharded ingestion engine ([`ShardedAggregator`]), whose
//!   merged result is bit-for-bit identical to sequential absorption.
//! * [`fap`] — Algorithm 4, the Frequency-Aware Perturbation mechanism.
//! * [`plus`] — Algorithm 3 + 5, the two-phase LDPJoinSketch+ protocol (frequent-item
//!   discovery, high/low-frequency separation, non-target mass removal).
//! * [`multiway`] — Section VI, the COMPASS-style extension to multi-way chain joins.
//! * [`kernel`] — the unified query-engine kernels ([`PlainKernel`], [`PlusKernel`],
//!   [`ChainKernel`] behind the [`JoinKernel`] dispatch): the single implementation of every
//!   estimator, shared by the offline runners, the experiment harness and the online
//!   service.
//! * [`plus_state`] — the sealed/finalized two-stage lifecycle of LDPJoinSketch+'s
//!   per-attribute state (three mergeable report lanes + query-time FI discovery).
//! * [`bounds`] — the analytical error bound of Theorem 5.
//! * [`protocol`] — end-to-end convenience runners used by the examples and the experiment
//!   harness (simulate all clients, build the sketches, return the estimate).
//!
//! The crate is purely computational: "clients" are simulated by iterating over the values of
//! a table and perturbing each with a caller-supplied RNG, which is exactly how the paper's
//! evaluation is run.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aggregator;
pub mod bounds;
pub mod client;
pub mod fap;
pub mod kernel;
pub mod multiway;
pub mod plus;
pub mod plus_state;
pub mod protocol;
pub mod server;

pub use aggregator::{AggregatorInstruments, ShardedAggregator};
pub use client::{ClientReport, LdpJoinSketchClient};
pub use fap::{FapClient, FapMode};
pub use kernel::{ChainKernel, JoinKernel, PlainKernel, PlusKernel, QueryInput};
pub use plus::{LdpJoinSketchPlus, PlusConfig, PlusDiscovery, PlusEstimate, PlusTableRole};
pub use plus_state::{FiPolicy, FinalizedPlusState, PlusReportBatch, PlusStateBuilder};
pub use protocol::{
    ldp_join_estimate, ldp_join_estimate_chunked, ldp_join_estimate_parallel,
    ldp_join_plus_estimate, ldp_join_plus_estimate_chunked, stream_reports_chunked,
};
pub use server::{DomainIndex, FinalizedSketch, SketchBuilder};

/// Re-export of the validated privacy budget.
pub use ldpjs_common::Epsilon;
/// Re-export of the shared sketch dimensioning type.
pub use ldpjs_sketch::SketchParams;
