//! Multi-way chain joins under LDP (Section VI).
//!
//! The construction mirrors COMPASS: every join attribute carries a public hash family
//! ([`JoinAttribute`]); single-attribute tables are summarised with ordinary LDPJoinSketches,
//! and a two-attribute table `T(A, B)` is summarised with a two-dimensional sketch whose
//! client encodes each tuple `(a, b)` as
//!
//! `y = H_{m_A}[h_A(a), l_1] · ξ_A(a)·ξ_B(b) · H_{m_B}[l_2, h_B(b)]`
//!
//! for uniformly sampled coordinates `(l_1, l_2)`, flips the sign with probability
//! `1/(e^ε+1)`, and reports `(y, j, l_1, l_2)` (with `j` the sampled replica). The server
//! follows the same two-stage lifecycle as the one-dimensional sketch: an
//! [`EdgeSketchBuilder`] accumulates raw `±1` report sums, and [`EdgeSketchBuilder::finalize`]
//! applies the de-bias scale `k·c_ε` plus a two-dimensional Hadamard restore once, yielding a
//! [`FinalizedEdgeSketch`] whose replicas are borrowed by the estimators. The chain size is
//! estimated by contracting the sketches along shared attributes and taking the median over
//! replicas (Eq. 27).

use ldpjs_common::batch::ReportBatch;
use ldpjs_common::error::{Error, Result};
use ldpjs_common::hadamard::{fwht_in_place, fwht_scaled_in_place, hadamard_entry_f64};
use ldpjs_common::privacy::Epsilon;
use ldpjs_common::rr::sample_sign_bit;
use ldpjs_sketch::compass::JoinAttribute;
use rand::{Rng, RngCore};

/// One perturbed report for a two-attribute table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeReport {
    /// The perturbed encoded value (±1).
    pub y: f64,
    /// The sampled replica `j ∈ [k]`.
    pub replica: usize,
    /// The sampled Hadamard coordinate of the first attribute.
    pub col_a: usize,
    /// The sampled Hadamard coordinate of the second attribute.
    pub col_b: usize,
}

/// Client-side encoder for a two-attribute table.
#[derive(Debug, Clone)]
pub struct LdpEdgeSketchClient {
    attr_a: JoinAttribute,
    attr_b: JoinAttribute,
    eps: Epsilon,
}

impl LdpEdgeSketchClient {
    /// Create an edge client over attributes `(attr_a, attr_b)` with privacy budget `eps`.
    ///
    /// # Errors
    /// Returns [`Error::IncompatibleSketches`] if the attributes disagree on the replica count.
    pub fn new(attr_a: JoinAttribute, attr_b: JoinAttribute, eps: Epsilon) -> Result<Self> {
        if attr_a.replicas() != attr_b.replicas() {
            return Err(Error::IncompatibleSketches(format!(
                "edge client attributes must share the replica count: {} vs {}",
                attr_a.replicas(),
                attr_b.replicas()
            )));
        }
        Ok(LdpEdgeSketchClient {
            attr_a,
            attr_b,
            eps,
        })
    }

    /// Encode and perturb one tuple `(a, b)`.
    pub fn perturb(&self, a: u64, b: u64, rng: &mut dyn RngCore) -> EdgeReport {
        let k = self.attr_a.replicas();
        let (ma, mb) = (self.attr_a.buckets(), self.attr_b.buckets());
        let replica = rng.gen_range(0..k);
        let col_a = rng.gen_range(0..ma);
        let col_b = rng.gen_range(0..mb);
        let ha = self.attr_a.bucket_of(replica, a);
        let hb = self.attr_b.bucket_of(replica, b);
        let sign = self.attr_a.sign_of(replica, a) * self.attr_b.sign_of(replica, b);
        let encoded = hadamard_entry_f64(ma, ha, col_a) * sign * hadamard_entry_f64(mb, col_b, hb);
        let y = sample_sign_bit(rng, self.eps) * encoded;
        EdgeReport {
            y,
            replica,
            col_a,
            col_b,
        }
    }

    /// Perturb a whole table of tuples.
    ///
    /// Runs the batched two-phase pipeline of [`LdpEdgeSketchClient::perturb_all_into`];
    /// the reports are bit-identical to calling [`LdpEdgeSketchClient::perturb`] per tuple
    /// with the same RNG.
    pub fn perturb_all<R: RngCore + ?Sized>(
        &self,
        tuples: &[(u64, u64)],
        rng: &mut R,
    ) -> Vec<EdgeReport> {
        let mut out = Vec::new();
        self.perturb_all_into(tuples, rng, &mut out);
        out
    }

    /// Perturb a whole table of tuples into a caller-owned, reusable report buffer
    /// (cleared and refilled). Two phases, like the one-dimensional client: all RNG draws
    /// first in the scalar per-tuple order `(j, l_1, l_2, flip)`, then one RNG-free batched
    /// lane applying the four sign parities (`ξ_A`, `ξ_B` and the two Hadamard entries) as
    /// XORs on the `f64` sign bit.
    pub fn perturb_all_into<R: RngCore + ?Sized>(
        &self,
        tuples: &[(u64, u64)],
        rng: &mut R,
        out: &mut Vec<EdgeReport>,
    ) {
        out.clear();
        out.resize(
            tuples.len(),
            EdgeReport {
                y: 0.0,
                replica: 0,
                col_a: 0,
                col_b: 0,
            },
        );
        let k = self.attr_a.replicas();
        let (ma, mb) = (self.attr_a.buckets(), self.attr_b.buckets());
        let flip_p = self.eps.flip_probability();
        for slot in out.iter_mut() {
            let replica = rng.gen_range(0..k);
            let col_a = rng.gen_range(0..ma);
            let col_b = rng.gen_range(0..mb);
            let flip = rng.gen_bool(flip_p);
            *slot = EdgeReport {
                y: if flip { -1.0 } else { 1.0 },
                replica,
                col_a,
                col_b,
            };
        }
        for (slot, &(a, b)) in out.iter_mut().zip(tuples) {
            let neg = self.encoded_neg(slot.replica, slot.col_a, slot.col_b, a, b);
            slot.y = f64::from_bits(slot.y.to_bits() ^ (neg << 63));
        }
    }

    /// The sign parity (1 = negative) of the *unperturbed* encoded coefficient
    /// `H_{m_A}[h_A(a), l_1]·ξ_A(a)·ξ_B(b)·H_{m_B}[l_2, h_B(b)]` — four ±1 factors, each an
    /// XOR-able bit: two fused bucket/sign hashes and two Hadamard popcount parities.
    #[inline]
    fn encoded_neg(&self, replica: usize, col_a: usize, col_b: usize, a: u64, b: u64) -> u64 {
        let (ha, neg_a) = self.attr_a.hashes().pair(replica).bucket_and_sign_neg(a);
        let (hb, neg_b) = self.attr_b.hashes().pair(replica).bucket_and_sign_neg(b);
        let neg_had_a = u64::from((ha & col_a).count_ones()) & 1;
        let neg_had_b = u64::from((col_b & hb).count_ones()) & 1;
        neg_a ^ neg_b ^ neg_had_a ^ neg_had_b
    }

    /// Perturb a whole table of tuples directly into a packed sign-split [`ReportBatch`]
    /// (rows = replicas, columns = `m_A·m_B` flattened coordinates), the zero-copy form
    /// [`EdgeSketchBuilder::absorb_batch`] consumes. Carries exactly the reports
    /// [`LdpEdgeSketchClient::perturb_all`] would emit for the same `(tuples, rng)`.
    ///
    /// # Errors
    /// Returns [`Error::InvalidSketchParameter`] if the sketch's counter space cannot be
    /// packed into 32-bit flat indices.
    pub fn perturb_batch<R: RngCore + ?Sized>(
        &self,
        tuples: &[(u64, u64)],
        rng: &mut R,
    ) -> Result<ReportBatch> {
        let mut batch = ReportBatch::with_capacity(
            self.attr_a.replicas(),
            self.attr_a.buckets() * self.attr_b.buckets(),
            tuples.len(),
        )?;
        self.perturb_batch_into(tuples, rng, &mut batch)?;
        Ok(batch)
    }

    /// [`LdpEdgeSketchClient::perturb_batch`] into a caller-owned, reusable batch (cleared
    /// and refilled).
    ///
    /// # Errors
    /// Returns [`Error::IncompatibleSketches`] if `batch` was built for a different shape.
    pub fn perturb_batch_into<R: RngCore + ?Sized>(
        &self,
        tuples: &[(u64, u64)],
        rng: &mut R,
        batch: &mut ReportBatch,
    ) -> Result<()> {
        let k = self.attr_a.replicas();
        let (ma, mb) = (self.attr_a.buckets(), self.attr_b.buckets());
        if batch.rows() != k || batch.columns() != ma * mb {
            return Err(Error::IncompatibleSketches(format!(
                "report batch is {}x{} but the edge sketch is {k}x{}",
                batch.rows(),
                batch.columns(),
                ma * mb,
            )));
        }
        batch.clear();
        let flip_p = self.eps.flip_probability();
        for &(a, b) in tuples {
            let replica = rng.gen_range(0..k);
            let col_a = rng.gen_range(0..ma);
            let col_b = rng.gen_range(0..mb);
            let flip = rng.gen_bool(flip_p);
            let negative = (u64::from(flip) ^ self.encoded_neg(replica, col_a, col_b, a, b)) == 1;
            batch.push(replica, col_a * mb + col_b, negative)?;
        }
        Ok(())
    }
}

/// The mutable accumulation stage of the server-side two-dimensional LDP sketch for a
/// two-attribute table. Mirrors [`crate::server::SketchBuilder`]: counters are exact `±1`
/// report sums in the Hadamard domain, so shard merges are bit-for-bit exact;
/// [`EdgeSketchBuilder::finalize`] applies the de-bias scale and the two-dimensional
/// Hadamard restore once and returns the immutable [`FinalizedEdgeSketch`] view.
#[derive(Debug, Clone)]
pub struct EdgeSketchBuilder {
    attr_a: JoinAttribute,
    attr_b: JoinAttribute,
    eps: Epsilon,
    /// `k × m_A × m_B` accumulated report sums (Hadamard domain).
    raw: Vec<f64>,
    reports: u64,
}

impl EdgeSketchBuilder {
    /// Create an empty edge sketch.
    ///
    /// # Errors
    /// Returns [`Error::IncompatibleSketches`] if the attributes disagree on the replica count.
    pub fn new(attr_a: JoinAttribute, attr_b: JoinAttribute, eps: Epsilon) -> Result<Self> {
        if attr_a.replicas() != attr_b.replicas() {
            return Err(Error::IncompatibleSketches(
                "edge sketch attributes must share the replica count".into(),
            ));
        }
        let len = attr_a.replicas() * attr_a.buckets() * attr_b.buckets();
        Ok(EdgeSketchBuilder {
            attr_a,
            attr_b,
            eps,
            raw: vec![0.0; len],
            reports: 0,
        })
    }

    /// The first join attribute.
    #[inline]
    pub fn attribute_a(&self) -> &JoinAttribute {
        &self.attr_a
    }

    /// The second join attribute.
    #[inline]
    pub fn attribute_b(&self) -> &JoinAttribute {
        &self.attr_b
    }

    /// Number of absorbed reports.
    #[inline]
    pub fn reports(&self) -> u64 {
        self.reports
    }

    /// Absorb one report: `M[j, l_1, l_2] += y` (the de-bias scale `k·c_ε` is applied once
    /// at finalization).
    ///
    /// # Errors
    /// Returns [`Error::ReportOutOfRange`] if the report indices do not fit the sketch.
    pub fn absorb(&mut self, report: EdgeReport) -> Result<()> {
        let k = self.attr_a.replicas();
        let (ma, mb) = (self.attr_a.buckets(), self.attr_b.buckets());
        if report.replica >= k || report.col_a >= ma || report.col_b >= mb {
            return Err(Error::ReportOutOfRange {
                row: report.replica,
                col: report.col_a * mb + report.col_b,
                rows: k,
                cols: ma * mb,
            });
        }
        let idx = (report.replica * ma + report.col_a) * mb + report.col_b;
        self.raw[idx] += report.y;
        self.reports += 1;
        Ok(())
    }

    /// Absorb a batch of array-of-structs reports: one fused validate-and-apply pass with
    /// prefix rollback on the cold error path, so a rejected batch leaves the builder
    /// untouched.
    ///
    /// As with [`SketchBuilder::absorb_all`](crate::server::SketchBuilder::absorb_all),
    /// converting the 32-byte AoS wire shape to the packed SoA form costs a full extra
    /// sweep that the batched kernel cannot win back; the packed path pays only when the
    /// reports are born packed via [`LdpEdgeSketchClient::perturb_batch`] and absorbed
    /// through [`EdgeSketchBuilder::absorb_batch`].
    ///
    /// # Errors
    /// Returns [`Error::ReportOutOfRange`] for the first offending report, if any; the
    /// builder is untouched on error.
    pub fn absorb_all(&mut self, reports: &[EdgeReport]) -> Result<()> {
        let k = self.attr_a.replicas();
        let (ma, mb) = (self.attr_a.buckets(), self.attr_b.buckets());
        for (i, r) in reports.iter().enumerate() {
            if r.replica >= k || r.col_a >= ma || r.col_b >= mb {
                for applied in &reports[..i] {
                    self.raw[(applied.replica * ma + applied.col_a) * mb + applied.col_b] -=
                        applied.y;
                }
                return Err(Error::ReportOutOfRange {
                    row: r.replica,
                    col: r.col_a * mb + r.col_b,
                    rows: k,
                    cols: ma * mb,
                });
            }
            self.raw[(r.replica * ma + r.col_a) * mb + r.col_b] += r.y;
        }
        self.reports += reports.len() as u64;
        Ok(())
    }

    /// Absorb an already-packed sign-split report batch (rows = replicas, columns =
    /// `m_A·m_B` flattened coordinates) — the zero-copy companion of
    /// [`LdpEdgeSketchClient::perturb_batch`].
    ///
    /// # Errors
    /// Returns [`Error::IncompatibleSketches`] on a shape mismatch; the builder is untouched
    /// in that case.
    pub fn absorb_batch(&mut self, batch: &ReportBatch) -> Result<()> {
        let mut scratch = Vec::new();
        self.absorb_batch_with(batch, &mut scratch)
    }

    /// [`EdgeSketchBuilder::absorb_batch`] with a caller-owned scratch buffer, for chunked
    /// drivers that ingest many batches back to back.
    ///
    /// # Errors
    /// Returns [`Error::IncompatibleSketches`] on a shape mismatch.
    pub fn absorb_batch_with(&mut self, batch: &ReportBatch, scratch: &mut Vec<i32>) -> Result<()> {
        let k = self.attr_a.replicas();
        let per = self.attr_a.buckets() * self.attr_b.buckets();
        if batch.rows() != k || batch.columns() != per {
            return Err(Error::IncompatibleSketches(format!(
                "report batch is {}x{} but the edge sketch is {k}x{per}",
                batch.rows(),
                batch.columns(),
            )));
        }
        batch.accumulate_into_with(&mut self.raw, scratch);
        self.reports += batch.len() as u64;
        Ok(())
    }

    /// Merge another partial edge builder into this one (sharded aggregation; exact because
    /// the counters are integer report sums).
    ///
    /// # Errors
    /// Returns [`Error::IncompatibleSketches`] if attributes or ε differ.
    pub fn merge(&mut self, other: &Self) -> Result<()> {
        if self.attr_a != other.attr_a
            || self.attr_b != other.attr_b
            || (self.eps.value() - other.eps.value()).abs() > f64::EPSILON
        {
            return Err(Error::IncompatibleSketches(
                "edge sketch shards must share attributes and privacy budget".into(),
            ));
        }
        for (a, b) in self.raw.iter_mut().zip(other.raw.iter()) {
            *a += b;
        }
        self.reports += other.reports;
        Ok(())
    }

    /// Exact counter-wise subtraction: returns a builder holding `self − earlier` (the
    /// edge-lane primitive of the online service's prefix-sum span ledger; see
    /// [`SketchBuilder::difference`](crate::SketchBuilder::difference) for the exactness
    /// argument).
    ///
    /// # Errors
    /// [`Error::IncompatibleSketches`] if attributes or ε differ, or if `earlier` is not a
    /// prefix (more reports than `self`).
    pub fn difference(&self, earlier: &Self) -> Result<EdgeSketchBuilder> {
        if self.attr_a != earlier.attr_a
            || self.attr_b != earlier.attr_b
            || (self.eps.value() - earlier.eps.value()).abs() > f64::EPSILON
        {
            return Err(Error::IncompatibleSketches(
                "edge sketch differences must share attributes and privacy budget".into(),
            ));
        }
        if earlier.reports > self.reports {
            return Err(Error::IncompatibleSketches(format!(
                "subtrahend holds {} reports but the minuend only {} — not a prefix",
                earlier.reports, self.reports
            )));
        }
        Ok(EdgeSketchBuilder {
            attr_a: self.attr_a.clone(),
            attr_b: self.attr_b.clone(),
            eps: self.eps,
            raw: self
                .raw
                .iter()
                .zip(earlier.raw.iter())
                .map(|(a, b)| a - b)
                .collect(),
            reports: self.reports - earlier.reports,
        })
    }

    /// Apply the de-bias scale `k·c_ε` and restore every replica with the two-dimensional
    /// Hadamard transform (`M̃ = H_{m_A}ᵀ · M · H_{m_B}ᵀ`) once, consuming the builder and
    /// returning the immutable estimation view.
    pub fn finalize(self) -> FinalizedEdgeSketch {
        let EdgeSketchBuilder {
            attr_a,
            attr_b,
            eps,
            raw,
            reports,
        } = self;
        restore_edge(attr_a, attr_b, eps, raw, reports)
    }

    /// Restore a *snapshot* of the edge sketch without consuming the builder: the exact raw
    /// counters are cloned and pushed through the identical de-bias + 2-D Hadamard pipeline
    /// as [`EdgeSketchBuilder::finalize`], so the two entry points can never diverge
    /// bit-wise. This is the epoch-sealing hook of the online service's edge attributes.
    pub fn finalize_view(&self) -> FinalizedEdgeSketch {
        restore_edge(
            self.attr_a.clone(),
            self.attr_b.clone(),
            self.eps,
            self.raw.clone(),
            self.reports,
        )
    }
}

/// The single de-bias + two-dimensional Hadamard restore pipeline shared by
/// [`EdgeSketchBuilder::finalize`] and [`EdgeSketchBuilder::finalize_view`].
fn restore_edge(
    attr_a: JoinAttribute,
    attr_b: JoinAttribute,
    eps: Epsilon,
    mut raw: Vec<f64>,
    reports: u64,
) -> FinalizedEdgeSketch {
    let k = attr_a.replicas();
    let (ma, mb) = (attr_a.buckets(), attr_b.buckets());
    // The de-bias scale is folded into the first (second-dimension) transform pass: each
    // element is multiplied exactly once before any butterfly addition touches it, which is
    // bit-identical to the former separate scale sweep.
    let scale = k as f64 * eps.c_eps();
    let per = ma * mb;
    let mut column = vec![0.0; ma];
    for j in 0..k {
        let replica = &mut raw[j * per..(j + 1) * per];
        // Transform along the second dimension (rows of the matrix).
        for row in 0..ma {
            fwht_scaled_in_place(&mut replica[row * mb..(row + 1) * mb], scale);
        }
        // Transform along the first dimension (columns of the matrix).
        for col in 0..mb {
            for row in 0..ma {
                column[row] = replica[row * mb + col];
            }
            fwht_in_place(&mut column);
            for row in 0..ma {
                replica[row * mb + col] = column[row];
            }
        }
    }
    FinalizedEdgeSketch {
        attr_a,
        attr_b,
        eps,
        restored: raw,
        reports,
    }
}

/// The immutable estimation stage of the two-dimensional edge sketch: every replica is
/// restored exactly once at finalization and borrowed as `&[f64]` afterwards.
#[derive(Debug, Clone)]
pub struct FinalizedEdgeSketch {
    attr_a: JoinAttribute,
    attr_b: JoinAttribute,
    eps: Epsilon,
    /// `k × m_A × m_B` restored counters.
    restored: Vec<f64>,
    reports: u64,
}

impl FinalizedEdgeSketch {
    /// The first join attribute.
    #[inline]
    pub fn attribute_a(&self) -> &JoinAttribute {
        &self.attr_a
    }

    /// The second join attribute.
    #[inline]
    pub fn attribute_b(&self) -> &JoinAttribute {
        &self.attr_b
    }

    /// Privacy budget of the absorbed reports.
    #[inline]
    pub fn epsilon(&self) -> Epsilon {
        self.eps
    }

    /// Number of absorbed reports.
    #[inline]
    pub fn reports(&self) -> u64 {
        self.reports
    }

    /// The restored `m_A × m_B` matrix of replica `j`, borrowed — never cloned.
    #[inline]
    pub fn replica(&self, j: usize) -> &[f64] {
        let per = self.attr_a.buckets() * self.attr_b.buckets();
        &self.restored[j * per..(j + 1) * per]
    }
}

fn check_shared(left: &JoinAttribute, right: &JoinAttribute, what: &str) -> Result<()> {
    if left != right {
        return Err(Error::IncompatibleSketches(format!(
            "{what} must use the same public hash family on both sides of the join"
        )));
    }
    Ok(())
}

/// Estimate the 3-way chain join `|T1(A) ⋈ T2(A,B) ⋈ T3(B)|` from LDP sketches.
///
/// `t1` and `t3` are plain [`crate::server::FinalizedSketch`]es built over the hash families
/// of attributes A and B respectively; `t2` is the finalized two-dimensional edge sketch.
/// Thin driver over the shared [`ChainKernel`](crate::kernel::ChainKernel) — the same
/// per-replica contraction the online service's chain queries run — after checking the
/// caller's attribute handles against the edge sketch's own families.
pub fn ldp_chain_join_3(
    t1: &crate::server::FinalizedSketch,
    attr_a: &JoinAttribute,
    t2: &FinalizedEdgeSketch,
    t3: &crate::server::FinalizedSketch,
    attr_b: &JoinAttribute,
) -> Result<f64> {
    check_shared(attr_a, t2.attribute_a(), "attribute A")?;
    check_shared(attr_b, t2.attribute_b(), "attribute B")?;
    crate::kernel::ChainKernel.chain_3(t1, t2, t3)
}

/// Estimate the 4-way chain join `|T1(A) ⋈ T2(A,B) ⋈ T3(B,C) ⋈ T4(C)|` from LDP sketches
/// (thin driver over [`ChainKernel::chain_4`](crate::kernel::ChainKernel::chain_4)).
#[allow(clippy::too_many_arguments)]
pub fn ldp_chain_join_4(
    t1: &crate::server::FinalizedSketch,
    attr_a: &JoinAttribute,
    t2: &FinalizedEdgeSketch,
    t3: &FinalizedEdgeSketch,
    t4: &crate::server::FinalizedSketch,
    attr_b: &JoinAttribute,
    attr_c: &JoinAttribute,
) -> Result<f64> {
    check_shared(attr_a, t2.attribute_a(), "attribute A")?;
    check_shared(attr_b, t2.attribute_b(), "attribute B")?;
    check_shared(attr_b, t3.attribute_a(), "attribute B")?;
    check_shared(attr_c, t3.attribute_b(), "attribute C")?;
    crate::kernel::ChainKernel.chain_4(t1, t2, t3, t4)
}

/// Convenience: build a [`crate::server::FinalizedSketch`] for a single-attribute table over a
/// chain attribute's hash family (the LDP analogue of a COMPASS vertex sketch).
pub fn build_vertex_sketch(
    values: &[u64],
    attr: &JoinAttribute,
    eps: Epsilon,
    rng: &mut dyn RngCore,
) -> Result<crate::server::FinalizedSketch> {
    use crate::client::LdpJoinSketchClient;
    use crate::server::SketchBuilder;
    use ldpjs_sketch::SketchParams;
    use std::sync::Arc;

    let params = SketchParams::new(attr.replicas(), attr.buckets())?;
    let hashes = Arc::new(attr.hashes().clone());
    let client = LdpJoinSketchClient::with_hashes(params, eps, Arc::clone(&hashes));
    let reports = client.perturb_all(values, rng);
    let mut builder = SketchBuilder::with_hashes(params, eps, hashes);
    builder.absorb_all(&reports)?;
    Ok(builder.finalize())
}

/// Convenience: build a [`FinalizedEdgeSketch`] for a two-attribute table.
pub fn build_edge_sketch(
    tuples: &[(u64, u64)],
    attr_a: &JoinAttribute,
    attr_b: &JoinAttribute,
    eps: Epsilon,
    rng: &mut dyn RngCore,
) -> Result<FinalizedEdgeSketch> {
    let client = LdpEdgeSketchClient::new(attr_a.clone(), attr_b.clone(), eps)?;
    let mut builder = EdgeSketchBuilder::new(attr_a.clone(), attr_b.clone(), eps)?;
    match client.perturb_batch(tuples, rng) {
        // Packed end-to-end pipeline; bit-identical to the materialized report path.
        Ok(batch) => builder.absorb_batch(&batch)?,
        // Counter space not u32-packable: materialize reports and replay.
        Err(_) => builder.absorb_all(&client.perturb_all(tuples, rng))?,
    }
    Ok(builder.finalize())
}

/// Build a [`FinalizedEdgeSketch`] from a replayable bounded-memory tuple stream — the
/// large-n ingestion path of the multi-way chain estimator, mirroring
/// [`crate::protocol::build_private_sketch_chunked`].
///
/// One pass over the stream: each chunk of tuples is perturbed with its own deterministic
/// RNG stream (seeded from `rng_seed` and the chunk ordinal, exactly like the
/// one-dimensional chunked runners), so peak resident tuple memory is the stream's
/// `chunk_len()` and the result depends only on `(attributes, eps, rng_seed, stream)` —
/// replaying the build is bit-reproducible.
pub fn build_edge_sketch_chunked(
    tuples: &dyn ldpjs_common::stream::ChunkedTuples,
    attr_a: &JoinAttribute,
    attr_b: &JoinAttribute,
    eps: Epsilon,
    rng_seed: u64,
) -> Result<FinalizedEdgeSketch> {
    use crate::client::chunk_stream_seed;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let client = LdpEdgeSketchClient::new(attr_a.clone(), attr_b.clone(), eps)?;
    let mut builder = EdgeSketchBuilder::new(attr_a.clone(), attr_b.clone(), eps)?;
    // One packed batch + one scatter scratch + (on the fallback path) one report buffer,
    // reused across every chunk: steady-state streaming ingestion allocates nothing.
    let mut batch = ReportBatch::new(attr_a.replicas(), attr_a.buckets() * attr_b.buckets()).ok();
    let mut scratch = Vec::new();
    let mut reports = Vec::new();
    // Pass-local chunk ordinal, like the one-dimensional runners: `chunk_len()` is only an
    // upper bound, so deriving the ordinal from the start index could collide seeds (and
    // replay a noise stream) on streams emitting non-full mid-stream chunks.
    let mut ordinal = 0u64;
    let mut err = None;
    tuples.for_each_chunk(&mut |_start, chunk| {
        if err.is_some() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(chunk_stream_seed(rng_seed, ordinal));
        ordinal += 1;
        let result = match batch.as_mut() {
            Some(batch) => client
                .perturb_batch_into(chunk, &mut rng, batch)
                .and_then(|()| builder.absorb_batch_with(batch, &mut scratch)),
            // Counter space not u32-packable: materialize reports into the reused buffer.
            None => {
                client.perturb_all_into(chunk, &mut rng, &mut reports);
                builder.absorb_all(&reports)
            }
        };
        if let Err(e) = result {
            err = Some(e);
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(builder.finalize()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldpjs_common::stats::{exact_chain_join_3, exact_chain_join_4};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn skewed(n: usize, domain: u64, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen::<f64>().max(1e-12);
                ((u.powf(-1.3) - 1.0) as u64).min(domain - 1)
            })
            .collect()
    }

    fn skewed_pairs(n: usize, da: u64, db: u64, seed: u64) -> Vec<(u64, u64)> {
        skewed(n, da, seed)
            .into_iter()
            .zip(skewed(n, db, seed.wrapping_add(1)))
            .collect()
    }

    #[test]
    fn edge_client_rejects_mismatched_replicas() {
        let a = JoinAttribute::from_seed(1, 5, 64);
        let b = JoinAttribute::from_seed(2, 6, 64);
        assert!(LdpEdgeSketchClient::new(a.clone(), b.clone(), eps(1.0)).is_err());
        assert!(EdgeSketchBuilder::new(a, b, eps(1.0)).is_err());
    }

    #[test]
    fn edge_reports_have_valid_shape() {
        let a = JoinAttribute::from_seed(1, 5, 64);
        let b = JoinAttribute::from_seed(2, 5, 32);
        let client = LdpEdgeSketchClient::new(a, b, eps(2.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        for i in 0..200u64 {
            let r = client.perturb(i, i * 3, &mut rng);
            assert!(r.y == 1.0 || r.y == -1.0);
            assert!(r.replica < 5);
            assert!(r.col_a < 64);
            assert!(r.col_b < 32);
        }
    }

    #[test]
    fn edge_sketch_rejects_out_of_range_reports() {
        let a = JoinAttribute::from_seed(1, 4, 16);
        let b = JoinAttribute::from_seed(2, 4, 16);
        let mut sk = EdgeSketchBuilder::new(a, b, eps(1.0)).unwrap();
        assert!(sk
            .absorb(EdgeReport {
                y: 1.0,
                replica: 4,
                col_a: 0,
                col_b: 0
            })
            .is_err());
        assert!(sk
            .absorb(EdgeReport {
                y: 1.0,
                replica: 0,
                col_a: 16,
                col_b: 0
            })
            .is_err());
        assert!(sk
            .absorb(EdgeReport {
                y: 1.0,
                replica: 3,
                col_a: 15,
                col_b: 15
            })
            .is_ok());
        assert_eq!(sk.reports(), 1);
    }

    #[test]
    fn restored_edge_sketch_recovers_single_tuple_mass() {
        // With ε large and a single repeated tuple, the restored replica concentrates the mass
        // (times the tuple's sign product) at [h_A(a), h_B(b)].
        let a = JoinAttribute::from_seed(7, 4, 32);
        let b = JoinAttribute::from_seed(8, 4, 32);
        let e = eps(12.0);
        let n = 40_000usize;
        let tuples = vec![(3u64, 9u64); n];
        let mut rng = StdRng::seed_from_u64(5);
        let sketch = build_edge_sketch(&tuples, &a, &b, e, &mut rng).unwrap();
        assert_eq!(sketch.reports(), n as u64);
        for j in 0..4 {
            let restored = sketch.replica(j);
            let target = a.bucket_of(j, 3) * 32 + b.bucket_of(j, 9);
            let sign = a.sign_of(j, 3) * b.sign_of(j, 9);
            let got = restored[target] * sign;
            assert!(
                (got - n as f64).abs() < 0.2 * n as f64,
                "replica {j}: recovered mass {got} far from {n}"
            );
        }
    }

    #[test]
    fn ldp_chain_3_tracks_truth() {
        let t1v = skewed(40_000, 500, 1);
        let t2v = skewed_pairs(40_000, 500, 500, 2);
        let t3v = skewed(40_000, 500, 4);
        let truth = exact_chain_join_3(&t1v, &t2v, &t3v) as f64;
        let attr_a = JoinAttribute::from_seed(100, 9, 256);
        let attr_b = JoinAttribute::from_seed(101, 9, 256);
        let e = eps(4.0);
        let mut rng = StdRng::seed_from_u64(7);
        let s1 = build_vertex_sketch(&t1v, &attr_a, e, &mut rng).unwrap();
        let s2 = build_edge_sketch(&t2v, &attr_a, &attr_b, e, &mut rng).unwrap();
        let s3 = build_vertex_sketch(&t3v, &attr_b, e, &mut rng).unwrap();
        let est = ldp_chain_join_3(&s1, &attr_a, &s2, &s3, &attr_b).unwrap();
        let re = (est - truth).abs() / truth;
        assert!(re < 0.5, "relative error {re} (est {est}, truth {truth})");
    }

    #[test]
    fn ldp_chain_4_is_finite_and_positive_on_correlated_data() {
        let t1v = skewed(20_000, 200, 11);
        let t2v = skewed_pairs(20_000, 200, 200, 12);
        let t3v = skewed_pairs(20_000, 200, 200, 14);
        let t4v = skewed(20_000, 200, 16);
        let truth = exact_chain_join_4(&t1v, &t2v, &t3v, &t4v) as f64;
        let attr_a = JoinAttribute::from_seed(200, 7, 128);
        let attr_b = JoinAttribute::from_seed(201, 7, 128);
        let attr_c = JoinAttribute::from_seed(202, 7, 128);
        let e = eps(4.0);
        let mut rng = StdRng::seed_from_u64(17);
        let s1 = build_vertex_sketch(&t1v, &attr_a, e, &mut rng).unwrap();
        let s2 = build_edge_sketch(&t2v, &attr_a, &attr_b, e, &mut rng).unwrap();
        let s3 = build_edge_sketch(&t3v, &attr_b, &attr_c, e, &mut rng).unwrap();
        let s4 = build_vertex_sketch(&t4v, &attr_c, e, &mut rng).unwrap();
        let est = ldp_chain_join_4(&s1, &attr_a, &s2, &s3, &s4, &attr_b, &attr_c).unwrap();
        assert!(est.is_finite());
        // 4-way estimates are noisier; require the right order of magnitude rather than a
        // tight relative error.
        assert!(est > 0.0, "estimate should be positive, got {est}");
        let ratio = est / truth;
        assert!(
            ratio > 0.2 && ratio < 5.0,
            "estimate {est} vs truth {truth} (ratio {ratio})"
        );
    }

    #[test]
    fn chunked_edge_build_is_replay_deterministic_and_counts_reports() {
        use ldpjs_common::stream::TupleSliceChunks;
        let attr_a = JoinAttribute::from_seed(5, 6, 64);
        let attr_b = JoinAttribute::from_seed(6, 6, 64);
        let tuples = skewed_pairs(10_003, 300, 300, 31);
        let src = TupleSliceChunks::new(&tuples, 1_024);
        let first = build_edge_sketch_chunked(&src, &attr_a, &attr_b, eps(4.0), 9).unwrap();
        let second = build_edge_sketch_chunked(&src, &attr_a, &attr_b, eps(4.0), 9).unwrap();
        assert_eq!(first.reports(), tuples.len() as u64);
        for j in 0..6 {
            assert_eq!(first.replica(j), second.replica(j), "replica {j} diverged");
        }
        // A different RNG seed must give a different sketch.
        let other = build_edge_sketch_chunked(&src, &attr_a, &attr_b, eps(4.0), 10).unwrap();
        assert_ne!(first.replica(0), other.replica(0));
    }

    /// Pinned-seed regression for the streaming multi-way path: the 3-way chain estimate
    /// over a chunked edge-sketch build (bounded tuple memory, per-chunk RNG streams) must
    /// keep tracking the exact chain-join size. Margins at these seeds: RE ≈ 0.11 measured,
    /// guarded at 0.5 like the materialized chain test.
    #[test]
    fn ldp_chain_3_tracks_truth_on_chunked_edge_build() {
        use ldpjs_common::stream::TupleSliceChunks;
        let t1v = skewed(40_000, 500, 1);
        let t2v = skewed_pairs(40_000, 500, 500, 2);
        let t3v = skewed(40_000, 500, 4);
        let truth = exact_chain_join_3(&t1v, &t2v, &t3v) as f64;
        let attr_a = JoinAttribute::from_seed(100, 9, 256);
        let attr_b = JoinAttribute::from_seed(101, 9, 256);
        let e = eps(4.0);
        let mut rng = StdRng::seed_from_u64(7);
        let s1 = build_vertex_sketch(&t1v, &attr_a, e, &mut rng).unwrap();
        let src = TupleSliceChunks::new(&t2v, 4_096);
        let s2 = build_edge_sketch_chunked(&src, &attr_a, &attr_b, e, 55).unwrap();
        let s3 = build_vertex_sketch(&t3v, &attr_b, e, &mut rng).unwrap();
        let est = ldp_chain_join_3(&s1, &attr_a, &s2, &s3, &attr_b).unwrap();
        let re = (est - truth).abs() / truth;
        assert!(re < 0.5, "relative error {re} (est {est}, truth {truth})");
    }

    #[test]
    fn chain_3_rejects_mismatched_attribute_families() {
        let attr_a = JoinAttribute::from_seed(1, 5, 64);
        let attr_a2 = JoinAttribute::from_seed(9, 5, 64);
        let attr_b = JoinAttribute::from_seed(2, 5, 64);
        let e = eps(2.0);
        let mut rng = StdRng::seed_from_u64(3);
        let s1 = build_vertex_sketch(&[1, 2, 3], &attr_a2, e, &mut rng).unwrap();
        let s2 = build_edge_sketch(&[(1, 2)], &attr_a, &attr_b, e, &mut rng).unwrap();
        let s3 = build_vertex_sketch(&[2, 3], &attr_b, e, &mut rng).unwrap();
        assert!(ldp_chain_join_3(&s1, &attr_a, &s2, &s3, &attr_b).is_err());
    }
}
