//! LDPJoinSketch+ — the two-phase framework of Algorithm 3 with the `JoinEst` post-processing
//! of Algorithm 5.
//!
//! **Phase 1** samples an `r`-fraction of the users of each attribute, builds plain
//! LDPJoinSketches from them, and extracts the frequent item set
//! `FI = {d : f̃_A(d) > θ·|S_A|} ∪ {d : f̃_B(d) > θ·|S_B|}` by scanning the public candidate
//! domain.
//!
//! **Phase 2** splits the remaining users of each attribute into two halves. One half builds a
//! sketch targeting *low-frequency* values, the other targeting *high-frequency* values, both
//! through the [FAP](crate::fap) mechanism so that non-target values contribute only a uniform
//! `|NT|/m` per counter. `JoinEst` removes that mass (Theorem 8), estimates the two partial
//! join sizes, rescales each by the group sizes, and sums them.
//!
//! ### Non-target mass scaling
//!
//! Algorithm 5 as printed subtracts `HighFreq_A/m`, where `HighFreq_A` is the *full-table*
//! high-frequency mass. The mass actually present in group `A1` is `HighFreq_A·|A1|/|A|`
//! (Theorem 8 counts the non-target values *in the group the sketch summarises*), so this
//! implementation scales by the group fraction. Set
//! [`PlusConfig::paper_literal_subtraction`] to `true` to reproduce the unscaled variant; the
//! ablation bench compares both.

use ldpjs_common::error::{Error, Result};
use ldpjs_common::privacy::Epsilon;
use ldpjs_common::stats::median;
use ldpjs_sketch::SketchParams;
use rand::seq::SliceRandom;
use rand::RngCore;
use std::collections::HashSet;
use std::sync::Arc;

use crate::client::LdpJoinSketchClient;
use crate::fap::{FapClient, FapMode};
use crate::server::FinalizedSketch;
use crate::server::SketchBuilder;

/// Configuration of the LDPJoinSketch+ protocol.
#[derive(Debug, Clone, Copy)]
pub struct PlusConfig {
    /// Sketch dimensions used in both phases.
    pub params: SketchParams,
    /// Privacy budget ε. Each user participates in exactly one sketch, so the whole budget is
    /// spent on that single report (the composition argument of Section V-A).
    pub eps: Epsilon,
    /// Phase-1 sampling rate `r ∈ (0, 1)`.
    pub sampling_rate: f64,
    /// Frequent-item threshold `θ ∈ (0, 1)`: a value is frequent if its estimated share of the
    /// table exceeds `θ`.
    pub threshold: f64,
    /// Seed for the public hash families (phase 1, low sketch and high sketch derive distinct
    /// families from it).
    pub seed: u64,
    /// Reproduce Algorithm 5 exactly as printed (subtract the full-table high-frequency mass
    /// instead of the group-scaled mass). See the module documentation.
    pub paper_literal_subtraction: bool,
    /// Combine the two rescaled phase-2 partial estimates by inverse-variance weight instead
    /// of a plain sum.
    ///
    /// Each rescaled partial `Ĵ_g = scale_g·Est_g` is unbiased for its join component `J_g`
    /// but carries a variance amplified by `scale_g ≈ (n/|A_g|)·(n/|B_g|)`. With this knob on,
    /// the per-row product spread of each phase-2 sketch pair is used to estimate that
    /// variance `σ̂_g²`, and each partial enters the sum with the inverse-variance-optimal
    /// weight against the zero prior, `w_g = Ĵ_g²/(Ĵ_g² + σ̂_g²)` — a noise-dominated partial
    /// (σ̂_g ≫ Ĵ_g) is damped toward zero instead of injecting its amplified noise at full
    /// weight. This is the first step on the roadmap item about recovering the paper's
    /// LDPJoinSketch+ superiority claim: it attacks exactly the group-rescaling noise
    /// amplification that holds the plus estimator at parity.
    pub variance_weighted_recombination: bool,
}

impl PlusConfig {
    /// A reasonable default configuration matching the paper's experiments:
    /// `(k, m) = (18, 1024)`, `ε = 4`, `r = 0.1`, `θ = 0.001`.
    pub fn new(params: SketchParams, eps: Epsilon) -> Self {
        PlusConfig {
            params,
            eps,
            sampling_rate: 0.1,
            threshold: 0.001,
            seed: 0xC0FFEE,
            paper_literal_subtraction: false,
            variance_weighted_recombination: false,
        }
    }

    fn validate(&self) -> Result<()> {
        if !(self.sampling_rate > 0.0 && self.sampling_rate < 1.0) {
            return Err(Error::InvalidWorkload(format!(
                "phase-1 sampling rate must lie in (0, 1), got {}",
                self.sampling_rate
            )));
        }
        if !(self.threshold > 0.0 && self.threshold < 1.0) {
            return Err(Error::InvalidWorkload(format!(
                "frequent-item threshold must lie in (0, 1), got {}",
                self.threshold
            )));
        }
        Ok(())
    }
}

/// The result of one LDPJoinSketch+ run.
#[derive(Debug, Clone)]
pub struct PlusEstimate {
    /// The final join-size estimate (scaled `HEst + LEst`, Algorithm 3 phase 2 line 6).
    pub join_size: f64,
    /// The frequent item set discovered in phase 1.
    pub frequent_items: Vec<u64>,
    /// The low-frequency partial estimate `LEst` before rescaling.
    pub low_estimate: f64,
    /// The high-frequency partial estimate `HEst` before rescaling.
    pub high_estimate: f64,
    /// Number of phase-1 sample users for attributes A and B.
    pub phase1_users: (usize, usize),
    /// Sizes of the phase-2 groups `(|A1|, |A2|, |B1|, |B2|)`.
    pub group_sizes: (usize, usize, usize, usize),
    /// The recombination weights `(w_low, w_high)` applied to the rescaled partial
    /// estimates; `(1, 1)` unless
    /// [`PlusConfig::variance_weighted_recombination`] shrank a noisy partial.
    pub recombination_weights: (f64, f64),
    /// Total client→server communication in bits across both phases.
    pub communication_bits: u64,
}

/// The LDPJoinSketch+ estimator.
#[derive(Debug, Clone)]
pub struct LdpJoinSketchPlus {
    config: PlusConfig,
}

impl LdpJoinSketchPlus {
    /// Create an estimator from a configuration.
    ///
    /// # Errors
    /// Returns [`Error::InvalidWorkload`] if the sampling rate or threshold is out of range.
    pub fn new(config: PlusConfig) -> Result<Self> {
        config.validate()?;
        Ok(LdpJoinSketchPlus { config })
    }

    /// The configuration.
    #[inline]
    pub fn config(&self) -> &PlusConfig {
        &self.config
    }

    /// Run the full two-phase protocol over the private values of the two join attributes.
    ///
    /// `domain` is the public candidate domain scanned for frequent items in phase 1 (join
    /// attribute domains are public metadata; only the *values held by users* are private).
    ///
    /// # Errors
    /// Returns an error if either table is too small to populate the phase-1 sample and both
    /// phase-2 groups.
    pub fn estimate(
        &self,
        table_a: &[u64],
        table_b: &[u64],
        domain: &[u64],
        rng: &mut dyn RngCore,
    ) -> Result<PlusEstimate> {
        let cfg = &self.config;
        if table_a.len() < 4 || table_b.len() < 4 {
            return Err(Error::InvalidWorkload(
                "LDPJoinSketch+ needs at least 4 users per attribute to form its groups".into(),
            ));
        }
        let params = cfg.params;
        let m = params.columns() as f64;

        // --- Phase 1: sample users and find frequent items -------------------------------
        let (sample_a, rest_a) = split_sample(table_a, cfg.sampling_rate, rng);
        let (sample_b, rest_b) = split_sample(table_b, cfg.sampling_rate, rng);
        let phase1_seed = cfg.seed;
        let client_p1 = LdpJoinSketchClient::new(params, cfg.eps, phase1_seed);
        let sketch_a = build_sketch(&client_p1, &sample_a, params, cfg.eps, phase1_seed, rng)?;
        let sketch_b = build_sketch(&client_p1, &sample_b, params, cfg.eps, phase1_seed, rng)?;

        let fi_a = sketch_a.frequent_items(domain, cfg.threshold, sample_a.len() as f64);
        let fi_b = sketch_b.frequent_items(domain, cfg.threshold, sample_b.len() as f64);
        let mut fi: Vec<u64> = fi_a.into_iter().chain(fi_b).collect();
        fi.sort_unstable();
        fi.dedup();
        let fi_set: Arc<HashSet<u64>> = Arc::new(fi.iter().copied().collect());

        // Estimated full-table mass of the frequent items (Algorithm 5, lines 1–4), clamped to
        // the physically possible range [0, |X|].
        let scale_a = table_a.len() as f64 / sample_a.len().max(1) as f64;
        let scale_b = table_b.len() as f64 / sample_b.len().max(1) as f64;
        let high_freq_a: f64 = fi
            .iter()
            .map(|&d| sketch_a.frequency(d) * scale_a)
            .sum::<f64>()
            .clamp(0.0, table_a.len() as f64);
        let high_freq_b: f64 = fi
            .iter()
            .map(|&d| sketch_b.frequency(d) * scale_b)
            .sum::<f64>()
            .clamp(0.0, table_b.len() as f64);

        // --- Phase 2: two groups per attribute, FAP-encoded sketches ---------------------
        let (a1, a2) = split_half(&rest_a, rng);
        let (b1, b2) = split_half(&rest_b, rng);
        if a1.is_empty() || a2.is_empty() || b1.is_empty() || b2.is_empty() {
            return Err(Error::InvalidWorkload(
                "phase-2 groups are empty; decrease the sampling rate or use larger tables".into(),
            ));
        }

        let low_seed = cfg.seed ^ 0x9E37_79B9_7F4A_7C15;
        let high_seed = cfg.seed ^ 0x5851_F42D_4C95_7F2D;
        let client_low = LdpJoinSketchClient::new(params, cfg.eps, low_seed);
        let client_high = LdpJoinSketchClient::new(params, cfg.eps, high_seed);
        let fap_low = FapClient::new(client_low, FapMode::LowFrequency, Arc::clone(&fi_set));
        let fap_high = FapClient::new(client_high, FapMode::HighFrequency, Arc::clone(&fi_set));

        let m_la = build_fap_sketch(&fap_low, &a1, params, cfg.eps, low_seed, rng)?;
        let m_lb = build_fap_sketch(&fap_low, &b1, params, cfg.eps, low_seed, rng)?;
        let m_ha = build_fap_sketch(&fap_high, &a2, params, cfg.eps, high_seed, rng)?;
        let m_hb = build_fap_sketch(&fap_high, &b2, params, cfg.eps, high_seed, rng)?;

        // --- JoinEst (Algorithm 5): remove non-target mass, estimate, rescale ------------
        let group_fraction = |group_len: usize, table_len: usize| {
            if cfg.paper_literal_subtraction {
                1.0
            } else {
                group_len as f64 / table_len as f64
            }
        };
        // mode == L: the non-targets are the high-frequency values.
        let nt_la = high_freq_a * group_fraction(a1.len(), table_a.len());
        let nt_lb = high_freq_b * group_fraction(b1.len(), table_b.len());
        let low_products = m_la.row_products_shifted(&m_lb, nt_la / m, nt_lb / m)?;
        let low_est =
            median(&low_products).ok_or_else(|| Error::EmptyInput("sketch has no rows".into()))?;
        // mode == H: the non-targets are the low-frequency values.
        let nt_ha = (table_a.len() as f64 - high_freq_a) * group_fraction(a2.len(), table_a.len());
        let nt_hb = (table_b.len() as f64 - high_freq_b) * group_fraction(b2.len(), table_b.len());
        let high_products = m_ha.row_products_shifted(&m_hb, nt_ha / m, nt_hb / m)?;
        let high_est =
            median(&high_products).ok_or_else(|| Error::EmptyInput("sketch has no rows".into()))?;

        let scale_low =
            (table_a.len() as f64 * table_b.len() as f64) / (a1.len() as f64 * b1.len() as f64);
        let scale_high =
            (table_a.len() as f64 * table_b.len() as f64) / (a2.len() as f64 * b2.len() as f64);
        let recombination_weights = if cfg.variance_weighted_recombination {
            (
                shrinkage_weight(scale_low * low_est, scale_low, &low_products),
                shrinkage_weight(scale_high * high_est, scale_high, &high_products),
            )
        } else {
            (1.0, 1.0)
        };
        let join_size = recombination_weights.0 * scale_low * low_est
            + recombination_weights.1 * scale_high * high_est;

        let bits_per_report = client_p1.report_bits();
        let communication_bits = bits_per_report * (table_a.len() + table_b.len()) as u64;

        Ok(PlusEstimate {
            join_size,
            frequent_items: fi,
            low_estimate: low_est,
            high_estimate: high_est,
            phase1_users: (sample_a.len(), sample_b.len()),
            group_sizes: (a1.len(), a2.len(), b1.len(), b2.len()),
            recombination_weights,
            communication_bits,
        })
    }
}

/// Split a table into a phase-1 sample of (approximately) `rate·n` users and the remainder.
/// The split is a random partition, mirroring the random user sampling of the protocol.
fn split_sample(table: &[u64], rate: f64, rng: &mut dyn RngCore) -> (Vec<u64>, Vec<u64>) {
    let mut shuffled: Vec<u64> = table.to_vec();
    shuffled.shuffle(rng);
    let cut = ((table.len() as f64 * rate).round() as usize)
        .clamp(1, table.len().saturating_sub(2).max(1));
    let rest = shuffled.split_off(cut);
    (shuffled, rest)
}

/// Split the remaining users into two halves (groups `X1` and `X2` of phase 2).
fn split_half(rest: &[u64], rng: &mut dyn RngCore) -> (Vec<u64>, Vec<u64>) {
    let mut shuffled: Vec<u64> = rest.to_vec();
    shuffled.shuffle(rng);
    let cut = shuffled.len() / 2;
    let second = shuffled.split_off(cut);
    (shuffled, second)
}

/// The inverse-variance weight of one rescaled partial estimate against the zero prior:
/// `w = Ĵ²/(Ĵ² + σ̂²)`, with `σ̂²` estimated from the spread of the `k` per-row products
/// (each row is an independent estimator of the same partial; the median combiner's variance
/// is proportional to the per-row variance divided by `k`).
fn shrinkage_weight(rescaled_estimate: f64, scale: f64, row_products: &[f64]) -> f64 {
    let k = row_products.len();
    if k < 2 {
        return 1.0;
    }
    let mean = row_products.iter().sum::<f64>() / k as f64;
    let row_var = row_products.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / (k as f64 - 1.0);
    let sigma_sq = scale * scale * row_var / k as f64;
    let signal_sq = rescaled_estimate * rescaled_estimate;
    if signal_sq + sigma_sq == 0.0 {
        1.0
    } else {
        signal_sq / (signal_sq + sigma_sq)
    }
}

fn build_sketch(
    client: &LdpJoinSketchClient,
    values: &[u64],
    params: SketchParams,
    eps: Epsilon,
    seed: u64,
    rng: &mut dyn RngCore,
) -> Result<FinalizedSketch> {
    let reports = client.perturb_all(values, rng);
    let mut builder = SketchBuilder::new(params, eps, seed);
    builder.absorb_all(&reports)?;
    Ok(builder.finalize())
}

fn build_fap_sketch(
    client: &FapClient,
    values: &[u64],
    params: SketchParams,
    eps: Epsilon,
    seed: u64,
    rng: &mut dyn RngCore,
) -> Result<FinalizedSketch> {
    let reports = client.perturb_all(values, rng);
    let mut builder = SketchBuilder::new(params, eps, seed);
    builder.absorb_all(&reports)?;
    Ok(builder.finalize())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldpjs_common::stats::exact_join_size;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn skewed(n: usize, domain: u64, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen::<f64>().max(1e-12);
                ((u.powf(-1.3) - 1.0) as u64).min(domain - 1)
            })
            .collect()
    }

    fn config(eps: f64) -> PlusConfig {
        let mut c = PlusConfig::new(
            SketchParams::new(12, 512).unwrap(),
            Epsilon::new(eps).unwrap(),
        );
        c.sampling_rate = 0.15;
        c.threshold = 0.01;
        c
    }

    #[test]
    fn rejects_invalid_configuration() {
        let mut c = config(4.0);
        c.sampling_rate = 0.0;
        assert!(LdpJoinSketchPlus::new(c).is_err());
        let mut c = config(4.0);
        c.sampling_rate = 1.0;
        assert!(LdpJoinSketchPlus::new(c).is_err());
        let mut c = config(4.0);
        c.threshold = 0.0;
        assert!(LdpJoinSketchPlus::new(c).is_err());
        assert!(LdpJoinSketchPlus::new(config(4.0)).is_ok());
    }

    #[test]
    fn rejects_tiny_tables() {
        let est = LdpJoinSketchPlus::new(config(4.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let domain: Vec<u64> = (0..10).collect();
        assert!(est
            .estimate(&[1, 2], &[1, 2, 3, 4], &domain, &mut rng)
            .is_err());
    }

    #[test]
    fn estimate_tracks_truth_on_skewed_data() {
        let a = skewed(120_000, 20_000, 1);
        let b = skewed(120_000, 20_000, 2);
        let truth = exact_join_size(&a, &b) as f64;
        let est = LdpJoinSketchPlus::new(config(4.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let domain: Vec<u64> = (0..20_000).collect();
        let result = est.estimate(&a, &b, &domain, &mut rng).unwrap();
        let re = (result.join_size - truth).abs() / truth;
        assert!(
            re < 0.35,
            "relative error {re} (est {}, truth {truth})",
            result.join_size
        );
        // Diagnostics must be populated.
        assert!(result.phase1_users.0 > 0 && result.phase1_users.1 > 0);
        let (a1, a2, b1, b2) = result.group_sizes;
        assert!(a1 > 0 && a2 > 0 && b1 > 0 && b2 > 0);
        assert_eq!(
            result.phase1_users.0 + a1 + a2,
            a.len(),
            "phase-1 sample and groups must partition table A"
        );
        assert_eq!(result.phase1_users.1 + b1 + b2, b.len());
        assert!(result.communication_bits > 0);
    }

    #[test]
    fn frequent_items_contain_the_heaviest_value() {
        // Value 0 holds ≳ 40% of the mass under the skewed generator, far above θ = 1%.
        let a = skewed(80_000, 5_000, 7);
        let b = skewed(80_000, 5_000, 8);
        let est = LdpJoinSketchPlus::new(config(4.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let domain: Vec<u64> = (0..5_000).collect();
        let result = est.estimate(&a, &b, &domain, &mut rng).unwrap();
        assert!(
            result.frequent_items.contains(&0),
            "FI {:?} should contain the heaviest value 0",
            &result.frequent_items[..result.frequent_items.len().min(10)]
        );
    }

    #[test]
    fn partial_estimates_sum_to_total() {
        let a = skewed(60_000, 2_000, 11);
        let b = skewed(60_000, 2_000, 12);
        let est = LdpJoinSketchPlus::new(config(6.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let domain: Vec<u64> = (0..2_000).collect();
        let r = est.estimate(&a, &b, &domain, &mut rng).unwrap();
        let (a1, a2, b1, b2) = r.group_sizes;
        let scale_low = (a.len() * b.len()) as f64 / (a1 * b1) as f64;
        let scale_high = (a.len() * b.len()) as f64 / (a2 * b2) as f64;
        let recomposed = scale_low * r.low_estimate + scale_high * r.high_estimate;
        assert!((recomposed - r.join_size).abs() < 1e-6 * r.join_size.abs().max(1.0));
    }

    #[test]
    fn variance_weighted_recombination_damps_a_noise_dominated_partial() {
        // A high threshold on a moderately skewed table leaves the frequent-item set empty,
        // so the phase-2 "high" sketch targets nothing: its rescaled partial is pure
        // amplified noise around zero. The plain sum injects that noise at full weight; the
        // inverse-variance weighting must shrink it and give a smaller (or equal) error on
        // average over several rounds.
        let a = skewed(60_000, 2_000, 31);
        let b = skewed(60_000, 2_000, 32);
        let domain: Vec<u64> = (0..2_000).collect();
        let truth = exact_join_size(&a, &b) as f64;
        let mut cfg = config(4.0);
        cfg.threshold = 0.5; // nothing clears 50% of the table -> FI stays empty
        let mut cfg_weighted = cfg;
        cfg_weighted.variance_weighted_recombination = true;

        let mut err_plain = 0.0;
        let mut err_weighted = 0.0;
        for i in 0..4u64 {
            let mut rng1 = StdRng::seed_from_u64(40 + i);
            let mut rng2 = StdRng::seed_from_u64(40 + i);
            let plain = LdpJoinSketchPlus::new(cfg)
                .unwrap()
                .estimate(&a, &b, &domain, &mut rng1)
                .unwrap();
            let weighted = LdpJoinSketchPlus::new(cfg_weighted)
                .unwrap()
                .estimate(&a, &b, &domain, &mut rng2)
                .unwrap();
            assert_eq!(plain.recombination_weights, (1.0, 1.0));
            let (w_low, w_high) = weighted.recombination_weights;
            assert!((0.0..=1.0).contains(&w_low) && (0.0..=1.0).contains(&w_high));
            assert!(
                w_high < 0.9,
                "the no-target high partial should be recognised as noise, weight {w_high}"
            );
            assert!(
                w_low > w_high,
                "the signal-bearing low partial must outweigh the noise partial"
            );
            err_plain += (plain.join_size - truth).abs();
            err_weighted += (weighted.join_size - truth).abs();
        }
        assert!(
            err_weighted <= err_plain,
            "variance weighting should not lose to the plain sum when one partial is pure \
             noise: weighted {err_weighted} vs plain {err_plain}"
        );
    }

    #[test]
    fn paper_literal_subtraction_gives_a_different_answer() {
        let a = skewed(60_000, 2_000, 21);
        let b = skewed(60_000, 2_000, 22);
        let domain: Vec<u64> = (0..2_000).collect();
        let mut cfg = config(4.0);
        cfg.paper_literal_subtraction = false;
        let scaled = LdpJoinSketchPlus::new(cfg).unwrap();
        let mut cfg2 = config(4.0);
        cfg2.paper_literal_subtraction = true;
        let literal = LdpJoinSketchPlus::new(cfg2).unwrap();
        let mut rng1 = StdRng::seed_from_u64(5);
        let mut rng2 = StdRng::seed_from_u64(5);
        let e1 = scaled.estimate(&a, &b, &domain, &mut rng1).unwrap();
        let e2 = literal.estimate(&a, &b, &domain, &mut rng2).unwrap();
        // Same randomness, different subtraction rule -> different (but finite) answers.
        assert!(e1.join_size.is_finite() && e2.join_size.is_finite());
        assert_ne!(e1.join_size, e2.join_size);
        // The group-scaled variant should be at least as accurate on this workload.
        let truth = exact_join_size(&a, &b) as f64;
        assert!(
            (e1.join_size - truth).abs() <= (e2.join_size - truth).abs() * 1.5,
            "group-scaled error {} vs literal error {}",
            (e1.join_size - truth).abs(),
            (e2.join_size - truth).abs()
        );
    }
}
