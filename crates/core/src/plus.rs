//! LDPJoinSketch+ — the two-phase framework of Algorithm 3 with the `JoinEst` post-processing
//! of Algorithm 5.
//!
//! **Phase 1** samples an `r`-fraction of the users of each attribute, builds plain
//! LDPJoinSketches from them, and extracts the frequent item set
//! `FI = {d : f̃_A(d) > θ·|S_A|} ∪ {d : f̃_B(d) > θ·|S_B|}` by scanning the public candidate
//! domain.
//!
//! **Phase 2** splits the remaining users of each attribute into two halves. One half builds a
//! sketch targeting *low-frequency* values, the other targeting *high-frequency* values, both
//! through the [FAP](crate::fap) mechanism so that non-target values contribute only a uniform
//! `|NT|/m` per counter. `JoinEst` removes that mass (Theorem 8), estimates the two partial
//! join sizes, rescales each by the group sizes, and sums them.
//!
//! ### Non-target mass scaling
//!
//! Algorithm 5 as printed subtracts `HighFreq_A/m`, where `HighFreq_A` is the *full-table*
//! high-frequency mass. The mass actually present in group `A1` is `HighFreq_A·|A1|/|A|`
//! (Theorem 8 counts the non-target values *in the group the sketch summarises*), so this
//! implementation scales by the group fraction. Set
//! [`PlusConfig::paper_literal_subtraction`] to `true` to reproduce the unscaled variant; the
//! ablation bench compares both.
//!
//! ### The confidence-driven large-n mode ([`PlusConfig::adaptive`])
//!
//! At laptop scale the estimator above only reaches *parity* with the plain sketch: the
//! phase-2 rescale `(n/|A_g|)·(n/|B_g|)` amplifies every noise source, and the dominant one
//! turns out to be the **phase-1 mass-estimate error** — Algorithm 5's `HighFreq/m`
//! subtraction couples the (sketch-noisy) frequent-item mass estimate multiplicatively with
//! the group's non-target total. The adaptive mode removes that coupling and drives every
//! remaining knob from the extended Theorems 4/5/7 bounds in [`crate::bounds`]:
//!
//! * **Adaptive θ** — the phase-1 threshold is set per table to
//!   [`crate::bounds::adaptive_phase1_threshold`] (a `3σ` margin over the frequent-item
//!   detection noise floor, with `F2` estimated from the phase-1 sketch itself), and FI
//!   discovery uses the collision-robust median estimator
//!   ([`FinalizedSketch::frequency_median`]) so narrow sketches don't flood `FI`.
//! * **Shift-free JoinEst** — the low partial uses mean-centered row products
//!   ([`FinalizedSketch::row_products_centered`]): the uniform non-target mass cancels
//!   *exactly*, no mass estimate enters. The high partial exploits that the FI buckets are
//!   public: the uniform level is measured on the non-FI buckets and the product restricted
//!   to the FI buckets ([`FinalizedSketch::row_products_masked`]), with rows in which two
//!   frequent items collide (publicly detectable) dropped before combining.
//! * **Confidence-weighted recombination** — each rescaled partial enters the sum with
//!   weight `Ĵ_g²/(Ĵ_g² + σ̂_g²)`, where `σ̂_g²` is the empirical per-row spread *capped by*
//!   the group-aware Theorem 4 bound ([`crate::bounds::group_variance_bound`]), so a
//!   noise-dominated partial is damped while an inflated spread can never silently zero out
//!   a signal-bearing partial.
//!
//! This is the mode under which LDPJoinSketch+ beats the plain sketch on ≥1M-user tables
//! (the default-on regression in `tests/end_to_end.rs`); the streaming entry point
//! [`LdpJoinSketchPlus::estimate_chunked`] runs the same protocol in two bounded-memory
//! passes over a replayable [`ChunkedValues`] stream.

use ldpjs_common::error::{Error, Result};
use ldpjs_common::privacy::Epsilon;
use ldpjs_common::stream::ChunkedValues;
use ldpjs_sketch::SketchParams;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngCore, SeedableRng};
use std::collections::HashSet;
use std::sync::Arc;

use crate::client::{chunk_stream_seed, LdpJoinSketchClient};
use crate::fap::{FapClient, FapMode};
use crate::kernel::PlusKernel;
use crate::plus_state::{lane_seeds, FiPolicy, FinalizedPlusState, PlusReportBatch};
use crate::server::FinalizedSketch;
use crate::server::SketchBuilder;

/// Configuration of the LDPJoinSketch+ protocol.
#[derive(Debug, Clone, Copy)]
pub struct PlusConfig {
    /// Sketch dimensions used in both phases.
    pub params: SketchParams,
    /// Privacy budget ε. Each user participates in exactly one sketch, so the whole budget is
    /// spent on that single report (the composition argument of Section V-A).
    pub eps: Epsilon,
    /// Phase-1 sampling rate `r ∈ (0, 1)`.
    pub sampling_rate: f64,
    /// Frequent-item threshold `θ ∈ (0, 1)`: a value is frequent if its estimated share of the
    /// table exceeds `θ`. Ignored when [`PlusConfig::adaptive`] is set — the threshold is then
    /// derived per table from the detection noise floor.
    pub threshold: f64,
    /// Seed for the public hash families (phase 1, low sketch and high sketch derive distinct
    /// families from it) and for the user routing of the streaming path.
    pub seed: u64,
    /// Reproduce Algorithm 5 exactly as printed (subtract the full-table high-frequency mass
    /// instead of the group-scaled mass). See the module documentation. Only meaningful in
    /// the non-adaptive mode — the adaptive JoinEst never subtracts an estimated mass.
    pub paper_literal_subtraction: bool,
    /// Combine the two rescaled phase-2 partial estimates by inverse-variance weight instead
    /// of a plain sum.
    ///
    /// Each rescaled partial `Ĵ_g = scale_g·Est_g` is unbiased for its join component `J_g`
    /// but carries a variance amplified by `scale_g ≈ (n/|A_g|)·(n/|B_g|)`. With this knob on,
    /// the per-row product spread of each phase-2 sketch pair is used to estimate that
    /// variance `σ̂_g²`, and each partial enters the sum with the inverse-variance-optimal
    /// weight against the zero prior, `w_g = Ĵ_g²/(Ĵ_g² + σ̂_g²)` — a noise-dominated partial
    /// (σ̂_g ≫ Ĵ_g) is damped toward zero instead of injecting its amplified noise at full
    /// weight. The adaptive mode always applies the (bound-capped) generalization of this
    /// weighting; this flag enables the empirical-only variant in the classic mode.
    pub variance_weighted_recombination: bool,
    /// Enable the confidence-driven large-n mode (adaptive θ, median frequent-item
    /// discovery, shift-free JoinEst, bound-capped recombination). See the module docs.
    pub adaptive: bool,
}

impl PlusConfig {
    /// A reasonable default configuration matching the paper's experiments:
    /// `(k, m) = (18, 1024)`, `ε = 4`, `r = 0.1`, `θ = 0.001`.
    pub fn new(params: SketchParams, eps: Epsilon) -> Self {
        PlusConfig {
            params,
            eps,
            sampling_rate: 0.1,
            threshold: 0.001,
            seed: 0xC0FFEE,
            paper_literal_subtraction: false,
            variance_weighted_recombination: false,
            adaptive: false,
        }
    }

    fn validate(&self) -> Result<()> {
        if !(self.sampling_rate > 0.0 && self.sampling_rate < 1.0) {
            return Err(Error::InvalidWorkload(format!(
                "phase-1 sampling rate must lie in (0, 1), got {}",
                self.sampling_rate
            )));
        }
        if !(self.threshold > 0.0 && self.threshold < 1.0) {
            return Err(Error::InvalidWorkload(format!(
                "frequent-item threshold must lie in (0, 1), got {}",
                self.threshold
            )));
        }
        Ok(())
    }
}

/// The result of one LDPJoinSketch+ run.
#[derive(Debug, Clone)]
pub struct PlusEstimate {
    /// The final join-size estimate (scaled `HEst + LEst`, Algorithm 3 phase 2 line 6).
    pub join_size: f64,
    /// The frequent item set discovered in phase 1.
    pub frequent_items: Vec<u64>,
    /// The low-frequency partial estimate `LEst` before rescaling.
    pub low_estimate: f64,
    /// The high-frequency partial estimate `HEst` before rescaling.
    pub high_estimate: f64,
    /// Number of phase-1 sample users for attributes A and B.
    pub phase1_users: (usize, usize),
    /// Sizes of the phase-2 groups `(|A1|, |A2|, |B1|, |B2|)`.
    pub group_sizes: (usize, usize, usize, usize),
    /// The recombination weights `(w_low, w_high)` applied to the rescaled partial
    /// estimates; `(1, 1)` unless the confidence-weighted recombination shrank a noisy
    /// partial.
    pub recombination_weights: (f64, f64),
    /// The frequent-item thresholds `(θ_A, θ_B)` actually applied — the configured
    /// [`PlusConfig::threshold`] in the classic mode, the per-table adaptive thresholds in
    /// the adaptive mode.
    pub thresholds: (f64, f64),
    /// Client→server communication in bits per phase `(phase 1, phase 2)`, computed from
    /// the report encodings of the clients that actually ran in each phase.
    pub phase_bits: (u64, u64),
    /// Total client→server communication in bits across both phases (the sum of
    /// [`PlusEstimate::phase_bits`]).
    pub communication_bits: u64,
}

/// The LDPJoinSketch+ estimator.
#[derive(Debug, Clone)]
pub struct LdpJoinSketchPlus {
    config: PlusConfig,
}

/// Which side of the join a stream plays in the two-table plus protocol. The role fixes the
/// deterministic user-routing tag and the per-phase RNG stream tags, so any consumer of
/// [`LdpJoinSketchPlus::stream_plus_reports`] reproduces exactly the report streams the
/// one-shot [`LdpJoinSketchPlus::estimate_chunked`] absorbs internally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlusTableRole {
    /// The left table (attribute A).
    A,
    /// The right table (attribute B).
    B,
}

impl PlusTableRole {
    #[inline]
    fn router_tag(self) -> u64 {
        match self {
            PlusTableRole::A => 0xA,
            PlusTableRole::B => 0xB,
        }
    }

    #[inline]
    fn phase1_tag(self) -> u64 {
        match self {
            PlusTableRole::A => 0x51,
            PlusTableRole::B => 0x52,
        }
    }

    #[inline]
    fn phase2_tag(self) -> u64 {
        match self {
            PlusTableRole::A => 0x61,
            PlusTableRole::B => 0x62,
        }
    }
}

/// The outcome of the phase-1 discovery pass over two chunked streams — the frequent-item
/// set a server broadcasts before phase 2, plus the diagnostics the pass collected.
#[derive(Debug, Clone)]
pub struct PlusDiscovery {
    /// The discovered frequent-item set (union over both tables, sorted).
    pub frequent_items: Vec<u64>,
    /// The thresholds `(θ_A, θ_B)` applied per table.
    pub thresholds: (f64, f64),
    /// Phase-1 sample users per table.
    pub phase1_users: (usize, usize),
    /// Phase-2 group sizes `(|A1|, |A2|, |B1|, |B2|)` the deterministic routing implies.
    pub group_sizes: (usize, usize, usize, usize),
}

impl LdpJoinSketchPlus {
    /// Create an estimator from a configuration.
    ///
    /// # Errors
    /// Returns [`Error::InvalidWorkload`] if the sampling rate or threshold is out of range.
    pub fn new(config: PlusConfig) -> Result<Self> {
        config.validate()?;
        Ok(LdpJoinSketchPlus { config })
    }

    /// The configuration.
    #[inline]
    pub fn config(&self) -> &PlusConfig {
        &self.config
    }

    /// Run the full two-phase protocol over the private values of the two join attributes.
    ///
    /// `domain` is the public candidate domain scanned for frequent items in phase 1 (join
    /// attribute domains are public metadata; only the *values held by users* are private).
    ///
    /// # Errors
    /// Returns an error if either table is too small to populate the phase-1 sample and both
    /// phase-2 groups with at least two users each.
    pub fn estimate(
        &self,
        table_a: &[u64],
        table_b: &[u64],
        domain: &[u64],
        rng: &mut dyn RngCore,
    ) -> Result<PlusEstimate> {
        let cfg = &self.config;
        let params = cfg.params;

        // --- Phase 1: sample users and find frequent items -------------------------------
        let (sample_a, rest_a) = split_sample(table_a, cfg.sampling_rate, rng)?;
        let (sample_b, rest_b) = split_sample(table_b, cfg.sampling_rate, rng)?;
        let client_p1 = LdpJoinSketchClient::new(params, cfg.eps, cfg.seed);
        let sketch_a = build_sketch(&client_p1, &sample_a, params, cfg.eps, cfg.seed, rng)?;
        let sketch_b = build_sketch(&client_p1, &sample_b, params, cfg.eps, cfg.seed, rng)?;

        let discovery =
            self.discover_pair(&sketch_a, &sketch_b, sample_a.len(), sample_b.len(), domain);
        let fi_set: Arc<HashSet<u64>> = Arc::new(discovery.union.iter().copied().collect());

        // --- Phase 2: two groups per attribute, FAP-encoded sketches ---------------------
        let (a1, a2) = split_half(&rest_a, rng);
        let (b1, b2) = split_half(&rest_b, rng);
        debug_assert!(a1.len() >= 2 && a2.len() >= 2 && b1.len() >= 2 && b2.len() >= 2);

        let (fap_low, fap_high, low_seed, high_seed) = self.fap_clients(&fi_set);
        let m_la = build_fap_sketch(&fap_low, &a1, params, cfg.eps, low_seed, rng)?;
        let m_lb = build_fap_sketch(&fap_low, &b1, params, cfg.eps, low_seed, rng)?;
        let m_ha = build_fap_sketch(&fap_high, &a2, params, cfg.eps, high_seed, rng)?;
        let m_hb = build_fap_sketch(&fap_high, &b2, params, cfg.eps, high_seed, rng)?;

        // Assemble the per-table finalized states from the discovery already run above
        // (no second domain scan) and run the shared kernel; its union of the per-table
        // sets is exactly the `fi_set` the FAP clients encoded against.
        let state_a = FinalizedPlusState::with_discovery(
            sketch_a,
            m_la,
            m_ha,
            discovery.fi_a,
            discovery.theta_a,
        );
        let state_b = FinalizedPlusState::with_discovery(
            sketch_b,
            m_lb,
            m_hb,
            discovery.fi_b,
            discovery.theta_b,
        );
        PlusKernel::from_config(cfg).join_est(&state_a, &state_b)
    }

    /// Run the protocol over two replayable bounded-memory value streams — the large-n
    /// entry point.
    ///
    /// Each table is consumed in exactly two forward passes (one per phase) of
    /// `chunk_len()`-bounded chunks; nothing of size `n` is ever materialized. Users are
    /// routed to the phase-1 sample or one of the phase-2 groups by a deterministic hash of
    /// `(config seed, user index)`, so both passes agree on every user's role and the
    /// result depends only on `(streams, config, rng_seed)` — not on chunk boundaries of
    /// the report pipeline or thread scheduling.
    ///
    /// # Errors
    /// Returns [`Error::InvalidWorkload`] if a stream is so small that a phase-2 group ends
    /// up with fewer than two users (the rescale `(n/|A_g|)·(n/|B_g|)` of a singleton group
    /// is degenerate).
    pub fn estimate_chunked(
        &self,
        table_a: &dyn ChunkedValues,
        table_b: &dyn ChunkedValues,
        domain: &[u64],
        rng_seed: u64,
    ) -> Result<PlusEstimate> {
        let cfg = &self.config;

        // --- Pass 1: absorb the routed phase-1 sample, count the groups ------------------
        let p1_a = self.phase1_chunked(table_a, PlusTableRole::A, rng_seed)?;
        let p1_b = self.phase1_chunked(table_b, PlusTableRole::B, rng_seed)?;
        validate_phase1(&p1_a, &p1_b)?;
        let sketch_a = p1_a.builder.finalize();
        let sketch_b = p1_b.builder.finalize();

        let discovery =
            self.discover_pair(&sketch_a, &sketch_b, p1_a.n_sample, p1_b.n_sample, domain);

        // --- Pass 2: replay, FAP-encode the two groups of each table. The emission is the
        // shared streaming driver (`stream_plus_reports`), so the online service absorbing
        // the same labeled batches into windowed builders lands on bit-identical sketches.
        let (low_seed, high_seed) = lane_seeds(cfg.seed);
        let pass2 = |stream: &dyn ChunkedValues,
                     role: PlusTableRole|
         -> Result<(FinalizedSketch, FinalizedSketch)> {
            let mut low_builder = SketchBuilder::new(cfg.params, cfg.eps, low_seed);
            let mut high_builder = SketchBuilder::new(cfg.params, cfg.eps, high_seed);
            self.stream_plus_reports(
                stream,
                role,
                &discovery.union,
                rng_seed,
                false,
                &mut |batch| {
                    low_builder
                        .absorb_all(&batch.low)
                        .and_then(|()| high_builder.absorb_all(&batch.high))
                },
            )?;
            Ok((low_builder.finalize(), high_builder.finalize()))
        };
        let (m_la, m_ha) = pass2(table_a, PlusTableRole::A)?;
        let (m_lb, m_hb) = pass2(table_b, PlusTableRole::B)?;

        // States assembled from the discovery already run above — no second domain scan.
        let state_a = FinalizedPlusState::with_discovery(
            sketch_a,
            m_la,
            m_ha,
            discovery.fi_a,
            discovery.theta_a,
        );
        let state_b = FinalizedPlusState::with_discovery(
            sketch_b,
            m_lb,
            m_hb,
            discovery.fi_b,
            discovery.theta_b,
        );
        PlusKernel::from_config(cfg).join_est(&state_a, &state_b)
    }

    /// Run the phase-1 discovery pass over both chunked streams and return the frequent-item
    /// set (plus routing diagnostics) — the "server broadcasts `FI`" step an *online*
    /// deployment performs before clients start emitting phase-2 reports.
    ///
    /// The pass is bit-identical to the internal pass 1 of
    /// [`LdpJoinSketchPlus::estimate_chunked`] for the same `(streams, config, rng_seed)`,
    /// so a discovery followed by [`LdpJoinSketchPlus::stream_plus_reports`] ingestion
    /// reproduces the one-shot protocol exactly.
    ///
    /// # Errors
    /// [`Error::InvalidWorkload`] if a stream is too small to populate the sample and two
    /// phase-2 groups of at least two users each.
    pub fn discover_frequent_items_chunked(
        &self,
        table_a: &dyn ChunkedValues,
        table_b: &dyn ChunkedValues,
        domain: &[u64],
        rng_seed: u64,
    ) -> Result<PlusDiscovery> {
        let p1_a = self.phase1_chunked(table_a, PlusTableRole::A, rng_seed)?;
        let p1_b = self.phase1_chunked(table_b, PlusTableRole::B, rng_seed)?;
        validate_phase1(&p1_a, &p1_b)?;
        let sketch_a = p1_a.builder.finalize();
        let sketch_b = p1_b.builder.finalize();
        let discovery =
            self.discover_pair(&sketch_a, &sketch_b, p1_a.n_sample, p1_b.n_sample, domain);
        Ok(PlusDiscovery {
            frequent_items: discovery.union,
            thresholds: (discovery.theta_a, discovery.theta_b),
            phase1_users: (p1_a.n_sample, p1_b.n_sample),
            group_sizes: (p1_a.n_low, p1_a.n_high, p1_b.n_low, p1_b.n_high),
        })
    }

    /// Replay one table's value stream as the plus protocol's labeled report batches —
    /// the canonical client-simulation pass of the windowed/online plus path.
    ///
    /// One bounded-memory pass over the stream; each chunk yields one [`PlusReportBatch`]
    /// whose lanes carry exactly the reports the one-shot
    /// [`LdpJoinSketchPlus::estimate_chunked`] would absorb for that chunk: the phase-1
    /// sample lane (included when `include_phase1` is set — the one-shot runner builds it in
    /// its own pass 1) and the two FAP phase-2 lanes encoded against `frequent_items`. The
    /// per-chunk RNG streams and the deterministic user routing are shared with the one-shot
    /// passes, so a consumer absorbing these batches into exact-counter builders — in any
    /// epoch windowing — is bit-identical to the one-shot protocol.
    ///
    /// # Errors
    /// Stops at and returns the first error `sink` reports.
    pub fn stream_plus_reports(
        &self,
        table: &dyn ChunkedValues,
        role: PlusTableRole,
        frequent_items: &[u64],
        rng_seed: u64,
        include_phase1: bool,
        sink: &mut dyn FnMut(&PlusReportBatch) -> Result<()>,
    ) -> Result<()> {
        let cfg = &self.config;
        let route = UserRouter::new(cfg.seed, role.router_tag(), cfg.sampling_rate);
        let client_p1 = LdpJoinSketchClient::new(cfg.params, cfg.eps, cfg.seed);
        let fi_set: Arc<HashSet<u64>> = Arc::new(frequent_items.iter().copied().collect());
        let (fap_low, fap_high, _, _) = self.fap_clients(&fi_set);
        let (p1_tag, p2_tag) = (role.phase1_tag(), role.phase2_tag());
        let mut batch = PlusReportBatch::default();
        let mut sampled: Vec<u64> = Vec::new();
        // Per-pass chunk ordinals (not `start / chunk_len`): the ChunkedValues contract
        // allows non-full mid-stream chunks, whose start indices would collide and replay
        // a noise stream.
        let mut ordinal = 0u64;
        let mut err = None;
        table.for_each_chunk(&mut |start, chunk| {
            if err.is_some() {
                return;
            }
            batch.phase1.clear();
            batch.low.clear();
            batch.high.clear();
            if include_phase1 {
                sampled.clear();
                for (offset, &v) in chunk.iter().enumerate() {
                    if route.route(start + offset as u64) == UserRole::Sample {
                        sampled.push(v);
                    }
                }
                let mut rng = StdRng::seed_from_u64(chunk_stream_seed(rng_seed ^ p1_tag, ordinal));
                // Batched two-phase kernel into the reused lane buffer — bit-identical to
                // perturbing the sampled values one by one.
                client_p1.perturb_all_into(&sampled, &mut rng, &mut batch.phase1);
            }
            let mut rng = StdRng::seed_from_u64(chunk_stream_seed(rng_seed ^ p2_tag, ordinal));
            ordinal += 1;
            for (offset, &v) in chunk.iter().enumerate() {
                match route.route(start + offset as u64) {
                    UserRole::Sample => {}
                    UserRole::LowGroup => batch.low.push(fap_low.perturb(v, &mut rng)),
                    UserRole::HighGroup => batch.high.push(fap_high.perturb(v, &mut rng)),
                }
            }
            if let Err(e) = sink(&batch) {
                err = Some(e);
            }
        });
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// One table's phase-1 pass (the routed sample sketch plus exact role counts), shared by
    /// [`LdpJoinSketchPlus::estimate_chunked`] and the standalone discovery entry point.
    fn phase1_chunked(
        &self,
        stream: &dyn ChunkedValues,
        role: PlusTableRole,
        rng_seed: u64,
    ) -> Result<Phase1Pass> {
        let cfg = &self.config;
        let client_p1 = LdpJoinSketchClient::new(cfg.params, cfg.eps, cfg.seed);
        let route = UserRouter::new(cfg.seed, role.router_tag(), cfg.sampling_rate);
        let tag = role.phase1_tag();
        let mut builder = SketchBuilder::new(cfg.params, cfg.eps, cfg.seed);
        let mut sampled = Vec::new();
        let mut reports = Vec::new();
        let (mut n_sample, mut n_low, mut n_high) = (0usize, 0usize, 0usize);
        // Seed each chunk's RNG from a per-pass ordinal, not from the start index: the
        // ChunkedValues contract allows non-full chunks, whose start indices would collide
        // when divided by chunk_len and replay identical noise.
        let mut ordinal = 0u64;
        let mut err = None;
        stream.for_each_chunk(&mut |start, chunk| {
            if err.is_some() {
                return;
            }
            sampled.clear();
            for (offset, &v) in chunk.iter().enumerate() {
                match route.route(start + offset as u64) {
                    UserRole::Sample => {
                        sampled.push(v);
                        n_sample += 1;
                    }
                    UserRole::LowGroup => n_low += 1,
                    UserRole::HighGroup => n_high += 1,
                }
            }
            let mut rng = StdRng::seed_from_u64(chunk_stream_seed(rng_seed ^ tag, ordinal));
            ordinal += 1;
            // Batched two-phase kernel into the reused buffer — bit-identical to perturbing
            // the sampled values one by one.
            client_p1.perturb_all_into(&sampled, &mut rng, &mut reports);
            if let Err(e) = builder.absorb_all(&reports) {
                err = Some(e);
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        Ok(Phase1Pass {
            builder,
            n_sample,
            n_low,
            n_high,
        })
    }

    /// Phase-1 frequent-item discovery: per-table [`FiPolicy::discover`] scans (fixed-θ
    /// mean-estimator in the classic mode, adaptive-θ median-estimator in the
    /// confidence-driven mode) unioned across the pair — the same single implementation the
    /// finalized plus states run, so the broadcast set and the query-time reconciled set
    /// cannot drift.
    fn discover_pair(
        &self,
        sketch_a: &FinalizedSketch,
        sketch_b: &FinalizedSketch,
        sample_a: usize,
        sample_b: usize,
        domain: &[u64],
    ) -> PairDiscovery {
        let policy = FiPolicy::from_config(&self.config);
        let (fi_a, theta_a) = policy.discover(sketch_a, sample_a, domain);
        let (fi_b, theta_b) = policy.discover(sketch_b, sample_b, domain);
        let mut union: Vec<u64> = fi_a.iter().chain(fi_b.iter()).copied().collect();
        union.sort_unstable();
        union.dedup();
        PairDiscovery {
            fi_a,
            theta_a,
            fi_b,
            theta_b,
            union,
        }
    }

    /// The two FAP clients of phase 2, with their derived hash seeds.
    fn fap_clients(&self, fi_set: &Arc<HashSet<u64>>) -> (FapClient, FapClient, u64, u64) {
        let cfg = &self.config;
        let (low_seed, high_seed) = lane_seeds(cfg.seed);
        let client_low = LdpJoinSketchClient::new(cfg.params, cfg.eps, low_seed);
        let client_high = LdpJoinSketchClient::new(cfg.params, cfg.eps, high_seed);
        let fap_low = FapClient::new(client_low, FapMode::LowFrequency, Arc::clone(fi_set));
        let fap_high = FapClient::new(client_high, FapMode::HighFrequency, Arc::clone(fi_set));
        (fap_low, fap_high, low_seed, high_seed)
    }
}

/// One run of phase-1 discovery over a table pair: the per-table frequent items and
/// thresholds (kept separate so the finalized states can be assembled without re-scanning
/// the domain) plus their sorted union (what the FAP clients encode against).
struct PairDiscovery {
    fi_a: Vec<u64>,
    theta_a: f64,
    fi_b: Vec<u64>,
    theta_b: f64,
    union: Vec<u64>,
}

/// One table's phase-1 pass over a chunked stream: the sample sketch builder plus the exact
/// role counts (the routing is deterministic, so pass 2 sees the identical partition).
struct Phase1Pass {
    builder: SketchBuilder,
    n_sample: usize,
    n_low: usize,
    n_high: usize,
}

/// Reject streams whose deterministic routing left a degenerate protocol: an empty phase-1
/// sample cannot discover frequent items, and a phase-2 group below two users makes the
/// `(n/|A_g|)·(n/|B_g|)` rescale of its partial estimate explode.
fn validate_phase1(p1_a: &Phase1Pass, p1_b: &Phase1Pass) -> Result<()> {
    for (group, name) in [
        (p1_a.n_low, "A1"),
        (p1_a.n_high, "A2"),
        (p1_b.n_low, "B1"),
        (p1_b.n_high, "B2"),
    ] {
        if group < 2 {
            return Err(Error::InvalidWorkload(format!(
                "phase-2 group {name} holds {group} user(s); the (n/|A_g|)·(n/|B_g|) rescale \
                 needs at least 2 — stream more users or lower the sampling rate"
            )));
        }
    }
    if p1_a.n_sample == 0 || p1_b.n_sample == 0 {
        return Err(Error::InvalidWorkload(
            "phase-1 sample is empty; stream more users or raise the sampling rate".into(),
        ));
    }
    Ok(())
}

/// The role the protocol assigns to one user.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UserRole {
    /// Phase-1 sample.
    Sample,
    /// Phase-2 low-frequency group (`X1`).
    LowGroup,
    /// Phase-2 high-frequency group (`X2`).
    HighGroup,
}

/// Deterministic user → role routing for the streaming path: a SplitMix64 hash of the
/// user's global index, so the two protocol passes (and any chunking) agree on every
/// user's role.
struct UserRouter {
    seed: u64,
    rate: f64,
}

impl UserRouter {
    fn new(protocol_seed: u64, table_tag: u64, rate: f64) -> Self {
        UserRouter {
            seed: protocol_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(table_tag),
            rate,
        }
    }

    fn route(&self, user_index: u64) -> UserRole {
        // One canonical SplitMix64 finalizer for the whole crate (shared with the chunk
        // RNG stream derivation).
        let z = chunk_stream_seed(self.seed, user_index);
        // 53 uniform bits decide sample membership.
        let u = (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u < self.rate {
            return UserRole::Sample;
        }
        // Group by *index parity* (seed decides which parity is which group), not by an
        // independent coin: a balanced deterministic split has the hypergeometric
        // composition variance of the materialized shuffle split — per heavy value a
        // `(1−f/n)` factor below the binomial variance of independent per-user coins —
        // and that composition noise is the dominant error of the rescaled high partial.
        if (user_index ^ self.seed) & 1 == 0 {
            UserRole::LowGroup
        } else {
            UserRole::HighGroup
        }
    }
}

/// Split a table into a phase-1 sample of (approximately) `rate·n` users and the remainder.
/// The split is a random partition, mirroring the random user sampling of the protocol.
///
/// The cut is clamped so the remainder can always form two phase-2 groups of **at least two
/// users each**: a singleton group makes the `(n/|A_g|)·(n/|B_g|)` rescale of its partial
/// estimate explode, so high sampling rates are re-cut down to `n − 4` and tables smaller
/// than 5 users are rejected outright.
///
/// # Errors
/// Returns [`Error::InvalidWorkload`] if the table cannot yield a non-empty sample plus two
/// non-singleton groups (fewer than 5 users).
fn split_sample(table: &[u64], rate: f64, rng: &mut dyn RngCore) -> Result<(Vec<u64>, Vec<u64>)> {
    let n = table.len();
    if n < 5 {
        return Err(Error::InvalidWorkload(format!(
            "LDPJoinSketch+ needs at least 5 users per attribute (1 phase-1 sample + two \
             phase-2 groups of ≥2), got {n}"
        )));
    }
    let mut shuffled: Vec<u64> = table.to_vec();
    shuffled.shuffle(rng);
    let cut = ((n as f64 * rate).round() as usize).clamp(1, n - 4);
    let rest = shuffled.split_off(cut);
    Ok((shuffled, rest))
}

/// Split the remaining users into two halves (groups `X1` and `X2` of phase 2).
fn split_half(rest: &[u64], rng: &mut dyn RngCore) -> (Vec<u64>, Vec<u64>) {
    let mut shuffled: Vec<u64> = rest.to_vec();
    shuffled.shuffle(rng);
    let cut = shuffled.len() / 2;
    let second = shuffled.split_off(cut);
    (shuffled, second)
}

fn build_sketch(
    client: &LdpJoinSketchClient,
    values: &[u64],
    params: SketchParams,
    eps: Epsilon,
    seed: u64,
    rng: &mut dyn RngCore,
) -> Result<FinalizedSketch> {
    let mut builder = SketchBuilder::new(params, eps, seed);
    match client.perturb_batch(values, rng) {
        // Packed end-to-end pipeline; bit-identical to the materialized report path.
        Ok(batch) => builder.absorb_batch(&batch)?,
        // Counter space not u32-packable: materialize reports and replay.
        Err(_) => builder.absorb_all(&client.perturb_all(values, rng))?,
    }
    Ok(builder.finalize())
}

fn build_fap_sketch(
    client: &FapClient,
    values: &[u64],
    params: SketchParams,
    eps: Epsilon,
    seed: u64,
    rng: &mut dyn RngCore,
) -> Result<FinalizedSketch> {
    let mut builder = SketchBuilder::new(params, eps, seed);
    match client.perturb_batch(values, rng) {
        Ok(batch) => builder.absorb_batch(&batch)?,
        Err(_) => builder.absorb_all(&client.perturb_all(values, rng))?,
    }
    Ok(builder.finalize())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldpjs_common::stats::exact_join_size;
    use ldpjs_common::stream::SliceChunks;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn skewed(n: usize, domain: u64, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen::<f64>().max(1e-12);
                ((u.powf(-1.3) - 1.0) as u64).min(domain - 1)
            })
            .collect()
    }

    fn config(eps: f64) -> PlusConfig {
        let mut c = PlusConfig::new(
            SketchParams::new(12, 512).unwrap(),
            Epsilon::new(eps).unwrap(),
        );
        c.sampling_rate = 0.15;
        c.threshold = 0.01;
        c
    }

    #[test]
    fn rejects_invalid_configuration() {
        let mut c = config(4.0);
        c.sampling_rate = 0.0;
        assert!(LdpJoinSketchPlus::new(c).is_err());
        let mut c = config(4.0);
        c.sampling_rate = 1.0;
        assert!(LdpJoinSketchPlus::new(c).is_err());
        let mut c = config(4.0);
        c.threshold = 0.0;
        assert!(LdpJoinSketchPlus::new(c).is_err());
        assert!(LdpJoinSketchPlus::new(config(4.0)).is_ok());
    }

    #[test]
    fn rejects_tiny_tables() {
        let est = LdpJoinSketchPlus::new(config(4.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let domain: Vec<u64> = (0..10).collect();
        assert!(est
            .estimate(&[1, 2], &[1, 2, 3, 4, 5], &domain, &mut rng)
            .is_err());
        assert!(est
            .estimate(&[1, 2, 3, 4], &[1, 2, 3, 4, 5], &domain, &mut rng)
            .is_err());
    }

    #[test]
    fn high_sampling_rate_never_leaves_singleton_groups() {
        // Satellite regression: at rate = 0.99 the naive cut `round(0.99·n)` leaves ≤ 2
        // post-sample users, which `split_half` would turn into singleton (or empty)
        // phase-2 groups whose rescale explodes. The re-cut must keep every group at ≥ 2
        // users for n ≥ 5, and n = 4 must be rejected with InvalidWorkload.
        let mut cfg = config(4.0);
        cfg.sampling_rate = 0.99;
        let est = LdpJoinSketchPlus::new(cfg).unwrap();
        let domain: Vec<u64> = (0..10).collect();
        for len in 4usize..=8 {
            let table: Vec<u64> = (0..len as u64).collect();
            let other: Vec<u64> = (0..8u64).collect();
            let mut rng = StdRng::seed_from_u64(42 + len as u64);
            let result = est.estimate(&table, &other, &domain, &mut rng);
            if len < 5 {
                assert!(
                    matches!(result, Err(Error::InvalidWorkload(_))),
                    "len {len} must be rejected with InvalidWorkload"
                );
            } else {
                let r = result.unwrap_or_else(|e| panic!("len {len} failed: {e}"));
                let (a1, a2, b1, b2) = r.group_sizes;
                assert!(
                    a1 >= 2 && a2 >= 2 && b1 >= 2 && b2 >= 2,
                    "len {len} produced a degenerate group: {:?}",
                    r.group_sizes
                );
                assert_eq!(r.phase1_users.0 + a1 + a2, len, "partition of table A");
            }
        }
    }

    #[test]
    fn estimate_tracks_truth_on_skewed_data() {
        let a = skewed(120_000, 20_000, 1);
        let b = skewed(120_000, 20_000, 2);
        let truth = exact_join_size(&a, &b) as f64;
        let est = LdpJoinSketchPlus::new(config(4.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let domain: Vec<u64> = (0..20_000).collect();
        let result = est.estimate(&a, &b, &domain, &mut rng).unwrap();
        let re = (result.join_size - truth).abs() / truth;
        assert!(
            re < 0.35,
            "relative error {re} (est {}, truth {truth})",
            result.join_size
        );
        // Diagnostics must be populated.
        assert!(result.phase1_users.0 > 0 && result.phase1_users.1 > 0);
        let (a1, a2, b1, b2) = result.group_sizes;
        assert!(a1 > 0 && a2 > 0 && b1 > 0 && b2 > 0);
        assert_eq!(
            result.phase1_users.0 + a1 + a2,
            a.len(),
            "phase-1 sample and groups must partition table A"
        );
        assert_eq!(result.phase1_users.1 + b1 + b2, b.len());
        assert!(result.communication_bits > 0);
    }

    #[test]
    fn communication_bits_match_per_phase_report_encodings() {
        // Satellite regression: the old accounting charged every user the *phase-1*
        // client's report size. The total must instead equal the sum over phases of
        // (users in phase) × (that phase's report encoding), which is also the sum of the
        // serialized sizes of the reports each phase's client actually produces.
        let a = skewed(40_000, 2_000, 51);
        let b = skewed(40_000, 2_000, 52);
        let domain: Vec<u64> = (0..2_000).collect();
        let cfg = config(4.0);
        let est = LdpJoinSketchPlus::new(cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(53);
        let r = est.estimate(&a, &b, &domain, &mut rng).unwrap();

        // Reconstruct the per-phase encodings from the same clients the protocol uses.
        let client_p1 = LdpJoinSketchClient::new(cfg.params, cfg.eps, cfg.seed);
        let fi_set: Arc<HashSet<u64>> = Arc::new(r.frequent_items.iter().copied().collect());
        let est_wrap = LdpJoinSketchPlus::new(cfg).unwrap();
        let (fap_low, fap_high, _, _) = est_wrap.fap_clients(&fi_set);
        let (a1, a2, b1, b2) = r.group_sizes;
        let expect_p1 = client_p1.report_bits() * (r.phase1_users.0 + r.phase1_users.1) as u64;
        let expect_p2 =
            fap_low.report_bits() * (a1 + b1) as u64 + fap_high.report_bits() * (a2 + b2) as u64;
        assert_eq!(r.phase_bits, (expect_p1, expect_p2));
        assert_eq!(r.communication_bits, expect_p1 + expect_p2);

        // Cross-check against actually-serialized reports: every report of a phase carries
        // that phase's per-report bit count, so the phase total equals the summed sizes.
        let mut rng2 = StdRng::seed_from_u64(99);
        let sample_reports = client_p1.perturb_all(&a[..r.phase1_users.0], &mut rng2);
        let summed: u64 = sample_reports.iter().map(|_| client_p1.report_bits()).sum();
        assert_eq!(summed, client_p1.report_bits() * r.phase1_users.0 as u64);
        // Total bits = bits for every user of both tables, exactly once each.
        assert_eq!(
            r.communication_bits,
            client_p1.report_bits() * (a.len() + b.len()) as u64,
            "all phases share (k, m), so the per-user cost is uniform — but it must now be \
             derived from the per-phase clients, not asserted"
        );
    }

    #[test]
    fn frequent_items_contain_the_heaviest_value() {
        // Value 0 holds ≳ 40% of the mass under the skewed generator, far above θ = 1%.
        let a = skewed(80_000, 5_000, 7);
        let b = skewed(80_000, 5_000, 8);
        let est = LdpJoinSketchPlus::new(config(4.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let domain: Vec<u64> = (0..5_000).collect();
        let result = est.estimate(&a, &b, &domain, &mut rng).unwrap();
        assert!(
            result.frequent_items.contains(&0),
            "FI {:?} should contain the heaviest value 0",
            &result.frequent_items[..result.frequent_items.len().min(10)]
        );
    }

    #[test]
    fn partial_estimates_sum_to_total() {
        let a = skewed(60_000, 2_000, 11);
        let b = skewed(60_000, 2_000, 12);
        let est = LdpJoinSketchPlus::new(config(6.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let domain: Vec<u64> = (0..2_000).collect();
        let r = est.estimate(&a, &b, &domain, &mut rng).unwrap();
        let (a1, a2, b1, b2) = r.group_sizes;
        let scale_low = (a.len() * b.len()) as f64 / (a1 * b1) as f64;
        let scale_high = (a.len() * b.len()) as f64 / (a2 * b2) as f64;
        let recomposed = scale_low * r.low_estimate + scale_high * r.high_estimate;
        assert!((recomposed - r.join_size).abs() < 1e-6 * r.join_size.abs().max(1.0));
    }

    #[test]
    fn adaptive_mode_tracks_truth_and_reports_adaptive_thresholds() {
        let a = skewed(120_000, 5_000, 61);
        let b = skewed(120_000, 5_000, 62);
        let truth = exact_join_size(&a, &b) as f64;
        let domain: Vec<u64> = (0..5_000).collect();
        let mut cfg = config(4.0);
        cfg.adaptive = true;
        let est = LdpJoinSketchPlus::new(cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(63);
        let r = est.estimate(&a, &b, &domain, &mut rng).unwrap();
        let re = (r.join_size - truth).abs() / truth;
        assert!(re < 0.3, "adaptive relative error {re}");
        // The adaptive thresholds come from the noise-floor bound, not the config.
        let (ta, tb) = r.thresholds;
        assert_ne!(ta, cfg.threshold);
        let floor = 1.0 / ((512.0f64 * 12.0).sqrt());
        assert!(ta >= floor && ta <= 0.5, "θ_A {ta}");
        assert!(tb >= floor && tb <= 0.5, "θ_B {tb}");
        // Confidence weights are well-formed.
        let (wl, wh) = r.recombination_weights;
        assert!((0.0..=1.0).contains(&wl) && (0.0..=1.0).contains(&wh));
        // The heaviest value must be in FI.
        assert!(r.frequent_items.contains(&0));
    }

    #[test]
    fn chunked_estimate_matches_protocol_invariants_and_tracks_truth() {
        let n = 150_000usize;
        let a = skewed(n, 5_000, 71);
        let b = skewed(n, 5_000, 72);
        let truth = exact_join_size(&a, &b) as f64;
        let domain: Vec<u64> = (0..5_000).collect();
        let mut cfg = config(4.0);
        cfg.adaptive = true;
        let est = LdpJoinSketchPlus::new(cfg).unwrap();
        let source_a = SliceChunks::new(&a, 4_096);
        let source_b = SliceChunks::new(&b, 4_096);
        let r = est
            .estimate_chunked(&source_a, &source_b, &domain, 77)
            .unwrap();
        let re = (r.join_size - truth).abs() / truth;
        assert!(re < 0.3, "chunked relative error {re}");
        // The routing partitions every table exactly.
        let (a1, a2, b1, b2) = r.group_sizes;
        assert_eq!(r.phase1_users.0 + a1 + a2, n);
        assert_eq!(r.phase1_users.1 + b1 + b2, n);
        // Roughly the configured sampling rate (binomial, 15% ± a few σ).
        let rate = r.phase1_users.0 as f64 / n as f64;
        assert!((rate - 0.15).abs() < 0.01, "sample rate drifted: {rate}");
    }

    #[test]
    fn chunked_estimate_is_chunk_size_invariant() {
        // The user routing depends only on the global index and the report RNG on the
        // stream's own chunk length — so two *identical* streams chunked the same way give
        // identical results, and the result survives re-chunking of the report pipeline
        // (same chunk_len, different ingestion batching is internal).
        let a = skewed(30_000, 1_000, 81);
        let b = skewed(30_000, 1_000, 82);
        let domain: Vec<u64> = (0..1_000).collect();
        let mut cfg = config(4.0);
        cfg.adaptive = true;
        let est = LdpJoinSketchPlus::new(cfg).unwrap();
        let r1 = est
            .estimate_chunked(
                &SliceChunks::new(&a, 4_096),
                &SliceChunks::new(&b, 4_096),
                &domain,
                5,
            )
            .unwrap();
        let r2 = est
            .estimate_chunked(
                &SliceChunks::new(&a, 4_096),
                &SliceChunks::new(&b, 4_096),
                &domain,
                5,
            )
            .unwrap();
        assert_eq!(r1.join_size, r2.join_size, "replay must be deterministic");
        assert_eq!(r1.group_sizes, r2.group_sizes);
        // A different rng seed gives a different (but still sane) realization.
        let r3 = est
            .estimate_chunked(
                &SliceChunks::new(&a, 4_096),
                &SliceChunks::new(&b, 4_096),
                &domain,
                6,
            )
            .unwrap();
        assert_eq!(
            r1.group_sizes, r3.group_sizes,
            "routing is rng-seed independent"
        );
        assert_ne!(r1.join_size, r3.join_size);
    }

    #[test]
    fn chunked_estimate_rejects_tiny_streams() {
        // 3 users can never populate two ≥2-user groups, whatever the routing does.
        let tiny: Vec<u64> = (0..3).collect();
        let domain: Vec<u64> = (0..10).collect();
        let mut cfg = config(4.0);
        cfg.adaptive = true;
        let est = LdpJoinSketchPlus::new(cfg).unwrap();
        let r = est.estimate_chunked(
            &SliceChunks::new(&tiny, 4),
            &SliceChunks::new(&tiny, 4),
            &domain,
            1,
        );
        assert!(matches!(r, Err(Error::InvalidWorkload(_))));
    }

    #[test]
    fn variance_weighted_recombination_damps_a_noise_dominated_partial() {
        // A high threshold on a moderately skewed table leaves the frequent-item set empty,
        // so the phase-2 "high" sketch targets nothing: its rescaled partial is pure
        // amplified noise around zero. The plain sum injects that noise at full weight; the
        // inverse-variance weighting must shrink it and give a smaller (or equal) error on
        // average over several rounds.
        let a = skewed(60_000, 2_000, 31);
        let b = skewed(60_000, 2_000, 32);
        let domain: Vec<u64> = (0..2_000).collect();
        let truth = exact_join_size(&a, &b) as f64;
        let mut cfg = config(4.0);
        cfg.threshold = 0.5; // nothing clears 50% of the table -> FI stays empty
        let mut cfg_weighted = cfg;
        cfg_weighted.variance_weighted_recombination = true;

        let mut err_plain = 0.0;
        let mut err_weighted = 0.0;
        for i in 0..4u64 {
            let mut rng1 = StdRng::seed_from_u64(40 + i);
            let mut rng2 = StdRng::seed_from_u64(40 + i);
            let plain = LdpJoinSketchPlus::new(cfg)
                .unwrap()
                .estimate(&a, &b, &domain, &mut rng1)
                .unwrap();
            let weighted = LdpJoinSketchPlus::new(cfg_weighted)
                .unwrap()
                .estimate(&a, &b, &domain, &mut rng2)
                .unwrap();
            assert_eq!(plain.recombination_weights, (1.0, 1.0));
            let (w_low, w_high) = weighted.recombination_weights;
            assert!((0.0..=1.0).contains(&w_low) && (0.0..=1.0).contains(&w_high));
            assert!(
                w_high < 0.9,
                "the no-target high partial should be recognised as noise, weight {w_high}"
            );
            assert!(
                w_low > w_high,
                "the signal-bearing low partial must outweigh the noise partial"
            );
            err_plain += (plain.join_size - truth).abs();
            err_weighted += (weighted.join_size - truth).abs();
        }
        assert!(
            err_weighted <= err_plain,
            "variance weighting should not lose to the plain sum when one partial is pure \
             noise: weighted {err_weighted} vs plain {err_plain}"
        );
    }

    #[test]
    fn paper_literal_subtraction_gives_a_different_answer() {
        let a = skewed(60_000, 2_000, 21);
        let b = skewed(60_000, 2_000, 22);
        let domain: Vec<u64> = (0..2_000).collect();
        let mut cfg = config(4.0);
        cfg.paper_literal_subtraction = false;
        let scaled = LdpJoinSketchPlus::new(cfg).unwrap();
        let mut cfg2 = config(4.0);
        cfg2.paper_literal_subtraction = true;
        let literal = LdpJoinSketchPlus::new(cfg2).unwrap();
        let mut rng1 = StdRng::seed_from_u64(5);
        let mut rng2 = StdRng::seed_from_u64(5);
        let e1 = scaled.estimate(&a, &b, &domain, &mut rng1).unwrap();
        let e2 = literal.estimate(&a, &b, &domain, &mut rng2).unwrap();
        // Same randomness, different subtraction rule -> different (but finite) answers.
        assert!(e1.join_size.is_finite() && e2.join_size.is_finite());
        assert_ne!(e1.join_size, e2.join_size);
        // The group-scaled variant should be at least as accurate on this workload.
        let truth = exact_join_size(&a, &b) as f64;
        assert!(
            (e1.join_size - truth).abs() <= (e2.join_size - truth).abs() * 1.5,
            "group-scaled error {} vs literal error {}",
            (e1.join_size - truth).abs(),
            (e2.join_size - truth).abs()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Satellite proptest: `split_sample` is an exact multiset partition — every user
        /// lands in exactly one side, with the claimed sizes (cut clamped into [1, n−4]).
        #[test]
        fn prop_split_sample_is_an_exact_partition(
            n in 5usize..400,
            rate in 0.01f64..0.99,
            seed in any::<u64>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let table: Vec<u64> = (0..n as u64).map(|v| v * 3 % 97).collect();
            let (sample, rest) = split_sample(&table, rate, &mut rng).unwrap();
            prop_assert!(!sample.is_empty());
            prop_assert!(rest.len() >= 4, "rest {} too small for two groups", rest.len());
            prop_assert_eq!(sample.len() + rest.len(), n);
            let expected_cut = ((n as f64 * rate).round() as usize).clamp(1, n - 4);
            prop_assert_eq!(sample.len(), expected_cut);
            let mut merged: Vec<u64> = sample.into_iter().chain(rest).collect();
            merged.sort_unstable();
            let mut original = table.clone();
            original.sort_unstable();
            prop_assert_eq!(merged, original);
        }

        /// Satellite proptest: `split_half` partitions its input into halves of sizes
        /// ⌊n/2⌋ and ⌈n/2⌉ with the multiset preserved.
        #[test]
        fn prop_split_half_is_an_exact_partition(n in 0usize..300, seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let rest: Vec<u64> = (0..n as u64).map(|v| v.wrapping_mul(7) % 51).collect();
            let (g1, g2) = split_half(&rest, &mut rng);
            prop_assert_eq!(g1.len(), n / 2);
            prop_assert_eq!(g2.len(), n - n / 2);
            let mut merged: Vec<u64> = g1.into_iter().chain(g2).collect();
            merged.sort_unstable();
            let mut original = rest.clone();
            original.sort_unstable();
            prop_assert_eq!(merged, original);
        }

        /// The streaming router is a deterministic function of (seed, index) with the
        /// configured sample rate, and both passes see the same role for every user.
        #[test]
        fn prop_router_is_deterministic_and_rate_correct(
            seed in any::<u64>(),
            rate in 0.05f64..0.5,
        ) {
            let router = UserRouter::new(seed, 0xA, rate);
            let n = 4_000u64;
            let roles: Vec<UserRole> = (0..n).map(|i| router.route(i)).collect();
            let replay: Vec<UserRole> = (0..n).map(|i| router.route(i)).collect();
            prop_assert_eq!(&roles, &replay);
            let sampled = roles.iter().filter(|&&r| r == UserRole::Sample).count() as f64;
            // Binomial(4000, rate): allow 5σ.
            let sigma = (n as f64 * rate * (1.0 - rate)).sqrt();
            prop_assert!((sampled - n as f64 * rate).abs() < 5.0 * sigma + 5.0);
        }
    }
}
