//! The two-stage lifecycle of LDPJoinSketch+'s per-attribute estimator state, mirroring the
//! [`SketchBuilder`] / [`FinalizedSketch`] split of the plain sketch.
//!
//! One table's side of the plus protocol is three report lanes — the phase-1 sample sketch
//! and the two phase-2 FAP sketches (low- and high-frequency groups) — plus the frequent-item
//! set that phase 1 derives. [`PlusStateBuilder`] is the **mutable accumulation stage**: it
//! absorbs [`PlusReportBatch`]es into the three lanes (exact ±1 integer counter sums, so
//! builders merge across epoch windows at zero rounding error, exactly like the plain
//! builder). [`PlusStateBuilder::finalize`] restores each lane once and runs frequent-item
//! discovery on the finalized phase-1 sketch, yielding the immutable [`FinalizedPlusState`]
//! estimation view that the [`PlusKernel`](crate::kernel::PlusKernel) borrows.
//!
//! Because the frequent-item set is **re-derived from the finalized phase-1 sketch** rather
//! than carried alongside the counters, merging k windows' builders and finalizing once
//! performs *cross-window FI reconciliation* for free: the merged state's FI is discovered on
//! the merged phase-1 sketch, and the kernel's high partial re-masks the merged phase-2
//! sketches via [`FinalizedSketch::row_products_masked`] with that reconciled set. A full-span
//! merge is therefore bit-identical to the one-shot
//! [`ldp_join_plus_estimate_chunked`](crate::protocol::ldp_join_plus_estimate_chunked) run
//! over the concatenated stream.

use ldpjs_common::error::{Error, Result};
use ldpjs_common::privacy::Epsilon;
use ldpjs_sketch::SketchParams;

use crate::bounds;
use crate::client::ClientReport;
use crate::plus::PlusConfig;
use crate::server::{DomainIndex, FinalizedSketch, SketchBuilder};

/// Derive the phase-2 lane hash seeds from the protocol seed. The low and high FAP sketches
/// use distinct public hash families so their collisions decorrelate; both sides of a join
/// derive the same pair from the shared protocol seed.
#[inline]
pub(crate) fn lane_seeds(protocol_seed: u64) -> (u64, u64) {
    (
        protocol_seed ^ 0x9E37_79B9_7F4A_7C15,
        protocol_seed ^ 0x5851_F42D_4C95_7F2D,
    )
}

/// How phase-1 frequent-item discovery runs: the fixed-θ mean-estimator scan of the classic
/// mode, or the adaptive-θ median-estimator scan of the confidence-driven mode. This is the
/// single implementation behind the one-shot runners *and* the finalization of windowed plus
/// state, so offline and online FI sets cannot drift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiPolicy {
    /// Fixed frequent-item threshold θ (ignored when `adaptive` is set).
    pub threshold: f64,
    /// Derive θ per table from the detection noise floor and use the collision-robust
    /// median frequency estimator.
    pub adaptive: bool,
}

impl FiPolicy {
    /// The discovery policy a [`PlusConfig`] implies.
    pub fn from_config(config: &PlusConfig) -> Self {
        FiPolicy {
            threshold: config.threshold,
            adaptive: config.adaptive,
        }
    }

    /// Discover one table's frequent items on its finalized phase-1 sketch. Returns the
    /// items and the threshold θ actually applied. An empty sample yields an empty set (a
    /// window that sealed before any sample user arrived claims no frequent items).
    pub fn discover(
        &self,
        sketch: &FinalizedSketch,
        samples: usize,
        domain: &[u64],
    ) -> (Vec<u64>, f64) {
        if samples == 0 {
            return (Vec::new(), self.threshold);
        }
        if self.adaptive {
            let theta = bounds::adaptive_phase1_threshold(
                sketch.params(),
                sketch.epsilon(),
                samples as f64,
                sketch.f2_estimate(),
            );
            (
                sketch.frequent_items_median(domain, theta, samples as f64),
                theta,
            )
        } else {
            (
                sketch.frequent_items(domain, self.threshold, samples as f64),
                self.threshold,
            )
        }
    }

    /// [`FiPolicy::discover`] over a pre-hashed [`DomainIndex`] covering the same candidate
    /// domain — the same `(items, θ)`, bit for bit (the indexed scans on
    /// [`FinalizedSketch`] are exact), without re-evaluating `k · |domain|` hash pairs per
    /// scan. The online service holds one index per plus attribute and routes every seal
    /// and merged-span discovery through here.
    pub fn discover_indexed(
        &self,
        sketch: &FinalizedSketch,
        samples: usize,
        index: &DomainIndex,
    ) -> (Vec<u64>, f64) {
        if samples == 0 {
            return (Vec::new(), self.threshold);
        }
        if self.adaptive {
            let theta = bounds::adaptive_phase1_threshold(
                sketch.params(),
                sketch.epsilon(),
                samples as f64,
                sketch.f2_estimate(),
            );
            (
                sketch.frequent_items_median_indexed(index, theta, samples as f64),
                theta,
            )
        } else {
            (
                sketch.frequent_items_indexed(index, self.threshold, samples as f64),
                self.threshold,
            )
        }
    }
}

/// One ingestion batch of plus-protocol reports, labeled by lane. The streaming client
/// simulation ([`LdpJoinSketchPlus::stream_plus_reports`](crate::plus::LdpJoinSketchPlus::stream_plus_reports))
/// emits one batch per stream chunk; the online service absorbs each batch into the live
/// [`PlusStateBuilder`] of the addressed attribute.
#[derive(Debug, Clone, Default)]
pub struct PlusReportBatch {
    /// Phase-1 sample reports (plain LDPJoinSketch encoding).
    pub phase1: Vec<ClientReport>,
    /// Phase-2 low-frequency group reports (FAP, `mode == L`).
    pub low: Vec<ClientReport>,
    /// Phase-2 high-frequency group reports (FAP, `mode == H`).
    pub high: Vec<ClientReport>,
}

impl PlusReportBatch {
    /// Total reports across the three lanes.
    pub fn len(&self) -> usize {
        self.phase1.len() + self.low.len() + self.high.len()
    }

    /// Whether the batch carries no reports at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The mutable accumulation stage of one attribute's LDPJoinSketch+ state: three exact
/// integer-counter report lanes (phase-1 sample, phase-2 low group, phase-2 high group).
///
/// Like the plain [`SketchBuilder`], lane counters are exact ±1 report sums, so
/// [`PlusStateBuilder::merge`] across epoch windows is bit-for-bit identical to absorbing
/// every report into a single builder — the property the online service's window-merge
/// guarantee extends to the plus path.
#[derive(Debug, Clone)]
pub struct PlusStateBuilder {
    phase1: SketchBuilder,
    low: SketchBuilder,
    high: SketchBuilder,
}

impl PlusStateBuilder {
    /// Create an empty plus-state builder. The phase-1 lane derives its hash family from
    /// `seed` directly (it must match the plain client of the phase-1 sample); the two
    /// phase-2 lanes derive the distinct lane seeds both join partners share.
    pub fn new(params: SketchParams, eps: Epsilon, seed: u64) -> Self {
        let (low_seed, high_seed) = lane_seeds(seed);
        PlusStateBuilder {
            phase1: SketchBuilder::new(params, eps, seed),
            low: SketchBuilder::new(params, eps, low_seed),
            high: SketchBuilder::new(params, eps, high_seed),
        }
    }

    /// Sketch parameters `(k, m)` shared by the three lanes.
    #[inline]
    pub fn params(&self) -> SketchParams {
        self.phase1.params()
    }

    /// Privacy budget the absorbed reports were perturbed with.
    #[inline]
    pub fn epsilon(&self) -> Epsilon {
        self.phase1.epsilon()
    }

    /// Total reports absorbed across the three lanes.
    #[inline]
    pub fn reports(&self) -> u64 {
        self.phase1.reports() + self.low.reports() + self.high.reports()
    }

    /// Per-lane report counts `(phase1, low, high)`.
    #[inline]
    pub fn lane_reports(&self) -> (u64, u64, u64) {
        (
            self.phase1.reports(),
            self.low.reports(),
            self.high.reports(),
        )
    }

    /// The three exact-counter lanes `(phase1, low, high)`, borrowed — e.g. to take their
    /// [`SketchBuilder::spectrum`]s for the online service's incremental span ledger.
    #[inline]
    pub fn lane_builders(&self) -> (&SketchBuilder, &SketchBuilder, &SketchBuilder) {
        (&self.phase1, &self.low, &self.high)
    }

    /// Absorb one labeled batch atomically: every lane is validated against its sketch
    /// before any counter moves, so a rejected batch leaves all three lanes untouched.
    ///
    /// The lanes arrive as array-of-structs report vectors, where a fused replay is the
    /// fastest honest path (see [`SketchBuilder::absorb_all`] for the measurement); the
    /// cross-lane atomicity requirement forces the validate sweep ahead of the first
    /// counter move here.
    ///
    /// # Errors
    /// [`Error::ReportOutOfRange`] for the first report that does not fit the sketch.
    pub fn absorb_batch(&mut self, batch: &PlusReportBatch) -> Result<()> {
        self.phase1.validate_batch(&batch.phase1)?;
        self.low.validate_batch(&batch.low)?;
        self.high.validate_batch(&batch.high)?;
        self.phase1.accumulate_validated(&batch.phase1);
        self.low.accumulate_validated(&batch.low);
        self.high.accumulate_validated(&batch.high);
        Ok(())
    }

    /// Merge another partial plus-state builder lane-wise (exact integer counter addition —
    /// the window-merge primitive of the online plus path).
    ///
    /// # Errors
    /// [`Error::IncompatibleSketches`] if any lane's parameters, hash seed or ε differ.
    pub fn merge(&mut self, other: &Self) -> Result<()> {
        self.phase1.merge(&other.phase1)?;
        self.low.merge(&other.low)?;
        self.high.merge(&other.high)?;
        Ok(())
    }

    /// Exact lane-wise subtraction: returns a builder holding `self − earlier` in every
    /// lane (the plus-path primitive of the online service's prefix-sum span ledger; see
    /// [`SketchBuilder::difference`] for why the result is bit-identical to merging the
    /// suffix windows from scratch).
    ///
    /// # Errors
    /// [`Error::IncompatibleSketches`] if any lane's parameters, hash seed or ε differ, or
    /// if `earlier` is not a prefix (more reports than `self` in some lane).
    pub fn difference(&self, earlier: &Self) -> Result<PlusStateBuilder> {
        Ok(PlusStateBuilder {
            phase1: self.phase1.difference(&earlier.phase1)?,
            low: self.low.difference(&earlier.low)?,
            high: self.high.difference(&earlier.high)?,
        })
    }

    /// Restore the three lanes and run frequent-item discovery once, consuming the builder
    /// and returning the immutable estimation view.
    pub fn finalize(self, policy: FiPolicy, domain: &[u64]) -> FinalizedPlusState {
        let PlusStateBuilder { phase1, low, high } = self;
        FinalizedPlusState::new(
            phase1.finalize(),
            low.finalize(),
            high.finalize(),
            policy,
            domain,
        )
    }

    /// Restore a *snapshot* of the state without consuming the builder (the epoch-sealing
    /// hook of the online service's plus path), sharing the exact restore pipeline with
    /// [`PlusStateBuilder::finalize`] so the two entry points cannot diverge bit-wise.
    pub fn finalize_view(&self, policy: FiPolicy, domain: &[u64]) -> FinalizedPlusState {
        FinalizedPlusState::new(
            self.phase1.finalize_view(),
            self.low.finalize_view(),
            self.high.finalize_view(),
            policy,
            domain,
        )
    }

    /// [`PlusStateBuilder::finalize_view`] with discovery routed through a pre-hashed
    /// [`DomainIndex`] over the same candidate domain — bit-identical state, faster scan.
    pub fn finalize_view_indexed(
        &self,
        policy: FiPolicy,
        index: &DomainIndex,
    ) -> FinalizedPlusState {
        FinalizedPlusState::new_indexed(
            self.phase1.finalize_view(),
            self.low.finalize_view(),
            self.high.finalize_view(),
            policy,
            index,
        )
    }

    /// [`PlusStateBuilder::finalize`] (consuming — no counter clone) with discovery routed
    /// through a pre-hashed [`DomainIndex`] — bit-identical state, faster scan.
    pub fn finalize_indexed(self, policy: FiPolicy, index: &DomainIndex) -> FinalizedPlusState {
        let PlusStateBuilder { phase1, low, high } = self;
        FinalizedPlusState::new_indexed(
            phase1.finalize(),
            low.finalize(),
            high.finalize(),
            policy,
            index,
        )
    }
}

/// The immutable estimation stage of one attribute's LDPJoinSketch+ state: the finalized
/// phase-1 and phase-2 sketches, the frequent-item set discovered on the finalized phase-1
/// sketch, and the threshold that discovery applied.
///
/// Everything the [`PlusKernel`](crate::kernel::PlusKernel) needs to run `JoinEst` against a
/// partner state is borrowed from here; group sizes and table totals are derived from the
/// lanes' exact report counts.
#[derive(Debug, Clone)]
pub struct FinalizedPlusState {
    phase1: FinalizedSketch,
    low: FinalizedSketch,
    high: FinalizedSketch,
    frequent_items: Vec<u64>,
    threshold: f64,
}

impl FinalizedPlusState {
    /// Assemble a finalized state from already-finalized lane sketches, running frequent-item
    /// discovery under `policy` over the public candidate `domain`. This is the single
    /// assembly point shared by the one-shot runners (materialized and chunked) and the
    /// online service's window merges.
    pub fn new(
        phase1: FinalizedSketch,
        low: FinalizedSketch,
        high: FinalizedSketch,
        policy: FiPolicy,
        domain: &[u64],
    ) -> Self {
        let (frequent_items, threshold) =
            policy.discover(&phase1, phase1.reports() as usize, domain);
        Self::with_discovery(phase1, low, high, frequent_items, threshold)
    }

    /// [`FinalizedPlusState::new`] with discovery routed through a pre-hashed
    /// [`DomainIndex`] ([`FiPolicy::discover_indexed`]) — the same state, bit for bit.
    pub fn new_indexed(
        phase1: FinalizedSketch,
        low: FinalizedSketch,
        high: FinalizedSketch,
        policy: FiPolicy,
        index: &DomainIndex,
    ) -> Self {
        let (frequent_items, threshold) =
            policy.discover_indexed(&phase1, phase1.reports() as usize, index);
        Self::with_discovery(phase1, low, high, frequent_items, threshold)
    }

    /// Assemble a finalized state from lane sketches and an **already-run** discovery
    /// result — the constructor the one-shot runners use so the `O(|domain|·k)` phase-1
    /// scan they needed anyway (to broadcast `FI` before phase 2) is not repeated. The
    /// caller is responsible for `(frequent_items, threshold)` being exactly what
    /// [`FiPolicy::discover`] returns on `phase1`; the windowed service always goes
    /// through [`FinalizedPlusState::new`] instead, which is what makes merged spans
    /// re-discover (reconcile) on the merged sketch.
    pub fn with_discovery(
        phase1: FinalizedSketch,
        low: FinalizedSketch,
        high: FinalizedSketch,
        frequent_items: Vec<u64>,
        threshold: f64,
    ) -> Self {
        FinalizedPlusState {
            phase1,
            low,
            high,
            frequent_items,
            threshold,
        }
    }

    /// The finalized phase-1 sample sketch.
    #[inline]
    pub fn phase1(&self) -> &FinalizedSketch {
        &self.phase1
    }

    /// The finalized phase-2 low-frequency FAP sketch.
    #[inline]
    pub fn low(&self) -> &FinalizedSketch {
        &self.low
    }

    /// The finalized phase-2 high-frequency FAP sketch.
    #[inline]
    pub fn high(&self) -> &FinalizedSketch {
        &self.high
    }

    /// This table's frequent items, discovered on the finalized phase-1 sketch.
    #[inline]
    pub fn frequent_items(&self) -> &[u64] {
        &self.frequent_items
    }

    /// The frequent-item threshold θ discovery actually applied.
    #[inline]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Phase-1 sample users.
    #[inline]
    pub fn samples(&self) -> usize {
        self.phase1.reports() as usize
    }

    /// Phase-2 low-frequency group users (`|X1|`).
    #[inline]
    pub fn low_users(&self) -> usize {
        self.low.reports() as usize
    }

    /// Phase-2 high-frequency group users (`|X2|`).
    #[inline]
    pub fn high_users(&self) -> usize {
        self.high.reports() as usize
    }

    /// Total users the state summarises (`n = sample + |X1| + |X2|`).
    #[inline]
    pub fn total_users(&self) -> usize {
        self.samples() + self.low_users() + self.high_users()
    }

    /// Total reports across the three lanes, as a `u64` (the service's accounting unit).
    #[inline]
    pub fn reports(&self) -> u64 {
        self.phase1.reports() + self.low.reports() + self.high.reports()
    }

    /// Check that two states can be joined: every lane pair must share `(k, m)` and its
    /// public hash family (the kernel's row products re-check per call; this gives callers
    /// an early, descriptive error).
    pub fn check_joinable(&self, other: &Self) -> Result<()> {
        for (mine, theirs, lane) in [
            (&self.phase1, &other.phase1, "phase-1"),
            (&self.low, &other.low, "phase-2 low"),
            (&self.high, &other.high, "phase-2 high"),
        ] {
            if mine.params() != theirs.params() || mine.hashes().seed() != theirs.hashes().seed() {
                return Err(Error::IncompatibleSketches(format!(
                    "plus states differ in the {lane} lane: {} seed {} vs {} seed {}",
                    mine.params(),
                    mine.hashes().seed(),
                    theirs.params(),
                    theirs.hashes().seed()
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::LdpJoinSketchClient;
    use crate::fap::{FapClient, FapMode};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;
    use std::sync::Arc;

    fn params() -> SketchParams {
        SketchParams::new(8, 128).unwrap()
    }

    fn eps() -> Epsilon {
        Epsilon::new(4.0).unwrap()
    }

    fn batch_for(seed: u64, n: usize) -> PlusReportBatch {
        let (low_seed, high_seed) = lane_seeds(9);
        let p1 = LdpJoinSketchClient::new(params(), eps(), 9);
        let fi: Arc<HashSet<u64>> = Arc::new([1u64, 2].into_iter().collect());
        let low = FapClient::new(
            LdpJoinSketchClient::new(params(), eps(), low_seed),
            FapMode::LowFrequency,
            Arc::clone(&fi),
        );
        let high = FapClient::new(
            LdpJoinSketchClient::new(params(), eps(), high_seed),
            FapMode::HighFrequency,
            fi,
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let values: Vec<u64> = (0..n as u64).map(|v| v % 50).collect();
        PlusReportBatch {
            phase1: p1.perturb_all(&values[..n / 5], &mut rng),
            low: low.perturb_all(&values[n / 5..n / 5 + 2 * n / 5], &mut rng),
            high: high.perturb_all(&values[n / 5 + 2 * n / 5..], &mut rng),
        }
    }

    #[test]
    fn batch_accounting_and_lane_counts() {
        let batch = batch_for(1, 100);
        assert_eq!(batch.len(), 100);
        assert!(!batch.is_empty());
        assert!(PlusReportBatch::default().is_empty());
        let mut builder = PlusStateBuilder::new(params(), eps(), 9);
        builder.absorb_batch(&batch).unwrap();
        assert_eq!(builder.reports(), 100);
        assert_eq!(builder.lane_reports(), (20, 40, 40));
    }

    #[test]
    fn rejected_batch_leaves_every_lane_untouched() {
        let mut builder = PlusStateBuilder::new(params(), eps(), 9);
        let mut batch = batch_for(2, 50);
        // Poison the *last* lane: absorption must be atomic across lanes, not per lane.
        batch.high.push(ClientReport {
            y: 1.0,
            row: 99,
            col: 0,
        });
        assert!(matches!(
            builder.absorb_batch(&batch),
            Err(Error::ReportOutOfRange { .. })
        ));
        assert_eq!(builder.reports(), 0);
        let domain: Vec<u64> = (0..50).collect();
        let state = builder.finalize(
            FiPolicy {
                threshold: 0.01,
                adaptive: false,
            },
            &domain,
        );
        assert!(state.phase1().restored_counters().iter().all(|&v| v == 0.0));
        assert!(state.frequent_items().is_empty(), "empty sample -> no FI");
    }

    #[test]
    fn window_merge_is_bit_identical_to_single_builder_per_lane() {
        let policy = FiPolicy {
            threshold: 0.02,
            adaptive: false,
        };
        let domain: Vec<u64> = (0..50).collect();
        let batches: Vec<PlusReportBatch> =
            (0..7).map(|i| batch_for(10 + i, 90 + i as usize)).collect();

        let mut single = PlusStateBuilder::new(params(), eps(), 9);
        for b in &batches {
            single.absorb_batch(b).unwrap();
        }

        for windows in [1usize, 2, 4, 7] {
            let per = batches.len().div_ceil(windows);
            let mut sealed: Vec<PlusStateBuilder> = Vec::new();
            for part in batches.chunks(per) {
                let mut w = PlusStateBuilder::new(params(), eps(), 9);
                for b in part {
                    w.absorb_batch(b).unwrap();
                }
                sealed.push(w);
            }
            let mut merged = sealed[0].clone();
            for w in &sealed[1..] {
                merged.merge(w).unwrap();
            }
            assert_eq!(merged.lane_reports(), single.lane_reports());
            let merged = merged.finalize_view(policy, &domain);
            let reference = single.finalize_view(policy, &domain);
            assert_eq!(
                merged.phase1().restored_counters(),
                reference.phase1().restored_counters(),
                "{windows}-window phase-1 merge diverged"
            );
            assert_eq!(
                merged.low().restored_counters(),
                reference.low().restored_counters()
            );
            assert_eq!(
                merged.high().restored_counters(),
                reference.high().restored_counters()
            );
            assert_eq!(merged.frequent_items(), reference.frequent_items());
            assert_eq!(merged.threshold(), reference.threshold());
        }
    }

    #[test]
    fn finalize_and_finalize_view_agree_bitwise() {
        let mut builder = PlusStateBuilder::new(params(), eps(), 9);
        builder.absorb_batch(&batch_for(3, 120)).unwrap();
        let policy = FiPolicy {
            threshold: 0.01,
            adaptive: true,
        };
        let domain: Vec<u64> = (0..50).collect();
        let view = builder.finalize_view(policy, &domain);
        let consumed = builder.finalize(policy, &domain);
        assert_eq!(
            view.phase1().restored_counters(),
            consumed.phase1().restored_counters()
        );
        assert_eq!(view.frequent_items(), consumed.frequent_items());
        assert_eq!(view.total_users(), consumed.total_users());
    }

    #[test]
    fn mismatched_seeds_do_not_merge_or_join() {
        let mut a = PlusStateBuilder::new(params(), eps(), 9);
        let b = PlusStateBuilder::new(params(), eps(), 10);
        assert!(a.merge(&b).is_err());
        let policy = FiPolicy {
            threshold: 0.01,
            adaptive: false,
        };
        let domain: Vec<u64> = (0..10).collect();
        let fa = PlusStateBuilder::new(params(), eps(), 9).finalize(policy, &domain);
        let fb = PlusStateBuilder::new(params(), eps(), 10).finalize(policy, &domain);
        assert!(fa.check_joinable(&fb).is_err());
        let fc = PlusStateBuilder::new(params(), eps(), 9).finalize(policy, &domain);
        assert!(fa.check_joinable(&fc).is_ok());
    }
}
