//! End-to-end protocol runners.
//!
//! The examples and the experiment harness repeatedly need the same three-step dance:
//! simulate every client of both attributes, build the two server-side sketches, estimate.
//! These helpers bundle that up so call sites stay readable; the individual pieces remain
//! available for callers that need finer control (e.g. streaming report ingestion).

use ldpjs_common::error::Result;
use ldpjs_common::privacy::Epsilon;
use ldpjs_common::stream::ChunkedValues;
use ldpjs_sketch::SketchParams;
use rand::RngCore;

use crate::aggregator::ShardedAggregator;
use crate::client::{chunk_stream_seed, ClientReport, LdpJoinSketchClient};
use crate::plus::{LdpJoinSketchPlus, PlusConfig, PlusEstimate};
use crate::server::{FinalizedSketch, SketchBuilder};
use std::sync::Arc;

/// Build a [`FinalizedSketch`] summarising `values` under `(params, eps, seed)` by simulating
/// one client per value sequentially from the caller's RNG.
pub fn build_private_sketch(
    values: &[u64],
    params: SketchParams,
    eps: Epsilon,
    seed: u64,
    rng: &mut dyn RngCore,
) -> Result<FinalizedSketch> {
    let client = LdpJoinSketchClient::new(params, eps, seed);
    let reports = client.perturb_all(values, rng);
    let mut builder = SketchBuilder::new(params, eps, seed);
    builder.absorb_all(&reports)?;
    Ok(builder.finalize())
}

/// Build a [`FinalizedSketch`] with the parallel pipeline: client simulation fans out over
/// `shards` worker threads with deterministic per-chunk RNG streams (see
/// [`LdpJoinSketchClient::perturb_all_parallel`]), and the reports are absorbed by a
/// [`ShardedAggregator`] with `shards` shards.
///
/// The result depends only on `(values, params, eps, seed, rng_seed)` — never on `shards`
/// or the machine's thread scheduling: the report stream is chunk-seeded, and sharded
/// absorption is bit-for-bit identical to sequential absorption.
pub fn build_private_sketch_parallel(
    values: &[u64],
    params: SketchParams,
    eps: Epsilon,
    seed: u64,
    rng_seed: u64,
    shards: usize,
) -> Result<FinalizedSketch> {
    let client = LdpJoinSketchClient::new(params, eps, seed);
    let reports = client.perturb_all_parallel(values, rng_seed, shards);
    let mut engine =
        ShardedAggregator::with_hashes(params, eps, Arc::clone(client.hashes()), shards)?;
    engine.ingest(&reports)?;
    Ok(engine.finalize())
}

/// Run the full LDPJoinSketch protocol: perturb both attributes' values (with a shared public
/// hash family derived from `seed`), build both sketches, and return the join-size estimate.
pub fn ldp_join_estimate(
    table_a: &[u64],
    table_b: &[u64],
    params: SketchParams,
    eps: Epsilon,
    seed: u64,
    rng: &mut dyn RngCore,
) -> Result<f64> {
    let sketch_a = build_private_sketch(table_a, params, eps, seed, rng)?;
    let sketch_b = build_private_sketch(table_b, params, eps, seed, rng)?;
    sketch_a.join_size(&sketch_b)
}

/// Run the full LDPJoinSketch protocol on the parallel pipeline (sharded client fan-out and
/// sharded ingestion on both sides; deterministic for fixed seeds, independent of `shards`).
pub fn ldp_join_estimate_parallel(
    table_a: &[u64],
    table_b: &[u64],
    params: SketchParams,
    eps: Epsilon,
    seed: u64,
    rng_seed: u64,
    shards: usize,
) -> Result<f64> {
    let sketch_a = build_private_sketch_parallel(table_a, params, eps, seed, rng_seed, shards)?;
    let sketch_b =
        build_private_sketch_parallel(table_b, params, eps, seed, rng_seed ^ 0xB, shards)?;
    sketch_a.join_size(&sketch_b)
}

/// Replay a bounded-memory value stream as the protocol's perturbed report batches, feeding
/// each batch to `sink`.
///
/// This is the canonical client-simulation pass of the chunked pipeline, exposed so that
/// *any* report consumer — [`build_private_sketch_chunked`], the online `SketchService`'s
/// continuous ingestion, a soak driver — sees the exact same report stream for the same
/// `(client, rng_seed)`: each chunk is perturbed with its own deterministic RNG stream
/// (seeded from `rng_seed` and the chunk ordinal, like
/// [`LdpJoinSketchClient::perturb_all_parallel`]), so the stream is thread-count-invariant
/// and bit-reproducible. A consumer absorbing these batches into exact-counter builders is
/// therefore bit-identical to the one-shot runners, no matter how it windows the batches.
///
/// # Errors
/// Stops at and returns the first error `sink` reports.
pub fn stream_reports_chunked(
    values: &dyn ChunkedValues,
    client: &LdpJoinSketchClient,
    rng_seed: u64,
    threads: usize,
    sink: &mut dyn FnMut(&[ClientReport]) -> Result<()>,
) -> Result<()> {
    // Pass-local chunk ordinal (not `start / chunk_len`): `chunk_len()` is only an *upper
    // bound* on chunk length, so a custom stream emitting non-full mid-stream chunks would
    // otherwise collide ordinals and replay a noise stream. For full-chunk streams the
    // ordinal equals `start / chunk_len`, so existing pinned seeds are unchanged.
    let mut ordinal = 0u64;
    let mut err = None;
    // One report buffer reused across every chunk: steady-state streaming perturbs without
    // allocating a fresh report vector per chunk.
    let mut reports = Vec::new();
    values.for_each_chunk(&mut |_start, chunk| {
        if err.is_some() {
            return;
        }
        client.perturb_all_parallel_into(
            chunk,
            chunk_stream_seed(rng_seed, ordinal),
            threads,
            &mut reports,
        );
        ordinal += 1;
        if let Err(e) = sink(&reports) {
            err = Some(e);
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Build a [`FinalizedSketch`] from a replayable bounded-memory value stream — the large-n
/// ingestion path.
///
/// One pass over the stream via [`stream_reports_chunked`], absorbed into a
/// [`ShardedAggregator`], so peak resident value memory is the stream's `chunk_len()`, not
/// `n`. For a fixed stream (values + chunk length) the result depends only on
/// `(params, eps, seed, rng_seed)` — never on `shards` or thread scheduling.
pub fn build_private_sketch_chunked(
    values: &dyn ChunkedValues,
    params: SketchParams,
    eps: Epsilon,
    seed: u64,
    rng_seed: u64,
    shards: usize,
) -> Result<FinalizedSketch> {
    let client = LdpJoinSketchClient::new(params, eps, seed);
    let mut engine =
        ShardedAggregator::with_hashes(params, eps, Arc::clone(client.hashes()), shards)?;
    stream_reports_chunked(values, &client, rng_seed, shards, &mut |reports| {
        engine.ingest(reports)
    })?;
    Ok(engine.finalize())
}

/// Run the full LDPJoinSketch protocol over two bounded-memory value streams (the plain
/// baseline of the large-n regime): both sketches are built with
/// [`build_private_sketch_chunked`] and combined by the Eq. 5 estimator.
pub fn ldp_join_estimate_chunked(
    table_a: &dyn ChunkedValues,
    table_b: &dyn ChunkedValues,
    params: SketchParams,
    eps: Epsilon,
    seed: u64,
    rng_seed: u64,
    shards: usize,
) -> Result<f64> {
    let sketch_a = build_private_sketch_chunked(table_a, params, eps, seed, rng_seed, shards)?;
    let sketch_b =
        build_private_sketch_chunked(table_b, params, eps, seed, rng_seed ^ 0xB, shards)?;
    sketch_a.join_size(&sketch_b)
}

/// Run the full LDPJoinSketch+ protocol over two bounded-memory value streams: two replayed
/// passes per table (phase 1 and phase 2), peak value memory bounded by the chunk length.
/// See [`LdpJoinSketchPlus::estimate_chunked`].
pub fn ldp_join_plus_estimate_chunked(
    table_a: &dyn ChunkedValues,
    table_b: &dyn ChunkedValues,
    domain: &[u64],
    config: PlusConfig,
    rng_seed: u64,
) -> Result<PlusEstimate> {
    LdpJoinSketchPlus::new(config)?.estimate_chunked(table_a, table_b, domain, rng_seed)
}

/// Run the full LDPJoinSketch+ protocol with an explicit configuration and candidate domain.
pub fn ldp_join_plus_estimate(
    table_a: &[u64],
    table_b: &[u64],
    domain: &[u64],
    config: PlusConfig,
    rng: &mut dyn RngCore,
) -> Result<PlusEstimate> {
    LdpJoinSketchPlus::new(config)?.estimate(table_a, table_b, domain, rng)
}

/// Per-user communication cost of the LDPJoinSketch client in bits (1 perturbed bit plus the
/// `(j, l)` indices) — the quantity plotted in Fig. 7.
pub fn report_bits(params: SketchParams) -> u64 {
    let k_bits = (params.rows().max(2) as f64).log2().ceil() as u64;
    let m_bits = (params.columns().max(2) as f64).log2().ceil() as u64;
    1 + k_bits + m_bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldpjs_common::stats::exact_join_size;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn skewed(n: usize, domain: u64, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen::<f64>().max(1e-12);
                ((u.powf(-1.2) - 1.0) as u64).min(domain - 1)
            })
            .collect()
    }

    #[test]
    fn end_to_end_estimate_is_close_to_truth() {
        let a = skewed(100_000, 10_000, 1);
        let b = skewed(100_000, 10_000, 2);
        let truth = exact_join_size(&a, &b) as f64;
        let params = SketchParams::new(12, 512).unwrap();
        let eps = Epsilon::new(4.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let est = ldp_join_estimate(&a, &b, params, eps, 99, &mut rng).unwrap();
        let re = (est - truth).abs() / truth;
        assert!(re < 0.3, "relative error {re} (est {est}, truth {truth})");
    }

    #[test]
    fn plus_wrapper_matches_direct_use() {
        let a = skewed(50_000, 2_000, 5);
        let b = skewed(50_000, 2_000, 6);
        let domain: Vec<u64> = (0..2_000).collect();
        let params = SketchParams::new(10, 256).unwrap();
        let eps = Epsilon::new(4.0).unwrap();
        let mut cfg = PlusConfig::new(params, eps);
        cfg.sampling_rate = 0.2;
        cfg.threshold = 0.01;
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        let via_wrapper = ldp_join_plus_estimate(&a, &b, &domain, cfg, &mut rng1).unwrap();
        let direct = LdpJoinSketchPlus::new(cfg)
            .unwrap()
            .estimate(&a, &b, &domain, &mut rng2)
            .unwrap();
        assert_eq!(via_wrapper.join_size, direct.join_size);
        assert_eq!(via_wrapper.frequent_items, direct.frequent_items);
    }

    #[test]
    fn report_bits_matches_parameters() {
        assert_eq!(
            report_bits(SketchParams::new(18, 1024).unwrap()),
            1 + 5 + 10
        );
        assert_eq!(report_bits(SketchParams::new(2, 2).unwrap()), 3);
    }

    #[test]
    fn build_private_sketch_counts_reports() {
        let params = SketchParams::new(4, 64).unwrap();
        let eps = Epsilon::new(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let sketch = build_private_sketch(&[1, 2, 3, 4, 5], params, eps, 0, &mut rng).unwrap();
        assert_eq!(sketch.reports(), 5);
    }

    #[test]
    fn chunked_pipeline_tracks_truth_and_is_shard_count_invariant() {
        use ldpjs_common::stream::SliceChunks;
        let a = skewed(80_000, 5_000, 21);
        let b = skewed(80_000, 5_000, 22);
        let truth = exact_join_size(&a, &b) as f64;
        let params = SketchParams::new(12, 512).unwrap();
        let eps = Epsilon::new(4.0).unwrap();
        let src_a = SliceChunks::new(&a, 8_192);
        let src_b = SliceChunks::new(&b, 8_192);
        let est_1 = ldp_join_estimate_chunked(&src_a, &src_b, params, eps, 9, 33, 1).unwrap();
        let est_4 = ldp_join_estimate_chunked(&src_a, &src_b, params, eps, 9, 33, 4).unwrap();
        assert_eq!(
            est_1, est_4,
            "shard count must not change the chunked estimate"
        );
        let re = (est_1 - truth).abs() / truth;
        assert!(re < 0.3, "relative error {re} (est {est_1}, truth {truth})");
        // The chunked sketch itself counts every streamed report.
        let sketch = build_private_sketch_chunked(&src_a, params, eps, 9, 33, 2).unwrap();
        assert_eq!(sketch.reports(), a.len() as u64);
    }

    #[test]
    fn streamed_report_batches_reproduce_the_chunked_pipeline_bit_for_bit() {
        use crate::server::SketchBuilder;
        use ldpjs_common::stream::SliceChunks;
        // An external consumer absorbing the batches of `stream_reports_chunked` — in any
        // windowing — must land on the same sketch as `build_private_sketch_chunked`.
        let values = skewed(30_000, 2_000, 41);
        let src = SliceChunks::new(&values, 4_096);
        let params = SketchParams::new(10, 256).unwrap();
        let eps = Epsilon::new(4.0).unwrap();
        let reference = build_private_sketch_chunked(&src, params, eps, 5, 61, 2).unwrap();

        let client = LdpJoinSketchClient::new(params, eps, 5);
        let mut consumer = SketchBuilder::new(params, eps, 5);
        let mut batches = 0usize;
        stream_reports_chunked(&src, &client, 61, 2, &mut |reports| {
            batches += 1;
            consumer.absorb_all(reports)
        })
        .unwrap();
        assert_eq!(batches, values.len().div_ceil(4_096));
        assert_eq!(
            consumer.finalize().restored_counters(),
            reference.restored_counters()
        );
    }

    #[test]
    fn plus_chunked_wrapper_matches_direct_use() {
        use ldpjs_common::stream::SliceChunks;
        let a = skewed(40_000, 2_000, 25);
        let b = skewed(40_000, 2_000, 26);
        let domain: Vec<u64> = (0..2_000).collect();
        let params = SketchParams::new(10, 256).unwrap();
        let eps = Epsilon::new(4.0).unwrap();
        let mut cfg = PlusConfig::new(params, eps);
        cfg.sampling_rate = 0.2;
        cfg.adaptive = true;
        let src_a = SliceChunks::new(&a, 4_096);
        let src_b = SliceChunks::new(&b, 4_096);
        let via_wrapper = ldp_join_plus_estimate_chunked(&src_a, &src_b, &domain, cfg, 7).unwrap();
        let direct = LdpJoinSketchPlus::new(cfg)
            .unwrap()
            .estimate_chunked(&src_a, &src_b, &domain, 7)
            .unwrap();
        assert_eq!(via_wrapper.join_size, direct.join_size);
        assert_eq!(via_wrapper.group_sizes, direct.group_sizes);
    }

    #[test]
    fn parallel_pipeline_is_shard_count_invariant_and_tracks_truth() {
        let a = skewed(60_000, 5_000, 11);
        let b = skewed(60_000, 5_000, 12);
        let truth = exact_join_size(&a, &b) as f64;
        let params = SketchParams::new(12, 512).unwrap();
        let eps = Epsilon::new(4.0).unwrap();
        let est_1 = ldp_join_estimate_parallel(&a, &b, params, eps, 9, 77, 1).unwrap();
        let est_4 = ldp_join_estimate_parallel(&a, &b, params, eps, 9, 77, 4).unwrap();
        let est_7 = ldp_join_estimate_parallel(&a, &b, params, eps, 9, 77, 7).unwrap();
        // Shard count must not change the answer at all (deterministic chunk streams plus
        // exact sharded absorption).
        assert_eq!(est_1, est_4);
        assert_eq!(est_1, est_7);
        let re = (est_4 - truth).abs() / truth;
        assert!(re < 0.3, "relative error {re} (est {est_4}, truth {truth})");
    }
}
