//! Server-side of LDPJoinSketch: sketch construction (Algorithm 2, `PriSk`), the join-size
//! estimator of Eq. 5, and the frequency estimator of Theorem 7.
//!
//! The sketch lifecycle is an explicit two-stage, type-level design:
//!
//! * [`SketchBuilder`] is the **mutable accumulation stage**. It absorbs client reports
//!   (`raw[j, l] += y`), merges with other builders (shards), and stays in the Hadamard
//!   domain. Because every report contributes exactly `±1` to one counter, the accumulated
//!   counters are *exact integers* in `f64` — so sharded absorption merged counter-wise is
//!   bit-for-bit identical to sequential absorption, regardless of how the reports were
//!   partitioned (integer addition in `f64` is associative as long as counts stay below
//!   `2^53`, far beyond any realistic report volume).
//! * [`FinalizedSketch`] is the **immutable estimation stage**. [`SketchBuilder::finalize`]
//!   applies the de-bias scale `k·c_ε` (the factor `k` undoes the uniform row sampling,
//!   `c_ε = (e^ε+1)/(e^ε−1)` undoes the randomized response) and pushes each row back
//!   through the fast Walsh–Hadamard transform **once**; every estimator then *borrows* the
//!   restored counters as `&[f64]` — no estimator call clones or recomputes the `k×m`
//!   matrix.
//!
//! The restored sketch behaves like a noisy fast-AGMS sketch of the users' values:
//! * `median_j Σ_x M_A[j,x]·M_B[j,x]` estimates the join size (Theorem 3),
//! * `mean_j M[j,h_j(d)]·ξ_j(d)` is an unbiased frequency estimate (Theorem 7).
//!
//! For parallel ingestion over many shards see [`crate::aggregator::ShardedAggregator`].

use ldpjs_common::batch::ReportBatch;
use ldpjs_common::error::{Error, Result};
use ldpjs_common::hadamard::{fwht_in_place, fwht_scaled_in_place};
use ldpjs_common::hash::RowHashes;
use ldpjs_common::privacy::Epsilon;
use ldpjs_common::stats::median;
use ldpjs_sketch::SketchParams;
use std::sync::Arc;

use crate::client::ClientReport;

/// The mutable accumulation stage of the server-side LDPJoinSketch.
///
/// Counters are kept in the Hadamard domain as exact `±1` report sums; the de-bias scale and
/// the Hadamard restore are applied once by [`SketchBuilder::finalize`], which consumes the
/// builder and returns the immutable [`FinalizedSketch`] estimation view.
#[derive(Debug, Clone)]
pub struct SketchBuilder {
    params: SketchParams,
    eps: Epsilon,
    hashes: Arc<RowHashes>,
    /// Accumulated report sums, still in the Hadamard domain (row-major `k × m`). Each entry
    /// is an exact integer (a sum of `±1` contributions), which makes shard merges exact.
    raw: Vec<f64>,
    /// Number of absorbed reports.
    reports: u64,
}

impl SketchBuilder {
    /// Create an empty builder with a hash family derived from `seed`.
    ///
    /// The same `(params, seed)` pair must be used by the matching
    /// [`crate::client::LdpJoinSketchClient`]s.
    pub fn new(params: SketchParams, eps: Epsilon, seed: u64) -> Self {
        let hashes = Arc::new(RowHashes::from_seed(seed, params.rows(), params.columns()));
        Self::with_hashes(params, eps, hashes)
    }

    /// Create an empty builder around an existing shared hash family.
    pub fn with_hashes(params: SketchParams, eps: Epsilon, hashes: Arc<RowHashes>) -> Self {
        debug_assert_eq!(hashes.rows(), params.rows());
        debug_assert_eq!(hashes.columns(), params.columns());
        SketchBuilder {
            params,
            eps,
            hashes,
            raw: vec![0.0; params.counters()],
            reports: 0,
        }
    }

    /// Build a finalized sketch directly from a batch of client reports (`PriSk` in
    /// Algorithm 2).
    pub fn from_reports(
        params: SketchParams,
        eps: Epsilon,
        seed: u64,
        reports: &[ClientReport],
    ) -> Result<FinalizedSketch> {
        let mut builder = Self::new(params, eps, seed);
        builder.absorb_all(reports)?;
        Ok(builder.finalize())
    }

    /// Sketch parameters `(k, m)`.
    #[inline]
    pub fn params(&self) -> SketchParams {
        self.params
    }

    /// Privacy budget the absorbed reports were perturbed with.
    #[inline]
    pub fn epsilon(&self) -> Epsilon {
        self.eps
    }

    /// The shared public hash family.
    #[inline]
    pub fn hashes(&self) -> &Arc<RowHashes> {
        &self.hashes
    }

    /// Number of absorbed reports.
    #[inline]
    pub fn reports(&self) -> u64 {
        self.reports
    }

    /// Absorb one client report (Algorithm 2, line 4).
    ///
    /// # Errors
    /// Returns [`Error::ReportOutOfRange`] if the report's indices do not fit this sketch.
    pub fn absorb(&mut self, report: ClientReport) -> Result<()> {
        let (k, m) = (self.params.rows(), self.params.columns());
        if report.row >= k || report.col >= m {
            return Err(Error::ReportOutOfRange {
                row: report.row,
                col: report.col,
                rows: k,
                cols: m,
            });
        }
        self.raw[report.row * m + report.col] += report.y;
        self.reports += 1;
        Ok(())
    }

    /// Absorb a batch of array-of-structs reports: a single fused validate-and-apply pass,
    /// with the already-applied prefix rolled back on the cold error path so a rejected
    /// batch leaves the builder untouched.
    ///
    /// This *is* the fastest honest path for `&[ClientReport]` input: the 24-byte AoS wire
    /// shape makes any batched re-bucketing pay a full extra conversion sweep first, and
    /// measurement (400k reports, k = 18, m = 1024) shows that sweep costs as much as the
    /// fused replay itself — converting AoS to the packed SoA form never pays. The batched
    /// histogram kernels win only when reports are *born* packed: clients emit
    /// [`ReportBatch`]es via `perturb_batch` and servers ingest them zero-copy through
    /// [`SketchBuilder::absorb_batch`]. Either path is bit-identical to the other (the
    /// property tests pin this against [`SketchBuilder::absorb`]).
    ///
    /// # Errors
    /// Returns [`Error::ReportOutOfRange`] for the first offending report, if any; the
    /// builder is untouched on error.
    pub fn absorb_all(&mut self, reports: &[ClientReport]) -> Result<()> {
        let (k, m) = (self.params.rows(), self.params.columns());
        for (i, r) in reports.iter().enumerate() {
            if r.row >= k || r.col >= m {
                // Cold path: undo the applied prefix so the rejected batch is a no-op.
                for applied in &reports[..i] {
                    self.raw[applied.row * m + applied.col] -= applied.y;
                }
                return Err(Error::ReportOutOfRange {
                    row: r.row,
                    col: r.col,
                    rows: k,
                    cols: m,
                });
            }
            self.raw[r.row * m + r.col] += r.y;
        }
        self.reports += reports.len() as u64;
        Ok(())
    }

    /// Absorb an already-packed sign-split report batch.
    ///
    /// This is the zero-copy ingest entry point for pipelines that carry reports in the
    /// packed SoA form end to end (batched client perturbation, the sharded aggregation
    /// engine, the online service). Index validity is a construction invariant of
    /// [`ReportBatch`], so no per-report validation happens here — only a shape check.
    ///
    /// # Errors
    /// Returns [`Error::IncompatibleSketches`] if the batch shape does not match this
    /// sketch; the builder is untouched in that case.
    pub fn absorb_batch(&mut self, batch: &ReportBatch) -> Result<()> {
        self.check_batch_shape(batch)?;
        batch.accumulate_into(&mut self.raw);
        self.reports += batch.len() as u64;
        Ok(())
    }

    /// [`SketchBuilder::absorb_batch`] with a caller-owned scratch buffer, the repeated-
    /// ingest form used by the online service's epoch loop.
    ///
    /// # Errors
    /// Returns [`Error::IncompatibleSketches`] on a shape mismatch.
    pub fn absorb_batch_with(&mut self, batch: &ReportBatch, scratch: &mut Vec<i32>) -> Result<()> {
        self.check_batch_shape(batch)?;
        batch.accumulate_into_with(&mut self.raw, scratch);
        self.reports += batch.len() as u64;
        Ok(())
    }

    /// Accumulate one shard of a packed batch (the sharded aggregator's per-worker body;
    /// shape is validated once by the engine before fan-out).
    pub(crate) fn accumulate_batch_shard(
        &mut self,
        batch: &ReportBatch,
        shard: usize,
        shards: usize,
        scratch: &mut Vec<i32>,
    ) {
        batch.accumulate_shard_into_with(shard, shards, &mut self.raw, scratch);
        self.reports += batch.shard_len(shard, shards) as u64;
    }

    /// Shape compatibility check for packed-batch ingestion.
    fn check_batch_shape(&self, batch: &ReportBatch) -> Result<()> {
        if batch.rows() != self.params.rows() || batch.columns() != self.params.columns() {
            return Err(Error::IncompatibleSketches(format!(
                "report batch is {}x{} but the sketch is {}x{}",
                batch.rows(),
                batch.columns(),
                self.params.rows(),
                self.params.columns()
            )));
        }
        Ok(())
    }

    /// Subtract a slice of previously-absorbed, known-valid reports (the sharded engine's
    /// cold-path rollback when another shard rejects its chunk). Exact-integer counters
    /// make the subtraction a perfect inverse, bit for bit.
    pub(crate) fn unabsorb_validated(&mut self, reports: &[ClientReport]) {
        let m = self.params.columns();
        for r in reports {
            self.raw[r.row * m + r.col] -= r.y;
        }
        self.reports -= reports.len() as u64;
    }

    /// Check every report of a batch against this sketch's dimensions.
    pub(crate) fn validate_batch(&self, reports: &[ClientReport]) -> Result<()> {
        let (k, m) = (self.params.rows(), self.params.columns());
        if let Some(bad) = reports.iter().find(|r| r.row >= k || r.col >= m) {
            return Err(Error::ReportOutOfRange {
                row: bad.row,
                col: bad.col,
                rows: k,
                cols: m,
            });
        }
        Ok(())
    }

    /// Accumulate a batch that has already been validated (the sharded ingestion engine
    /// validates the whole batch once before fanning chunks out to worker threads).
    pub(crate) fn accumulate_validated(&mut self, reports: &[ClientReport]) {
        let m = self.params.columns();
        for r in reports {
            self.raw[r.row * m + r.col] += r.y;
        }
        self.reports += reports.len() as u64;
    }

    /// Merge another partial builder into this one.
    ///
    /// LDPJoinSketch is linear in its reports, so an aggregator can be sharded: each shard
    /// absorbs a subset of the client reports and the shards are merged counter-wise before
    /// finalization. Because the counters are exact integer report sums, the merged result is
    /// bit-for-bit identical to absorbing every report into a single builder. Both builders
    /// must share `(k, m)`, the hash seed, and the privacy budget.
    ///
    /// # Errors
    /// Returns [`Error::IncompatibleSketches`] if parameters, hash seed or ε differ.
    pub fn merge(&mut self, other: &Self) -> Result<()> {
        check_compatible(self.params, &self.hashes, other.params, &other.hashes)?;
        if (self.eps.value() - other.eps.value()).abs() > f64::EPSILON {
            return Err(Error::IncompatibleSketches(format!(
                "cannot merge sketches built with different privacy budgets: {} vs {}",
                self.eps, other.eps
            )));
        }
        for (a, b) in self.raw.iter_mut().zip(other.raw.iter()) {
            *a += b;
        }
        self.reports += other.reports;
        Ok(())
    }

    /// Exact counter-wise subtraction: returns a builder holding `self − earlier`.
    ///
    /// This is the inverse of [`SketchBuilder::merge`] for the prefix-sum span ledgers of
    /// the online service: because every counter is an exact integer report sum (each
    /// report contributes `±1`), subtracting a *prefix* of this builder's accumulation
    /// history yields exactly the integer counters of the remaining suffix — bit-identical
    /// to merging the suffix windows from scratch, by the same exact-integer argument that
    /// makes `merge` order-insensitive.
    ///
    /// # Errors
    /// Returns [`Error::IncompatibleSketches`] if parameters, hash seed or ε differ, or if
    /// `earlier` claims more reports than `self` (i.e. it cannot be a prefix).
    pub fn difference(&self, earlier: &Self) -> Result<SketchBuilder> {
        check_compatible(self.params, &self.hashes, earlier.params, &earlier.hashes)?;
        if (self.eps.value() - earlier.eps.value()).abs() > f64::EPSILON {
            return Err(Error::IncompatibleSketches(format!(
                "cannot subtract sketches built with different privacy budgets: {} vs {}",
                self.eps, earlier.eps
            )));
        }
        if earlier.reports > self.reports {
            return Err(Error::IncompatibleSketches(format!(
                "subtrahend holds {} reports but the minuend only {} — not a prefix",
                earlier.reports, self.reports
            )));
        }
        let raw = self
            .raw
            .iter()
            .zip(earlier.raw.iter())
            .map(|(a, b)| a - b)
            .collect();
        Ok(SketchBuilder {
            params: self.params,
            eps: self.eps,
            hashes: Arc::clone(&self.hashes),
            raw,
            reports: self.reports - earlier.reports,
        })
    }

    /// Restore the sketch from the Hadamard domain (Algorithm 2, line 6): apply the de-bias
    /// scale `k·c_ε` and the per-row fast Walsh–Hadamard transform once, consuming the
    /// builder and returning the immutable estimation view.
    pub fn finalize(self) -> FinalizedSketch {
        let SketchBuilder {
            params,
            eps,
            hashes,
            raw,
            reports,
        } = self;
        restore(params, eps, hashes, raw, reports)
    }

    /// Restore a *snapshot* of the sketch without consuming the builder: the exact raw
    /// counters are cloned and pushed through the identical de-bias + Hadamard pipeline as
    /// [`SketchBuilder::finalize`], so the two entry points can never diverge bit-wise.
    ///
    /// This is the epoch-sealing hook of the online sketch service: a sealed window keeps
    /// its builder (exact integer counters, mergeable with other windows at zero rounding
    /// error) *and* an estimation view, and a k-window merge re-aggregates the raw counters
    /// before a single restore — which is why merged-window estimates are bit-identical to
    /// one-shot aggregation of the same reports.
    pub fn finalize_view(&self) -> FinalizedSketch {
        restore(
            self.params,
            self.eps,
            Arc::clone(&self.hashes),
            self.raw.clone(),
            self.reports,
        )
    }

    /// The **unscaled** per-row Hadamard spectrum of the exact counters: `raw · H_mᵀ` row
    /// by row, with no de-bias scale applied.
    ///
    /// Every entry is an exact integer (a signed sum of `±1` report contributions, and the
    /// FWHT only ever adds and subtracts those), so spectra of disjoint report sets add and
    /// subtract with **zero rounding error** — the invariant behind the online service's
    /// incremental span ledger: prefix-summed spectra, subtracted and then pushed through
    /// [`FinalizedSketch::from_spectrum`], are bit-identical to restoring the merged
    /// counters from scratch.
    pub fn spectrum(&self) -> Vec<f64> {
        let mut raw = self.raw.clone();
        let m = self.params.columns();
        for j in 0..self.params.rows() {
            fwht_in_place(&mut raw[j * m..(j + 1) * m]);
        }
        raw
    }
}

/// The single de-bias + Hadamard restore pipeline shared by [`SketchBuilder::finalize`] and
/// [`SketchBuilder::finalize_view`].
fn restore(
    params: SketchParams,
    eps: Epsilon,
    hashes: Arc<RowHashes>,
    mut raw: Vec<f64>,
    reports: u64,
) -> FinalizedSketch {
    // The de-bias multiply is folded into the FINAL butterfly pass of the fused-radix FWHT
    // kernel — bit-identical to transforming first and scaling in a separate sweep (each
    // output is scaled exactly once after its last addition) but one sweep cheaper.
    // Scaling after the transform keeps the unscaled spectrum exact on the integer
    // counters, which is what makes [`SketchBuilder::spectrum`] prefix sums restore
    // bit-identically through [`FinalizedSketch::from_spectrum`].
    let scale = params.rows() as f64 * eps.c_eps();
    let m = params.columns();
    for j in 0..params.rows() {
        fwht_scaled_in_place(&mut raw[j * m..(j + 1) * m], scale);
    }
    FinalizedSketch {
        params,
        eps,
        hashes,
        restored: raw,
        reports,
    }
}

/// Four-accumulator row sum.
///
/// A naive `iter().sum()` is one serial dependency chain of FP adds (~4 cycles each);
/// four independent accumulators let the adds pipeline, ~4× faster on an `m`-long row.
/// The association is FIXED (lane `i` takes elements `i, i+4, i+8, …`, lanes combined as
/// `(l0+l1)+(l2+l3)`, remainder appended last), so the result is deterministic — every
/// caller, offline or online, sees the same bits for the same row.
#[inline]
fn sum4(x: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    let mut chunks = x.chunks_exact(4);
    for c in &mut chunks {
        acc[0] += c[0];
        acc[1] += c[1];
        acc[2] += c[2];
        acc[3] += c[3];
    }
    let mut tail = 0.0f64;
    for &v in chunks.remainder() {
        tail += v;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Four-accumulator shifted dot product `Σ_x (a[x]−sa)·(b[x]−sb)`, same fixed association
/// as [`sum4`].
#[inline]
fn dot_shifted4(a: &[f64], b: &[f64], sa: f64, sb: f64) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        acc[0] += (xa[0] - sa) * (xb[0] - sb);
        acc[1] += (xa[1] - sa) * (xb[1] - sb);
        acc[2] += (xa[2] - sa) * (xb[2] - sb);
        acc[3] += (xa[3] - sa) * (xb[3] - sb);
    }
    let mut tail = 0.0f64;
    for (&va, &vb) in ca.remainder().iter().zip(cb.remainder()) {
        tail += (va - sa) * (vb - sb);
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// The immutable estimation stage of the server-side LDPJoinSketch.
///
/// Produced by [`SketchBuilder::finalize`]; the restored `k × m` counter matrix is computed
/// exactly once and every estimator borrows it as `&[f64]` — no per-call clone, no interior
/// mutability, trivially shareable across threads.
#[derive(Debug, Clone)]
pub struct FinalizedSketch {
    params: SketchParams,
    eps: Epsilon,
    hashes: Arc<RowHashes>,
    /// Restored counters (`raw·k·c_ε · H_mᵀ` per row), row-major `k × m`.
    restored: Vec<f64>,
    reports: u64,
}

impl FinalizedSketch {
    /// Rebuild the estimation view from a precomputed **unscaled** spectrum (e.g. an exact
    /// spectrum difference assembled by the online service's span ledger): applies the same
    /// single de-bias multiply per counter as the builder restore, so the result is
    /// **bit-identical** to finalizing a builder holding the same exact counters — without
    /// running any Hadamard transform.
    ///
    /// # Panics
    /// Panics if `spectrum.len() != k·m` for the given parameters.
    pub fn from_spectrum(
        params: SketchParams,
        eps: Epsilon,
        hashes: Arc<RowHashes>,
        reports: u64,
        mut spectrum: Vec<f64>,
    ) -> Self {
        assert_eq!(
            spectrum.len(),
            params.rows() * params.columns(),
            "spectrum length must be k*m"
        );
        let scale = params.rows() as f64 * eps.c_eps();
        for v in spectrum.iter_mut() {
            *v *= scale;
        }
        FinalizedSketch {
            params,
            eps,
            hashes,
            restored: spectrum,
            reports,
        }
    }

    /// [`FinalizedSketch::from_spectrum`] of the exact difference `last − base`, fused into
    /// one pass: each restored counter is `(last[i] − base[i])·k·c_ε`. Both inputs are
    /// integer-valued spectra, so the subtraction is exact and the single multiply lands on
    /// exactly the value [`FinalizedSketch::from_spectrum`] of the materialized difference
    /// would produce — bit-identical, without allocating the intermediate difference.
    ///
    /// # Panics
    /// Panics if the spectra lengths differ from `k·m` for the given parameters.
    pub fn from_spectrum_diff(
        params: SketchParams,
        eps: Epsilon,
        hashes: Arc<RowHashes>,
        reports: u64,
        last: &[f64],
        base: &[f64],
    ) -> Self {
        let len = params.rows() * params.columns();
        assert!(
            last.len() == len && base.len() == len,
            "spectra lengths must be k*m"
        );
        let scale = params.rows() as f64 * eps.c_eps();
        let restored = last
            .iter()
            .zip(base)
            .map(|(&l, &b)| (l - b) * scale)
            .collect();
        FinalizedSketch {
            params,
            eps,
            hashes,
            restored,
            reports,
        }
    }

    /// Sketch parameters `(k, m)`.
    #[inline]
    pub fn params(&self) -> SketchParams {
        self.params
    }

    /// Privacy budget the absorbed reports were perturbed with.
    #[inline]
    pub fn epsilon(&self) -> Epsilon {
        self.eps
    }

    /// The shared public hash family.
    #[inline]
    pub fn hashes(&self) -> &Arc<RowHashes> {
        &self.hashes
    }

    /// Number of absorbed reports.
    #[inline]
    pub fn reports(&self) -> u64 {
        self.reports
    }

    /// The restored `k × m` counter matrix (row-major), borrowed — never cloned.
    #[inline]
    pub fn restored_counters(&self) -> &[f64] {
        &self.restored
    }

    /// One restored sketch row of length `m`, borrowed.
    #[inline]
    pub fn row(&self, j: usize) -> &[f64] {
        let m = self.params.columns();
        &self.restored[j * m..(j + 1) * m]
    }

    /// Per-row inner products with another sketch, optionally shifting every counter of each
    /// sketch by a constant first (used by LDPJoinSketch+'s Algorithm 5 to remove the
    /// expected non-target mass `|NT|/m`).
    pub fn row_products_shifted(
        &self,
        other: &Self,
        shift_self: f64,
        shift_other: f64,
    ) -> Result<Vec<f64>> {
        check_compatible(self.params, &self.hashes, other.params, &other.hashes)?;
        let k = self.params.rows();
        Ok((0..k)
            .map(|j| {
                self.row(j)
                    .iter()
                    .zip(other.row(j))
                    .map(|(a, b)| (a - shift_self) * (b - shift_other))
                    .sum()
            })
            .collect())
    }

    /// Per-row inner products `Σ_x M_A[j,x]·M_B[j,x]`.
    pub fn row_products(&self, other: &Self) -> Result<Vec<f64>> {
        self.row_products_shifted(other, 0.0, 0.0)
    }

    /// Per-row *mean-centered* inner products: `Σ_x (M_A[j,x]−Ā_j)(M_B[j,x]−B̄_j)/(1−1/m)`,
    /// where `Ā_j` is the mean of row `j`.
    ///
    /// This is the shift-free form of Algorithm 5's non-target mass removal. Writing a FAP
    /// row as `M[j,x] = T_x + N_x` (target signal plus non-target mass with uniform
    /// expectation `|NT|/m`), the centered product satisfies, conditionally on the hashes,
    ///
    /// `E[Σ_x (A_x−Ā)(B_x−B̄)] = J_target·(1 − 1/m)`:
    ///
    /// the `|NT_A|·|NT_B|/m` term of the raw product cancels against the same term inside
    /// `m·Ā·B̄`, so **no estimate of the non-target mass is needed at all** — unlike the
    /// shifted form, whose subtraction error (the phase-1 frequent-item mass is itself an
    /// estimate) couples multiplicatively with the non-target total. The price is a small
    /// extra variance term from the centered signed target sums (`Σ_v f_v ξ_j(v)`, removed
    /// at weight `1/m`), which the collision-masked product
    /// ([`FinalizedSketch::row_products_masked`]) avoids for the high-frequency group.
    pub fn row_products_centered(&self, other: &Self) -> Result<Vec<f64>> {
        check_compatible(self.params, &self.hashes, other.params, &other.hashes)?;
        let (k, m) = (self.params.rows(), self.params.columns());
        let mf = m as f64;
        Ok((0..k)
            .map(|j| {
                let ra = self.row(j);
                let rb = other.row(j);
                let mean_a = sum4(ra) / mf;
                let mean_b = sum4(rb) / mf;
                let centered = dot_shifted4(ra, rb, mean_a, mean_b);
                centered / (1.0 - 1.0 / mf)
            })
            .collect())
    }

    /// Per-row *collision-masked* inner products for a sketch pair whose target set is the
    /// small public set `targets` (LDPJoinSketch+'s high-frequency phase-2 sketches).
    ///
    /// The target values' buckets `S_j = {h_j(d) : d ∈ targets}` are public, so row `j` can
    /// (1) estimate the uniform non-target level `u_j` from the buckets *outside* `S_j` —
    /// unaffected by any target signal and free of the phase-1 mass-estimate error — and
    /// (2) restrict the product to the buckets of `S_j`, where all the target join signal
    /// lives, dropping the non-target scatter and LDP noise of the other `m−|S_j|` buckets.
    ///
    /// Returns one `(product, collision_free)` pair per row; `collision_free` is `false`
    /// when two distinct target values share a bucket in that row, which the caller can use
    /// to drop the (rare, publicly detectable) collision outliers before combining rows.
    /// With an empty target set every product is `0` (there is no target signal to sum).
    pub fn row_products_masked(&self, other: &Self, targets: &[u64]) -> Result<Vec<(f64, bool)>> {
        check_compatible(self.params, &self.hashes, other.params, &other.hashes)?;
        let (k, m) = (self.params.rows(), self.params.columns());
        let mut in_s = vec![false; m];
        let mut s_buckets: Vec<usize> = Vec::with_capacity(targets.len());
        Ok((0..k)
            .map(|j| {
                let pair = self.hashes.pair(j);
                s_buckets.clear();
                let mut collision_free = true;
                for &d in targets {
                    let b = pair.bucket_of(d);
                    if in_s[b] {
                        collision_free = false;
                    } else {
                        in_s[b] = true;
                        s_buckets.push(b);
                    }
                }
                if s_buckets.is_empty() {
                    return (0.0, true);
                }
                s_buckets.sort_unstable();
                let ra = self.row(j);
                let rb = other.row(j);
                // The non-S total is the full-row sum minus the |S| targeted buckets —
                // O(|S|) corrections instead of an m-long masked scan.
                let (mut s_sum_a, mut s_sum_b) = (0.0f64, 0.0f64);
                for &b in s_buckets.iter() {
                    s_sum_a += ra[b];
                    s_sum_b += rb[b];
                }
                let free = (m - s_buckets.len()) as f64;
                // With every bucket targeted there is no noise-only bucket left to estimate
                // the uniform level from; fall back to zero shift (all signal buckets).
                let (u_a, u_b) = if free > 0.0 {
                    ((sum4(ra) - s_sum_a) / free, (sum4(rb) - s_sum_b) / free)
                } else {
                    (0.0, 0.0)
                };
                let mut product = 0.0f64;
                for &b in s_buckets.iter() {
                    product += (ra[b] - u_a) * (rb[b] - u_b);
                }
                for &b in s_buckets.iter() {
                    in_s[b] = false;
                }
                (product, collision_free)
            })
            .collect())
    }

    /// Join-size estimate `median_j Σ_x M_A[j,x]·M_B[j,x]` (Eq. 5).
    ///
    /// Thin driver over the shared [`PlainKernel`](crate::kernel::PlainKernel) — the single
    /// implementation every plain join estimate (offline runners, experiment harness,
    /// online service) goes through.
    pub fn join_size(&self, other: &Self) -> Result<f64> {
        crate::kernel::PlainKernel.join_size(self, other)
    }

    /// Join-size estimate after subtracting a uniform per-counter shift from each sketch
    /// (Algorithm 5: `M ← M − {NT/m}` then `Est = M_A·M_B`).
    pub fn join_size_shifted(
        &self,
        other: &Self,
        shift_self: f64,
        shift_other: f64,
    ) -> Result<f64> {
        let products = self.row_products_shifted(other, shift_self, shift_other)?;
        median(&products).ok_or_else(|| Error::EmptyInput("sketch has no rows".into()))
    }

    /// Frequency estimate `f̃(d) = mean_j M[j, h_j(d)]·ξ_j(d)` (Theorem 7).
    ///
    /// [`FinalizedSketch::frequencies`] delegates to the same per-value estimator, so the two
    /// entry points cannot drift.
    pub fn frequency(&self, value: u64) -> f64 {
        self.frequency_at(value)
    }

    /// Frequency estimates for a whole candidate domain (one borrowed pass over the restored
    /// matrix per candidate; prefer this over repeated [`FinalizedSketch::frequency`] calls
    /// for large scans).
    pub fn frequencies(&self, candidates: &[u64]) -> Vec<f64> {
        candidates.iter().map(|&d| self.frequency_at(d)).collect()
    }

    /// The single shared implementation of the Theorem 7 estimator.
    #[inline]
    fn frequency_at(&self, d: u64) -> f64 {
        let (k, m) = (self.params.rows(), self.params.columns());
        if k == 0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for (j, pair) in self.hashes.iter().enumerate() {
            acc += self.restored[j * m + pair.bucket_of(d)] * pair.sign_of(d) as f64;
        }
        acc / k as f64
    }

    /// Median-of-rows frequency estimate `f̃_med(d) = median_j M[j, h_j(d)]·ξ_j(d)`.
    ///
    /// The Theorem 7 estimator ([`FinalizedSketch::frequency`]) averages the `k` per-row
    /// estimates, so a single row in which `d`'s bucket also holds a heavy hitter drags the
    /// whole estimate by `±f_heavy/k`. At the narrow sketches of the large-n regime
    /// (`m ≲ 128`) that collision inflates tail values past any phase-1 threshold and floods
    /// the frequent-item set. The median combiner ignores the (rare, large) colliding rows
    /// entirely, which is what the adaptive frequent-item discovery of LDPJoinSketch+ uses.
    pub fn frequency_median(&self, value: u64) -> f64 {
        let (k, m) = (self.params.rows(), self.params.columns());
        if k == 0 {
            return 0.0;
        }
        let per_row: Vec<f64> = self
            .hashes
            .iter()
            .enumerate()
            .map(|(j, pair)| {
                self.restored[j * m + pair.bucket_of(value)] * pair.sign_of(value) as f64
            })
            .collect();
        median(&per_row).unwrap_or(0.0)
    }

    /// Estimate of the second frequency moment `F2 = Σ_d f(d)²` of the absorbed table,
    /// de-biased for the LDP noise the restored counters carry.
    ///
    /// `E[Σ_x M[j,x]²] = F2 + m·reports·k·c_ε²` (each report contributes `±k·c_ε` to every
    /// restored counter of its row through the Hadamard transform; the constant is validated
    /// empirically in this module's tests), so subtracting the noise term from the mean row
    /// energy leaves `F2`. Clamped below at `0`.
    pub fn f2_estimate(&self) -> f64 {
        let (k, m) = (self.params.rows(), self.params.columns());
        if k == 0 {
            return 0.0;
        }
        let mean_energy = (0..k)
            .map(|j| self.row(j).iter().map(|v| v * v).sum::<f64>())
            .sum::<f64>()
            / k as f64;
        let noise = m as f64 * self.noise_variance_per_counter();
        (mean_energy - noise).max(0.0)
    }

    /// The LDP noise variance each restored counter carries: `reports·k·c_ε²`
    /// (`k` from the row-sampling de-bias scale, `c_ε` from randomized response).
    pub fn noise_variance_per_counter(&self) -> f64 {
        let c = self.eps.c_eps();
        self.reports as f64 * self.params.rows() as f64 * c * c
    }

    /// The frequent-item set `FI = {d ∈ domain : f̃(d) > θ·total}` used by phase 1 of
    /// LDPJoinSketch+ (`total` is the number of users the sketch claims to summarise, after
    /// any scaling the caller applies for sampling).
    pub fn frequent_items(&self, domain: &[u64], theta: f64, total: f64) -> Vec<u64> {
        let threshold = theta * total;
        domain
            .iter()
            .copied()
            .filter(|&d| self.frequency_at(d) > threshold)
            .collect()
    }

    /// Frequent-item discovery with the collision-robust median estimator
    /// ([`FinalizedSketch::frequency_median`]) — the detector used by LDPJoinSketch+'s
    /// adaptive mode, where a stable, non-flooded `FI` is what keeps the phase-2
    /// high-frequency sketch sparse.
    pub fn frequent_items_median(&self, domain: &[u64], theta: f64, total: f64) -> Vec<u64> {
        let threshold = theta * total;
        domain
            .iter()
            .copied()
            .filter(|&d| self.frequency_median(d) > threshold)
            .collect()
    }

    /// Panic unless `index` was built for this sketch's hash family and dimensions.
    fn check_index(&self, index: &DomainIndex) {
        assert!(
            index.seed == self.hashes.seed()
                && index.rows == self.params.rows()
                && index.columns == self.params.columns(),
            "domain index (seed {}, {}x{}) does not match sketch (seed {}, {}x{})",
            index.seed,
            index.rows,
            index.columns,
            self.hashes.seed(),
            self.params.rows(),
            self.params.columns(),
        );
    }

    /// [`FinalizedSketch::frequencies`] over a pre-hashed [`DomainIndex`]: same estimates,
    /// bit for bit (the per-candidate additions run in the same row order), but the bucket
    /// and sign hashes are looked up instead of re-evaluated and the restored matrix is
    /// walked row-major so each 8 KiB row stays cache-resident across the whole domain.
    ///
    /// # Panics
    /// Panics if `index` was built for a different hash family or sketch shape.
    pub fn frequencies_indexed(&self, index: &DomainIndex) -> Vec<f64> {
        self.check_index(index);
        let k = self.params.rows();
        let n = index.domain.len();
        let mut acc = vec![0.0f64; n];
        if k == 0 {
            return acc;
        }
        for j in 0..k {
            let offs = &index.offsets[j * n..(j + 1) * n];
            let negs = &index.neg[j * index.words_per_row..(j + 1) * index.words_per_row];
            for (i, (&off, a)) in offs.iter().zip(acc.iter_mut()).enumerate() {
                let flip = ((negs[i >> 6] >> (i & 63)) & 1) << 63;
                *a += f64::from_bits(self.restored[off as usize].to_bits() ^ flip);
            }
        }
        let inv = k as f64;
        for a in acc.iter_mut() {
            *a /= inv;
        }
        acc
    }

    /// [`FinalizedSketch::frequent_items`] over a pre-hashed [`DomainIndex`] — identical
    /// item set, computed from [`FinalizedSketch::frequencies_indexed`].
    ///
    /// # Panics
    /// Panics if `index` was built for a different hash family or sketch shape.
    pub fn frequent_items_indexed(&self, index: &DomainIndex, theta: f64, total: f64) -> Vec<u64> {
        let threshold = theta * total;
        index
            .domain
            .iter()
            .zip(self.frequencies_indexed(index))
            .filter(|&(_, f)| f > threshold)
            .map(|(&d, _)| d)
            .collect()
    }

    /// [`FinalizedSketch::frequent_items_median`] over a pre-hashed [`DomainIndex`]:
    /// the same frequent-item set, decided by an exact order-statistic count screen.
    ///
    /// For each candidate we count, row-major over the packed sign planes, how many of the
    /// `k` per-row estimates strictly exceed the threshold. With `c` such rows and the
    /// median defined on the ascending order statistics `v[·]`:
    ///
    /// * odd `k` — `median = v[k/2] > T  ⇔  c ≥ k/2 + 1`: always decisive;
    /// * even `k`, `c ≥ k/2 + 1` — both middle statistics exceed `T`, and the rounded mean
    ///   of two values `> T` is `> T`, so the candidate is in;
    /// * even `k`, `c ≤ k/2 − 1` — both middle statistics are `≤ T`, so it is out;
    /// * even `k`, `c = k/2` — the middle statistics straddle `T`; only here does the scan
    ///   fall back to the exact [`FinalizedSketch::frequency_median`] call.
    ///
    /// Every decisive branch provably agrees with the exact median comparison and the
    /// ambiguous branch *is* the exact comparison, so the result is bit-identical to the
    /// unindexed scan.
    ///
    /// # Panics
    /// Panics if `index` was built for a different hash family or sketch shape.
    pub fn frequent_items_median_indexed(
        &self,
        index: &DomainIndex,
        theta: f64,
        total: f64,
    ) -> Vec<u64> {
        self.check_index(index);
        let k = self.params.rows();
        if k == 0 {
            return Vec::new();
        }
        let threshold = theta * total;
        let n = index.domain.len();
        let m = self.params.columns();
        // Inverted screen: instead of gathering one restored counter per (row, candidate)
        // pair, scan each restored row once and touch candidates only through the buckets
        // that actually clear the threshold. A positive-sign candidate in bucket `b`
        // exceeds iff `v > T`; a negative-sign one iff `-v > T` (the sign flip is an exact
        // negation). Counters rarely clear `T`, so the inner candidate walks are sparse
        // and the hot loop is a branch-light sweep over `m` contiguous values per row —
        // the same exact per-candidate counts as the gather form, far fewer cache misses.
        let mut above = vec![0u16; n];
        // With the threshold inside the noise floor a third of the buckets can clear it, so
        // data-dependent branches mispredict constantly; both loops below are branchless —
        // the sweep compacts exceeding buckets with an unconditional store + predicated
        // cursor bump, and the walk turns the sign test into a two-element table load.
        let mut hot = vec![0u32; m];
        for j in 0..k {
            let row = &self.restored[j * m..(j + 1) * m];
            let starts = &index.inv_start[j * (m + 1)..(j + 1) * (m + 1)];
            let row_items = &index.inv_items[j * n..(j + 1) * n];
            let mut cnt = 0usize;
            for (b, &v) in row.iter().enumerate() {
                let pos_hit = v > threshold;
                let neg_hit = -v > threshold;
                hot[cnt] = ((b as u32) << 2) | ((neg_hit as u32) << 1) | pos_hit as u32;
                cnt += (pos_hit | neg_hit) as usize;
            }
            for &e in &hot[..cnt] {
                let b = (e >> 2) as usize;
                // hits[s] = does a candidate with sign bit `s` in this bucket exceed?
                let hits = [(e & 1) as u16, ((e >> 1) & 1) as u16];
                for &item in &row_items[starts[b] as usize..starts[b + 1] as usize] {
                    above[(item >> 1) as usize] += hits[(item & 1) as usize];
                }
            }
        }
        let half = k / 2;
        index
            .domain
            .iter()
            .zip(above)
            .filter(|&(&d, c)| {
                let c = c as usize;
                if c > half {
                    true
                } else if k % 2 == 1 || c < half {
                    false
                } else {
                    self.frequency_median(d) > threshold
                }
            })
            .map(|(&d, _)| d)
            .collect()
    }
}

/// Pre-hashed scan index over a fixed public candidate domain.
///
/// Frequent-item discovery evaluates `k` bucket and sign hashes per candidate per scan; for
/// the online service's public domain those hashes never change between queries. A
/// `DomainIndex` evaluates them once, storing for every `(row, candidate)` pair the
/// flattened offset into the restored `k × m` matrix (`u32`) and the sign packed into `u64`
/// bit planes (one bit per candidate, one plane strip per row). The indexed scans on
/// [`FinalizedSketch`] then run gather + sign-flip + compare/accumulate passes that are
/// bit-identical to the hash-per-call scans: multiplying an f64 by `±1.0` is exactly a
/// sign-bit XOR.
///
/// Build one per `(hash seed, domain)` pair and reuse it across every snapshot and merged
/// span of that attribute.
#[derive(Debug, Clone)]
pub struct DomainIndex {
    domain: Arc<Vec<u64>>,
    seed: u64,
    rows: usize,
    columns: usize,
    /// `offsets[j·n + i]` = flattened index `j·m + h_j(domain[i])`, row-major.
    offsets: Vec<u32>,
    /// Sign bit planes: bit `i mod 64` of word `j·words_per_row + i/64` is set iff
    /// `ξ_j(domain[i]) = −1`.
    neg: Vec<u64>,
    words_per_row: usize,
    /// Inverted CSR, per row: `inv_start[j·(m+1) + b]..inv_start[j·(m+1) + b + 1]` bounds
    /// the candidates row `j` hashes into bucket `b`.
    inv_start: Vec<u32>,
    /// CSR payload, `candidate_index << 1 | neg_bit`, counting-sorted by `(row, bucket)`.
    inv_items: Vec<u32>,
}

impl DomainIndex {
    /// Hash every candidate in `domain` through all `k` rows of `hashes` once.
    ///
    /// # Panics
    /// Panics if the flattened `k·m` counter space does not fit in `u32` offsets.
    pub fn new(hashes: &RowHashes, domain: Arc<Vec<u64>>) -> Self {
        let (k, m) = (hashes.rows(), hashes.columns());
        assert!(
            k.checked_mul(m).is_some_and(|t| t <= u32::MAX as usize),
            "sketch too large for a u32-offset domain index: {k} x {m}"
        );
        let n = domain.len();
        assert!(
            n <= (u32::MAX >> 1) as usize,
            "domain too large for the inverted index payload: {n} candidates"
        );
        let words_per_row = n.div_ceil(64).max(1);
        let mut offsets = vec![0u32; k * n];
        let mut neg = vec![0u64; k * words_per_row];
        for (j, pair) in hashes.iter().enumerate() {
            let offs = &mut offsets[j * n..(j + 1) * n];
            let negs = &mut neg[j * words_per_row..(j + 1) * words_per_row];
            for (i, (&d, off)) in domain.iter().zip(offs.iter_mut()).enumerate() {
                *off = (j * m + pair.bucket_of(d)) as u32;
                if pair.sign_of(d) < 0 {
                    negs[i >> 6] |= 1u64 << (i & 63);
                }
            }
        }
        // Invert each row into bucket → candidate CSR lists by counting sort, so threshold
        // screens can sweep restored rows and only touch the candidates of exceeding
        // buckets.
        let mut inv_start = vec![0u32; k * (m + 1)];
        let mut inv_items = vec![0u32; k * n];
        for j in 0..k {
            let offs = &offsets[j * n..(j + 1) * n];
            let negs = &neg[j * words_per_row..(j + 1) * words_per_row];
            let starts = &mut inv_start[j * (m + 1)..(j + 1) * (m + 1)];
            for &off in offs {
                starts[off as usize - j * m + 1] += 1;
            }
            for b in 0..m {
                starts[b + 1] += starts[b];
            }
            let mut cursor: Vec<u32> = starts[..m].to_vec();
            let items = &mut inv_items[j * n..(j + 1) * n];
            for (i, &off) in offs.iter().enumerate() {
                let b = off as usize - j * m;
                let neg_bit = (negs[i >> 6] >> (i & 63)) & 1;
                items[cursor[b] as usize] = ((i as u32) << 1) | neg_bit as u32;
                cursor[b] += 1;
            }
        }
        DomainIndex {
            domain,
            seed: hashes.seed(),
            rows: k,
            columns: m,
            offsets,
            neg,
            words_per_row,
            inv_start,
            inv_items,
        }
    }

    /// The candidate domain the index was built over.
    #[inline]
    pub fn domain(&self) -> &Arc<Vec<u64>> {
        &self.domain
    }

    /// The hash-family seed the index was built from.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

pub(crate) fn check_compatible(
    params: SketchParams,
    hashes: &RowHashes,
    other_params: SketchParams,
    other_hashes: &RowHashes,
) -> Result<()> {
    if params != other_params || hashes.seed() != other_hashes.seed() {
        return Err(Error::IncompatibleSketches(format!(
            "LDPJoinSketches differ: {} seed {} vs {} seed {}",
            params,
            hashes.seed(),
            other_params,
            other_hashes.seed()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::LdpJoinSketchClient;
    use ldpjs_common::stats::{exact_join_size, frequency_table};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn params(k: usize, m: usize) -> SketchParams {
        SketchParams::new(k, m).unwrap()
    }

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    /// Heavily skewed synthetic stream so that the join signal dominates the sketch noise even
    /// at unit-test scale.
    fn skewed_stream(n: usize, domain: u64, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen::<f64>().max(1e-12);
                ((u.powf(-1.2) - 1.0) as u64).min(domain - 1)
            })
            .collect()
    }

    fn build_sketch(
        values: &[u64],
        p: SketchParams,
        e: Epsilon,
        seed: u64,
        rng_seed: u64,
    ) -> FinalizedSketch {
        let client = LdpJoinSketchClient::new(p, e, seed);
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let reports = client.perturb_all(values, &mut rng);
        let mut builder = SketchBuilder::new(p, e, seed);
        builder.absorb_all(&reports).unwrap();
        builder.finalize()
    }

    #[test]
    fn rejects_out_of_range_reports() {
        let mut builder = SketchBuilder::new(params(4, 64), eps(1.0), 0);
        let bad = ClientReport {
            y: 1.0,
            row: 4,
            col: 0,
        };
        assert!(matches!(
            builder.absorb(bad),
            Err(Error::ReportOutOfRange { .. })
        ));
        let bad = ClientReport {
            y: 1.0,
            row: 0,
            col: 64,
        };
        assert!(builder.absorb(bad).is_err());
        assert!(builder.absorb_all(&[bad]).is_err());
        let good = ClientReport {
            y: -1.0,
            row: 3,
            col: 63,
        };
        assert!(builder.absorb(good).is_ok());
        assert_eq!(builder.reports(), 1);
    }

    #[test]
    fn rejected_batch_leaves_builder_untouched() {
        let mut builder = SketchBuilder::new(params(4, 64), eps(1.0), 0);
        let good = ClientReport {
            y: 1.0,
            row: 1,
            col: 2,
        };
        let bad = ClientReport {
            y: 1.0,
            row: 9,
            col: 2,
        };
        assert!(builder.absorb_all(&[good, bad]).is_err());
        assert_eq!(builder.reports(), 0);
        let restored = builder.finalize();
        assert!(restored.restored_counters().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn rejects_incompatible_sketches() {
        let a = SketchBuilder::new(params(4, 64), eps(1.0), 0).finalize();
        let b = SketchBuilder::new(params(4, 64), eps(1.0), 1).finalize();
        assert!(a.join_size(&b).is_err());
        let c = SketchBuilder::new(params(4, 128), eps(1.0), 0).finalize();
        assert!(a.join_size(&c).is_err());
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        let a = SketchBuilder::new(params(6, 64), eps(2.0), 5).finalize();
        let b = SketchBuilder::new(params(6, 64), eps(2.0), 5).finalize();
        assert_eq!(a.join_size(&b).unwrap(), 0.0);
        assert_eq!(a.frequency(3), 0.0);
    }

    #[test]
    fn indexed_scans_are_bit_identical_to_hashed_scans() {
        // Both parities of k matter: the median count-screen's decisive rule differs for
        // odd and even row counts.
        for (k, seed) in [(18usize, 2u64), (11, 3)] {
            let p = params(k, 256);
            let e = eps(3.0);
            let values = skewed_stream(40_000, 2_000, seed);
            let sketch = build_sketch(&values, p, e, 91 + seed, seed);
            let domain: Arc<Vec<u64>> = Arc::new((0..2_000).collect());
            let index = DomainIndex::new(sketch.hashes(), Arc::clone(&domain));

            let plain = sketch.frequencies(&domain);
            let indexed = sketch.frequencies_indexed(&index);
            assert_eq!(plain.len(), indexed.len());
            for (a, b) in plain.iter().zip(indexed.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }

            let total = values.len() as f64;
            // Sweep thresholds from "everything in" to "nothing in" so the count screen
            // crosses every decisive and ambiguous branch.
            for theta in [-1.0, 0.0, 1e-5, 1e-4, 1e-3, 5e-3, 0.05, 0.5] {
                assert_eq!(
                    sketch.frequent_items(&domain, theta, total),
                    sketch.frequent_items_indexed(&index, theta, total),
                    "mean scan diverged at theta {theta}"
                );
                assert_eq!(
                    sketch.frequent_items_median(&domain, theta, total),
                    sketch.frequent_items_median_indexed(&index, theta, total),
                    "median scan diverged at theta {theta}"
                );
            }
        }
    }

    #[test]
    fn median_screen_ambiguous_branch_matches_exact_median() {
        // Force the c == k/2 ambiguous case: an empty even-k sketch has all-zero restored
        // counters, so no per-row estimate strictly exceeds a negative threshold's half
        // split — pick thresholds at and around zero to pin the straddle behaviour.
        let sketch = SketchBuilder::new(params(4, 64), eps(2.0), 12).finalize();
        let domain: Arc<Vec<u64>> = Arc::new((0..64).collect());
        let index = DomainIndex::new(sketch.hashes(), Arc::clone(&domain));
        for threshold in [-1.0, 0.0, 1.0] {
            assert_eq!(
                sketch.frequent_items_median(&domain, threshold, 1.0),
                sketch.frequent_items_median_indexed(&index, threshold, 1.0),
                "threshold {threshold}"
            );
        }
    }

    #[test]
    fn difference_recovers_the_suffix_bitwise() {
        let p = params(8, 128);
        let e = eps(2.0);
        let first = skewed_stream(20_000, 1_000, 40);
        let second = skewed_stream(30_000, 1_000, 41);
        let client = LdpJoinSketchClient::new(p, e, 7);
        let mut rng = StdRng::seed_from_u64(99);
        let mut builder_first = SketchBuilder::new(p, e, 7);
        builder_first
            .absorb_all(&client.perturb_all(&first, &mut rng))
            .unwrap();
        let suffix_reports = client.perturb_all(&second, &mut rng);
        let mut builder_suffix = SketchBuilder::new(p, e, 7);
        builder_suffix.absorb_all(&suffix_reports).unwrap();
        let mut cumulative = builder_first.clone();
        cumulative.merge(&builder_suffix).unwrap();

        let recovered = cumulative.difference(&builder_first).unwrap();
        assert_eq!(recovered.reports(), builder_suffix.reports());
        let direct = builder_suffix.finalize();
        let via_difference = recovered.finalize();
        for (a, b) in direct
            .restored_counters()
            .iter()
            .zip(via_difference.restored_counters())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn spectrum_prefix_sums_restore_bit_identically() {
        // The span-ledger law end to end: unscaled spectra are exact integers, so
        // prefix-summed spectra subtract exactly and `from_spectrum` of the difference is
        // bit-identical to finalizing the merged suffix builder — with no FWHT at
        // assembly time.
        let p = params(8, 128);
        let e = eps(2.0);
        let client = LdpJoinSketchClient::new(p, e, 7);
        let mut rng = StdRng::seed_from_u64(77);
        let mut windows = Vec::new();
        for i in 0..4u64 {
            let mut b = SketchBuilder::new(p, e, 7);
            b.absorb_all(&client.perturb_all(&skewed_stream(8_000, 500, 50 + i), &mut rng))
                .unwrap();
            windows.push(b);
        }
        // Cumulative spectra, exactly as the service ledger maintains them.
        let mut prefixes: Vec<(Vec<f64>, u64)> = Vec::new();
        for w in &windows {
            let (mut spec, mut reports) = (w.spectrum(), w.reports());
            if let Some((last, r)) = prefixes.last() {
                for (s, l) in spec.iter_mut().zip(last) {
                    *s += l;
                }
                reports += r;
            }
            prefixes.push((spec, reports));
        }
        for start in 0..windows.len() {
            let (last, last_reports) = prefixes.last().unwrap();
            let spec: Vec<f64> = if start == 0 {
                last.clone()
            } else {
                let (base, _) = &prefixes[start - 1];
                last.iter().zip(base).map(|(a, b)| a - b).collect()
            };
            let reports = last_reports - if start == 0 { 0 } else { prefixes[start - 1].1 };
            let assembled = FinalizedSketch::from_spectrum(
                p,
                e,
                Arc::clone(windows[0].hashes()),
                reports,
                spec,
            );
            let mut merged = windows[start].clone();
            for w in &windows[start + 1..] {
                merged.merge(w).unwrap();
            }
            let reference = merged.finalize();
            assert_eq!(assembled.reports(), reference.reports());
            for (a, b) in assembled
                .restored_counters()
                .iter()
                .zip(reference.restored_counters())
            {
                assert_eq!(a.to_bits(), b.to_bits(), "start {start}");
            }
        }
    }

    #[test]
    fn difference_rejects_non_prefix_and_incompatible() {
        let p = params(4, 64);
        let e = eps(2.0);
        let empty = SketchBuilder::new(p, e, 3);
        let other_seed = SketchBuilder::new(p, e, 4);
        assert!(empty.difference(&other_seed).is_err());
        let client = LdpJoinSketchClient::new(p, e, 3);
        let mut rng = StdRng::seed_from_u64(5);
        let mut loaded = SketchBuilder::new(p, e, 3);
        loaded
            .absorb_all(&client.perturb_all(&[1, 2, 3], &mut rng))
            .unwrap();
        // A builder with more reports than `self` cannot be a prefix.
        assert!(empty.difference(&loaded).is_err());
        assert!(loaded.difference(&empty).is_ok());
    }

    #[test]
    fn frequency_estimate_tracks_single_value_count() {
        // All users hold the same value; the frequency estimate should be close to n.
        let p = params(12, 256);
        let e = eps(4.0);
        let n = 60_000usize;
        let values = vec![7u64; n];
        let sketch = build_sketch(&values, p, e, 42, 1);
        let est = sketch.frequency(7);
        assert!(
            (est - n as f64).abs() < 0.1 * n as f64,
            "frequency estimate {est} far from {n}"
        );
        // A value held by nobody should estimate near zero.
        let est_absent = sketch.frequency(1234);
        assert!(
            est_absent.abs() < 0.1 * n as f64,
            "absent value estimate {est_absent}"
        );
    }

    #[test]
    fn frequency_estimates_track_heavy_hitters_on_skewed_data() {
        let p = params(18, 1024);
        let e = eps(4.0);
        let values = skewed_stream(150_000, 10_000, 3);
        let table = frequency_table(&values);
        let sketch = build_sketch(&values, p, e, 9, 2);
        // Check the three heaviest values.
        let mut heavy: Vec<(u64, u64)> = table.iter().map(|(&v, &c)| (v, c)).collect();
        heavy.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        for &(v, c) in heavy.iter().take(3) {
            let est = sketch.frequency(v);
            assert!(
                (est - c as f64).abs() < 0.15 * values.len() as f64,
                "value {v}: estimate {est}, truth {c}"
            );
        }
    }

    #[test]
    fn join_size_estimate_tracks_truth() {
        let p = params(12, 512);
        let e = eps(4.0);
        let a = skewed_stream(150_000, 50_000, 10);
        let b = skewed_stream(150_000, 50_000, 11);
        let truth = exact_join_size(&a, &b) as f64;
        let sa = build_sketch(&a, p, e, 77, 20);
        let sb = build_sketch(&b, p, e, 77, 21);
        let est = sa.join_size(&sb).unwrap();
        let re = (est - truth).abs() / truth;
        assert!(re < 0.3, "relative error {re} (est {est}, truth {truth})");
    }

    #[test]
    fn join_size_better_with_larger_epsilon() {
        // Average over a few repetitions: ε = 0.2 must be worse than ε = 8 on the same data.
        let p = params(10, 256);
        let a = skewed_stream(40_000, 5_000, 30);
        let b = skewed_stream(40_000, 5_000, 31);
        let truth = exact_join_size(&a, &b) as f64;
        let err = |e_val: f64| -> f64 {
            (0..3)
                .map(|i| {
                    let sa = build_sketch(&a, p, eps(e_val), 50 + i, 100 + i);
                    let sb = build_sketch(&b, p, eps(e_val), 50 + i, 200 + i);
                    (sa.join_size(&sb).unwrap() - truth).abs()
                })
                .sum::<f64>()
                / 3.0
        };
        let err_low = err(0.2);
        let err_high = err(8.0);
        assert!(
            err_high < err_low,
            "ε=8 should estimate better than ε=0.2: {err_high} vs {err_low}"
        );
    }

    #[test]
    fn shifted_join_removes_uniform_mass() {
        // Build a sketch, then check that shifting by c is equivalent to subtracting c from
        // every restored counter (sanity for the Algorithm 5 implementation).
        let p = params(6, 128);
        let e = eps(6.0);
        let a = skewed_stream(20_000, 100, 1);
        let b = skewed_stream(20_000, 100, 2);
        let sa = build_sketch(&a, p, e, 5, 3);
        let sb = build_sketch(&b, p, e, 5, 4);
        let shifted = sa.join_size_shifted(&sb, 2.5, 1.5).unwrap();
        // Manual computation from the borrowed restored matrices.
        let (k, m) = (p.rows(), p.columns());
        let ma = sa.restored_counters();
        let mb = sb.restored_counters();
        let mut products = Vec::new();
        for j in 0..k {
            let mut acc = 0.0;
            for x in 0..m {
                acc += (ma[j * m + x] - 2.5) * (mb[j * m + x] - 1.5);
            }
            products.push(acc);
        }
        let expected = ldpjs_common::stats::median(&products).unwrap();
        assert!((shifted - expected).abs() < 1e-6);
    }

    #[test]
    fn frequent_items_finds_heavy_hitters() {
        let p = params(18, 1024);
        let e = eps(4.0);
        let n = 120_000usize;
        // Two heavy values (30% and 20%) plus a uniform tail over 5000 values.
        let mut rng = StdRng::seed_from_u64(8);
        let values: Vec<u64> = (0..n)
            .map(|i| match i % 10 {
                0..=2 => 1,
                3..=4 => 2,
                _ => 10 + rng.gen_range(0u64..5000),
            })
            .collect();
        let sketch = build_sketch(&values, p, e, 13, 6);
        let domain: Vec<u64> = (0..5010).collect();
        let fi = sketch.frequent_items(&domain, 0.05, n as f64);
        assert!(
            fi.contains(&1),
            "FI should contain the 30% value, got {fi:?}"
        );
        assert!(
            fi.contains(&2),
            "FI should contain the 20% value, got {fi:?}"
        );
        assert!(
            fi.len() <= 10,
            "FI should not be flooded with tail values, got {} items",
            fi.len()
        );
    }

    #[test]
    fn frequencies_batch_matches_single_queries() {
        let p = params(8, 256);
        let e = eps(4.0);
        let values = skewed_stream(30_000, 500, 9);
        let sketch = build_sketch(&values, p, e, 21, 7);
        let candidates: Vec<u64> = (0..50).collect();
        let batch = sketch.frequencies(&candidates);
        for (i, &d) in candidates.iter().enumerate() {
            // Both entry points share one implementation, so equality is exact.
            assert_eq!(batch[i], sketch.frequency(d));
        }
    }

    #[test]
    fn row_view_matches_restored_counters() {
        let p = params(6, 128);
        let sketch = build_sketch(&skewed_stream(10_000, 300, 4), p, eps(4.0), 3, 5);
        let all = sketch.restored_counters();
        assert_eq!(all.len(), p.counters());
        for j in 0..p.rows() {
            assert_eq!(sketch.row(j), &all[j * p.columns()..(j + 1) * p.columns()]);
        }
    }

    #[test]
    fn centered_products_remove_uniform_mass_without_knowing_it() {
        // Shift both sketches' counters by arbitrary constants (uniform mass); the centered
        // product must be unchanged, unlike the raw product. This is the property that makes
        // the plus estimator immune to the phase-1 mass-estimate error.
        let p = params(8, 128);
        let e = eps(6.0);
        let a = skewed_stream(30_000, 400, 1);
        let b = skewed_stream(30_000, 400, 2);
        let sa = build_sketch(&a, p, e, 5, 3);
        let sb = build_sketch(&b, p, e, 5, 4);
        let base = sa.row_products_centered(&sb).unwrap();
        let mut sa_shifted = sa.clone();
        let mut sb_shifted = sb.clone();
        for v in sa_shifted.restored.iter_mut() {
            *v += 1234.5;
        }
        for v in sb_shifted.restored.iter_mut() {
            *v -= 777.25;
        }
        let shifted = sa_shifted.row_products_centered(&sb_shifted).unwrap();
        for (x, y) in base.iter().zip(&shifted) {
            assert!(
                (x - y).abs() < 1e-4 * x.abs().max(1.0),
                "centered product moved under a uniform shift: {x} vs {y}"
            );
        }
        // And it still estimates the join size (up to the usual sketch noise).
        let truth = exact_join_size(&a, &b) as f64;
        let est = median(&base).unwrap();
        assert!(
            (est - truth).abs() / truth < 0.3,
            "centered estimate {est} vs truth {truth}"
        );
    }

    #[test]
    fn masked_products_isolate_a_small_target_set() {
        // Tables whose mass is one heavy value plus uniform tail; targets = {heavy}.
        // The masked product must estimate the heavy-only join component.
        let p = params(12, 128);
        let e = eps(8.0);
        let n = 60_000usize;
        let mut rng = StdRng::seed_from_u64(17);
        let mk = |rng: &mut StdRng| -> Vec<u64> {
            (0..n)
                .map(|_| {
                    if rng.gen_range(0u64..10) < 4 {
                        7u64
                    } else {
                        10 + rng.gen_range(0u64..3_000)
                    }
                })
                .collect()
        };
        let a = mk(&mut rng);
        let b = mk(&mut rng);
        let count = |t: &[u64]| t.iter().filter(|&&v| v == 7).count() as f64;
        let heavy_join = count(&a) * count(&b);
        let sa = build_sketch(&a, p, e, 9, 21);
        let sb = build_sketch(&b, p, e, 9, 22);
        let masked = sa.row_products_masked(&sb, &[7]).unwrap();
        assert_eq!(masked.len(), 12);
        // A single target value can never self-collide.
        assert!(masked.iter().all(|&(_, clean)| clean));
        let products: Vec<f64> = masked.iter().map(|&(v, _)| v).collect();
        let est = median(&products).unwrap();
        assert!(
            (est - heavy_join).abs() / heavy_join < 0.2,
            "masked estimate {est} vs heavy-only join {heavy_join}"
        );
        // Empty target set → zero products, flagged clean.
        let empty = sa.row_products_masked(&sb, &[]).unwrap();
        assert!(empty.iter().all(|&(v, clean)| v == 0.0 && clean));
    }

    #[test]
    fn masked_products_flag_target_collisions() {
        // Force collisions by passing many targets on a narrow sketch: with 40 targets in
        // 64 buckets most rows must contain a shared bucket.
        let p = params(10, 64);
        let sketch = build_sketch(&skewed_stream(5_000, 500, 3), p, eps(4.0), 2, 9);
        let targets: Vec<u64> = (0..40).collect();
        let masked = sketch.row_products_masked(&sketch, &targets).unwrap();
        assert!(
            masked.iter().any(|&(_, clean)| !clean),
            "40 targets in 64 buckets should collide in at least one of 10 rows"
        );
    }

    #[test]
    fn frequency_median_is_robust_to_single_row_collisions() {
        // The mean estimator spreads a heavy collision over all rows; the median ignores
        // it. Both must agree on the heavy value itself.
        let p = params(18, 128);
        let e = eps(6.0);
        let n = 80_000usize;
        let mut rng = StdRng::seed_from_u64(4);
        let values: Vec<u64> = (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    3u64
                } else {
                    10 + rng.gen_range(0u64..2_000)
                }
            })
            .collect();
        let sketch = build_sketch(&values, p, e, 31, 8);
        let heavy_truth = (n / 2) as f64;
        let med = sketch.frequency_median(3);
        assert!(
            (med - heavy_truth).abs() / heavy_truth < 0.15,
            "median estimate {med} vs {heavy_truth}"
        );
        // Across a tail scan, the worst-case median overestimate stays below the worst-case
        // mean overestimate (collision robustness).
        let worst_mean = (100..600u64)
            .map(|d| sketch.frequency(d))
            .fold(f64::MIN, f64::max);
        let worst_med = (100..600u64)
            .map(|d| sketch.frequency_median(d))
            .fold(f64::MIN, f64::max);
        assert!(
            worst_med <= worst_mean,
            "median worst-case {worst_med} should not exceed mean worst-case {worst_mean}"
        );
    }

    #[test]
    fn f2_estimate_tracks_truth() {
        let p = params(18, 256);
        let e = eps(4.0);
        // Skewed stream: F2 from the exact frequency table. (A flat table's F2 sits far
        // below the subtracted noise energy and is legitimately estimated as ≈0; only a
        // skew whose F2 rises above the noise energy is identifiable.)
        let values = skewed_stream(150_000, 5_000, 7);
        let table = frequency_table(&values);
        let f2: u64 = table.values().map(|&c| c * c).sum();
        let sketch = build_sketch(&values, p, e, 12, 14);
        let est = sketch.f2_estimate();
        let re_f2 = (est - f2 as f64).abs() / f2 as f64;
        assert!(re_f2 < 0.25, "F2 estimate {est} vs truth {f2}");
    }

    #[test]
    fn merged_shards_equal_single_aggregator() {
        // Sharded aggregation: two shards each absorb half the reports; merging them must be
        // bit-for-bit identical to one aggregator absorbing everything. (The exhaustive
        // shard-count × report-count sweep lives in `crate::aggregator`.)
        let p = params(8, 128);
        let e = eps(3.0);
        let client = LdpJoinSketchClient::new(p, e, 77);
        let mut rng = StdRng::seed_from_u64(5);
        let values = skewed_stream(5_000, 200, 8);
        let reports = client.perturb_all(&values, &mut rng);
        let (first, second) = reports.split_at(reports.len() / 2);

        let mut shard_a = SketchBuilder::new(p, e, 77);
        shard_a.absorb_all(first).unwrap();
        let mut shard_b = SketchBuilder::new(p, e, 77);
        shard_b.absorb_all(second).unwrap();
        shard_a.merge(&shard_b).unwrap();

        let mut single = SketchBuilder::new(p, e, 77);
        single.absorb_all(&reports).unwrap();

        assert_eq!(shard_a.reports(), single.reports());
        assert_eq!(
            shard_a.finalize().restored_counters(),
            single.finalize().restored_counters()
        );
    }

    #[test]
    fn finalize_view_is_bit_identical_to_consuming_finalize() {
        // The non-consuming snapshot restore must agree bit-for-bit with `finalize`, and the
        // builder must stay usable (absorbing more reports) afterwards.
        let p = params(8, 128);
        let e = eps(3.0);
        let client = LdpJoinSketchClient::new(p, e, 21);
        let mut rng = StdRng::seed_from_u64(6);
        let reports = client.perturb_all(&skewed_stream(3_000, 150, 12), &mut rng);
        let (first, second) = reports.split_at(1_700);

        let mut builder = SketchBuilder::new(p, e, 21);
        builder.absorb_all(first).unwrap();
        let view = builder.finalize_view();
        assert_eq!(view.reports(), 1_700);
        assert_eq!(
            view.restored_counters(),
            builder.clone().finalize().restored_counters()
        );

        // The builder keeps accumulating; a later view covers the full stream.
        builder.absorb_all(second).unwrap();
        let mut single = SketchBuilder::new(p, e, 21);
        single.absorb_all(&reports).unwrap();
        assert_eq!(
            builder.finalize_view().restored_counters(),
            single.finalize().restored_counters()
        );
    }

    #[test]
    fn merge_rejects_incompatible_shards() {
        let p = params(4, 64);
        let mut a = SketchBuilder::new(p, eps(2.0), 1);
        let b = SketchBuilder::new(p, eps(2.0), 2);
        assert!(a.merge(&b).is_err(), "different hash seeds must not merge");
        let c = SketchBuilder::new(params(4, 128), eps(2.0), 1);
        assert!(a.merge(&c).is_err(), "different shapes must not merge");
        let d = SketchBuilder::new(p, eps(4.0), 1);
        assert!(
            a.merge(&d).is_err(),
            "different privacy budgets must not merge"
        );
        let ok = SketchBuilder::new(p, eps(2.0), 1);
        assert!(a.merge(&ok).is_ok());
    }

    #[test]
    fn from_reports_equals_incremental_absorption() {
        let p = params(6, 64);
        let e = eps(2.0);
        let client = LdpJoinSketchClient::new(p, e, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let reports = client.perturb_all(&[1, 2, 3, 4, 5, 6, 7, 8], &mut rng);
        let batch = SketchBuilder::from_reports(p, e, 3, &reports).unwrap();
        let mut incremental = SketchBuilder::new(p, e, 3);
        for &r in &reports {
            incremental.absorb(r).unwrap();
        }
        let incremental = incremental.finalize();
        assert_eq!(batch.restored_counters(), incremental.restored_counters());
        assert_eq!(batch.reports(), incremental.reports());
    }
}
