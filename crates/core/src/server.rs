//! Server-side of LDPJoinSketch: sketch construction (Algorithm 2, `PriSk`), the join-size
//! estimator of Eq. 5, and the frequency estimator of Theorem 7.
//!
//! The sketch lifecycle is an explicit two-stage, type-level design:
//!
//! * [`SketchBuilder`] is the **mutable accumulation stage**. It absorbs client reports
//!   (`raw[j, l] += y`), merges with other builders (shards), and stays in the Hadamard
//!   domain. Because every report contributes exactly `±1` to one counter, the accumulated
//!   counters are *exact integers* in `f64` — so sharded absorption merged counter-wise is
//!   bit-for-bit identical to sequential absorption, regardless of how the reports were
//!   partitioned (integer addition in `f64` is associative as long as counts stay below
//!   `2^53`, far beyond any realistic report volume).
//! * [`FinalizedSketch`] is the **immutable estimation stage**. [`SketchBuilder::finalize`]
//!   applies the de-bias scale `k·c_ε` (the factor `k` undoes the uniform row sampling,
//!   `c_ε = (e^ε+1)/(e^ε−1)` undoes the randomized response) and pushes each row back
//!   through the fast Walsh–Hadamard transform **once**; every estimator then *borrows* the
//!   restored counters as `&[f64]` — no estimator call clones or recomputes the `k×m`
//!   matrix.
//!
//! The restored sketch behaves like a noisy fast-AGMS sketch of the users' values:
//! * `median_j Σ_x M_A[j,x]·M_B[j,x]` estimates the join size (Theorem 3),
//! * `mean_j M[j,h_j(d)]·ξ_j(d)` is an unbiased frequency estimate (Theorem 7).
//!
//! For parallel ingestion over many shards see [`crate::aggregator::ShardedAggregator`].

use ldpjs_common::error::{Error, Result};
use ldpjs_common::hadamard::fwht_in_place;
use ldpjs_common::hash::RowHashes;
use ldpjs_common::privacy::Epsilon;
use ldpjs_common::stats::median;
use ldpjs_sketch::SketchParams;
use std::sync::Arc;

use crate::client::ClientReport;

/// The mutable accumulation stage of the server-side LDPJoinSketch.
///
/// Counters are kept in the Hadamard domain as exact `±1` report sums; the de-bias scale and
/// the Hadamard restore are applied once by [`SketchBuilder::finalize`], which consumes the
/// builder and returns the immutable [`FinalizedSketch`] estimation view.
#[derive(Debug, Clone)]
pub struct SketchBuilder {
    params: SketchParams,
    eps: Epsilon,
    hashes: Arc<RowHashes>,
    /// Accumulated report sums, still in the Hadamard domain (row-major `k × m`). Each entry
    /// is an exact integer (a sum of `±1` contributions), which makes shard merges exact.
    raw: Vec<f64>,
    /// Number of absorbed reports.
    reports: u64,
}

impl SketchBuilder {
    /// Create an empty builder with a hash family derived from `seed`.
    ///
    /// The same `(params, seed)` pair must be used by the matching
    /// [`crate::client::LdpJoinSketchClient`]s.
    pub fn new(params: SketchParams, eps: Epsilon, seed: u64) -> Self {
        let hashes = Arc::new(RowHashes::from_seed(seed, params.rows(), params.columns()));
        Self::with_hashes(params, eps, hashes)
    }

    /// Create an empty builder around an existing shared hash family.
    pub fn with_hashes(params: SketchParams, eps: Epsilon, hashes: Arc<RowHashes>) -> Self {
        debug_assert_eq!(hashes.rows(), params.rows());
        debug_assert_eq!(hashes.columns(), params.columns());
        SketchBuilder {
            params,
            eps,
            hashes,
            raw: vec![0.0; params.counters()],
            reports: 0,
        }
    }

    /// Build a finalized sketch directly from a batch of client reports (`PriSk` in
    /// Algorithm 2).
    pub fn from_reports(
        params: SketchParams,
        eps: Epsilon,
        seed: u64,
        reports: &[ClientReport],
    ) -> Result<FinalizedSketch> {
        let mut builder = Self::new(params, eps, seed);
        builder.absorb_all(reports)?;
        Ok(builder.finalize())
    }

    /// Sketch parameters `(k, m)`.
    #[inline]
    pub fn params(&self) -> SketchParams {
        self.params
    }

    /// Privacy budget the absorbed reports were perturbed with.
    #[inline]
    pub fn epsilon(&self) -> Epsilon {
        self.eps
    }

    /// The shared public hash family.
    #[inline]
    pub fn hashes(&self) -> &Arc<RowHashes> {
        &self.hashes
    }

    /// Number of absorbed reports.
    #[inline]
    pub fn reports(&self) -> u64 {
        self.reports
    }

    /// Absorb one client report (Algorithm 2, line 4).
    ///
    /// # Errors
    /// Returns [`Error::ReportOutOfRange`] if the report's indices do not fit this sketch.
    pub fn absorb(&mut self, report: ClientReport) -> Result<()> {
        let (k, m) = (self.params.rows(), self.params.columns());
        if report.row >= k || report.col >= m {
            return Err(Error::ReportOutOfRange {
                row: report.row,
                col: report.col,
                rows: k,
                cols: m,
            });
        }
        self.raw[report.row * m + report.col] += report.y;
        self.reports += 1;
        Ok(())
    }

    /// Absorb a batch of reports.
    ///
    /// Single fused pass over the batch (the perfectly predicted range branch is cheaper
    /// than a separate validation sweep's second read of the reports); atomicity is kept by
    /// rolling the already-applied prefix back on the cold error path, so a rejected batch
    /// leaves the builder untouched.
    ///
    /// # Errors
    /// Returns [`Error::ReportOutOfRange`] for the first offending report, if any.
    pub fn absorb_all(&mut self, reports: &[ClientReport]) -> Result<()> {
        let (k, m) = (self.params.rows(), self.params.columns());
        for (i, r) in reports.iter().enumerate() {
            if r.row >= k || r.col >= m {
                // Cold path: undo the applied prefix so the rejected batch is a no-op.
                for applied in &reports[..i] {
                    self.raw[applied.row * m + applied.col] -= applied.y;
                }
                return Err(Error::ReportOutOfRange {
                    row: r.row,
                    col: r.col,
                    rows: k,
                    cols: m,
                });
            }
            self.raw[r.row * m + r.col] += r.y;
        }
        self.reports += reports.len() as u64;
        Ok(())
    }

    /// Check every report of a batch against this sketch's dimensions.
    pub(crate) fn validate_batch(&self, reports: &[ClientReport]) -> Result<()> {
        let (k, m) = (self.params.rows(), self.params.columns());
        if let Some(bad) = reports.iter().find(|r| r.row >= k || r.col >= m) {
            return Err(Error::ReportOutOfRange {
                row: bad.row,
                col: bad.col,
                rows: k,
                cols: m,
            });
        }
        Ok(())
    }

    /// Accumulate a batch that has already been validated (the sharded ingestion engine
    /// validates the whole batch once before fanning chunks out to worker threads).
    pub(crate) fn accumulate_validated(&mut self, reports: &[ClientReport]) {
        let m = self.params.columns();
        for r in reports {
            self.raw[r.row * m + r.col] += r.y;
        }
        self.reports += reports.len() as u64;
    }

    /// Merge another partial builder into this one.
    ///
    /// LDPJoinSketch is linear in its reports, so an aggregator can be sharded: each shard
    /// absorbs a subset of the client reports and the shards are merged counter-wise before
    /// finalization. Because the counters are exact integer report sums, the merged result is
    /// bit-for-bit identical to absorbing every report into a single builder. Both builders
    /// must share `(k, m)`, the hash seed, and the privacy budget.
    ///
    /// # Errors
    /// Returns [`Error::IncompatibleSketches`] if parameters, hash seed or ε differ.
    pub fn merge(&mut self, other: &Self) -> Result<()> {
        check_compatible(self.params, &self.hashes, other.params, &other.hashes)?;
        if (self.eps.value() - other.eps.value()).abs() > f64::EPSILON {
            return Err(Error::IncompatibleSketches(format!(
                "cannot merge sketches built with different privacy budgets: {} vs {}",
                self.eps, other.eps
            )));
        }
        for (a, b) in self.raw.iter_mut().zip(other.raw.iter()) {
            *a += b;
        }
        self.reports += other.reports;
        Ok(())
    }

    /// Restore the sketch from the Hadamard domain (Algorithm 2, line 6): apply the de-bias
    /// scale `k·c_ε` and the per-row fast Walsh–Hadamard transform once, consuming the
    /// builder and returning the immutable estimation view.
    pub fn finalize(self) -> FinalizedSketch {
        let SketchBuilder {
            params,
            eps,
            hashes,
            raw,
            reports,
        } = self;
        restore(params, eps, hashes, raw, reports)
    }

    /// Restore a *snapshot* of the sketch without consuming the builder: the exact raw
    /// counters are cloned and pushed through the identical de-bias + Hadamard pipeline as
    /// [`SketchBuilder::finalize`], so the two entry points can never diverge bit-wise.
    ///
    /// This is the epoch-sealing hook of the online sketch service: a sealed window keeps
    /// its builder (exact integer counters, mergeable with other windows at zero rounding
    /// error) *and* an estimation view, and a k-window merge re-aggregates the raw counters
    /// before a single restore — which is why merged-window estimates are bit-identical to
    /// one-shot aggregation of the same reports.
    pub fn finalize_view(&self) -> FinalizedSketch {
        restore(
            self.params,
            self.eps,
            Arc::clone(&self.hashes),
            self.raw.clone(),
            self.reports,
        )
    }
}

/// The single de-bias + Hadamard restore pipeline shared by [`SketchBuilder::finalize`] and
/// [`SketchBuilder::finalize_view`].
fn restore(
    params: SketchParams,
    eps: Epsilon,
    hashes: Arc<RowHashes>,
    mut raw: Vec<f64>,
    reports: u64,
) -> FinalizedSketch {
    let scale = params.rows() as f64 * eps.c_eps();
    for v in raw.iter_mut() {
        *v *= scale;
    }
    let m = params.columns();
    for j in 0..params.rows() {
        fwht_in_place(&mut raw[j * m..(j + 1) * m]);
    }
    FinalizedSketch {
        params,
        eps,
        hashes,
        restored: raw,
        reports,
    }
}

/// The immutable estimation stage of the server-side LDPJoinSketch.
///
/// Produced by [`SketchBuilder::finalize`]; the restored `k × m` counter matrix is computed
/// exactly once and every estimator borrows it as `&[f64]` — no per-call clone, no interior
/// mutability, trivially shareable across threads.
#[derive(Debug, Clone)]
pub struct FinalizedSketch {
    params: SketchParams,
    eps: Epsilon,
    hashes: Arc<RowHashes>,
    /// Restored counters (`raw·k·c_ε · H_mᵀ` per row), row-major `k × m`.
    restored: Vec<f64>,
    reports: u64,
}

impl FinalizedSketch {
    /// Sketch parameters `(k, m)`.
    #[inline]
    pub fn params(&self) -> SketchParams {
        self.params
    }

    /// Privacy budget the absorbed reports were perturbed with.
    #[inline]
    pub fn epsilon(&self) -> Epsilon {
        self.eps
    }

    /// The shared public hash family.
    #[inline]
    pub fn hashes(&self) -> &Arc<RowHashes> {
        &self.hashes
    }

    /// Number of absorbed reports.
    #[inline]
    pub fn reports(&self) -> u64 {
        self.reports
    }

    /// The restored `k × m` counter matrix (row-major), borrowed — never cloned.
    #[inline]
    pub fn restored_counters(&self) -> &[f64] {
        &self.restored
    }

    /// One restored sketch row of length `m`, borrowed.
    #[inline]
    pub fn row(&self, j: usize) -> &[f64] {
        let m = self.params.columns();
        &self.restored[j * m..(j + 1) * m]
    }

    /// Per-row inner products with another sketch, optionally shifting every counter of each
    /// sketch by a constant first (used by LDPJoinSketch+'s Algorithm 5 to remove the
    /// expected non-target mass `|NT|/m`).
    pub fn row_products_shifted(
        &self,
        other: &Self,
        shift_self: f64,
        shift_other: f64,
    ) -> Result<Vec<f64>> {
        check_compatible(self.params, &self.hashes, other.params, &other.hashes)?;
        let k = self.params.rows();
        Ok((0..k)
            .map(|j| {
                self.row(j)
                    .iter()
                    .zip(other.row(j))
                    .map(|(a, b)| (a - shift_self) * (b - shift_other))
                    .sum()
            })
            .collect())
    }

    /// Per-row inner products `Σ_x M_A[j,x]·M_B[j,x]`.
    pub fn row_products(&self, other: &Self) -> Result<Vec<f64>> {
        self.row_products_shifted(other, 0.0, 0.0)
    }

    /// Per-row *mean-centered* inner products: `Σ_x (M_A[j,x]−Ā_j)(M_B[j,x]−B̄_j)/(1−1/m)`,
    /// where `Ā_j` is the mean of row `j`.
    ///
    /// This is the shift-free form of Algorithm 5's non-target mass removal. Writing a FAP
    /// row as `M[j,x] = T_x + N_x` (target signal plus non-target mass with uniform
    /// expectation `|NT|/m`), the centered product satisfies, conditionally on the hashes,
    ///
    /// `E[Σ_x (A_x−Ā)(B_x−B̄)] = J_target·(1 − 1/m)`:
    ///
    /// the `|NT_A|·|NT_B|/m` term of the raw product cancels against the same term inside
    /// `m·Ā·B̄`, so **no estimate of the non-target mass is needed at all** — unlike the
    /// shifted form, whose subtraction error (the phase-1 frequent-item mass is itself an
    /// estimate) couples multiplicatively with the non-target total. The price is a small
    /// extra variance term from the centered signed target sums (`Σ_v f_v ξ_j(v)`, removed
    /// at weight `1/m`), which the collision-masked product
    /// ([`FinalizedSketch::row_products_masked`]) avoids for the high-frequency group.
    pub fn row_products_centered(&self, other: &Self) -> Result<Vec<f64>> {
        check_compatible(self.params, &self.hashes, other.params, &other.hashes)?;
        let (k, m) = (self.params.rows(), self.params.columns());
        let mf = m as f64;
        Ok((0..k)
            .map(|j| {
                let ra = self.row(j);
                let rb = other.row(j);
                let mean_a = ra.iter().sum::<f64>() / mf;
                let mean_b = rb.iter().sum::<f64>() / mf;
                let centered: f64 = ra
                    .iter()
                    .zip(rb)
                    .map(|(a, b)| (a - mean_a) * (b - mean_b))
                    .sum();
                centered / (1.0 - 1.0 / mf)
            })
            .collect())
    }

    /// Per-row *collision-masked* inner products for a sketch pair whose target set is the
    /// small public set `targets` (LDPJoinSketch+'s high-frequency phase-2 sketches).
    ///
    /// The target values' buckets `S_j = {h_j(d) : d ∈ targets}` are public, so row `j` can
    /// (1) estimate the uniform non-target level `u_j` from the buckets *outside* `S_j` —
    /// unaffected by any target signal and free of the phase-1 mass-estimate error — and
    /// (2) restrict the product to the buckets of `S_j`, where all the target join signal
    /// lives, dropping the non-target scatter and LDP noise of the other `m−|S_j|` buckets.
    ///
    /// Returns one `(product, collision_free)` pair per row; `collision_free` is `false`
    /// when two distinct target values share a bucket in that row, which the caller can use
    /// to drop the (rare, publicly detectable) collision outliers before combining rows.
    /// With an empty target set every product is `0` (there is no target signal to sum).
    pub fn row_products_masked(&self, other: &Self, targets: &[u64]) -> Result<Vec<(f64, bool)>> {
        check_compatible(self.params, &self.hashes, other.params, &other.hashes)?;
        let (k, m) = (self.params.rows(), self.params.columns());
        Ok((0..k)
            .map(|j| {
                let pair = self.hashes.pair(j);
                let mut in_s = vec![false; m];
                let mut s_size = 0usize;
                let mut collision_free = true;
                for &d in targets {
                    let b = pair.bucket_of(d);
                    if in_s[b] {
                        collision_free = false;
                    } else {
                        in_s[b] = true;
                        s_size += 1;
                    }
                }
                if s_size == 0 {
                    return (0.0, true);
                }
                let ra = self.row(j);
                let rb = other.row(j);
                let (mut sum_a, mut sum_b) = (0.0f64, 0.0f64);
                for x in 0..m {
                    if !in_s[x] {
                        sum_a += ra[x];
                        sum_b += rb[x];
                    }
                }
                let free = (m - s_size) as f64;
                // With every bucket targeted there is no noise-only bucket left to estimate
                // the uniform level from; fall back to zero shift (all signal buckets).
                let (u_a, u_b) = if free > 0.0 {
                    (sum_a / free, sum_b / free)
                } else {
                    (0.0, 0.0)
                };
                let product: f64 = (0..m)
                    .filter(|&x| in_s[x])
                    .map(|x| (ra[x] - u_a) * (rb[x] - u_b))
                    .sum();
                (product, collision_free)
            })
            .collect())
    }

    /// Join-size estimate `median_j Σ_x M_A[j,x]·M_B[j,x]` (Eq. 5).
    ///
    /// Thin driver over the shared [`PlainKernel`](crate::kernel::PlainKernel) — the single
    /// implementation every plain join estimate (offline runners, experiment harness,
    /// online service) goes through.
    pub fn join_size(&self, other: &Self) -> Result<f64> {
        crate::kernel::PlainKernel.join_size(self, other)
    }

    /// Join-size estimate after subtracting a uniform per-counter shift from each sketch
    /// (Algorithm 5: `M ← M − {NT/m}` then `Est = M_A·M_B`).
    pub fn join_size_shifted(
        &self,
        other: &Self,
        shift_self: f64,
        shift_other: f64,
    ) -> Result<f64> {
        let products = self.row_products_shifted(other, shift_self, shift_other)?;
        median(&products).ok_or_else(|| Error::EmptyInput("sketch has no rows".into()))
    }

    /// Frequency estimate `f̃(d) = mean_j M[j, h_j(d)]·ξ_j(d)` (Theorem 7).
    ///
    /// [`FinalizedSketch::frequencies`] delegates to the same per-value estimator, so the two
    /// entry points cannot drift.
    pub fn frequency(&self, value: u64) -> f64 {
        self.frequency_at(value)
    }

    /// Frequency estimates for a whole candidate domain (one borrowed pass over the restored
    /// matrix per candidate; prefer this over repeated [`FinalizedSketch::frequency`] calls
    /// for large scans).
    pub fn frequencies(&self, candidates: &[u64]) -> Vec<f64> {
        candidates.iter().map(|&d| self.frequency_at(d)).collect()
    }

    /// The single shared implementation of the Theorem 7 estimator.
    #[inline]
    fn frequency_at(&self, d: u64) -> f64 {
        let (k, m) = (self.params.rows(), self.params.columns());
        if k == 0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for (j, pair) in self.hashes.iter().enumerate() {
            acc += self.restored[j * m + pair.bucket_of(d)] * pair.sign_of(d) as f64;
        }
        acc / k as f64
    }

    /// Median-of-rows frequency estimate `f̃_med(d) = median_j M[j, h_j(d)]·ξ_j(d)`.
    ///
    /// The Theorem 7 estimator ([`FinalizedSketch::frequency`]) averages the `k` per-row
    /// estimates, so a single row in which `d`'s bucket also holds a heavy hitter drags the
    /// whole estimate by `±f_heavy/k`. At the narrow sketches of the large-n regime
    /// (`m ≲ 128`) that collision inflates tail values past any phase-1 threshold and floods
    /// the frequent-item set. The median combiner ignores the (rare, large) colliding rows
    /// entirely, which is what the adaptive frequent-item discovery of LDPJoinSketch+ uses.
    pub fn frequency_median(&self, value: u64) -> f64 {
        let (k, m) = (self.params.rows(), self.params.columns());
        if k == 0 {
            return 0.0;
        }
        let per_row: Vec<f64> = self
            .hashes
            .iter()
            .enumerate()
            .map(|(j, pair)| {
                self.restored[j * m + pair.bucket_of(value)] * pair.sign_of(value) as f64
            })
            .collect();
        median(&per_row).unwrap_or(0.0)
    }

    /// Estimate of the second frequency moment `F2 = Σ_d f(d)²` of the absorbed table,
    /// de-biased for the LDP noise the restored counters carry.
    ///
    /// `E[Σ_x M[j,x]²] = F2 + m·reports·k·c_ε²` (each report contributes `±k·c_ε` to every
    /// restored counter of its row through the Hadamard transform; the constant is validated
    /// empirically in this module's tests), so subtracting the noise term from the mean row
    /// energy leaves `F2`. Clamped below at `0`.
    pub fn f2_estimate(&self) -> f64 {
        let (k, m) = (self.params.rows(), self.params.columns());
        if k == 0 {
            return 0.0;
        }
        let mean_energy = (0..k)
            .map(|j| self.row(j).iter().map(|v| v * v).sum::<f64>())
            .sum::<f64>()
            / k as f64;
        let noise = m as f64 * self.noise_variance_per_counter();
        (mean_energy - noise).max(0.0)
    }

    /// The LDP noise variance each restored counter carries: `reports·k·c_ε²`
    /// (`k` from the row-sampling de-bias scale, `c_ε` from randomized response).
    pub fn noise_variance_per_counter(&self) -> f64 {
        let c = self.eps.c_eps();
        self.reports as f64 * self.params.rows() as f64 * c * c
    }

    /// The frequent-item set `FI = {d ∈ domain : f̃(d) > θ·total}` used by phase 1 of
    /// LDPJoinSketch+ (`total` is the number of users the sketch claims to summarise, after
    /// any scaling the caller applies for sampling).
    pub fn frequent_items(&self, domain: &[u64], theta: f64, total: f64) -> Vec<u64> {
        let threshold = theta * total;
        domain
            .iter()
            .copied()
            .filter(|&d| self.frequency_at(d) > threshold)
            .collect()
    }

    /// Frequent-item discovery with the collision-robust median estimator
    /// ([`FinalizedSketch::frequency_median`]) — the detector used by LDPJoinSketch+'s
    /// adaptive mode, where a stable, non-flooded `FI` is what keeps the phase-2
    /// high-frequency sketch sparse.
    pub fn frequent_items_median(&self, domain: &[u64], theta: f64, total: f64) -> Vec<u64> {
        let threshold = theta * total;
        domain
            .iter()
            .copied()
            .filter(|&d| self.frequency_median(d) > threshold)
            .collect()
    }
}

pub(crate) fn check_compatible(
    params: SketchParams,
    hashes: &RowHashes,
    other_params: SketchParams,
    other_hashes: &RowHashes,
) -> Result<()> {
    if params != other_params || hashes.seed() != other_hashes.seed() {
        return Err(Error::IncompatibleSketches(format!(
            "LDPJoinSketches differ: {} seed {} vs {} seed {}",
            params,
            hashes.seed(),
            other_params,
            other_hashes.seed()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::LdpJoinSketchClient;
    use ldpjs_common::stats::{exact_join_size, frequency_table};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn params(k: usize, m: usize) -> SketchParams {
        SketchParams::new(k, m).unwrap()
    }

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    /// Heavily skewed synthetic stream so that the join signal dominates the sketch noise even
    /// at unit-test scale.
    fn skewed_stream(n: usize, domain: u64, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen::<f64>().max(1e-12);
                ((u.powf(-1.2) - 1.0) as u64).min(domain - 1)
            })
            .collect()
    }

    fn build_sketch(
        values: &[u64],
        p: SketchParams,
        e: Epsilon,
        seed: u64,
        rng_seed: u64,
    ) -> FinalizedSketch {
        let client = LdpJoinSketchClient::new(p, e, seed);
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let reports = client.perturb_all(values, &mut rng);
        let mut builder = SketchBuilder::new(p, e, seed);
        builder.absorb_all(&reports).unwrap();
        builder.finalize()
    }

    #[test]
    fn rejects_out_of_range_reports() {
        let mut builder = SketchBuilder::new(params(4, 64), eps(1.0), 0);
        let bad = ClientReport {
            y: 1.0,
            row: 4,
            col: 0,
        };
        assert!(matches!(
            builder.absorb(bad),
            Err(Error::ReportOutOfRange { .. })
        ));
        let bad = ClientReport {
            y: 1.0,
            row: 0,
            col: 64,
        };
        assert!(builder.absorb(bad).is_err());
        assert!(builder.absorb_all(&[bad]).is_err());
        let good = ClientReport {
            y: -1.0,
            row: 3,
            col: 63,
        };
        assert!(builder.absorb(good).is_ok());
        assert_eq!(builder.reports(), 1);
    }

    #[test]
    fn rejected_batch_leaves_builder_untouched() {
        let mut builder = SketchBuilder::new(params(4, 64), eps(1.0), 0);
        let good = ClientReport {
            y: 1.0,
            row: 1,
            col: 2,
        };
        let bad = ClientReport {
            y: 1.0,
            row: 9,
            col: 2,
        };
        assert!(builder.absorb_all(&[good, bad]).is_err());
        assert_eq!(builder.reports(), 0);
        let restored = builder.finalize();
        assert!(restored.restored_counters().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn rejects_incompatible_sketches() {
        let a = SketchBuilder::new(params(4, 64), eps(1.0), 0).finalize();
        let b = SketchBuilder::new(params(4, 64), eps(1.0), 1).finalize();
        assert!(a.join_size(&b).is_err());
        let c = SketchBuilder::new(params(4, 128), eps(1.0), 0).finalize();
        assert!(a.join_size(&c).is_err());
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        let a = SketchBuilder::new(params(6, 64), eps(2.0), 5).finalize();
        let b = SketchBuilder::new(params(6, 64), eps(2.0), 5).finalize();
        assert_eq!(a.join_size(&b).unwrap(), 0.0);
        assert_eq!(a.frequency(3), 0.0);
    }

    #[test]
    fn frequency_estimate_tracks_single_value_count() {
        // All users hold the same value; the frequency estimate should be close to n.
        let p = params(12, 256);
        let e = eps(4.0);
        let n = 60_000usize;
        let values = vec![7u64; n];
        let sketch = build_sketch(&values, p, e, 42, 1);
        let est = sketch.frequency(7);
        assert!(
            (est - n as f64).abs() < 0.1 * n as f64,
            "frequency estimate {est} far from {n}"
        );
        // A value held by nobody should estimate near zero.
        let est_absent = sketch.frequency(1234);
        assert!(
            est_absent.abs() < 0.1 * n as f64,
            "absent value estimate {est_absent}"
        );
    }

    #[test]
    fn frequency_estimates_track_heavy_hitters_on_skewed_data() {
        let p = params(18, 1024);
        let e = eps(4.0);
        let values = skewed_stream(150_000, 10_000, 3);
        let table = frequency_table(&values);
        let sketch = build_sketch(&values, p, e, 9, 2);
        // Check the three heaviest values.
        let mut heavy: Vec<(u64, u64)> = table.iter().map(|(&v, &c)| (v, c)).collect();
        heavy.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        for &(v, c) in heavy.iter().take(3) {
            let est = sketch.frequency(v);
            assert!(
                (est - c as f64).abs() < 0.15 * values.len() as f64,
                "value {v}: estimate {est}, truth {c}"
            );
        }
    }

    #[test]
    fn join_size_estimate_tracks_truth() {
        let p = params(12, 512);
        let e = eps(4.0);
        let a = skewed_stream(150_000, 50_000, 10);
        let b = skewed_stream(150_000, 50_000, 11);
        let truth = exact_join_size(&a, &b) as f64;
        let sa = build_sketch(&a, p, e, 77, 20);
        let sb = build_sketch(&b, p, e, 77, 21);
        let est = sa.join_size(&sb).unwrap();
        let re = (est - truth).abs() / truth;
        assert!(re < 0.3, "relative error {re} (est {est}, truth {truth})");
    }

    #[test]
    fn join_size_better_with_larger_epsilon() {
        // Average over a few repetitions: ε = 0.2 must be worse than ε = 8 on the same data.
        let p = params(10, 256);
        let a = skewed_stream(40_000, 5_000, 30);
        let b = skewed_stream(40_000, 5_000, 31);
        let truth = exact_join_size(&a, &b) as f64;
        let err = |e_val: f64| -> f64 {
            (0..3)
                .map(|i| {
                    let sa = build_sketch(&a, p, eps(e_val), 50 + i, 100 + i);
                    let sb = build_sketch(&b, p, eps(e_val), 50 + i, 200 + i);
                    (sa.join_size(&sb).unwrap() - truth).abs()
                })
                .sum::<f64>()
                / 3.0
        };
        let err_low = err(0.2);
        let err_high = err(8.0);
        assert!(
            err_high < err_low,
            "ε=8 should estimate better than ε=0.2: {err_high} vs {err_low}"
        );
    }

    #[test]
    fn shifted_join_removes_uniform_mass() {
        // Build a sketch, then check that shifting by c is equivalent to subtracting c from
        // every restored counter (sanity for the Algorithm 5 implementation).
        let p = params(6, 128);
        let e = eps(6.0);
        let a = skewed_stream(20_000, 100, 1);
        let b = skewed_stream(20_000, 100, 2);
        let sa = build_sketch(&a, p, e, 5, 3);
        let sb = build_sketch(&b, p, e, 5, 4);
        let shifted = sa.join_size_shifted(&sb, 2.5, 1.5).unwrap();
        // Manual computation from the borrowed restored matrices.
        let (k, m) = (p.rows(), p.columns());
        let ma = sa.restored_counters();
        let mb = sb.restored_counters();
        let mut products = Vec::new();
        for j in 0..k {
            let mut acc = 0.0;
            for x in 0..m {
                acc += (ma[j * m + x] - 2.5) * (mb[j * m + x] - 1.5);
            }
            products.push(acc);
        }
        let expected = ldpjs_common::stats::median(&products).unwrap();
        assert!((shifted - expected).abs() < 1e-6);
    }

    #[test]
    fn frequent_items_finds_heavy_hitters() {
        let p = params(18, 1024);
        let e = eps(4.0);
        let n = 120_000usize;
        // Two heavy values (30% and 20%) plus a uniform tail over 5000 values.
        let mut rng = StdRng::seed_from_u64(8);
        let values: Vec<u64> = (0..n)
            .map(|i| match i % 10 {
                0..=2 => 1,
                3..=4 => 2,
                _ => 10 + rng.gen_range(0u64..5000),
            })
            .collect();
        let sketch = build_sketch(&values, p, e, 13, 6);
        let domain: Vec<u64> = (0..5010).collect();
        let fi = sketch.frequent_items(&domain, 0.05, n as f64);
        assert!(
            fi.contains(&1),
            "FI should contain the 30% value, got {fi:?}"
        );
        assert!(
            fi.contains(&2),
            "FI should contain the 20% value, got {fi:?}"
        );
        assert!(
            fi.len() <= 10,
            "FI should not be flooded with tail values, got {} items",
            fi.len()
        );
    }

    #[test]
    fn frequencies_batch_matches_single_queries() {
        let p = params(8, 256);
        let e = eps(4.0);
        let values = skewed_stream(30_000, 500, 9);
        let sketch = build_sketch(&values, p, e, 21, 7);
        let candidates: Vec<u64> = (0..50).collect();
        let batch = sketch.frequencies(&candidates);
        for (i, &d) in candidates.iter().enumerate() {
            // Both entry points share one implementation, so equality is exact.
            assert_eq!(batch[i], sketch.frequency(d));
        }
    }

    #[test]
    fn row_view_matches_restored_counters() {
        let p = params(6, 128);
        let sketch = build_sketch(&skewed_stream(10_000, 300, 4), p, eps(4.0), 3, 5);
        let all = sketch.restored_counters();
        assert_eq!(all.len(), p.counters());
        for j in 0..p.rows() {
            assert_eq!(sketch.row(j), &all[j * p.columns()..(j + 1) * p.columns()]);
        }
    }

    #[test]
    fn centered_products_remove_uniform_mass_without_knowing_it() {
        // Shift both sketches' counters by arbitrary constants (uniform mass); the centered
        // product must be unchanged, unlike the raw product. This is the property that makes
        // the plus estimator immune to the phase-1 mass-estimate error.
        let p = params(8, 128);
        let e = eps(6.0);
        let a = skewed_stream(30_000, 400, 1);
        let b = skewed_stream(30_000, 400, 2);
        let sa = build_sketch(&a, p, e, 5, 3);
        let sb = build_sketch(&b, p, e, 5, 4);
        let base = sa.row_products_centered(&sb).unwrap();
        let mut sa_shifted = sa.clone();
        let mut sb_shifted = sb.clone();
        for v in sa_shifted.restored.iter_mut() {
            *v += 1234.5;
        }
        for v in sb_shifted.restored.iter_mut() {
            *v -= 777.25;
        }
        let shifted = sa_shifted.row_products_centered(&sb_shifted).unwrap();
        for (x, y) in base.iter().zip(&shifted) {
            assert!(
                (x - y).abs() < 1e-4 * x.abs().max(1.0),
                "centered product moved under a uniform shift: {x} vs {y}"
            );
        }
        // And it still estimates the join size (up to the usual sketch noise).
        let truth = exact_join_size(&a, &b) as f64;
        let est = median(&base).unwrap();
        assert!(
            (est - truth).abs() / truth < 0.3,
            "centered estimate {est} vs truth {truth}"
        );
    }

    #[test]
    fn masked_products_isolate_a_small_target_set() {
        // Tables whose mass is one heavy value plus uniform tail; targets = {heavy}.
        // The masked product must estimate the heavy-only join component.
        let p = params(12, 128);
        let e = eps(8.0);
        let n = 60_000usize;
        let mut rng = StdRng::seed_from_u64(17);
        let mk = |rng: &mut StdRng| -> Vec<u64> {
            (0..n)
                .map(|_| {
                    if rng.gen_range(0u64..10) < 4 {
                        7u64
                    } else {
                        10 + rng.gen_range(0u64..3_000)
                    }
                })
                .collect()
        };
        let a = mk(&mut rng);
        let b = mk(&mut rng);
        let count = |t: &[u64]| t.iter().filter(|&&v| v == 7).count() as f64;
        let heavy_join = count(&a) * count(&b);
        let sa = build_sketch(&a, p, e, 9, 21);
        let sb = build_sketch(&b, p, e, 9, 22);
        let masked = sa.row_products_masked(&sb, &[7]).unwrap();
        assert_eq!(masked.len(), 12);
        // A single target value can never self-collide.
        assert!(masked.iter().all(|&(_, clean)| clean));
        let products: Vec<f64> = masked.iter().map(|&(v, _)| v).collect();
        let est = median(&products).unwrap();
        assert!(
            (est - heavy_join).abs() / heavy_join < 0.2,
            "masked estimate {est} vs heavy-only join {heavy_join}"
        );
        // Empty target set → zero products, flagged clean.
        let empty = sa.row_products_masked(&sb, &[]).unwrap();
        assert!(empty.iter().all(|&(v, clean)| v == 0.0 && clean));
    }

    #[test]
    fn masked_products_flag_target_collisions() {
        // Force collisions by passing many targets on a narrow sketch: with 40 targets in
        // 64 buckets most rows must contain a shared bucket.
        let p = params(10, 64);
        let sketch = build_sketch(&skewed_stream(5_000, 500, 3), p, eps(4.0), 2, 9);
        let targets: Vec<u64> = (0..40).collect();
        let masked = sketch.row_products_masked(&sketch, &targets).unwrap();
        assert!(
            masked.iter().any(|&(_, clean)| !clean),
            "40 targets in 64 buckets should collide in at least one of 10 rows"
        );
    }

    #[test]
    fn frequency_median_is_robust_to_single_row_collisions() {
        // The mean estimator spreads a heavy collision over all rows; the median ignores
        // it. Both must agree on the heavy value itself.
        let p = params(18, 128);
        let e = eps(6.0);
        let n = 80_000usize;
        let mut rng = StdRng::seed_from_u64(4);
        let values: Vec<u64> = (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    3u64
                } else {
                    10 + rng.gen_range(0u64..2_000)
                }
            })
            .collect();
        let sketch = build_sketch(&values, p, e, 31, 8);
        let heavy_truth = (n / 2) as f64;
        let med = sketch.frequency_median(3);
        assert!(
            (med - heavy_truth).abs() / heavy_truth < 0.15,
            "median estimate {med} vs {heavy_truth}"
        );
        // Across a tail scan, the worst-case median overestimate stays below the worst-case
        // mean overestimate (collision robustness).
        let worst_mean = (100..600u64)
            .map(|d| sketch.frequency(d))
            .fold(f64::MIN, f64::max);
        let worst_med = (100..600u64)
            .map(|d| sketch.frequency_median(d))
            .fold(f64::MIN, f64::max);
        assert!(
            worst_med <= worst_mean,
            "median worst-case {worst_med} should not exceed mean worst-case {worst_mean}"
        );
    }

    #[test]
    fn f2_estimate_tracks_truth() {
        let p = params(18, 256);
        let e = eps(4.0);
        // Skewed stream: F2 from the exact frequency table. (A flat table's F2 sits far
        // below the subtracted noise energy and is legitimately estimated as ≈0; only a
        // skew whose F2 rises above the noise energy is identifiable.)
        let values = skewed_stream(150_000, 5_000, 7);
        let table = frequency_table(&values);
        let f2: u64 = table.values().map(|&c| c * c).sum();
        let sketch = build_sketch(&values, p, e, 12, 14);
        let est = sketch.f2_estimate();
        let re_f2 = (est - f2 as f64).abs() / f2 as f64;
        assert!(re_f2 < 0.25, "F2 estimate {est} vs truth {f2}");
    }

    #[test]
    fn merged_shards_equal_single_aggregator() {
        // Sharded aggregation: two shards each absorb half the reports; merging them must be
        // bit-for-bit identical to one aggregator absorbing everything. (The exhaustive
        // shard-count × report-count sweep lives in `crate::aggregator`.)
        let p = params(8, 128);
        let e = eps(3.0);
        let client = LdpJoinSketchClient::new(p, e, 77);
        let mut rng = StdRng::seed_from_u64(5);
        let values = skewed_stream(5_000, 200, 8);
        let reports = client.perturb_all(&values, &mut rng);
        let (first, second) = reports.split_at(reports.len() / 2);

        let mut shard_a = SketchBuilder::new(p, e, 77);
        shard_a.absorb_all(first).unwrap();
        let mut shard_b = SketchBuilder::new(p, e, 77);
        shard_b.absorb_all(second).unwrap();
        shard_a.merge(&shard_b).unwrap();

        let mut single = SketchBuilder::new(p, e, 77);
        single.absorb_all(&reports).unwrap();

        assert_eq!(shard_a.reports(), single.reports());
        assert_eq!(
            shard_a.finalize().restored_counters(),
            single.finalize().restored_counters()
        );
    }

    #[test]
    fn finalize_view_is_bit_identical_to_consuming_finalize() {
        // The non-consuming snapshot restore must agree bit-for-bit with `finalize`, and the
        // builder must stay usable (absorbing more reports) afterwards.
        let p = params(8, 128);
        let e = eps(3.0);
        let client = LdpJoinSketchClient::new(p, e, 21);
        let mut rng = StdRng::seed_from_u64(6);
        let reports = client.perturb_all(&skewed_stream(3_000, 150, 12), &mut rng);
        let (first, second) = reports.split_at(1_700);

        let mut builder = SketchBuilder::new(p, e, 21);
        builder.absorb_all(first).unwrap();
        let view = builder.finalize_view();
        assert_eq!(view.reports(), 1_700);
        assert_eq!(
            view.restored_counters(),
            builder.clone().finalize().restored_counters()
        );

        // The builder keeps accumulating; a later view covers the full stream.
        builder.absorb_all(second).unwrap();
        let mut single = SketchBuilder::new(p, e, 21);
        single.absorb_all(&reports).unwrap();
        assert_eq!(
            builder.finalize_view().restored_counters(),
            single.finalize().restored_counters()
        );
    }

    #[test]
    fn merge_rejects_incompatible_shards() {
        let p = params(4, 64);
        let mut a = SketchBuilder::new(p, eps(2.0), 1);
        let b = SketchBuilder::new(p, eps(2.0), 2);
        assert!(a.merge(&b).is_err(), "different hash seeds must not merge");
        let c = SketchBuilder::new(params(4, 128), eps(2.0), 1);
        assert!(a.merge(&c).is_err(), "different shapes must not merge");
        let d = SketchBuilder::new(p, eps(4.0), 1);
        assert!(
            a.merge(&d).is_err(),
            "different privacy budgets must not merge"
        );
        let ok = SketchBuilder::new(p, eps(2.0), 1);
        assert!(a.merge(&ok).is_ok());
    }

    #[test]
    fn from_reports_equals_incremental_absorption() {
        let p = params(6, 64);
        let e = eps(2.0);
        let client = LdpJoinSketchClient::new(p, e, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let reports = client.perturb_all(&[1, 2, 3, 4, 5, 6, 7, 8], &mut rng);
        let batch = SketchBuilder::from_reports(p, e, 3, &reports).unwrap();
        let mut incremental = SketchBuilder::new(p, e, 3);
        for &r in &reports {
            incremental.absorb(r).unwrap();
        }
        let incremental = incremental.finalize();
        assert_eq!(batch.restored_counters(), incremental.restored_counters());
        assert_eq!(batch.reports(), incremental.reports());
    }
}
