//! Discretised Gaussian value generator.
//!
//! The paper's Gaussian dataset draws join values from `N(µ, σ²)` and treats them as discrete
//! attribute values over a domain of 75,949 items (Table II). We sample with the Box–Muller
//! transform, round to the nearest integer, and clamp to the domain — values in the tails
//! therefore pile up slightly at the domain edges, mirroring what happens when continuous
//! measurements are bucketed into a bounded attribute domain.

use crate::ValueGenerator;
use rand::{Rng, RngCore};

/// A Gaussian generator over `{0, …, domain−1}` with configurable mean and standard deviation.
#[derive(Debug, Clone, Copy)]
pub struct GaussianGenerator {
    domain: u64,
    mean: f64,
    std_dev: f64,
}

impl GaussianGenerator {
    /// Create a Gaussian generator with explicit mean and standard deviation.
    ///
    /// # Panics
    /// Panics if `domain == 0` or `std_dev` is not strictly positive and finite.
    pub fn new(domain: u64, mean: f64, std_dev: f64) -> Self {
        assert!(domain > 0, "Gaussian domain must be non-empty");
        assert!(
            std_dev.is_finite() && std_dev > 0.0,
            "standard deviation must be positive"
        );
        GaussianGenerator {
            domain,
            mean,
            std_dev,
        }
    }

    /// The paper-style default: mean at the centre of the domain, σ = domain/8, so nearly all
    /// mass stays inside the domain while the centre values dominate.
    pub fn centered(domain: u64) -> Self {
        Self::new(domain, domain as f64 / 2.0, (domain as f64 / 8.0).max(1.0))
    }

    /// The configured mean.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The configured standard deviation.
    #[inline]
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl ValueGenerator for GaussianGenerator {
    fn domain_size(&self) -> u64 {
        self.domain
    }

    fn sample(&self, rng: &mut dyn RngCore) -> u64 {
        // Box–Muller transform; one sample per call keeps the generator stateless.
        let u1: f64 = rng.gen::<f64>().max(1e-300);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let value = self.mean + self.std_dev * z;
        value.round().clamp(0.0, (self.domain - 1) as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn centered_defaults_match_domain() {
        let g = GaussianGenerator::centered(80_000);
        assert_eq!(g.domain_size(), 80_000);
        assert_eq!(g.mean(), 40_000.0);
        assert_eq!(g.std_dev(), 10_000.0);
    }

    #[test]
    fn sample_mean_and_spread_are_plausible() {
        let g = GaussianGenerator::centered(10_000);
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let samples = g.sample_many(n, &mut rng);
        let mean: f64 = samples.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
        assert!((mean - 5_000.0).abs() < 100.0, "sample mean {mean}");
        let var: f64 = samples
            .iter()
            .map(|&v| (v as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        let std = var.sqrt();
        assert!((std - 1_250.0).abs() < 100.0, "sample std {std}");
    }

    #[test]
    fn centre_values_are_most_frequent() {
        let g = GaussianGenerator::centered(1_000);
        let mut rng = StdRng::seed_from_u64(5);
        let samples = g.sample_many(100_000, &mut rng);
        let mut counts = vec![0u64; 1_000];
        for &s in &samples {
            counts[s as usize] += 1;
        }
        let centre: u64 = counts[450..550].iter().sum();
        let edge: u64 = counts[0..100].iter().sum::<u64>() + counts[900..1000].iter().sum::<u64>();
        assert!(centre > 10 * edge.max(1), "centre {centre} vs edges {edge}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_domain() {
        let _ = GaussianGenerator::new(0, 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_std_dev() {
        let _ = GaussianGenerator::new(10, 5.0, 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_samples_in_domain(domain in 1u64..100_000, seed in any::<u64>()) {
            let g = GaussianGenerator::centered(domain);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..50 {
                prop_assert!(g.sample(&mut rng) < domain);
            }
        }
    }
}
