//! # ldpjs-data
//!
//! Workload generators and dataset descriptors for the paper's evaluation (Section VII-A,
//! Table II):
//!
//! * [`zipf`] — Zipf(α) streams over a configurable domain (the paper's primary synthetic
//!   workload, α ∈ {1.1, …, 2.0}).
//! * [`gaussian`] — discretised Gaussian streams.
//! * [`realworld`] — synthetic stand-ins for the four real-world datasets (MovieLens, TPC-DS,
//!   Twitter, Facebook). The originals cannot be shipped with this repository, so each
//!   stand-in matches the published domain size and an appropriate skew profile; DESIGN.md
//!   documents the substitution rationale.
//! * [`workload`] — the [`workload::PaperDataset`] enum tying everything together: one entry
//!   per Table II row plus parameterised Zipf entries, with a global scale factor so
//!   laptop-scale runs keep the paper's *relative* behaviour.
//! * [`table`] — the [`table::JoinWorkload`] container (two private tables plus ground truth)
//!   and multi-way chain workloads for Fig. 15.
//! * [`streaming`] — the large-n regime layer: [`streaming::StreamingTable`] and
//!   [`streaming::StreamingJoinWorkload`] replay Zipf/uniform tables in fixed-size chunks
//!   (bit-identical to the materialized table for the same seed) so ≥10M-user workloads fit
//!   in laptop RAM.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod gaussian;
pub mod realworld;
pub mod streaming;
pub mod table;
pub mod workload;
pub mod zipf;

pub use gaussian::GaussianGenerator;
pub use streaming::{StreamingJoinWorkload, StreamingTable, StreamingTupleTable};
pub use table::{ChainWorkload, JoinWorkload};
pub use workload::{DatasetInfo, PaperDataset};
pub use zipf::ZipfGenerator;

use rand::RngCore;

/// A generator of private join-attribute values.
///
/// Generators are deterministic given the RNG, so experiments are reproducible from seeds.
pub trait ValueGenerator {
    /// Size of the value domain `|D|`; samples are in `[0, domain_size)`.
    fn domain_size(&self) -> u64;

    /// Draw one value.
    fn sample(&self, rng: &mut dyn RngCore) -> u64;

    /// Draw `n` values.
    fn sample_many(&self, n: usize, rng: &mut dyn RngCore) -> Vec<u64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}
