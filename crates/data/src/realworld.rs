//! Synthetic stand-ins for the paper's real-world datasets.
//!
//! The paper evaluates on four real datasets (Table II): MovieLens, TPC-DS store_sales,
//! the Twitter ego-network, and the Facebook ego-network. Those files cannot be redistributed
//! with this repository, so each is replaced by a synthetic generator that matches
//!
//! * the **domain size** published in Table II (the property the sketches and LDP mechanisms
//!   actually interact with — it determines hash-collision rates and the k-RR/FLH noise
//!   floor), and
//! * an appropriate **skew profile** (movie popularity, item sales, and ego-network degrees
//!   are all heavy-tailed; we use Zipf-like profiles with documented exponents).
//!
//! The estimators never look at anything but the frequency vector of the join attribute, so a
//! generator matched on domain and skew exercises the same code paths and error trade-offs as
//! the original data. DESIGN.md carries the substitution table.

use crate::zipf::ZipfGenerator;
use crate::ValueGenerator;
use rand::RngCore;

/// Which real-world dataset a stand-in mimics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RealWorldKind {
    /// MovieLens ratings; join attribute = movie id. Domain 83,239; strongly heavy-tailed.
    MovieLens,
    /// TPC-DS store_sales; join attribute = item key. Domain 18,000; moderately skewed.
    TpcDs,
    /// Twitter ego-network edges; join attribute = node id. Domain 77,072; power-law degrees.
    Twitter,
    /// Facebook ego-network edges; join attribute = node id. Domain 4,039; power-law degrees.
    Facebook,
}

impl RealWorldKind {
    /// The domain size published in Table II.
    pub fn paper_domain(self) -> u64 {
        match self {
            RealWorldKind::MovieLens => 83_239,
            RealWorldKind::TpcDs => 18_000,
            RealWorldKind::Twitter => 77_072,
            RealWorldKind::Facebook => 4_039,
        }
    }

    /// The number of rows published in Table II.
    pub fn paper_rows(self) -> u64 {
        match self {
            RealWorldKind::MovieLens => 67_664_324,
            RealWorldKind::TpcDs => 5_760_808,
            RealWorldKind::Twitter => 4_841_532,
            RealWorldKind::Facebook => 352_936,
        }
    }

    /// The Zipf-like exponent used by the stand-in generator.
    pub fn skew(self) -> f64 {
        match self {
            // Movie popularity is strongly heavy-tailed.
            RealWorldKind::MovieLens => 1.2,
            // Item sales in TPC-DS are only moderately skewed.
            RealWorldKind::TpcDs => 0.8,
            // Ego-network degree distributions follow a power law.
            RealWorldKind::Twitter => 1.5,
            RealWorldKind::Facebook => 1.5,
        }
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            RealWorldKind::MovieLens => "MovieLens",
            RealWorldKind::TpcDs => "TPC-DS",
            RealWorldKind::Twitter => "Twitter",
            RealWorldKind::Facebook => "Facebook",
        }
    }

    /// All four stand-ins, in the order of Table II.
    pub fn all() -> [RealWorldKind; 4] {
        [
            RealWorldKind::MovieLens,
            RealWorldKind::TpcDs,
            RealWorldKind::Twitter,
            RealWorldKind::Facebook,
        ]
    }
}

/// A synthetic stand-in generator for one of the real-world datasets.
#[derive(Debug, Clone)]
pub struct RealWorldGenerator {
    kind: RealWorldKind,
    zipf: ZipfGenerator,
}

impl RealWorldGenerator {
    /// Create the stand-in for `kind` with the published domain size.
    pub fn new(kind: RealWorldKind) -> Self {
        RealWorldGenerator {
            kind,
            zipf: ZipfGenerator::new(kind.skew(), kind.paper_domain()),
        }
    }

    /// Which dataset this generator mimics.
    #[inline]
    pub fn kind(&self) -> RealWorldKind {
        self.kind
    }
}

impl ValueGenerator for RealWorldGenerator {
    fn domain_size(&self) -> u64 {
        self.zipf.domain_size()
    }

    fn sample(&self, rng: &mut dyn RngCore) -> u64 {
        self.zipf.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_metadata_matches_table_2() {
        assert_eq!(RealWorldKind::MovieLens.paper_domain(), 83_239);
        assert_eq!(RealWorldKind::TpcDs.paper_domain(), 18_000);
        assert_eq!(RealWorldKind::Twitter.paper_domain(), 77_072);
        assert_eq!(RealWorldKind::Facebook.paper_domain(), 4_039);
        assert_eq!(RealWorldKind::Facebook.paper_rows(), 352_936);
        assert_eq!(RealWorldKind::all().len(), 4);
        assert_eq!(RealWorldKind::Twitter.name(), "Twitter");
    }

    #[test]
    fn generators_use_published_domains() {
        for kind in RealWorldKind::all() {
            let g = RealWorldGenerator::new(kind);
            assert_eq!(g.domain_size(), kind.paper_domain());
            assert_eq!(g.kind(), kind);
        }
    }

    #[test]
    fn samples_are_heavy_tailed_and_in_domain() {
        let g = RealWorldGenerator::new(RealWorldKind::Twitter);
        let mut rng = StdRng::seed_from_u64(2);
        let samples = g.sample_many(50_000, &mut rng);
        assert!(samples.iter().all(|&v| v < 77_072));
        // A heavy-tailed profile concentrates a visible share of mass on the top value.
        let top = samples.iter().filter(|&&v| v == 0).count();
        assert!(
            top as f64 > 0.05 * samples.len() as f64,
            "top value share too small: {top}"
        );
    }

    #[test]
    fn tpcds_is_less_skewed_than_twitter() {
        let mut rng = StdRng::seed_from_u64(3);
        let tpcds = RealWorldGenerator::new(RealWorldKind::TpcDs).sample_many(50_000, &mut rng);
        let twitter = RealWorldGenerator::new(RealWorldKind::Twitter).sample_many(50_000, &mut rng);
        let share =
            |data: &[u64]| data.iter().filter(|&&v| v == 0).count() as f64 / data.len() as f64;
        assert!(share(&twitter) > share(&tpcds));
    }
}
