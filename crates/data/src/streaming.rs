//! Streaming workloads: the ≥10M-user regime on laptop RAM.
//!
//! [`StreamingTable`] wraps any [`ValueGenerator`] and replays its value stream in
//! fixed-size chunks, regenerating from the pinned seed on every pass instead of holding an
//! n-element `Vec`. Because the draws come from one sequential seeded RNG, the chunked
//! output is **bit-identical** to the materialized table `generator.sample_many(n, rng)`
//! with the same seed — a property-tested guarantee that lets every laptop-scale result
//! transfer to the streaming path unchanged.
//!
//! [`StreamingJoinWorkload`] is the large-n counterpart of
//! [`JoinWorkload`](crate::table::JoinWorkload): two streamed tables over a shared domain,
//! with the exact join size computed from per-domain-value histograms (`O(|D|)` memory, one
//! pass per table) rather than from materialized columns. Peak resident value memory of any
//! protocol pass is the chunk size, not `n`.

use crate::ValueGenerator;
use ldpjs_common::error::{Error, Result};
use ldpjs_common::stream::{ChunkedTuples, ChunkedValues, TupleChunkSink};
use ldpjs_common::Value;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Default chunk length of the streaming layer: large enough to amortize per-chunk RNG and
/// dispatch overhead, small enough that peak value memory stays in the tens of kilobytes.
pub const DEFAULT_CHUNK: usize = 8_192;

/// A private table streamed in bounded chunks from a seeded generator.
///
/// Every pass replays the identical value sequence (same generator, same seed), which is
/// what the two-phase LDPJoinSketch+ protocol needs: phase 1 and phase 2 each take one pass
/// over the users without the server ever storing the table.
pub struct StreamingTable<G: ValueGenerator> {
    generator: G,
    rows: usize,
    chunk: usize,
    seed: u64,
}

impl<G: ValueGenerator> StreamingTable<G> {
    /// Stream `rows` draws from `generator`, replayable from `seed`, in `chunk`-sized
    /// chunks.
    ///
    /// # Errors
    /// Returns [`Error::InvalidWorkload`] if `rows` or `chunk` is zero.
    pub fn new(generator: G, rows: usize, chunk: usize, seed: u64) -> Result<Self> {
        if rows == 0 {
            return Err(Error::InvalidWorkload(
                "a streaming table needs at least one row".into(),
            ));
        }
        if chunk == 0 {
            return Err(Error::InvalidWorkload(
                "streaming chunk length must be positive".into(),
            ));
        }
        Ok(StreamingTable {
            generator,
            rows,
            chunk,
            seed,
        })
    }

    /// The underlying generator.
    #[inline]
    pub fn generator(&self) -> &G {
        &self.generator
    }

    /// Size of the value domain `|D|`.
    #[inline]
    pub fn domain_size(&self) -> u64 {
        self.generator.domain_size()
    }

    /// The replay seed.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Exact per-value counts of the streamed table, in `O(|D|)` memory (one pass).
    ///
    /// This is how ground truth is computed at streaming scale: join size, `F1` and `F2`
    /// all derive from the histogram, never from a materialized column.
    pub fn histogram(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.domain_size() as usize];
        self.for_each_chunk(&mut |_, chunk| {
            for &v in chunk {
                counts[v as usize] += 1;
            }
        });
        counts
    }
}

impl<G: ValueGenerator> ChunkedValues for StreamingTable<G> {
    fn total_values(&self) -> usize {
        self.rows
    }

    fn chunk_len(&self) -> usize {
        self.chunk
    }

    fn for_each_chunk(&self, sink: &mut dyn FnMut(u64, &[Value])) {
        // One sequential RNG for the whole pass: draw-for-draw identical to
        // `generator.sample_many(rows, StdRng::seed_from_u64(seed))`.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut buf = Vec::with_capacity(self.chunk.min(self.rows));
        let mut start = 0u64;
        let mut remaining = self.rows;
        while remaining > 0 {
            let take = remaining.min(self.chunk);
            buf.clear();
            for _ in 0..take {
                buf.push(self.generator.sample(&mut rng));
            }
            sink(start, &buf);
            start += take as u64;
            remaining -= take;
        }
    }
}

/// A private two-attribute table `T(A, B)` streamed in bounded chunks of tuples — the
/// traffic source for the chunked edge-sketch build of the multi-way chain estimator.
///
/// Each tuple zips one draw from the `A` generator with one draw from the `B` generator,
/// both from a single sequential seeded RNG (A first, then B), so every pass replays the
/// identical tuple sequence and peak resident memory is one chunk of tuples.
pub struct StreamingTupleTable<G: ValueGenerator> {
    gen_a: G,
    gen_b: G,
    rows: usize,
    chunk: usize,
    seed: u64,
}

impl<G: ValueGenerator> StreamingTupleTable<G> {
    /// Stream `rows` tuples `(a, b)` drawn from `(gen_a, gen_b)`, replayable from `seed`,
    /// in `chunk`-sized chunks.
    ///
    /// # Errors
    /// Returns [`Error::InvalidWorkload`] if `rows` or `chunk` is zero.
    pub fn new(gen_a: G, gen_b: G, rows: usize, chunk: usize, seed: u64) -> Result<Self> {
        if rows == 0 {
            return Err(Error::InvalidWorkload(
                "a streaming tuple table needs at least one row".into(),
            ));
        }
        if chunk == 0 {
            return Err(Error::InvalidWorkload(
                "streaming chunk length must be positive".into(),
            ));
        }
        Ok(StreamingTupleTable {
            gen_a,
            gen_b,
            rows,
            chunk,
            seed,
        })
    }

    /// Size of the first attribute's value domain.
    #[inline]
    pub fn domain_a(&self) -> u64 {
        self.gen_a.domain_size()
    }

    /// Size of the second attribute's value domain.
    #[inline]
    pub fn domain_b(&self) -> u64 {
        self.gen_b.domain_size()
    }

    /// Exact per-pair ground truth is rarely needed; what the chain estimators check
    /// against are the per-attribute histograms, each in `O(|D|)` memory (one pass).
    pub fn histograms(&self) -> (Vec<u64>, Vec<u64>) {
        let mut ha = vec![0u64; self.domain_a() as usize];
        let mut hb = vec![0u64; self.domain_b() as usize];
        self.for_each_chunk(&mut |_, chunk| {
            for &(a, b) in chunk {
                ha[a as usize] += 1;
                hb[b as usize] += 1;
            }
        });
        (ha, hb)
    }
}

impl<G: ValueGenerator> ChunkedTuples for StreamingTupleTable<G> {
    fn total_tuples(&self) -> usize {
        self.rows
    }

    fn chunk_len(&self) -> usize {
        self.chunk
    }

    fn for_each_chunk(&self, sink: &mut TupleChunkSink<'_>) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut buf = Vec::with_capacity(self.chunk.min(self.rows));
        let mut start = 0u64;
        let mut remaining = self.rows;
        while remaining > 0 {
            let take = remaining.min(self.chunk);
            buf.clear();
            for _ in 0..take {
                let a = self.gen_a.sample(&mut rng);
                let b = self.gen_b.sample(&mut rng);
                buf.push((a, b));
            }
            sink(start, &buf);
            start += take as u64;
            remaining -= take;
        }
    }
}

/// A two-table join workload at streaming scale: the large-n counterpart of
/// [`JoinWorkload`](crate::table::JoinWorkload).
///
/// Ground truth (exact join size, `F1`, `F2`) is computed from per-table histograms in
/// `O(|D|)` memory; the tables themselves exist only as replayable chunk streams.
pub struct StreamingJoinWorkload<G: ValueGenerator> {
    /// Workload name, used by reporting.
    pub name: String,
    /// Table of join attribute `T1.A`, streamed.
    pub table_a: StreamingTable<G>,
    /// Table of join attribute `T2.B`, streamed.
    pub table_b: StreamingTable<G>,
    hist_a: Vec<u64>,
    hist_b: Vec<u64>,
    true_join_size: u128,
}

impl<G: ValueGenerator + Clone> StreamingJoinWorkload<G> {
    /// Build a workload with both tables streamed from `generator`, `rows` users each,
    /// replayable from `seed` (the two tables use derived, distinct sub-seeds).
    ///
    /// # Errors
    /// Returns [`Error::InvalidWorkload`] if `rows` or `chunk` is zero.
    pub fn generate(
        name: impl Into<String>,
        generator: &G,
        rows: usize,
        chunk: usize,
        seed: u64,
    ) -> Result<Self> {
        let table_a = StreamingTable::new(generator.clone(), rows, chunk, seed ^ 0xA11CE)?;
        let table_b = StreamingTable::new(generator.clone(), rows, chunk, seed ^ 0xB0B5_1ED5)?;
        let hist_a = table_a.histogram();
        let hist_b = table_b.histogram();
        let true_join_size = hist_a
            .iter()
            .zip(&hist_b)
            .map(|(&a, &b)| a as u128 * b as u128)
            .sum();
        Ok(StreamingJoinWorkload {
            name: name.into(),
            table_a,
            table_b,
            hist_a,
            hist_b,
            true_join_size,
        })
    }

    /// Exact join size `|T1 ⋈ T2|` (can exceed `u64` at 10M+ rows, hence `u128`).
    #[inline]
    pub fn true_join_size(&self) -> u128 {
        self.true_join_size
    }

    /// Public size of the join-attribute domain.
    #[inline]
    pub fn domain_size(&self) -> u64 {
        self.table_a.domain_size()
    }

    /// The candidate domain `{0, …, |D|−1}` scanned by LDPJoinSketch+'s phase 1.
    pub fn domain(&self) -> Vec<u64> {
        (0..self.domain_size()).collect()
    }

    /// Exact count of `value` in table A (from the histogram).
    #[inline]
    pub fn count_a(&self, value: u64) -> u64 {
        self.hist_a.get(value as usize).copied().unwrap_or(0)
    }

    /// Exact count of `value` in table B.
    #[inline]
    pub fn count_b(&self, value: u64) -> u64 {
        self.hist_b.get(value as usize).copied().unwrap_or(0)
    }

    /// `F2` of table A (self-join size), from the histogram.
    pub fn f2_a(&self) -> u128 {
        self.hist_a.iter().map(|&c| c as u128 * c as u128).sum()
    }

    /// `F2` of table B.
    pub fn f2_b(&self) -> u128 {
        self.hist_b.iter().map(|&c| c as u128 * c as u128).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zipf::ZipfGenerator;
    use ldpjs_common::stats::exact_join_size;
    use ldpjs_common::stream::collect_chunks;
    use proptest::prelude::*;

    #[test]
    fn chunked_output_is_bit_identical_to_materialized_table() {
        let g = ZipfGenerator::new(1.5, 500);
        let table = StreamingTable::new(g.clone(), 10_037, 1_024, 99).unwrap();
        let streamed = collect_chunks(&table);
        let mut rng = StdRng::seed_from_u64(99);
        let materialized = g.sample_many(10_037, &mut rng);
        assert_eq!(streamed, materialized);
        // Replay determinism: a second pass is identical.
        assert_eq!(collect_chunks(&table), materialized);
    }

    #[test]
    fn chunks_never_exceed_the_configured_length() {
        let g = ZipfGenerator::new(1.2, 100);
        let table = StreamingTable::new(g, 5_000, 256, 1).unwrap();
        let mut max_len = 0usize;
        let mut total = 0usize;
        table.for_each_chunk(&mut |_, chunk| {
            max_len = max_len.max(chunk.len());
            total += chunk.len();
        });
        assert_eq!(total, 5_000);
        assert!(max_len <= 256);
    }

    #[test]
    fn workload_truth_matches_materialized_exact_join() {
        let g = ZipfGenerator::new(1.6, 300);
        let w = StreamingJoinWorkload::generate("s", &g, 20_000, 4_096, 7).unwrap();
        let a = collect_chunks(&w.table_a);
        let b = collect_chunks(&w.table_b);
        assert_eq!(w.true_join_size(), exact_join_size(&a, &b) as u128);
        assert_ne!(a, b, "tables must use distinct derived seeds");
        let f1_a: u128 = a.len() as u128;
        assert_eq!(
            w.table_a
                .histogram()
                .iter()
                .map(|&c| c as u128)
                .sum::<u128>(),
            f1_a
        );
        // Histogram-derived per-value counts match the materialized columns.
        let heavy = a.iter().filter(|&&v| v == 0).count() as u64;
        assert_eq!(w.count_a(0), heavy);
    }

    #[test]
    fn rejects_empty_parameters() {
        let g = ZipfGenerator::new(1.0, 10);
        assert!(StreamingTable::new(g.clone(), 0, 16, 1).is_err());
        assert!(StreamingTable::new(g, 16, 0, 1).is_err());
        let g = ZipfGenerator::new(1.0, 10);
        assert!(StreamingTupleTable::new(g.clone(), g.clone(), 0, 16, 1).is_err());
        assert!(StreamingTupleTable::new(g.clone(), g, 16, 0, 1).is_err());
    }

    #[test]
    fn tuple_table_replays_bit_identically_and_respects_the_chunk_bound() {
        use ldpjs_common::stream::collect_tuple_chunks;
        let ga = ZipfGenerator::new(1.4, 300);
        let gb = ZipfGenerator::new(1.2, 200);
        let table = StreamingTupleTable::new(ga.clone(), gb.clone(), 7_013, 512, 23).unwrap();
        let first = collect_tuple_chunks(&table);
        assert_eq!(first.len(), 7_013);
        assert_eq!(first, collect_tuple_chunks(&table));
        // Interleaved draws from one sequential RNG: A first, then B, per tuple.
        let mut rng = StdRng::seed_from_u64(23);
        let expected: Vec<(u64, u64)> = (0..7_013)
            .map(|_| {
                let a = ga.sample(&mut rng);
                let b = gb.sample(&mut rng);
                (a, b)
            })
            .collect();
        assert_eq!(first, expected);
        let mut max_len = 0usize;
        table.for_each_chunk(&mut |_, chunk| max_len = max_len.max(chunk.len()));
        assert!(max_len <= 512);
        // Histograms count every tuple once per side.
        let (ha, hb) = table.histograms();
        assert_eq!(ha.iter().sum::<u64>(), 7_013);
        assert_eq!(hb.iter().sum::<u64>(), 7_013);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The tentpole guarantee: for any (rows, chunk, seed), streaming a table in chunks
        /// yields exactly the sequence the materialized generator produces from the same
        /// seed — chunking is invisible to consumers.
        #[test]
        fn prop_streaming_is_bit_identical_to_materialized(
            rows in 1usize..3_000,
            chunk in 1usize..700,
            seed in any::<u64>(),
        ) {
            let g = ZipfGenerator::new(1.3, 200);
            let table = StreamingTable::new(g.clone(), rows, chunk, seed).unwrap();
            let streamed = collect_chunks(&table);
            let mut rng = StdRng::seed_from_u64(seed);
            prop_assert_eq!(streamed, g.sample_many(rows, &mut rng));
        }
    }
}
