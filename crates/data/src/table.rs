//! Join workloads: pairs (and chains) of private tables plus their ground truth.
//!
//! The paper's query template is `SELECT COUNT(*) FROM T1 JOIN T2 ON T1.A = T2.B` with both
//! join attributes private. A [`JoinWorkload`] holds the two value columns, the public domain
//! size, and the exact join size (computed once, since every error metric needs it).
//! [`ChainWorkload`] is the multi-way analogue used by Fig. 15.

use crate::ValueGenerator;
use ldpjs_common::stats::{exact_chain_join_3, exact_chain_join_4, exact_join_size, f1, f2};
use rand::RngCore;

/// A two-table join workload over a shared attribute domain.
#[derive(Debug, Clone)]
pub struct JoinWorkload {
    /// Human-readable name (dataset + parameters), used by the reporting harness.
    pub name: String,
    /// Public size of the join-attribute domain.
    pub domain_size: u64,
    /// Private values of attribute `T1.A` (one entry per user/row).
    pub table_a: Vec<u64>,
    /// Private values of attribute `T2.B`.
    pub table_b: Vec<u64>,
    /// Exact join size `|T1 ⋈ T2|`.
    pub true_join_size: u64,
}

impl JoinWorkload {
    /// Generate a workload by drawing both tables independently from `generator`.
    pub fn generate<G: ValueGenerator + ?Sized>(
        name: impl Into<String>,
        generator: &G,
        rows_per_table: usize,
        rng: &mut dyn RngCore,
    ) -> Self {
        let table_a = generator.sample_many(rows_per_table, rng);
        let table_b = generator.sample_many(rows_per_table, rng);
        Self::from_tables(name, generator.domain_size(), table_a, table_b)
    }

    /// Build a workload from explicit tables (used by tests and by callers with their own
    /// data pipeline).
    pub fn from_tables(
        name: impl Into<String>,
        domain_size: u64,
        table_a: Vec<u64>,
        table_b: Vec<u64>,
    ) -> Self {
        let true_join_size = exact_join_size(&table_a, &table_b);
        JoinWorkload {
            name: name.into(),
            domain_size,
            table_a,
            table_b,
            true_join_size,
        }
    }

    /// The candidate domain `{0, …, |D|−1}` as a vector (phase 1 of LDPJoinSketch+ and the
    /// frequency-oracle baselines scan it).
    pub fn domain(&self) -> Vec<u64> {
        (0..self.domain_size).collect()
    }

    /// `F1` of table A (its row count).
    pub fn f1_a(&self) -> u64 {
        f1(&self.table_a)
    }

    /// `F1` of table B.
    pub fn f1_b(&self) -> u64 {
        f1(&self.table_b)
    }

    /// `F2` of table A (its self-join size).
    pub fn f2_a(&self) -> u64 {
        f2(&self.table_a)
    }

    /// `F2` of table B.
    pub fn f2_b(&self) -> u64 {
        f2(&self.table_b)
    }
}

/// A chain-join workload for the multi-way experiments (Fig. 15).
///
/// The 3-way query is `T1(A) ⋈ T2(A,B) ⋈ T3(B)`; the 4-way query appends `⋈ T4(C)` through a
/// second two-attribute table `T3(B,C)` (so `tables` holds T1, T2, T3 as pairs and T4).
#[derive(Debug, Clone)]
pub struct ChainWorkload {
    /// Workload name.
    pub name: String,
    /// Domain size shared by every join attribute.
    pub domain_size: u64,
    /// Single-attribute table `T1(A)`.
    pub t1: Vec<u64>,
    /// Two-attribute table `T2(A, B)`.
    pub t2: Vec<(u64, u64)>,
    /// Two-attribute table `T3(B, C)` (only the `B` column is used for the 3-way query).
    pub t3: Vec<(u64, u64)>,
    /// Single-attribute table `T4(C)`.
    pub t4: Vec<u64>,
    /// Exact 3-way chain join size `|T1 ⋈ T2 ⋈ π_B(T3)|`.
    pub true_join_3: u64,
    /// Exact 4-way chain join size `|T1 ⋈ T2 ⋈ T3 ⋈ T4|`.
    pub true_join_4: u64,
}

impl ChainWorkload {
    /// Generate a chain workload with all attributes drawn independently from `generator`.
    pub fn generate<G: ValueGenerator + ?Sized>(
        name: impl Into<String>,
        generator: &G,
        rows_per_table: usize,
        rng: &mut dyn RngCore,
    ) -> Self {
        let t1 = generator.sample_many(rows_per_table, rng);
        let t2: Vec<(u64, u64)> = generator
            .sample_many(rows_per_table, rng)
            .into_iter()
            .zip(generator.sample_many(rows_per_table, rng))
            .collect();
        let t3: Vec<(u64, u64)> = generator
            .sample_many(rows_per_table, rng)
            .into_iter()
            .zip(generator.sample_many(rows_per_table, rng))
            .collect();
        let t4 = generator.sample_many(rows_per_table, rng);
        let t3_b: Vec<u64> = t3.iter().map(|&(b, _)| b).collect();
        let true_join_3 = exact_chain_join_3(&t1, &t2, &t3_b);
        let true_join_4 = exact_chain_join_4(&t1, &t2, &t3, &t4);
        ChainWorkload {
            name: name.into(),
            domain_size: generator.domain_size(),
            t1,
            t2,
            t3,
            t4,
            true_join_3,
            true_join_4,
        }
    }

    /// The `B` column of `T3`, i.e. the third table of the 3-way query.
    pub fn t3_b_column(&self) -> Vec<u64> {
        self.t3.iter().map(|&(b, _)| b).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zipf::ZipfGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_tables_computes_ground_truth() {
        let w = JoinWorkload::from_tables("toy", 10, vec![1, 1, 2], vec![1, 2, 2]);
        assert_eq!(w.true_join_size, 2 + 2);
        assert_eq!(w.f1_a(), 3);
        assert_eq!(w.f1_b(), 3);
        assert_eq!(w.f2_a(), 4 + 1);
        assert_eq!(w.f2_b(), 1 + 4);
        assert_eq!(w.domain(), (0..10).collect::<Vec<u64>>());
        assert_eq!(w.name, "toy");
    }

    #[test]
    fn generated_workload_has_consistent_shape() {
        let g = ZipfGenerator::new(1.1, 500);
        let mut rng = StdRng::seed_from_u64(9);
        let w = JoinWorkload::generate("zipf", &g, 5_000, &mut rng);
        assert_eq!(w.table_a.len(), 5_000);
        assert_eq!(w.table_b.len(), 5_000);
        assert_eq!(w.domain_size, 500);
        assert!(w.table_a.iter().all(|&v| v < 500));
        // Skewed tables of this size always share their heavy values, so the join is non-empty.
        assert!(w.true_join_size > 0);
        assert_eq!(w.true_join_size, exact_join_size(&w.table_a, &w.table_b));
    }

    #[test]
    fn chain_workload_ground_truths_are_consistent() {
        let g = ZipfGenerator::new(1.3, 200);
        let mut rng = StdRng::seed_from_u64(11);
        let w = ChainWorkload::generate("chain", &g, 2_000, &mut rng);
        assert_eq!(w.t1.len(), 2_000);
        assert_eq!(w.t2.len(), 2_000);
        assert_eq!(w.t3.len(), 2_000);
        assert_eq!(w.t4.len(), 2_000);
        assert_eq!(
            w.true_join_3,
            exact_chain_join_3(&w.t1, &w.t2, &w.t3_b_column())
        );
        assert_eq!(
            w.true_join_4,
            exact_chain_join_4(&w.t1, &w.t2, &w.t3, &w.t4)
        );
        assert!(w.true_join_3 > 0);
    }
}
