//! The paper's dataset inventory (Table II) as a single enum, with a global scale factor.
//!
//! The original evaluation uses 40M-row synthetic tables and up to 67M-row real datasets on a
//! 256 GB machine. The estimators' *relative* behaviour (which method wins, how errors move
//! with ε, m, k, α) is preserved at much smaller row counts, so every experiment binary takes
//! a `--scale` factor applied to the paper's row counts, defaulting to a laptop-friendly
//! value. EXPERIMENTS.md reports the scale each figure was regenerated at.

use crate::gaussian::GaussianGenerator;
use crate::realworld::{RealWorldGenerator, RealWorldKind};
use crate::table::{ChainWorkload, JoinWorkload};
use crate::zipf::ZipfGenerator;
use crate::ValueGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Metadata describing one dataset row of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetInfo {
    /// Dataset name as used in the paper's figures.
    pub name: String,
    /// Join-attribute domain size.
    pub domain: u64,
    /// Row count reported in Table II.
    pub paper_rows: u64,
    /// Skew parameter of the (stand-in) generator, if meaningful.
    pub skew: Option<f64>,
}

/// One of the paper's evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PaperDataset {
    /// Synthetic Zipf(α) data; the paper sweeps α ∈ {1.1, …, 2.0}.
    Zipf {
        /// Skewness parameter α.
        alpha: f64,
    },
    /// Synthetic Gaussian data (domain 75,949).
    Gaussian,
    /// MovieLens stand-in (domain 83,239).
    MovieLens,
    /// TPC-DS store_sales stand-in (domain 18,000).
    TpcDs,
    /// Twitter ego-network stand-in (domain 77,072).
    Twitter,
    /// Facebook ego-network stand-in (domain 4,039).
    Facebook,
}

impl PaperDataset {
    /// Domain used for the synthetic Zipf datasets. The paper's distinct-value counts range
    /// from 4,377 (α = 2.0) to 2,816,390 (α = 1.1) over 40M draws; a fixed 100k-value domain
    /// reproduces the same "large domain, heavy head" regime at laptop scale.
    pub const ZIPF_DOMAIN: u64 = 100_000;
    /// Row count of the synthetic datasets in the paper.
    pub const SYNTHETIC_ROWS: u64 = 40_000_000;

    /// The six datasets of Fig. 5, in the order they appear there (Zipf α=1.1 first).
    pub fn figure5_suite() -> Vec<PaperDataset> {
        vec![
            PaperDataset::Zipf { alpha: 1.1 },
            PaperDataset::Gaussian,
            PaperDataset::MovieLens,
            PaperDataset::TpcDs,
            PaperDataset::Twitter,
            PaperDataset::Facebook,
        ]
    }

    /// Table II metadata for this dataset.
    pub fn info(&self) -> DatasetInfo {
        match *self {
            PaperDataset::Zipf { alpha } => DatasetInfo {
                name: format!("Zipf(α={alpha})"),
                domain: Self::ZIPF_DOMAIN,
                paper_rows: Self::SYNTHETIC_ROWS,
                skew: Some(alpha),
            },
            PaperDataset::Gaussian => DatasetInfo {
                name: "Gaussian".into(),
                domain: 75_949,
                paper_rows: Self::SYNTHETIC_ROWS,
                skew: None,
            },
            PaperDataset::MovieLens => real_info(RealWorldKind::MovieLens),
            PaperDataset::TpcDs => real_info(RealWorldKind::TpcDs),
            PaperDataset::Twitter => real_info(RealWorldKind::Twitter),
            PaperDataset::Facebook => real_info(RealWorldKind::Facebook),
        }
    }

    /// Build the value generator for this dataset.
    pub fn generator(&self) -> Box<dyn ValueGenerator> {
        match *self {
            PaperDataset::Zipf { alpha } => Box::new(ZipfGenerator::new(alpha, Self::ZIPF_DOMAIN)),
            PaperDataset::Gaussian => Box::new(GaussianGenerator::centered(75_949)),
            PaperDataset::MovieLens => Box::new(RealWorldGenerator::new(RealWorldKind::MovieLens)),
            PaperDataset::TpcDs => Box::new(RealWorldGenerator::new(RealWorldKind::TpcDs)),
            PaperDataset::Twitter => Box::new(RealWorldGenerator::new(RealWorldKind::Twitter)),
            PaperDataset::Facebook => Box::new(RealWorldGenerator::new(RealWorldKind::Facebook)),
        }
    }

    /// Rows per table at a given scale factor (clamped below so even tiny scales keep the
    /// protocols runnable).
    pub fn rows_at_scale(&self, scale: f64) -> usize {
        let rows = (self.info().paper_rows as f64 * scale).round() as usize;
        rows.clamp(2_000, 20_000_000)
    }

    /// Generate the two-table join workload at `scale`, reproducibly from `seed`.
    pub fn generate_join(&self, scale: f64, seed: u64) -> JoinWorkload {
        let info = self.info();
        let generator = self.generator();
        let mut rng = StdRng::seed_from_u64(seed);
        JoinWorkload::generate(
            info.name,
            generator.as_ref(),
            self.rows_at_scale(scale),
            &mut rng,
        )
    }

    /// Generate a multi-way chain workload at `scale` (used by Fig. 15; the paper uses the
    /// Zipf(α=1.5) dataset there).
    pub fn generate_chain(&self, scale: f64, seed: u64) -> ChainWorkload {
        let info = self.info();
        let generator = self.generator();
        let mut rng = StdRng::seed_from_u64(seed);
        ChainWorkload::generate(
            info.name,
            generator.as_ref(),
            self.rows_at_scale(scale),
            &mut rng,
        )
    }
}

fn real_info(kind: RealWorldKind) -> DatasetInfo {
    DatasetInfo {
        name: kind.name().into(),
        domain: kind.paper_domain(),
        paper_rows: kind.paper_rows(),
        skew: Some(kind.skew()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_suite_matches_paper_order() {
        let suite = PaperDataset::figure5_suite();
        assert_eq!(suite.len(), 6);
        assert_eq!(suite[0], PaperDataset::Zipf { alpha: 1.1 });
        assert_eq!(suite[5], PaperDataset::Facebook);
    }

    #[test]
    fn info_matches_table_2_domains() {
        assert_eq!(PaperDataset::Gaussian.info().domain, 75_949);
        assert_eq!(PaperDataset::MovieLens.info().domain, 83_239);
        assert_eq!(PaperDataset::TpcDs.info().domain, 18_000);
        assert_eq!(PaperDataset::Twitter.info().domain, 77_072);
        assert_eq!(PaperDataset::Facebook.info().domain, 4_039);
        assert_eq!(PaperDataset::MovieLens.info().paper_rows, 67_664_324);
        assert_eq!(PaperDataset::Zipf { alpha: 1.5 }.info().name, "Zipf(α=1.5)");
    }

    #[test]
    fn rows_at_scale_are_clamped() {
        let d = PaperDataset::Facebook;
        assert_eq!(d.rows_at_scale(1e-9), 2_000);
        assert_eq!(d.rows_at_scale(1.0), 352_936);
        let z = PaperDataset::Zipf { alpha: 1.1 };
        assert_eq!(z.rows_at_scale(0.001), 40_000);
    }

    #[test]
    fn generated_workloads_are_reproducible() {
        let d = PaperDataset::TpcDs;
        let w1 = d.generate_join(0.001, 42);
        let w2 = d.generate_join(0.001, 42);
        assert_eq!(w1.table_a, w2.table_a);
        assert_eq!(w1.table_b, w2.table_b);
        assert_eq!(w1.true_join_size, w2.true_join_size);
        let w3 = d.generate_join(0.001, 43);
        assert_ne!(w1.table_a, w3.table_a);
    }

    #[test]
    fn generated_chain_workload_has_positive_truth() {
        let d = PaperDataset::Zipf { alpha: 1.5 };
        let w = d.generate_chain(0.0002, 7);
        assert!(w.true_join_3 > 0);
        assert!(w.true_join_4 > 0);
        assert_eq!(w.domain_size, PaperDataset::ZIPF_DOMAIN);
    }
}
