//! Zipf-distributed value generator.
//!
//! The paper generates synthetic join attributes from the Zipf distribution with probability
//! mass `f(x | α, N) = (1/x^α) / Σ_{n=1..N} (1/n^α)` where `x` is the rank of the item
//! (Section VII-A). Values are identified with ranks, zero-indexed: value `v` has rank `v+1`.
//!
//! Sampling uses the precomputed cumulative distribution and binary search, so drawing a value
//! is `O(log N)` and building the generator is `O(N)`.

use crate::ValueGenerator;
use rand::{Rng, RngCore};

/// A Zipf(α) generator over the domain `{0, …, N−1}`.
#[derive(Debug, Clone)]
pub struct ZipfGenerator {
    alpha: f64,
    cdf: Vec<f64>,
}

impl ZipfGenerator {
    /// Create a Zipf generator with skew `alpha >= 0` over `domain` values.
    ///
    /// # Panics
    /// Panics if `domain == 0` or `alpha` is negative or non-finite.
    pub fn new(alpha: f64, domain: u64) -> Self {
        assert!(domain > 0, "Zipf domain must be non-empty");
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "Zipf skew must be a non-negative finite number"
        );
        let mut cdf = Vec::with_capacity(domain as usize);
        let mut acc = 0.0;
        for rank in 1..=domain {
            acc += 1.0 / (rank as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfGenerator { alpha, cdf }
    }

    /// The skew parameter α.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Exact probability of value `v` under the distribution.
    pub fn probability(&self, v: u64) -> f64 {
        if v as usize >= self.cdf.len() {
            return 0.0;
        }
        let hi = self.cdf[v as usize];
        let lo = if v == 0 {
            0.0
        } else {
            self.cdf[v as usize - 1]
        };
        hi - lo
    }
}

impl ValueGenerator for ZipfGenerator {
    fn domain_size(&self) -> u64 {
        self.cdf.len() as u64
    }

    fn sample(&self, rng: &mut dyn RngCore) -> u64 {
        let u: f64 = rng.gen();
        // First index whose cumulative mass reaches u.
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_sum_to_one_and_decay() {
        let g = ZipfGenerator::new(1.5, 1000);
        let total: f64 = (0..1000).map(|v| g.probability(v)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(g.probability(0) > g.probability(1));
        assert!(g.probability(1) > g.probability(10));
        assert_eq!(g.probability(1000), 0.0);
        assert_eq!(g.alpha(), 1.5);
    }

    #[test]
    fn samples_stay_in_domain() {
        let g = ZipfGenerator::new(1.1, 64);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(g.sample(&mut rng) < 64);
        }
    }

    #[test]
    fn empirical_frequency_matches_pmf() {
        let g = ZipfGenerator::new(1.2, 100);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let samples = g.sample_many(n, &mut rng);
        let mut counts = vec![0u64; 100];
        for &s in &samples {
            counts[s as usize] += 1;
        }
        for v in 0..5u64 {
            let expected = g.probability(v) * n as f64;
            let got = counts[v as usize] as f64;
            assert!(
                (got - expected).abs() < 0.05 * expected + 50.0,
                "value {v}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn higher_alpha_is_more_skewed() {
        let flat = ZipfGenerator::new(0.5, 1000);
        let steep = ZipfGenerator::new(2.0, 1000);
        assert!(steep.probability(0) > flat.probability(0));
        assert!(steep.probability(999) < flat.probability(999));
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let g = ZipfGenerator::new(0.0, 10);
        for v in 0..10u64 {
            assert!((g.probability(v) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_domain() {
        let _ = ZipfGenerator::new(1.0, 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_alpha() {
        let _ = ZipfGenerator::new(-1.0, 10);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_samples_in_domain(alpha in 0.0f64..3.0, domain in 1u64..5000, seed in any::<u64>()) {
            let g = ZipfGenerator::new(alpha, domain);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..50 {
                prop_assert!(g.sample(&mut rng) < domain);
            }
        }

        #[test]
        fn prop_pmf_is_monotone_decreasing(alpha in 0.1f64..3.0, domain in 2u64..2000) {
            let g = ZipfGenerator::new(alpha, domain);
            let mut prev = g.probability(0);
            for v in 1..domain.min(50) {
                let p = g.probability(v);
                prop_assert!(p <= prev + 1e-15);
                prev = p;
            }
        }
    }
}
