//! Fig. 10: impact of the phase-1 sampling rate r on LDPJoinSketch+.
//!
//! Paper setting: Zipf(α = 1.1), (k, m) = (18, 1024), ε = 4, r ∈ {0.10, 0.15, 0.20, 0.25, 0.30}.
//! Expected shape: AE decreases as the sampling rate grows because the phase-1 frequency
//! estimates (and hence the frequent item set) get more accurate.

use ldpjs_core::{Epsilon, SketchParams};
use ldpjs_data::PaperDataset;
use ldpjs_experiments::{run_trials, ExpArgs, Method, PlusKnobs};
use ldpjs_metrics::report::{csv_line, sci, Table};

fn main() {
    let args = ExpArgs::parse();
    let params = SketchParams::new(18, 1024).expect("paper sketch parameters");
    let eps = Epsilon::new(args.eps).expect("valid epsilon");
    let workload = PaperDataset::Zipf { alpha: 1.1 }.generate_join(args.scale, args.seed);

    let rates = if args.quick {
        vec![0.1, 0.3]
    } else {
        vec![0.10, 0.15, 0.20, 0.25, 0.30]
    };
    let mut table = Table::new(
        format!(
            "Fig. 10 — AE of LDPJoinSketch+ vs sampling rate r (Zipf α=1.1, ε={})",
            args.eps
        ),
        &["r", "AE", "RE"],
    );
    for &r in &rates {
        let knobs = PlusKnobs {
            sampling_rate: r,
            threshold: 0.001,
            paper_literal_subtraction: false,
            variance_weighted_recombination: false,
        };
        let summary = run_trials(
            Method::LdpJoinSketchPlus,
            &workload,
            params,
            eps,
            knobs,
            args.seed,
            args.effective_trials(),
        );
        table.add_row(vec![
            format!("{r}"),
            sci(summary.mean_absolute_error),
            sci(summary.mean_relative_error),
        ]);
        println!(
            "{}",
            csv_line(
                "fig10",
                &[
                    format!("{r}"),
                    format!("{:.6e}", summary.mean_absolute_error)
                ]
            )
        );
    }
    println!("\n{}", table.render());
    println!("(AE should trend downward as r increases.)");
}
