//! Fig. 11: impact of the frequent-item threshold θ on LDPJoinSketch+.
//!
//! Paper setting: Zipf(α = 1.1), (k, m) = (18, 1024), ε = 4, θ from 5·10⁻⁵ to 0.1. Expected
//! shape: a U-curve — very small θ floods the frequent item set with noisy low-frequency
//! values, very large θ leaves too few frequent items to matter, and the best accuracy sits in
//! between.

use ldpjs_core::{Epsilon, SketchParams};
use ldpjs_data::PaperDataset;
use ldpjs_experiments::{run_trials, ExpArgs, Method, PlusKnobs};
use ldpjs_metrics::report::{csv_line, sci, Table};

fn main() {
    let args = ExpArgs::parse();
    let params = SketchParams::new(18, 1024).expect("paper sketch parameters");
    let eps = Epsilon::new(args.eps).expect("valid epsilon");
    let workload = PaperDataset::Zipf { alpha: 1.1 }.generate_join(args.scale, args.seed);

    let thetas: Vec<f64> = if args.quick {
        vec![5e-5, 1e-3, 1e-1]
    } else {
        vec![5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1]
    };
    let mut table = Table::new(
        format!(
            "Fig. 11 — AE of LDPJoinSketch+ vs threshold θ (Zipf α=1.1, ε={})",
            args.eps
        ),
        &["theta", "AE", "RE"],
    );
    for &theta in &thetas {
        let knobs = PlusKnobs {
            sampling_rate: 0.1,
            threshold: theta,
            paper_literal_subtraction: false,
            variance_weighted_recombination: false,
        };
        let summary = run_trials(
            Method::LdpJoinSketchPlus,
            &workload,
            params,
            eps,
            knobs,
            args.seed,
            args.effective_trials(),
        );
        table.add_row(vec![
            format!("{theta:e}"),
            sci(summary.mean_absolute_error),
            sci(summary.mean_relative_error),
        ]);
        println!(
            "{}",
            csv_line(
                "fig11",
                &[
                    format!("{theta:e}"),
                    format!("{:.6e}", summary.mean_absolute_error)
                ]
            )
        );
    }
    println!("\n{}", table.render());
    println!("(Expect a U-shaped curve: both extremes of θ hurt accuracy.)");
}
