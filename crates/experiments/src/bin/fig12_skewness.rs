//! Fig. 12: impact of the Zipf skewness α.
//!
//! Paper setting: α ∈ {1.1, 1.3, 1.5, 1.7, 1.9}, (k, m) = (18, 1024), ε = 4, all competitors,
//! RE metric. Expected shape: every method improves as skew grows (the true join size grows
//! much faster than the error), and the proposed methods stay the best LDP mechanisms across
//! the whole range.

use ldpjs_core::{Epsilon, SketchParams};
use ldpjs_data::PaperDataset;
use ldpjs_experiments::{run_trials, ExpArgs, Method, PlusKnobs};
use ldpjs_metrics::report::{csv_line, sci, Table};

fn main() {
    let args = ExpArgs::parse();
    let params = SketchParams::new(18, 1024).expect("paper sketch parameters");
    let eps = Epsilon::new(args.eps).expect("valid epsilon");
    let alphas = if args.quick {
        vec![1.1, 1.9]
    } else {
        vec![1.1, 1.3, 1.5, 1.7, 1.9]
    };
    let methods = Method::all();

    let mut table = Table::new(
        format!("Fig. 12 — RE vs Zipf skewness α (ε = {})", args.eps),
        &[
            "alpha",
            "FAGMS",
            "k-RR",
            "Apple-HCMS",
            "FLH",
            "LDPJoinSketch",
            "LDPJoinSketch+",
        ],
    );
    for &alpha in &alphas {
        let workload = PaperDataset::Zipf { alpha }.generate_join(args.scale, args.seed);
        let mut row = vec![format!("{alpha}")];
        for &method in &methods {
            let summary = run_trials(
                method,
                &workload,
                params,
                eps,
                PlusKnobs::default(),
                args.seed,
                args.effective_trials(),
            );
            row.push(sci(summary.mean_relative_error));
            println!(
                "{}",
                csv_line(
                    "fig12",
                    &[
                        format!("{alpha}"),
                        method.name().to_string(),
                        format!("{:.6e}", summary.mean_relative_error),
                    ]
                )
            );
        }
        table.add_row(row);
    }
    println!("\n{}", table.render());
    println!("(RE should decrease for every method as α grows.)");
}
