//! Fig. 13: running time, split into offline (collection + sketch construction) and online
//! (answering the join query) components.
//!
//! Paper setting: Zipf(α = 1.1), Gaussian and Twitter datasets, all methods. Expected shape:
//! the online time of every sketch-based method is negligible; the sketch methods pay a
//! modest extra offline cost compared with k-RR/FLH but orders of magnitude better accuracy
//! (Fig. 5).

use ldpjs_core::{Epsilon, SketchParams};
use ldpjs_data::PaperDataset;
use ldpjs_experiments::{run_trials, ExpArgs, Method, PlusKnobs};
use ldpjs_metrics::report::{csv_line, Table};

fn main() {
    let args = ExpArgs::parse();
    let params = SketchParams::new(18, 1024).expect("paper sketch parameters");
    let eps = Epsilon::new(args.eps).expect("valid epsilon");
    let datasets = if args.quick {
        vec![PaperDataset::Zipf { alpha: 1.1 }]
    } else {
        vec![
            PaperDataset::Zipf { alpha: 1.1 },
            PaperDataset::Gaussian,
            PaperDataset::Twitter,
        ]
    };
    let methods = Method::all();

    for dataset in datasets {
        let workload = dataset.generate_join(args.scale, args.seed);
        let mut table = Table::new(
            format!("Fig. 13 — running time on {} (seconds)", workload.name),
            &["method", "offline (s)", "online (s)"],
        );
        for &method in &methods {
            let summary = run_trials(
                method,
                &workload,
                params,
                eps,
                PlusKnobs::default(),
                args.seed,
                1,
            );
            table.add_row(vec![
                method.name().to_string(),
                format!("{:.4}", summary.mean_offline_seconds),
                format!("{:.6}", summary.mean_online_seconds),
            ]);
            println!(
                "{}",
                csv_line(
                    "fig13",
                    &[
                        workload.name.clone(),
                        method.name().to_string(),
                        format!("{:.6}", summary.mean_offline_seconds),
                        format!("{:.6}", summary.mean_online_seconds),
                    ]
                )
            );
        }
        println!("\n{}", table.render());
    }
    println!("(Online time should be near zero for all sketch-based methods.)");
}
