//! Fig. 14: frequency-estimation accuracy (MSE) of LDPJoinSketch against the LDP frequency
//! oracles.
//!
//! Paper setting: Zipf(α = 1.5) and MovieLens, ε ∈ {0.1, …, 10}, MSE over the distinct values
//! of the attribute. Expected shape: LDPJoinSketch matches Apple-HCMS (their structures are
//! identical up to the sign hash) and clearly beats k-RR and FLH at small ε; the sketch error
//! dominates once ε is large, so the curves flatten.

use ldpjs_common::stats::frequency_table;
use ldpjs_core::protocol::build_private_sketch;
use ldpjs_core::{Epsilon, SketchParams};
use ldpjs_data::PaperDataset;
use ldpjs_experiments::ExpArgs;
use ldpjs_ldp::{FlhOracle, FrequencyOracle, HcmsOracle, KrrOracle};
use ldpjs_metrics::error::mean_squared_error;
use ldpjs_metrics::report::{csv_line, sci, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = ExpArgs::parse();
    let params = SketchParams::new(18, 1024).expect("paper sketch parameters");
    let datasets = if args.quick {
        vec![PaperDataset::Zipf { alpha: 1.5 }]
    } else {
        vec![PaperDataset::Zipf { alpha: 1.5 }, PaperDataset::MovieLens]
    };
    let eps_grid: Vec<f64> = if args.quick {
        vec![0.5, 4.0, 10.0]
    } else {
        vec![0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0]
    };

    for dataset in datasets {
        let workload = dataset.generate_join(args.scale, args.seed);
        // Frequency estimation is evaluated on one attribute (table A).
        let values = &workload.table_a;
        let truth_table = frequency_table(values);
        let distinct: Vec<u64> = truth_table.keys().copied().collect();
        let truth: Vec<f64> = distinct.iter().map(|d| truth_table[d] as f64).collect();

        let mut table = Table::new(
            format!("Fig. 14 — frequency-estimation MSE on {}", workload.name),
            &["eps", "k-RR", "Apple-HCMS", "FLH", "LDPJoinSketch"],
        );
        for &eps_val in &eps_grid {
            let eps = Epsilon::new(eps_val).expect("valid epsilon");
            let mut rng = StdRng::seed_from_u64(args.seed);

            let mut krr = KrrOracle::new(eps, workload.domain_size.max(2));
            krr.collect(values, &mut rng);
            let mse_krr = mean_squared_error(&truth, &krr.estimate_domain(&distinct));

            let mut hcms = HcmsOracle::new(params, eps, args.seed);
            hcms.collect(values, &mut rng);
            let mse_hcms = mean_squared_error(&truth, &hcms.estimate_domain(&distinct));

            let mut flh = FlhOracle::new_fast(eps, args.seed);
            flh.collect(values, &mut rng);
            let mse_flh = mean_squared_error(&truth, &flh.estimate_domain(&distinct));

            let sketch = build_private_sketch(values, params, eps, args.seed, &mut rng)
                .expect("sketch construction");
            let mse_ldp = mean_squared_error(&truth, &sketch.frequencies(&distinct));

            table.add_row(vec![
                format!("{eps_val}"),
                sci(mse_krr),
                sci(mse_hcms),
                sci(mse_flh),
                sci(mse_ldp),
            ]);
            for (name, mse) in [
                ("k-RR", mse_krr),
                ("Apple-HCMS", mse_hcms),
                ("FLH", mse_flh),
                ("LDPJoinSketch", mse_ldp),
            ] {
                println!(
                    "{}",
                    csv_line(
                        "fig14",
                        &[
                            workload.name.clone(),
                            format!("{eps_val}"),
                            name.to_string(),
                            format!("{mse:.6e}"),
                        ]
                    )
                );
            }
        }
        println!("\n{}", table.render());
    }
    println!("(LDPJoinSketch should track Apple-HCMS and beat k-RR/FLH, especially at small ε.)");
}
