//! Fig. 15: multi-way chain joins, varying ε.
//!
//! Paper setting: Zipf(α = 1.5), 3-way (`T1(A) ⋈ T2(A,B) ⋈ T3(B)`) and 4-way chain queries,
//! COMPASS as the non-private reference and LDPJoinSketch extended as in Section VI. Expected
//! shape: the LDP estimate's RE falls as ε grows and flattens once the sketch sampling error
//! dominates, staying within a modest factor of COMPASS.
//!
//! Like the paper (which drops the frequency-oracle baselines from the 4-way case because of
//! their cost), this binary compares COMPASS and LDPJoinSketch only; the frequency-oracle
//! baselines would need a joint 2-dimensional frequency oracle whose domain is |D|², which is
//! exactly the blow-up the sketch approach avoids.
//!
//! The sketches use (k, m) = (9, 256) per attribute by default — the two-dimensional sketches
//! are m×m per replica, so the paper's m = 1024 is costly at laptop scale; pass `--sweep paper`
//! to use (18, 1024).

use ldpjs_common::stats::median;
use ldpjs_core::multiway::{
    build_edge_sketch, build_vertex_sketch, ldp_chain_join_3, ldp_chain_join_4,
};
use ldpjs_core::Epsilon;
use ldpjs_data::PaperDataset;
use ldpjs_experiments::ExpArgs;
use ldpjs_metrics::error::relative_error;
use ldpjs_metrics::report::{csv_line, sci, Table};
use ldpjs_sketch::compass::{
    estimate_chain_3, estimate_chain_4, CompassEdgeSketch, CompassVertexSketch, JoinAttribute,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = ExpArgs::parse();
    let (replicas, buckets) = if args.sweep.as_deref() == Some("paper") {
        (18, 1024)
    } else {
        (9, 256)
    };
    let workload = PaperDataset::Zipf { alpha: 1.5 }.generate_chain(args.scale, args.seed);
    let eps_grid: Vec<f64> = if args.quick {
        vec![0.1, 1.0, 4.0, 10.0]
    } else {
        vec![0.1, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0]
    };

    // Shared public hash families, one per join attribute.
    let attr_a = JoinAttribute::from_seed(args.seed ^ 0xA, replicas, buckets);
    let attr_b = JoinAttribute::from_seed(args.seed ^ 0xB, replicas, buckets);
    let attr_c = JoinAttribute::from_seed(args.seed ^ 0xC, replicas, buckets);

    // --- Non-private COMPASS reference (independent of ε). ---------------------------------
    let t3_b = workload.t3_b_column();
    let mut c1 = CompassVertexSketch::new(attr_a.clone());
    c1.update_all(&workload.t1);
    let mut c2 = CompassEdgeSketch::new(attr_a.clone(), attr_b.clone()).expect("edge sketch");
    c2.update_all(&workload.t2);
    let mut c3v = CompassVertexSketch::new(attr_b.clone());
    c3v.update_all(&t3_b);
    let compass_3 = estimate_chain_3(&c1, &c2, &c3v).expect("compass 3-way");
    let mut c3e = CompassEdgeSketch::new(attr_b.clone(), attr_c.clone()).expect("edge sketch");
    c3e.update_all(&workload.t3);
    let mut c4 = CompassVertexSketch::new(attr_c.clone());
    c4.update_all(&workload.t4);
    let compass_4 = estimate_chain_4(&c1, &c2, &c3e, &c4).expect("compass 4-way");

    let truth_3 = workload.true_join_3 as f64;
    let truth_4 = workload.true_join_4 as f64;
    let compass_re_3 = relative_error(truth_3, compass_3);
    let compass_re_4 = relative_error(truth_4, compass_4);

    let mut table = Table::new(
        format!("Fig. 15 — multi-way chain join RE vs ε (Zipf α=1.5, k={replicas}, m={buckets})"),
        &[
            "eps",
            "Compass(3-way)",
            "LDPJoinSketch(3-way)",
            "Compass(4-way)",
            "LDPJoinSketch(4-way)",
        ],
    );

    for &eps_val in &eps_grid {
        let eps = Epsilon::new(eps_val).expect("valid epsilon");
        let trials = args.effective_trials();
        let mut re3 = Vec::with_capacity(trials);
        let mut re4 = Vec::with_capacity(trials);
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(args.seed.wrapping_add(1 + t as u64));
            let s1 = build_vertex_sketch(&workload.t1, &attr_a, eps, &mut rng).expect("T1 sketch");
            let s2 = build_edge_sketch(&workload.t2, &attr_a, &attr_b, eps, &mut rng)
                .expect("T2 sketch");
            let s3v = build_vertex_sketch(&t3_b, &attr_b, eps, &mut rng).expect("T3 sketch");
            let est3 = ldp_chain_join_3(&s1, &attr_a, &s2, &s3v, &attr_b).expect("3-way estimate");
            re3.push(relative_error(truth_3, est3));

            let s3e = build_edge_sketch(&workload.t3, &attr_b, &attr_c, eps, &mut rng)
                .expect("T3 sketch");
            let s4 = build_vertex_sketch(&workload.t4, &attr_c, eps, &mut rng).expect("T4 sketch");
            let est4 = ldp_chain_join_4(&s1, &attr_a, &s2, &s3e, &s4, &attr_b, &attr_c)
                .expect("4-way estimate");
            re4.push(relative_error(truth_4, est4));
        }
        let ldp_re_3 = median(&re3).unwrap_or(f64::NAN);
        let ldp_re_4 = median(&re4).unwrap_or(f64::NAN);
        table.add_row(vec![
            format!("{eps_val}"),
            sci(compass_re_3),
            sci(ldp_re_3),
            sci(compass_re_4),
            sci(ldp_re_4),
        ]);
        println!(
            "{}",
            csv_line(
                "fig15",
                &[
                    format!("{eps_val}"),
                    format!("{compass_re_3:.6e}"),
                    format!("{ldp_re_3:.6e}"),
                    format!("{compass_re_4:.6e}"),
                    format!("{ldp_re_4:.6e}"),
                ]
            )
        );
    }
    println!("\n{}", table.render());
    println!("(LDP RE should fall with ε and approach the COMPASS reference.)");
}
