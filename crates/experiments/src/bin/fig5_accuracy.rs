//! Fig. 5: relative error of join-size estimation across all six datasets.
//!
//! Paper setting: ε = 4, (k, m) = (18, 1024), every competitor. Expected shape: k-RR and FLH
//! orders of magnitude worse than the sketch methods; LDPJoinSketch within a small factor of
//! the non-private FAGMS; LDPJoinSketch+ at least as good as LDPJoinSketch on skewed data.

use ldpjs_core::{Epsilon, SketchParams};
use ldpjs_data::PaperDataset;
use ldpjs_experiments::{run_trials, ExpArgs, Method, PlusKnobs};
use ldpjs_metrics::report::{csv_line, sci, Table};

fn main() {
    let args = ExpArgs::parse();
    let params = SketchParams::new(18, 1024).expect("paper sketch parameters");
    let eps = Epsilon::new(args.eps).expect("valid epsilon");
    let methods = Method::all();

    let mut table = Table::new(
        format!(
            "Fig. 5 — RE of join size estimation (ε = {}, k = 18, m = 1024)",
            args.eps
        ),
        &[
            "dataset",
            "FAGMS",
            "k-RR",
            "Apple-HCMS",
            "FLH",
            "LDPJoinSketch",
            "LDPJoinSketch+",
        ],
    );

    let datasets = if args.quick {
        vec![PaperDataset::Zipf { alpha: 1.1 }, PaperDataset::Facebook]
    } else {
        PaperDataset::figure5_suite()
    };

    for dataset in datasets {
        let workload = dataset.generate_join(args.scale, args.seed);
        let mut row = vec![workload.name.clone()];
        for &method in &methods {
            let summary = run_trials(
                method,
                &workload,
                params,
                eps,
                PlusKnobs::default(),
                args.seed,
                args.effective_trials(),
            );
            row.push(sci(summary.mean_relative_error));
            println!(
                "{}",
                csv_line(
                    "fig5",
                    &[
                        workload.name.clone(),
                        method.name().to_string(),
                        format!("{:.6e}", summary.mean_relative_error),
                        format!("{:.6e}", summary.mean_absolute_error),
                    ]
                )
            );
        }
        table.add_row(row);
    }
    println!("\n{}", table.render());
    println!("(Lower is better; compare column ordering with the paper's Fig. 5.)");
}
