//! Fig. 6: accuracy of the sketch-based methods under a matched space budget.
//!
//! Paper setting: Zipf(α = 2.0), ε = 10, r = 0.1, θ = 0.001, and a range of (k, m)
//! configurations chosen so that Apple-HCMS, LDPJoinSketch and LDPJoinSketch+ consume a
//! similar number of sketch bytes (LDPJoinSketch+ builds sketches in both phases, so its
//! per-sketch budget is halved). Expected shape: AE falls as space grows; LDPJoinSketch+
//! dominates Apple-HCMS at comparable space.

use ldpjs_core::{Epsilon, SketchParams};
use ldpjs_data::PaperDataset;
use ldpjs_experiments::{run_trials, ExpArgs, Method, PlusKnobs};
use ldpjs_metrics::report::{csv_line, sci, Table};

fn main() {
    let args = ExpArgs::parse();
    let eps = Epsilon::new(10.0).expect("paper uses ε = 10 here");
    let knobs = PlusKnobs {
        sampling_rate: 0.1,
        threshold: 0.001,
        paper_literal_subtraction: false,
        variance_weighted_recombination: false,
    };
    let workload = PaperDataset::Zipf { alpha: 2.0 }.generate_join(args.scale, args.seed);

    // Space sweep: k fixed at 18, m doubling. Space of one sketch = k·m·8 bytes.
    let m_grid: Vec<usize> = if args.quick {
        vec![512, 2048]
    } else {
        vec![256, 512, 1024, 2048, 4096, 8192]
    };

    let mut table = Table::new(
        "Fig. 6 — AE vs space cost (Zipf α=2.0, ε=10)",
        &[
            "space (KB)",
            "Apple-HCMS",
            "LDPJoinSketch",
            "LDPJoinSketch+ (2 phases)",
        ],
    );
    for &m in &m_grid {
        let params = SketchParams::new(18, m).expect("valid sketch parameters");
        // LDPJoinSketch+ uses two phases of sketches of the same size, so to compare at equal
        // space we also run it with half the columns.
        let params_plus = SketchParams::new(18, (m / 2).max(2)).expect("valid sketch parameters");
        let space_kb = params.space_bytes() as f64 / 1024.0;

        let hcms = run_trials(
            Method::AppleHcms,
            &workload,
            params,
            eps,
            knobs,
            args.seed,
            args.effective_trials(),
        );
        let ldp = run_trials(
            Method::LdpJoinSketch,
            &workload,
            params,
            eps,
            knobs,
            args.seed,
            args.effective_trials(),
        );
        let plus = run_trials(
            Method::LdpJoinSketchPlus,
            &workload,
            params_plus,
            eps,
            knobs,
            args.seed,
            args.effective_trials(),
        );

        table.add_row(vec![
            format!("{space_kb:.0}"),
            sci(hcms.mean_absolute_error),
            sci(ldp.mean_absolute_error),
            sci(plus.mean_absolute_error),
        ]);
        for (name, s) in [
            ("Apple-HCMS", &hcms),
            ("LDPJoinSketch", &ldp),
            ("LDPJoinSketch+", &plus),
        ] {
            println!(
                "{}",
                csv_line(
                    "fig6",
                    &[
                        format!("{space_kb:.0}"),
                        name.to_string(),
                        format!("{:.6e}", s.mean_absolute_error),
                    ]
                )
            );
        }
    }
    println!("\n{}", table.render());
    println!(
        "(AE should decrease with space; LDPJoinSketch+ should beat Apple-HCMS at matched space.)"
    );
}
