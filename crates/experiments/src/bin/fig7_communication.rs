//! Fig. 7: total client→server communication cost.
//!
//! Paper setting: Zipf(α = 1.1) and MovieLens, (k, m) = (18, 1024), ε = 4. The y-axis is the
//! cumulative number of bits sent by all clients. Expected shape: the Hadamard-sampling
//! methods (Apple-HCMS, LDPJoinSketch) are the cheapest because every client ships a single
//! perturbed bit plus indices; k-RR ships a full domain-sized value; FLH ships its hash index
//! and hashed value.

use ldpjs_core::{Epsilon, SketchParams};
use ldpjs_data::PaperDataset;
use ldpjs_experiments::{record_summary, run_trials, ExpArgs, Method, PlusKnobs};
use ldpjs_metrics::report::{csv_line, Table};
use ldpjs_metrics::telemetry::Telemetry;

fn main() {
    let args = ExpArgs::parse();
    let params = SketchParams::new(18, 1024).expect("paper sketch parameters");
    let eps = Epsilon::new(args.eps).expect("valid epsilon");

    let datasets = if args.quick {
        vec![PaperDataset::Zipf { alpha: 1.1 }]
    } else {
        vec![PaperDataset::Zipf { alpha: 1.1 }, PaperDataset::MovieLens]
    };
    let methods = [
        Method::Krr,
        Method::AppleHcms,
        Method::Flh,
        Method::LdpJoinSketch,
    ];

    let mut table = Table::new(
        format!(
            "Fig. 7 — communication cost in bits (k=18, m=1024, ε={})",
            args.eps
        ),
        &["dataset", "k-RR", "Apple-HCMS", "FLH", "LDPJoinSketch"],
    );
    for dataset in datasets {
        let workload = dataset.generate_join(args.scale, args.seed);
        // Per-dataset registry: communication accounting flows through the same telemetry
        // counters the online service exports, and the figure reads them back from there.
        let telemetry = Telemetry::new();
        let mut row = vec![workload.name.clone()];
        for &method in &methods {
            let summary = run_trials(
                method,
                &workload,
                params,
                eps,
                PlusKnobs::default(),
                args.seed,
                1,
            );
            record_summary(&telemetry, &summary);
            row.push(summary.communication_bits.to_string());
            println!(
                "{}",
                csv_line(
                    "fig7",
                    &[
                        workload.name.clone(),
                        method.name().to_string(),
                        summary.communication_bits.to_string(),
                    ]
                )
            );
        }
        table.add_row(row);
        println!("telemetry ({}):", workload.name);
        for line in telemetry
            .deterministic_snapshot()
            .to_text()
            .lines()
            .filter(|l| l.starts_with("ldpjs_exp_communication_bits"))
        {
            println!("  {line}");
        }
    }
    println!("\n{}", table.render());
    println!("(LDPJoinSketch and Apple-HCMS should be the cheapest; k-RR the most expensive per user on large domains.)");
}
