//! Fig. 8: impact of the privacy budget ε.
//!
//! Paper setting: ε ∈ {0.1, 1, 2, …, 10}, (k, m) = (18, 1024), four datasets
//! (Zipf α=1.5, Gaussian, MovieLens, Twitter). Expected shape: AE decreases as ε grows, the
//! sketch methods flatten out once the sketch error dominates, and the proposed methods win at
//! small ε.

use ldpjs_core::{Epsilon, SketchParams};
use ldpjs_data::PaperDataset;
use ldpjs_experiments::{run_trials, ExpArgs, Method, PlusKnobs};
use ldpjs_metrics::report::{csv_line, sci, Table};

fn main() {
    let args = ExpArgs::parse();
    let params = SketchParams::new(18, 1024).expect("paper sketch parameters");

    let datasets = if args.quick {
        vec![PaperDataset::Zipf { alpha: 1.5 }]
    } else {
        vec![
            PaperDataset::Zipf { alpha: 1.5 },
            PaperDataset::Gaussian,
            PaperDataset::MovieLens,
            PaperDataset::Twitter,
        ]
    };
    let eps_grid: Vec<f64> = if args.quick {
        vec![0.1, 1.0, 4.0, 10.0]
    } else {
        vec![0.1, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
    };
    let methods = Method::all();

    for dataset in datasets {
        let workload = dataset.generate_join(args.scale, args.seed);
        let mut table = Table::new(
            format!("Fig. 8 — AE vs ε on {}", workload.name),
            &[
                "eps",
                "FAGMS",
                "k-RR",
                "Apple-HCMS",
                "FLH",
                "LDPJoinSketch",
                "LDPJoinSketch+",
            ],
        );
        for &eps_val in &eps_grid {
            let eps = Epsilon::new(eps_val).expect("valid epsilon");
            let mut row = vec![format!("{eps_val}")];
            for &method in &methods {
                let summary = run_trials(
                    method,
                    &workload,
                    params,
                    eps,
                    PlusKnobs::default(),
                    args.seed,
                    args.effective_trials(),
                );
                row.push(sci(summary.mean_absolute_error));
                println!(
                    "{}",
                    csv_line(
                        "fig8",
                        &[
                            workload.name.clone(),
                            format!("{eps_val}"),
                            method.name().to_string(),
                            format!("{:.6e}", summary.mean_absolute_error),
                        ]
                    )
                );
            }
            table.add_row(row);
        }
        println!("\n{}", table.render());
    }
    println!("(AE should fall as ε grows and flatten for the sketch-based methods.)");
}
