//! Fig. 9: impact of the sketch parameters (m, k) on the sketch-based methods.
//!
//! Paper setting: ε = 10, r = 0.1. Sub-figures (a)–(d) sweep the column count
//! m ∈ {512, …, 16384} with k = 18; sub-figures (e)–(h) sweep the row count
//! k ∈ {9, 12, 18, 21, 28, 30, 36} with m = 1024. Expected shape: AE falls with m for every
//! method (fewer collisions); for FAGMS and Apple-HCMS it also falls with k, while for
//! LDPJoinSketch(+) it stays flat or rises slightly with k because each client populates only
//! one sampled row.
//!
//! Select the sweep with `--sweep m` (default) or `--sweep k`.

use ldpjs_core::{Epsilon, SketchParams};
use ldpjs_data::PaperDataset;
use ldpjs_experiments::{run_trials, ExpArgs, Method, PlusKnobs};
use ldpjs_metrics::report::{csv_line, sci, Table};

fn main() {
    let args = ExpArgs::parse();
    let eps = Epsilon::new(10.0).expect("paper uses ε = 10 here");
    let knobs = PlusKnobs {
        sampling_rate: 0.1,
        threshold: 0.001,
        paper_literal_subtraction: false,
        variance_weighted_recombination: false,
    };
    let sweep = args.sweep.clone().unwrap_or_else(|| "m".to_string());

    let datasets = if args.quick {
        vec![PaperDataset::Zipf { alpha: 1.1 }]
    } else {
        vec![
            PaperDataset::Zipf { alpha: 1.1 },
            PaperDataset::Zipf { alpha: 2.0 },
            PaperDataset::MovieLens,
            PaperDataset::Twitter,
        ]
    };
    let methods = Method::sketch_methods();

    for dataset in datasets {
        let workload = dataset.generate_join(args.scale, args.seed);
        let configs: Vec<SketchParams> = match sweep.as_str() {
            "k" => {
                let ks: Vec<usize> = if args.quick {
                    vec![9, 18, 36]
                } else {
                    vec![9, 12, 18, 21, 28, 30, 36]
                };
                ks.into_iter()
                    .map(|k| SketchParams::new(k, 1024).unwrap())
                    .collect()
            }
            _ => {
                let ms: Vec<usize> = if args.quick {
                    vec![512, 2048]
                } else {
                    vec![512, 1024, 2048, 4096, 8192, 16384]
                };
                ms.into_iter()
                    .map(|m| SketchParams::new(18, m).unwrap())
                    .collect()
            }
        };

        let mut table = Table::new(
            format!("Fig. 9 — AE vs {} on {} (ε = 10)", sweep, workload.name),
            &[
                &sweep,
                "FAGMS",
                "Apple-HCMS",
                "LDPJoinSketch",
                "LDPJoinSketch+",
            ],
        );
        for params in configs {
            let label = match sweep.as_str() {
                "k" => params.rows().to_string(),
                _ => params.columns().to_string(),
            };
            let mut row = vec![label.clone()];
            for &method in &methods {
                let summary = run_trials(
                    method,
                    &workload,
                    params,
                    eps,
                    knobs,
                    args.seed,
                    args.effective_trials(),
                );
                row.push(sci(summary.mean_absolute_error));
                println!(
                    "{}",
                    csv_line(
                        "fig9",
                        &[
                            workload.name.clone(),
                            sweep.clone(),
                            label.clone(),
                            method.name().to_string(),
                            format!("{:.6e}", summary.mean_absolute_error),
                        ]
                    )
                );
            }
            table.add_row(row);
        }
        println!("\n{}", table.render());
    }
    println!("(Errors should shrink with m for all methods; LDPJoinSketch's error should be flat or slightly rising in k.)");
}
