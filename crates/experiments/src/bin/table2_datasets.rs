//! Table II: dataset inventory.
//!
//! Prints, for every dataset of the evaluation, the paper-reported domain and row count next
//! to the row count actually generated at the requested `--scale`, plus the generated tables'
//! frequency moments and exact join size (the ground truth every other experiment divides by).

use ldpjs_data::PaperDataset;
use ldpjs_experiments::ExpArgs;
use ldpjs_metrics::report::{csv_line, Table};

fn main() {
    let args = ExpArgs::parse();
    let mut table = Table::new(
        format!("Table II — datasets (scale = {})", args.scale),
        &[
            "dataset",
            "domain",
            "paper rows",
            "generated rows",
            "F2(A)",
            "F2(B)",
            "true |A⋈B|",
        ],
    );
    let mut datasets = PaperDataset::figure5_suite();
    datasets.push(PaperDataset::Zipf { alpha: 1.5 });
    datasets.push(PaperDataset::Zipf { alpha: 2.0 });
    for dataset in datasets {
        let info = dataset.info();
        let workload = dataset.generate_join(args.scale, args.seed);
        table.add_row(vec![
            info.name.clone(),
            info.domain.to_string(),
            info.paper_rows.to_string(),
            workload.table_a.len().to_string(),
            workload.f2_a().to_string(),
            workload.f2_b().to_string(),
            workload.true_join_size.to_string(),
        ]);
        println!(
            "{}",
            csv_line(
                "table2",
                &[
                    info.name,
                    info.domain.to_string(),
                    workload.table_a.len().to_string(),
                    workload.true_join_size.to_string(),
                ]
            )
        );
    }
    println!("\n{}", table.render());
}
