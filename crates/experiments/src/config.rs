//! Command-line arguments shared by the experiment binaries.
//!
//! A deliberately small hand-rolled parser (the approved dependency list contains no CLI
//! crate): flags are `--name value` pairs, unknown flags abort with a usage message.

/// Arguments common to every experiment binary.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpArgs {
    /// Scale factor applied to the paper's row counts (1.0 = paper scale).
    pub scale: f64,
    /// Number of testing rounds per configuration (the paper averages over rounds).
    pub trials: usize,
    /// Base RNG seed; trial `i` uses `seed + i`.
    pub seed: u64,
    /// Privacy budget used by figures that fix ε (overridable per binary).
    pub eps: f64,
    /// Quick mode: used by the bench harness and CI to shrink sweeps further.
    pub quick: bool,
    /// Optional free-form sweep selector (e.g. `--sweep m` / `--sweep k` for Fig. 9).
    pub sweep: Option<String>,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs {
            scale: 0.002,
            trials: 3,
            seed: 7,
            eps: 4.0,
            quick: false,
            sweep: None,
        }
    }
}

impl ExpArgs {
    /// Parse from an explicit iterator of arguments (exposed for tests).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = ExpArgs::default();
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            match flag.as_str() {
                "--scale" => out.scale = parse_value(&mut iter, "--scale")?,
                "--trials" => out.trials = parse_value(&mut iter, "--trials")?,
                "--seed" => out.seed = parse_value(&mut iter, "--seed")?,
                "--eps" => out.eps = parse_value(&mut iter, "--eps")?,
                "--sweep" => {
                    out.sweep = Some(
                        iter.next()
                            .ok_or_else(|| "--sweep needs a value".to_string())?,
                    )
                }
                "--quick" => out.quick = true,
                "--help" | "-h" => return Err(Self::usage()),
                other => return Err(format!("unknown flag `{other}`\n{}", Self::usage())),
            }
        }
        if out.scale <= 0.0 {
            return Err("--scale must be positive".into());
        }
        if out.trials == 0 {
            return Err("--trials must be at least 1".into());
        }
        Ok(out)
    }

    /// Parse from the process arguments, exiting with a usage message on error.
    pub fn parse() -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Usage text shared by all binaries.
    pub fn usage() -> String {
        "usage: <experiment> [--scale F] [--trials N] [--seed N] [--eps F] [--sweep m|k] [--quick]\n\
         --scale  fraction of the paper's row counts to generate (default 0.002)\n\
         --trials testing rounds per configuration (default 3)\n\
         --seed   base RNG seed (default 7)\n\
         --eps    privacy budget for figures that fix ε (default 4.0)\n\
         --sweep  sweep selector for fig9 (m or k)\n\
         --quick  shrink sweeps for smoke runs"
            .to_string()
    }

    /// Effective number of trials, halved (at least 1) in quick mode.
    pub fn effective_trials(&self) -> usize {
        if self.quick {
            (self.trials / 2).max(1)
        } else {
            self.trials
        }
    }
}

fn parse_value<T: std::str::FromStr, I: Iterator<Item = String>>(
    iter: &mut I,
    flag: &str,
) -> Result<T, String> {
    let raw = iter.next().ok_or_else(|| format!("{flag} needs a value"))?;
    raw.parse()
        .map_err(|_| format!("could not parse `{raw}` for {flag}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ExpArgs, String> {
        ExpArgs::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_sensible() {
        let d = ExpArgs::default();
        assert!(d.scale > 0.0 && d.scale < 1.0);
        assert!(d.trials >= 1);
        assert_eq!(parse(&[]).unwrap(), d);
    }

    #[test]
    fn parses_all_flags() {
        let a = parse(&[
            "--scale", "0.01", "--trials", "5", "--seed", "99", "--eps", "2.5", "--sweep", "k",
            "--quick",
        ])
        .unwrap();
        assert_eq!(a.scale, 0.01);
        assert_eq!(a.trials, 5);
        assert_eq!(a.seed, 99);
        assert_eq!(a.eps, 2.5);
        assert_eq!(a.sweep.as_deref(), Some("k"));
        assert!(a.quick);
        assert_eq!(a.effective_trials(), 2);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--scale", "abc"]).is_err());
        assert!(parse(&["--scale", "0"]).is_err());
        assert!(parse(&["--trials", "0"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }

    #[test]
    fn effective_trials_floor_is_one() {
        let a = ExpArgs {
            trials: 1,
            quick: true,
            ..ExpArgs::default()
        };
        assert_eq!(a.effective_trials(), 1);
    }
}
