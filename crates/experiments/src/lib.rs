//! # ldpjs-experiments
//!
//! The evaluation harness: shared plumbing for the per-figure experiment binaries in
//! `src/bin/`.
//!
//! * [`config`] — a tiny flag parser (`--scale`, `--trials`, `--seed`, `--eps`, `--quick`)
//!   shared by all binaries, so every figure can be regenerated at paper scale or at a
//!   laptop-friendly default.
//! * [`methods`] — the competitor registry: FAGMS (non-private), k-RR, Apple-HCMS, FLH,
//!   LDPJoinSketch and LDPJoinSketch+, each exposed through one `estimate_join` entry point
//!   (plus timed variants for Fig. 13).
//! * [`runner`] — trial loops (optionally parallel across trials via crossbeam scoped
//!   threads) that feed [`ldpjs_metrics::TrialErrors`].
//!
//! Every binary prints a human-readable table mirroring the paper figure plus `csv,`-prefixed
//! lines for downstream plotting; EXPERIMENTS.md records the measured shapes next to the
//! paper's.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod methods;
pub mod runner;

pub use config::ExpArgs;
pub use methods::{estimate_join, Method, MethodOutcome, PlusKnobs};
pub use runner::{record_summary, run_trials, MethodSummary};
