//! The competitor registry used by every figure.
//!
//! Each method gets one entry point that takes a [`JoinWorkload`], the sketch parameters, the
//! privacy budget and a seed, runs the full (simulated) protocol, and returns the join-size
//! estimate together with offline/online timings and the total communication cost — the three
//! quantities the paper's figures plot.
//!
//! The paper's own estimators go through the **shared query-engine kernels** of
//! [`ldpjs_core::kernel`]: the plain online step dispatches
//! [`JoinKernel::Plain`](ldpjs_core::JoinKernel) on the two finalized sketch views, and
//! LDPJoinSketch+ runs [`PlusKernel`](ldpjs_core::PlusKernel)'s `JoinEst` inside
//! [`LdpJoinSketchPlus`] — the identical code paths the online `SketchService` serves, so
//! offline figures and online answers can never drift apart.

use ldpjs_common::error::Result;
use ldpjs_common::privacy::Epsilon;
use ldpjs_core::plus::{LdpJoinSketchPlus, PlusConfig};
use ldpjs_core::protocol::{build_private_sketch_parallel, report_bits};
use ldpjs_core::{JoinKernel, PlainKernel, QueryInput, SketchParams};
use ldpjs_data::JoinWorkload;
use ldpjs_ldp::{estimate_join_from_oracles, FlhOracle, FrequencyOracle, HcmsOracle, KrrOracle};
use ldpjs_sketch::FastAgmsSketch;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// The methods compared throughout the evaluation (Section VII-A "Competitors").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Fast-AGMS without privacy (the non-private reference, "FAGMS").
    Fagms,
    /// k-ary randomized response.
    Krr,
    /// Apple's Hadamard Count-Mean Sketch.
    AppleHcms,
    /// Fast Local Hashing.
    Flh,
    /// The paper's LDPJoinSketch.
    LdpJoinSketch,
    /// The paper's two-phase LDPJoinSketch+.
    LdpJoinSketchPlus,
}

impl Method {
    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Fagms => "FAGMS",
            Method::Krr => "k-RR",
            Method::AppleHcms => "Apple-HCMS",
            Method::Flh => "FLH",
            Method::LdpJoinSketch => "LDPJoinSketch",
            Method::LdpJoinSketchPlus => "LDPJoinSketch+",
        }
    }

    /// The full competitor line-up of Fig. 5 / Fig. 8 / Fig. 12.
    pub fn all() -> Vec<Method> {
        vec![
            Method::Fagms,
            Method::Krr,
            Method::AppleHcms,
            Method::Flh,
            Method::LdpJoinSketch,
            Method::LdpJoinSketchPlus,
        ]
    }

    /// The sketch-only subset of Fig. 6 / Fig. 9.
    pub fn sketch_methods() -> Vec<Method> {
        vec![
            Method::Fagms,
            Method::AppleHcms,
            Method::LdpJoinSketch,
            Method::LdpJoinSketchPlus,
        ]
    }

    /// Whether this method satisfies LDP (everything except the non-private FAGMS baseline).
    pub fn is_private(&self) -> bool {
        !matches!(self, Method::Fagms)
    }
}

/// The outcome of running one method on one workload once.
#[derive(Debug, Clone, Copy)]
pub struct MethodOutcome {
    /// The join-size estimate.
    pub estimate: f64,
    /// Offline time: client perturbation + sketch/oracle construction (seconds).
    pub offline_seconds: f64,
    /// Online time: answering the join query from the built structures (seconds).
    pub online_seconds: f64,
    /// Total client→server communication in bits.
    pub communication_bits: u64,
}

/// Extra knobs for LDPJoinSketch+ (phase-1 sampling rate and frequent-item threshold).
#[derive(Debug, Clone, Copy)]
pub struct PlusKnobs {
    /// Phase-1 sampling rate `r`.
    pub sampling_rate: f64,
    /// Frequent-item threshold `θ`.
    pub threshold: f64,
    /// Use the paper-literal non-target subtraction (ablation switch).
    pub paper_literal_subtraction: bool,
    /// Combine the phase-2 partial estimates by inverse-variance weight (ablation switch,
    /// see [`PlusConfig::variance_weighted_recombination`]).
    pub variance_weighted_recombination: bool,
}

impl Default for PlusKnobs {
    fn default() -> Self {
        // The paper's default θ is 0.001 at 40M-row scale; at the harness's scaled-down row
        // counts the phase-1 frequency noise floor is higher, so the default threshold is one
        // order of magnitude larger. Fig. 11's binary sweeps θ explicitly.
        PlusKnobs {
            sampling_rate: 0.1,
            threshold: 0.01,
            paper_literal_subtraction: false,
            variance_weighted_recombination: false,
        }
    }
}

/// Run `method` once on `workload` and return the estimate plus timings.
pub fn estimate_join(
    method: Method,
    workload: &JoinWorkload,
    params: SketchParams,
    eps: Epsilon,
    knobs: PlusKnobs,
    seed: u64,
) -> Result<MethodOutcome> {
    let mut rng = StdRng::seed_from_u64(seed);
    match method {
        Method::Fagms => {
            // lint:allow(determinism) — figure-table wall-clock timing of the method
            // run itself; the reported estimates depend only on the seeded RNG.
            let start = Instant::now();
            let mut sa = FastAgmsSketch::new(params, seed);
            let mut sb = FastAgmsSketch::new(params, seed);
            sa.update_all(&workload.table_a);
            sb.update_all(&workload.table_b);
            let offline = start.elapsed().as_secs_f64(); // lint:allow(telemetry-clock) — figure timing.
                                                         // lint:allow(determinism) — figure-table wall-clock timing of the method
                                                         // run itself; the reported estimates depend only on the seeded RNG.
            let start = Instant::now();
            let estimate = sa.join_size(&sb)?;
            let online = start.elapsed().as_secs_f64(); // lint:allow(telemetry-clock) — figure timing.
                                                        // No client→server perturbation protocol: count raw value transmission.
            let bits = 64 * (workload.table_a.len() + workload.table_b.len()) as u64;
            Ok(MethodOutcome {
                estimate,
                offline_seconds: offline,
                online_seconds: online,
                communication_bits: bits,
            })
        }
        Method::LdpJoinSketch => {
            // The harness runs the sharded pipeline with one shard: the estimate is
            // invariant to the shard count (chunk-seeded client streams, exact sharded
            // absorption), and pinning a single worker keeps the offline timings
            // apples-to-apples with the single-threaded competitor implementations across
            // machines. Multi-shard scaling is measured in bench_core_throughput instead.
            let shards = 1;
            // lint:allow(determinism) — figure-table wall-clock timing of the method
            // run itself; the reported estimates depend only on the seeded RNG.
            let start = Instant::now();
            let sa = build_private_sketch_parallel(
                &workload.table_a,
                params,
                eps,
                seed,
                seed ^ 0xA11CE,
                shards,
            )?;
            let sb = build_private_sketch_parallel(
                &workload.table_b,
                params,
                eps,
                seed,
                seed ^ 0xB0B,
                shards,
            )?;
            let offline = start.elapsed().as_secs_f64(); // lint:allow(telemetry-clock) — figure timing.
                                                         // lint:allow(determinism) — figure-table wall-clock timing of the method
                                                         // run itself; the reported estimates depend only on the seeded RNG.
            let start = Instant::now();
            // The online step is the shared plain kernel — dispatched through the same
            // `JoinKernel` front-end the unified query engine uses everywhere.
            let estimate = JoinKernel::Plain(PlainKernel).estimate(QueryInput::Plain(&sa, &sb))?;
            let online = start.elapsed().as_secs_f64(); // lint:allow(telemetry-clock) — figure timing.
            let bits =
                report_bits(params) * (workload.table_a.len() + workload.table_b.len()) as u64;
            Ok(MethodOutcome {
                estimate,
                offline_seconds: offline,
                online_seconds: online,
                communication_bits: bits,
            })
        }
        Method::LdpJoinSketchPlus => {
            let mut config = PlusConfig::new(params, eps);
            config.sampling_rate = knobs.sampling_rate;
            config.threshold = knobs.threshold;
            config.seed = seed;
            config.paper_literal_subtraction = knobs.paper_literal_subtraction;
            config.variance_weighted_recombination = knobs.variance_weighted_recombination;
            let domain = workload.domain();
            // lint:allow(determinism) — figure-table wall-clock timing of the method
            // run itself; the reported estimates depend only on the seeded RNG.
            let start = Instant::now();
            let result = LdpJoinSketchPlus::new(config)?.estimate(
                &workload.table_a,
                &workload.table_b,
                &domain,
                &mut rng,
            )?;
            let offline = start.elapsed().as_secs_f64(); // lint:allow(telemetry-clock) — figure timing.
            Ok(MethodOutcome {
                estimate: result.join_size,
                offline_seconds: offline,
                // The final combination is a handful of arithmetic operations once the
                // sketches exist; report it as effectively instantaneous like the paper does.
                online_seconds: 0.0,
                communication_bits: result.communication_bits,
            })
        }
        Method::Krr | Method::AppleHcms | Method::Flh => {
            let domain = workload.domain_size;
            // lint:allow(determinism) — figure-table wall-clock timing of the method
            // run itself; the reported estimates depend only on the seeded RNG.
            let start = Instant::now();
            let (oracle_a, oracle_b): (Box<dyn FrequencyOracle>, Box<dyn FrequencyOracle>) =
                match method {
                    Method::Krr => {
                        let mut a = KrrOracle::new(eps, domain.max(2));
                        let mut b = KrrOracle::new(eps, domain.max(2));
                        a.collect(&workload.table_a, &mut rng);
                        b.collect(&workload.table_b, &mut rng);
                        (Box::new(a), Box::new(b))
                    }
                    Method::AppleHcms => {
                        let mut a = HcmsOracle::new(params, eps, seed);
                        let mut b = HcmsOracle::new(params, eps, seed.wrapping_add(1));
                        a.collect(&workload.table_a, &mut rng);
                        b.collect(&workload.table_b, &mut rng);
                        (Box::new(a), Box::new(b))
                    }
                    Method::Flh => {
                        let mut a = FlhOracle::new_fast(eps, seed);
                        let mut b = FlhOracle::new_fast(eps, seed.wrapping_add(1));
                        a.collect(&workload.table_a, &mut rng);
                        b.collect(&workload.table_b, &mut rng);
                        (Box::new(a), Box::new(b))
                    }
                    _ => unreachable!(),
                };
            let offline = start.elapsed().as_secs_f64(); // lint:allow(telemetry-clock) — figure timing.
                                                         // lint:allow(determinism) — figure-table wall-clock timing of the method
                                                         // run itself; the reported estimates depend only on the seeded RNG.
            let start = Instant::now();
            let estimate = estimate_join_from_oracles(oracle_a.as_ref(), oracle_b.as_ref(), domain);
            let online = start.elapsed().as_secs_f64(); // lint:allow(telemetry-clock) — figure timing.
            let bits = oracle_a.report_bits() * workload.table_a.len() as u64
                + oracle_b.report_bits() * workload.table_b.len() as u64;
            Ok(MethodOutcome {
                estimate,
                offline_seconds: offline,
                online_seconds: online,
                communication_bits: bits,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldpjs_data::{PaperDataset, ZipfGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_workload() -> JoinWorkload {
        let gen = ZipfGenerator::new(1.5, 2_000);
        let mut rng = StdRng::seed_from_u64(1);
        JoinWorkload::generate("test", &gen, 20_000, &mut rng)
    }

    #[test]
    fn method_registry_is_complete() {
        assert_eq!(Method::all().len(), 6);
        assert_eq!(Method::sketch_methods().len(), 4);
        assert!(Method::LdpJoinSketch.is_private());
        assert!(!Method::Fagms.is_private());
        assert_eq!(Method::LdpJoinSketchPlus.name(), "LDPJoinSketch+");
    }

    #[test]
    fn every_method_produces_a_finite_estimate() {
        let w = small_workload();
        let params = SketchParams::new(8, 256).unwrap();
        let eps = Epsilon::new(4.0).unwrap();
        for method in Method::all() {
            let out = estimate_join(method, &w, params, eps, PlusKnobs::default(), 3).unwrap();
            assert!(
                out.estimate.is_finite(),
                "{} produced a non-finite estimate",
                method.name()
            );
            assert!(out.offline_seconds >= 0.0);
            assert!(out.communication_bits > 0);
        }
    }

    #[test]
    fn private_sketches_are_less_accurate_than_nonprivate_but_same_order() {
        let w = small_workload();
        let params = SketchParams::new(12, 512).unwrap();
        let eps = Epsilon::new(4.0).unwrap();
        let truth = w.true_join_size as f64;
        let fagms = estimate_join(Method::Fagms, &w, params, eps, PlusKnobs::default(), 5).unwrap();
        let ldp = estimate_join(
            Method::LdpJoinSketch,
            &w,
            params,
            eps,
            PlusKnobs::default(),
            5,
        )
        .unwrap();
        assert!((fagms.estimate - truth).abs() / truth < 0.2);
        assert!((ldp.estimate - truth).abs() / truth < 0.6);
    }

    #[test]
    fn paper_dataset_integration_smoke() {
        // Tiny scale just to prove the whole pipeline runs end to end on a Table II dataset.
        let w = PaperDataset::Facebook.generate_join(1e-9, 11);
        let params = SketchParams::new(8, 256).unwrap();
        let eps = Epsilon::new(4.0).unwrap();
        let out = estimate_join(
            Method::LdpJoinSketch,
            &w,
            params,
            eps,
            PlusKnobs::default(),
            1,
        )
        .unwrap();
        assert!(out.estimate.is_finite());
    }
}
