//! Trial loops shared by the experiment binaries.
//!
//! The paper averages every reported number over several testing rounds. [`run_trials`] runs a
//! method over `trials` independent rounds — each round re-perturbs every user with a fresh
//! seed — and aggregates AE/RE. Rounds are independent, so they are executed in parallel with
//! `std::thread::scope` when more than one trial is requested.

use ldpjs_common::privacy::Epsilon;
use ldpjs_core::SketchParams;
use ldpjs_data::JoinWorkload;
use ldpjs_metrics::telemetry::{Stability, Telemetry};
use ldpjs_metrics::TrialErrors;

use crate::methods::{estimate_join, Method, MethodOutcome, PlusKnobs};

/// Aggregated results of one method over all trials of one configuration.
#[derive(Debug, Clone)]
pub struct MethodSummary {
    /// Which method this summarises.
    pub method: Method,
    /// Mean absolute error over trials (the paper's AE).
    pub mean_absolute_error: f64,
    /// Mean relative error over trials (the paper's RE).
    pub mean_relative_error: f64,
    /// Mean estimate over trials (useful for debugging bias).
    pub mean_estimate: f64,
    /// Mean offline construction time per trial (seconds).
    pub mean_offline_seconds: f64,
    /// Mean online estimation time per trial (seconds).
    pub mean_online_seconds: f64,
    /// Communication cost in bits (identical across trials).
    pub communication_bits: u64,
    /// Number of trials aggregated.
    pub trials: usize,
}

/// Run `method` for `trials` independent rounds on `workload` and aggregate the errors.
///
/// # Panics
/// Panics if `trials == 0` or any trial fails (experiment binaries treat that as fatal).
pub fn run_trials(
    method: Method,
    workload: &JoinWorkload,
    params: SketchParams,
    eps: Epsilon,
    knobs: PlusKnobs,
    base_seed: u64,
    trials: usize,
) -> MethodSummary {
    assert!(trials > 0, "at least one trial is required");
    let outcomes: Vec<MethodOutcome> = if trials == 1 {
        vec![
            estimate_join(method, workload, params, eps, knobs, base_seed)
                .expect("experiment trial failed"),
        ]
    } else {
        let mut slots: Vec<Option<MethodOutcome>> = vec![None; trials];
        std::thread::scope(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                let seed = base_seed.wrapping_add(i as u64 * 0x9E37_79B9);
                scope.spawn(move || {
                    *slot = Some(
                        estimate_join(method, workload, params, eps, knobs, seed)
                            .expect("experiment trial failed"),
                    );
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("missing trial result"))
            .collect()
    };

    let truth = workload.true_join_size as f64;
    let mut errors = TrialErrors::new();
    let mut est_sum = 0.0;
    let mut offline_sum = 0.0;
    let mut online_sum = 0.0;
    for o in &outcomes {
        errors.record(truth, o.estimate);
        est_sum += o.estimate;
        offline_sum += o.offline_seconds;
        online_sum += o.online_seconds;
    }
    let n = outcomes.len() as f64;
    MethodSummary {
        method,
        mean_absolute_error: errors.mean_absolute_error().unwrap_or(f64::NAN),
        mean_relative_error: errors.mean_relative_error().unwrap_or(f64::NAN),
        mean_estimate: est_sum / n,
        mean_offline_seconds: offline_sum / n,
        mean_online_seconds: online_sum / n,
        communication_bits: outcomes[0].communication_bits,
        trials: outcomes.len(),
    }
}

/// Record an aggregated summary into a telemetry registry under `{method="…"}` labels, so
/// experiment binaries account protocol costs through the same registry the online service
/// exports instead of carrying ad-hoc bits arithmetic to their print statements.
///
/// Trial counts and communication bits are exact protocol facts and register as
/// [`Stability::Deterministic`]; the wall-clock figure timings register as
/// [`Stability::Environment`] so they never pollute a deterministic snapshot.
pub fn record_summary(telemetry: &Telemetry, summary: &MethodSummary) {
    let method = summary.method.name();
    let name = |base: &str| format!("{base}{{method=\"{method}\"}}");
    telemetry
        .counter(&name("ldpjs_exp_trials_total"), Stability::Deterministic)
        .add(summary.trials as u64);
    telemetry
        .gauge(
            &name("ldpjs_exp_communication_bits"),
            Stability::Deterministic,
        )
        .set(summary.communication_bits);
    let seconds_to_ns = |s: f64| (s * 1e9).max(0.0) as u64;
    // Nanosecond buckets: powers of 32 from 1µs up — coarse, these are figure-scale times.
    let buckets = [
        1_000,
        32_000,
        1_024_000,
        32_768_000,
        1_048_576_000,
        33_554_432_000,
    ];
    telemetry
        .histogram(
            &name("ldpjs_exp_offline_ns"),
            Stability::Environment,
            &buckets,
        )
        .record(seconds_to_ns(summary.mean_offline_seconds));
    telemetry
        .histogram(
            &name("ldpjs_exp_online_ns"),
            Stability::Environment,
            &buckets,
        )
        .record(seconds_to_ns(summary.mean_online_seconds));
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldpjs_data::ZipfGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload() -> JoinWorkload {
        let gen = ZipfGenerator::new(1.5, 1_000);
        let mut rng = StdRng::seed_from_u64(2);
        JoinWorkload::generate("test", &gen, 10_000, &mut rng)
    }

    #[test]
    fn single_trial_and_parallel_trials_agree_in_shape() {
        let w = workload();
        let params = SketchParams::new(6, 128).unwrap();
        let eps = Epsilon::new(4.0).unwrap();
        let one = run_trials(
            Method::LdpJoinSketch,
            &w,
            params,
            eps,
            PlusKnobs::default(),
            1,
            1,
        );
        assert_eq!(one.trials, 1);
        assert!(one.mean_absolute_error.is_finite());
        let three = run_trials(
            Method::LdpJoinSketch,
            &w,
            params,
            eps,
            PlusKnobs::default(),
            1,
            3,
        );
        assert_eq!(three.trials, 3);
        assert!(three.mean_relative_error.is_finite());
        assert_eq!(one.communication_bits, three.communication_bits);
    }

    #[test]
    fn record_summary_accounts_through_the_registry() {
        let w = workload();
        let params = SketchParams::new(6, 128).unwrap();
        let eps = Epsilon::new(4.0).unwrap();
        let summary = run_trials(
            Method::LdpJoinSketch,
            &w,
            params,
            eps,
            PlusKnobs::default(),
            1,
            2,
        );
        let telemetry = Telemetry::new();
        record_summary(&telemetry, &summary);
        record_summary(&telemetry, &summary);
        let bits = telemetry
            .gauge(
                "ldpjs_exp_communication_bits{method=\"LDPJoinSketch\"}",
                Stability::Deterministic,
            )
            .get();
        assert_eq!(bits, summary.communication_bits);
        let trials = telemetry
            .counter(
                "ldpjs_exp_trials_total{method=\"LDPJoinSketch\"}",
                Stability::Deterministic,
            )
            .get();
        assert_eq!(trials, 4);
        // The figure timings land in the environment tier only.
        let det = telemetry.deterministic_snapshot().to_text();
        assert!(!det.contains("ldpjs_exp_offline_ns"));
        assert!(telemetry
            .snapshot()
            .to_text()
            .contains("ldpjs_exp_offline_ns"));
    }

    #[test]
    fn nonprivate_baseline_has_lower_error_than_krr() {
        let w = workload();
        let params = SketchParams::new(8, 256).unwrap();
        let eps = Epsilon::new(1.0).unwrap();
        let fagms = run_trials(Method::Fagms, &w, params, eps, PlusKnobs::default(), 3, 2);
        let krr = run_trials(Method::Krr, &w, params, eps, PlusKnobs::default(), 3, 2);
        assert!(
            fagms.mean_absolute_error < krr.mean_absolute_error,
            "non-private FAGMS ({}) should beat k-RR ({}) at ε=1",
            fagms.mean_absolute_error,
            krr.mean_absolute_error
        );
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn rejects_zero_trials() {
        let w = workload();
        let params = SketchParams::new(4, 64).unwrap();
        let eps = Epsilon::new(1.0).unwrap();
        run_trials(Method::Fagms, &w, params, eps, PlusKnobs::default(), 0, 0);
    }
}
