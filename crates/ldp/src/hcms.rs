//! Apple's Hadamard Count-Mean Sketch (HCMS) baseline.
//!
//! Section III-C of the paper. The client-side pipeline is identical to LDPJoinSketch's
//! (Algorithm 1) except for the encoding step: HCMS sets `v[h_j(d)] = 1` whereas
//! LDPJoinSketch sets `v[h_j(d)] = ξ_j(d)`. Concretely, each client
//!
//! 1. samples a row `j ∈ [k]` and a Hadamard coordinate `l ∈ [m]`,
//! 2. computes `w[l] = H_m[h_j(d), l]`,
//! 3. flips the sign with probability `1/(e^ε+1)` and reports `(y, j, l)`.
//!
//! The server accumulates `M[j, l] += k·c_ε·y`, applies the inverse Hadamard transform per
//! row, and answers point queries with the Count-Mean de-bias
//! `f̃(d) = m/(m−1)·(mean_j M[j, h_j(d)] − n/m)`.
//!
//! Because there is no sign hash, inner products of HCMS sketches are biased by hash
//! collisions; the paper therefore estimates join sizes for HCMS (and the other frequency
//! oracles) by summing `f̃_A(d)·f̃_B(d)` over the domain — see [`crate::join`].

use ldpjs_common::error::{Error, Result};
use ldpjs_common::hadamard::{fwht_in_place, hadamard_entry_f64};
use ldpjs_common::hash::RowHashes;
use ldpjs_common::privacy::Epsilon;
use ldpjs_common::rr::sample_sign_bit;
use ldpjs_sketch::SketchParams;
use rand::{Rng, RngCore};

use crate::oracle::FrequencyOracle;

/// One perturbed HCMS client report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HcmsReport {
    /// The perturbed Hadamard coefficient (±1).
    pub y: f64,
    /// Sampled sketch row.
    pub row: usize,
    /// Sampled Hadamard coordinate.
    pub col: usize,
}

/// The Apple-HCMS frequency oracle (client simulation + server aggregation).
#[derive(Debug, Clone)]
pub struct HcmsOracle {
    params: SketchParams,
    eps: Epsilon,
    hashes: RowHashes,
    /// Accumulated (still Hadamard-domain) sketch, row-major `k × m`.
    raw: Vec<f64>,
    /// Lazily computed transformed sketch.
    transformed: Option<Vec<f64>>,
    n: u64,
}

impl HcmsOracle {
    /// Create an HCMS oracle with sketch parameters `params`, privacy budget `eps`, and a hash
    /// family derived from `seed`.
    pub fn new(params: SketchParams, eps: Epsilon, seed: u64) -> Self {
        let hashes = RowHashes::from_seed(seed, params.rows(), params.columns());
        HcmsOracle {
            params,
            eps,
            hashes,
            raw: vec![0.0; params.counters()],
            transformed: None,
            n: 0,
        }
    }

    /// Sketch parameters.
    #[inline]
    pub fn params(&self) -> SketchParams {
        self.params
    }

    /// Client-side encoding and perturbation of one value (Apple-HCMS client).
    pub fn perturb(&self, value: u64, rng: &mut dyn RngCore) -> HcmsReport {
        let k = self.params.rows();
        let m = self.params.columns();
        let row = rng.gen_range(0..k);
        let col = rng.gen_range(0..m);
        let bucket = self.hashes.pair(row).bucket_of(value);
        let w = hadamard_entry_f64(m, bucket, col);
        let y = sample_sign_bit(rng, self.eps) * w;
        HcmsReport { y, row, col }
    }

    /// Server-side aggregation of one report.
    ///
    /// Rejects reports whose `(row, col)` falls outside the sketch before touching any
    /// counter, mirroring `SketchBuilder::absorb`: an attacker-supplied index must not
    /// panic the aggregator or (worse, with a permissive indexing scheme) land in a
    /// neighbouring row.
    pub fn absorb(&mut self, report: HcmsReport) -> Result<()> {
        if report.row >= self.params.rows() || report.col >= self.params.columns() {
            return Err(Error::ReportOutOfRange {
                row: report.row,
                col: report.col,
                rows: self.params.rows(),
                cols: self.params.columns(),
            });
        }
        let k = self.params.rows() as f64;
        let idx = report.row * self.params.columns() + report.col;
        self.raw[idx] += k * self.eps.c_eps() * report.y;
        self.transformed = None;
        self.n += 1;
        Ok(())
    }

    /// The de-transformed sketch (rows restored from the Hadamard domain).
    fn sketch(&self) -> Vec<f64> {
        if let Some(t) = &self.transformed {
            return t.clone();
        }
        let m = self.params.columns();
        let mut t = self.raw.clone();
        for j in 0..self.params.rows() {
            fwht_in_place(&mut t[j * m..(j + 1) * m]);
        }
        t
    }

    /// Force the lazy Hadamard restore and cache it (useful before a batch of estimates).
    pub fn finalize(&mut self) {
        if self.transformed.is_none() {
            let t = self.sketch();
            self.transformed = Some(t);
        }
    }
}

impl FrequencyOracle for HcmsOracle {
    fn name(&self) -> &'static str {
        "Apple-HCMS"
    }

    fn collect(&mut self, values: &[u64], rng: &mut dyn RngCore) {
        for &v in values {
            let report = self.perturb(v, rng);
            self.absorb(report)
                .expect("perturb only emits in-range indices");
        }
        self.finalize();
    }

    fn estimate(&self, value: u64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let m = self.params.columns() as f64;
        let k = self.params.rows();
        let sketch = self.sketch();
        let sum: f64 = (0..k)
            .map(|j| {
                let bucket = self.hashes.pair(j).bucket_of(value);
                sketch[j * self.params.columns() + bucket]
            })
            .sum();
        let mean = sum / k as f64;
        (m / (m - 1.0)) * (mean - self.n as f64 / m)
    }

    fn total_reports(&self) -> u64 {
        self.n
    }

    fn report_bits(&self) -> u64 {
        // One perturbed bit plus the (j, l) indices.
        let k_bits = (self.params.rows().max(2) as f64).log2().ceil() as u64;
        let m_bits = (self.params.columns().max(2) as f64).log2().ceil() as u64;
        1 + k_bits + m_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params(k: usize, m: usize) -> SketchParams {
        SketchParams::new(k, m).unwrap()
    }

    #[test]
    fn reports_are_signs_with_valid_indices() {
        let eps = Epsilon::new(2.0).unwrap();
        let oracle = HcmsOracle::new(params(8, 256), eps, 3);
        let mut rng = StdRng::seed_from_u64(0);
        for v in 0..200u64 {
            let r = oracle.perturb(v, &mut rng);
            assert!(r.y == 1.0 || r.y == -1.0);
            assert!(r.row < 8);
            assert!(r.col < 256);
        }
    }

    #[test]
    fn estimates_recover_heavy_hitters() {
        let eps = Epsilon::new(4.0).unwrap();
        let mut oracle = HcmsOracle::new(params(16, 1024), eps, 11);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 200_000usize;
        // 40% value 3, 30% value 77, 30% uniform noise over 1000 values.
        let values: Vec<u64> = (0..n)
            .map(|i| match i % 10 {
                0..=3 => 3,
                4..=6 => 77,
                _ => 1000 + (i as u64 * 7919) % 1000,
            })
            .collect();
        oracle.collect(&values, &mut rng);
        let e3 = oracle.estimate(3);
        let e77 = oracle.estimate(77);
        let e_absent = oracle.estimate(500);
        assert!(
            (e3 - 0.4 * n as f64).abs() < 0.06 * n as f64,
            "estimate of 3: {e3}"
        );
        assert!(
            (e77 - 0.3 * n as f64).abs() < 0.06 * n as f64,
            "estimate of 77: {e77}"
        );
        assert!(
            e_absent.abs() < 0.06 * n as f64,
            "estimate of absent value: {e_absent}"
        );
    }

    #[test]
    fn absorb_rejects_out_of_range_reports() {
        let eps = Epsilon::new(2.0).unwrap();
        let mut oracle = HcmsOracle::new(params(4, 64), eps, 7);
        let bad_row = HcmsReport {
            y: 1.0,
            row: 4,
            col: 0,
        };
        let bad_col = HcmsReport {
            y: -1.0,
            row: 0,
            col: 64,
        };
        for bad in [bad_row, bad_col] {
            let err = oracle.absorb(bad).unwrap_err();
            assert!(matches!(
                err,
                Error::ReportOutOfRange {
                    rows: 4,
                    cols: 64,
                    ..
                }
            ));
        }
        // Rejected reports must leave the oracle untouched.
        assert_eq!(oracle.total_reports(), 0);
        assert_eq!(oracle.estimate(1), 0.0);
        // A valid report still lands.
        oracle
            .absorb(HcmsReport {
                y: 1.0,
                row: 3,
                col: 63,
            })
            .unwrap();
        assert_eq!(oracle.total_reports(), 1);
    }

    #[test]
    fn empty_oracle_estimates_zero() {
        let eps = Epsilon::new(1.0).unwrap();
        let oracle = HcmsOracle::new(params(4, 64), eps, 0);
        assert_eq!(oracle.estimate(42), 0.0);
        assert_eq!(oracle.total_reports(), 0);
    }

    #[test]
    fn report_bits_counts_payload_and_indices() {
        let eps = Epsilon::new(4.0).unwrap();
        let oracle = HcmsOracle::new(params(16, 1024), eps, 0);
        // 1 bit + 4 bits (k=16) + 10 bits (m=1024).
        assert_eq!(oracle.report_bits(), 15);
        assert_eq!(oracle.name(), "Apple-HCMS");
    }

    #[test]
    fn larger_epsilon_reduces_noise() {
        let n = 60_000usize;
        let values: Vec<u64> = vec![9; n];
        let run = |eps: f64, seed: u64| {
            let mut oracle = HcmsOracle::new(params(8, 512), Epsilon::new(eps).unwrap(), 21);
            let mut rng = StdRng::seed_from_u64(seed);
            oracle.collect(&values, &mut rng);
            (oracle.estimate(9) - n as f64).abs()
        };
        // Average over a few seeds to avoid flakiness.
        let err_small: f64 = (0..4).map(|s| run(0.5, s)).sum::<f64>() / 4.0;
        let err_large: f64 = (0..4).map(|s| run(8.0, s)).sum::<f64>() / 4.0;
        assert!(
            err_large < err_small,
            "ε=8 should be more accurate than ε=0.5: {err_large} vs {err_small}"
        );
    }
}
