//! Join-size estimation on top of frequency oracles.
//!
//! The paper's baselines (k-RR, FLH, Apple-HCMS) are frequency oracles, not join sketches.
//! Section II explains how they are pressed into service for join-size estimation: estimate
//! the frequency of every candidate join value on both sides and sum the products,
//! `Est = Σ_{d∈D} f̃_A(d)·f̃_B(d)`.
//!
//! This strategy accumulates the per-value noise across the whole domain — the "cumulative
//! errors and efficiency issues" the paper attributes to the baselines — which is precisely
//! what the figures show and what LDPJoinSketch avoids by multiplying sketches instead.

use crate::oracle::FrequencyOracle;

/// Estimate `|A ⋈ B|` from two frequency oracles by summing frequency products over the
/// candidate join domain `{0, …, domain−1}`.
pub fn estimate_join_from_oracles<A, B>(oracle_a: &A, oracle_b: &B, domain: u64) -> f64
where
    A: FrequencyOracle + ?Sized,
    B: FrequencyOracle + ?Sized,
{
    let mut est = 0.0;
    for d in 0..domain {
        est += oracle_a.estimate(d) * oracle_b.estimate(d);
    }
    est
}

/// Estimate `|A ⋈ B|` restricted to an explicit candidate set (used when the domain is huge
/// but the candidates are known, e.g. the values observed in a public dimension table).
pub fn estimate_join_over_candidates<A, B>(oracle_a: &A, oracle_b: &B, candidates: &[u64]) -> f64
where
    A: FrequencyOracle + ?Sized,
    B: FrequencyOracle + ?Sized,
{
    candidates
        .iter()
        .map(|&d| oracle_a.estimate(d) * oracle_b.estimate(d))
        .sum()
}

/// Total client→server communication, in bits, of running the mechanism over `users_a`
/// users on attribute A and `users_b` users on attribute B (the quantity plotted in Fig. 7).
pub fn join_communication_bits<O: FrequencyOracle + ?Sized>(
    oracle: &O,
    users_a: u64,
    users_b: u64,
) -> u64 {
    oracle.report_bits() * (users_a + users_b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::krr::KrrOracle;
    use ldpjs_common::privacy::Epsilon;
    use ldpjs_common::stats::exact_join_size;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn krr_join_estimate_tracks_truth_on_small_domain() {
        let eps = Epsilon::new(4.0).unwrap();
        let domain = 32u64;
        let mut rng = StdRng::seed_from_u64(17);
        let a: Vec<u64> = (0..80_000).map(|i| (i % 7) as u64).collect();
        let b: Vec<u64> = (0..80_000).map(|i| (i % 11) as u64).collect();
        let mut oa = KrrOracle::new(eps, domain);
        let mut ob = KrrOracle::new(eps, domain);
        oa.collect(&a, &mut rng);
        ob.collect(&b, &mut rng);
        let est = estimate_join_from_oracles(&oa, &ob, domain);
        let truth = exact_join_size(&a, &b) as f64;
        let re = (est - truth).abs() / truth;
        assert!(re < 0.1, "relative error {re} (est {est}, truth {truth})");
    }

    #[test]
    fn candidate_restricted_estimate_matches_full_domain_when_candidates_cover_it() {
        let eps = Epsilon::new(3.0).unwrap();
        let domain = 16u64;
        let mut rng = StdRng::seed_from_u64(2);
        let a: Vec<u64> = (0..20_000).map(|i| (i % 4) as u64).collect();
        let b: Vec<u64> = (0..20_000).map(|i| (i % 8) as u64).collect();
        let mut oa = KrrOracle::new(eps, domain);
        let mut ob = KrrOracle::new(eps, domain);
        oa.collect(&a, &mut rng);
        ob.collect(&b, &mut rng);
        let full = estimate_join_from_oracles(&oa, &ob, domain);
        let candidates: Vec<u64> = (0..domain).collect();
        let restricted = estimate_join_over_candidates(&oa, &ob, &candidates);
        assert!((full - restricted).abs() < 1e-9);
    }

    #[test]
    fn communication_cost_is_linear_in_users() {
        let eps = Epsilon::new(4.0).unwrap();
        let oracle = KrrOracle::new(eps, 1024);
        assert_eq!(join_communication_bits(&oracle, 100, 50), 10 * 150);
        assert_eq!(join_communication_bits(&oracle, 0, 0), 0);
    }
}
