//! k-ary Randomized Response (k-RR), the direct-encoding baseline.
//!
//! Each user reports its true value with probability `p = e^ε/(e^ε + |D| − 1)` and a uniformly
//! random *other* value otherwise. The server counts reports per value and de-biases:
//! `f̃(d) = (c(d) − n·q)/(p − q)` with `q = 1/(e^ε + |D| − 1)`.
//!
//! With large domains (the paper's challenge I) `p ≈ q`, the de-bias factor explodes and the
//! estimates become extremely noisy — exactly the behaviour the evaluation shows in Fig. 5
//! and Fig. 8. The implementation stores a dense count vector over the domain, which is
//! practical for the domains in Table II (≤ a few million values).

use ldpjs_common::privacy::Epsilon;
use ldpjs_common::rr::{krr_debias, krr_perturb};
use rand::RngCore;

use crate::oracle::FrequencyOracle;

/// The k-RR frequency oracle.
#[derive(Debug, Clone)]
pub struct KrrOracle {
    eps: Epsilon,
    domain: u64,
    counts: Vec<u64>,
    n: u64,
}

impl KrrOracle {
    /// Create a k-RR oracle over the domain `{0, …, domain−1}` with privacy budget `eps`.
    ///
    /// # Panics
    /// Panics if `domain < 2` (randomized response needs at least two values).
    pub fn new(eps: Epsilon, domain: u64) -> Self {
        assert!(domain >= 2, "k-RR needs a domain of at least two values");
        KrrOracle {
            eps,
            domain,
            counts: vec![0; domain as usize],
            n: 0,
        }
    }

    /// The domain size `|D|`.
    #[inline]
    pub fn domain(&self) -> u64 {
        self.domain
    }

    /// The privacy budget.
    #[inline]
    pub fn epsilon(&self) -> Epsilon {
        self.eps
    }

    /// Perturb a single value client-side (exposed for tests and the communication harness).
    pub fn perturb(&self, value: u64, rng: &mut dyn RngCore) -> u64 {
        krr_perturb(rng, self.eps, self.domain, value)
    }
}

impl FrequencyOracle for KrrOracle {
    fn name(&self) -> &'static str {
        "k-RR"
    }

    fn collect(&mut self, values: &[u64], rng: &mut dyn RngCore) {
        for &v in values {
            let report = krr_perturb(rng, self.eps, self.domain, v);
            self.counts[report as usize] += 1;
            self.n += 1;
        }
    }

    fn estimate(&self, value: u64) -> f64 {
        if value >= self.domain {
            return 0.0;
        }
        krr_debias(
            self.counts[value as usize] as f64,
            self.n as f64,
            self.domain as usize,
            self.eps,
        )
    }

    fn total_reports(&self) -> u64 {
        self.n
    }

    fn report_bits(&self) -> u64 {
        // A report is one value out of |D|.
        (self.domain.max(2) as f64).log2().ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn estimates_are_unbiased_on_small_domain() {
        let eps = Epsilon::new(2.0).unwrap();
        let mut oracle = KrrOracle::new(eps, 10);
        let mut rng = StdRng::seed_from_u64(5);
        // 60% value 0, 40% value 9.
        let values: Vec<u64> = (0..100_000)
            .map(|i| if i % 5 < 3 { 0 } else { 9 })
            .collect();
        oracle.collect(&values, &mut rng);
        assert_eq!(oracle.total_reports(), 100_000);
        let e0 = oracle.estimate(0);
        let e9 = oracle.estimate(9);
        let e5 = oracle.estimate(5);
        assert!((e0 - 60_000.0).abs() < 2_000.0, "estimate of 0: {e0}");
        assert!((e9 - 40_000.0).abs() < 2_000.0, "estimate of 9: {e9}");
        assert!(e5.abs() < 2_000.0, "estimate of 5: {e5}");
    }

    #[test]
    fn large_domain_estimates_are_much_noisier() {
        // The same data, but embedded in a much larger domain: the noise floor grows with |D|,
        // which is the paper's motivation for sketch-based approaches.
        let eps = Epsilon::new(1.0).unwrap();
        let values: Vec<u64> = (0..20_000)
            .map(|i| if i % 2 == 0 { 0 } else { 1 })
            .collect();
        let mut rng = StdRng::seed_from_u64(6);

        let mut small = KrrOracle::new(eps, 16);
        small.collect(&values, &mut rng);
        let mut large = KrrOracle::new(eps, 65_536);
        large.collect(&values, &mut rng);

        // Noise on an *unoccupied* value: measure the absolute de-biased estimate.
        let small_noise: f64 = (2..12).map(|v| small.estimate(v).abs()).sum();
        let large_noise: f64 = (2..12).map(|v| large.estimate(v).abs()).sum();
        assert!(
            large_noise > small_noise,
            "expected more noise with the larger domain: {large_noise} vs {small_noise}"
        );
    }

    #[test]
    fn report_bits_grows_logarithmically() {
        let eps = Epsilon::new(4.0).unwrap();
        assert_eq!(KrrOracle::new(eps, 1024).report_bits(), 10);
        assert_eq!(KrrOracle::new(eps, 1_048_576).report_bits(), 20);
        assert_eq!(KrrOracle::new(eps, 3).report_bits(), 2);
    }

    #[test]
    fn out_of_domain_estimate_is_zero() {
        let eps = Epsilon::new(4.0).unwrap();
        let oracle = KrrOracle::new(eps, 8);
        assert_eq!(oracle.estimate(9), 0.0);
    }

    #[test]
    fn perturb_keeps_value_with_high_probability_for_large_eps() {
        let eps = Epsilon::new(10.0).unwrap();
        let oracle = KrrOracle::new(eps, 100);
        let mut rng = StdRng::seed_from_u64(1);
        let kept = (0..1000)
            .filter(|_| oracle.perturb(7, &mut rng) == 7)
            .count();
        assert!(kept > 950, "kept only {kept}/1000 with ε=10");
    }

    #[test]
    #[should_panic(expected = "at least two values")]
    fn rejects_degenerate_domain() {
        let _ = KrrOracle::new(Epsilon::new(1.0).unwrap(), 1);
    }
}
