//! # ldpjs-ldp
//!
//! The baseline LDP mechanisms the paper compares against (Section VII-A, "Competitors"):
//!
//! * [`krr`] — k-ary Randomized Response, the textbook direct-encoding mechanism.
//! * [`olh`] — Optimal Local Hashing and its heuristic fast variant **FLH**.
//! * [`hcms`] — Apple's Hadamard Count-Mean Sketch.
//! * [`join`] — join-size estimation on top of any frequency oracle by summing
//!   `f̃_A(d)·f̃_B(d)` over the candidate join domain (the strategy the paper ascribes to the
//!   frequency-oracle baselines).
//!
//! All mechanisms implement the [`FrequencyOracle`] trait so the experiment harness can sweep
//! them uniformly; each also reports its per-user communication cost for Fig. 7.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hcms;
pub mod join;
pub mod krr;
pub mod olh;
pub mod oracle;

pub use hcms::HcmsOracle;
pub use join::{estimate_join_from_oracles, join_communication_bits};
pub use krr::KrrOracle;
pub use olh::{FlhOracle, FlhReport, OlhVariant};
pub use oracle::FrequencyOracle;
