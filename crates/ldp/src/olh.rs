//! Optimal Local Hashing (OLH) and its heuristic fast variant FLH.
//!
//! OLH (Wang et al.) maps each user's value through a per-user random hash `H : D -> [g]`
//! with `g = ⌊e^ε⌋ + 1`, then applies k-RR over the hashed domain `[g]`. The server's support
//! count of a candidate value `d` is the number of reports `(H_i, y_i)` with `H_i(d) = y_i`,
//! de-biased by `f̃(d) = (C(d) − n/g)/(p − 1/g)`.
//!
//! **FLH** (the variant the paper benchmarks) trades accuracy for speed by restricting the
//! per-user hash to a fixed pool of `k'` functions. The server then only needs a `k' × g`
//! count matrix and evaluates each candidate value against `k'` hashes instead of `n`.
//!
//! The hash pool is derived from a seed shared by clients and server (public information in
//! the LDP protocol, like the sketch hash families).

use ldpjs_common::hash::BucketHash;
use ldpjs_common::privacy::Epsilon;
use ldpjs_common::rr::krr_perturb_with_p;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::oracle::FrequencyOracle;

/// Which flavour of local hashing an [`FlhOracle`] simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OlhVariant {
    /// A large hash pool approximating per-user hashing (accuracy-oriented).
    OptimalLike,
    /// The fast heuristic with a small, fixed hash pool (the paper's FLH competitor).
    Fast,
}

/// One perturbed FLH client report: the sampled hash function and the (k-RR perturbed)
/// hashed value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlhReport {
    /// Index of the hash function sampled from the public pool.
    pub hash_index: usize,
    /// The perturbed hashed value in `[g]`.
    pub bucket: u64,
}

/// The FLH / OLH-like frequency oracle.
#[derive(Debug, Clone)]
pub struct FlhOracle {
    eps: Epsilon,
    g: u64,
    /// Cached keep probability of the inner k-RR over `[g]` (ε and g are fixed at
    /// construction, and `perturb` is called once per report).
    keep_p: f64,
    variant: OlhVariant,
    hashes: Vec<BucketHash>,
    /// `hash_count × g` matrix of report counts, row-major.
    counts: Vec<u64>,
    n: u64,
}

impl FlhOracle {
    /// Default pool size of the fast variant (the heuristic the FLH paper recommends is in the
    /// thousands; we default to a value that keeps the scaled-down experiments fast).
    pub const DEFAULT_FAST_POOL: usize = 512;

    /// Create an FLH oracle with an explicit hash-pool size.
    ///
    /// # Panics
    /// Panics if `hash_count == 0`.
    pub fn with_pool(eps: Epsilon, hash_count: usize, seed: u64, variant: OlhVariant) -> Self {
        assert!(hash_count > 0, "FLH needs at least one hash function");
        let g = (eps.exp().floor() as u64 + 1).max(2);
        let mut rng = StdRng::seed_from_u64(seed);
        let hashes = (0..hash_count)
            .map(|_| BucketHash::sample(&mut rng, g as usize))
            .collect();
        FlhOracle {
            eps,
            g,
            keep_p: eps.krr_keep_probability(g as usize),
            variant,
            hashes,
            counts: vec![0; hash_count * g as usize],
            n: 0,
        }
    }

    /// Create the paper's FLH competitor with the default pool size.
    pub fn new_fast(eps: Epsilon, seed: u64) -> Self {
        Self::with_pool(eps, Self::DEFAULT_FAST_POOL, seed, OlhVariant::Fast)
    }

    /// Create an OLH-like oracle with a large pool (slower, closer to per-user hashing).
    pub fn new_optimal_like(eps: Epsilon, seed: u64) -> Self {
        Self::with_pool(eps, 8192, seed, OlhVariant::OptimalLike)
    }

    /// The privacy budget ε.
    #[inline]
    pub fn epsilon(&self) -> Epsilon {
        self.eps
    }

    /// The hashed-domain size `g = ⌊e^ε⌋ + 1`.
    #[inline]
    pub fn g(&self) -> u64 {
        self.g
    }

    /// Number of hash functions in the pool.
    #[inline]
    pub fn pool_size(&self) -> usize {
        self.hashes.len()
    }

    /// The keep probability of the inner k-RR over `[g]`.
    fn keep_probability(&self) -> f64 {
        self.keep_p
    }

    /// Client-side encoding and perturbation of one value: sample a hash function from the
    /// pool, hash the value into `[g]`, and apply k-RR over `[g]` to the hashed value. The
    /// report `(hash_index, bucket)` is everything the server ever sees for this user.
    pub fn perturb(&self, value: u64, rng: &mut dyn RngCore) -> FlhReport {
        let hash_index = rng.gen_range(0..self.hashes.len());
        let hashed = self.hashes[hash_index].hash(value) as u64;
        let bucket = krr_perturb_with_p(rng, self.keep_p, self.g, hashed);
        FlhReport { hash_index, bucket }
    }
}

impl FrequencyOracle for FlhOracle {
    fn name(&self) -> &'static str {
        match self.variant {
            OlhVariant::OptimalLike => "OLH",
            OlhVariant::Fast => "FLH",
        }
    }

    fn collect(&mut self, values: &[u64], rng: &mut dyn RngCore) {
        for &v in values {
            let report = self.perturb(v, rng);
            self.counts[report.hash_index * self.g as usize + report.bucket as usize] += 1;
            self.n += 1;
        }
    }

    fn estimate(&self, value: u64) -> f64 {
        // Support count: reports whose hash maps the candidate value onto the reported cell.
        let mut support = 0u64;
        for (idx, h) in self.hashes.iter().enumerate() {
            let cell = h.hash(value);
            support += self.counts[idx * self.g as usize + cell];
        }
        let n = self.n as f64;
        let p = self.keep_probability();
        let q = 1.0 / self.g as f64;
        (support as f64 - n * q) / (p - q)
    }

    fn total_reports(&self) -> u64 {
        self.n
    }

    fn report_bits(&self) -> u64 {
        // A report is the hash-function index plus a value in [g].
        let g_bits = (self.g.max(2) as f64).log2().ceil() as u64;
        let idx_bits = (self.hashes.len().max(2) as f64).log2().ceil() as u64;
        g_bits + idx_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn g_matches_definition() {
        let o = FlhOracle::new_fast(Epsilon::new(1.0).unwrap(), 1);
        assert_eq!(o.g(), (1.0f64.exp().floor() as u64) + 1); // e^1 = 2.71 -> g = 3
        let o = FlhOracle::new_fast(Epsilon::new(3.0).unwrap(), 1);
        assert_eq!(o.g(), 20 + 1); // e^3 = 20.08

        // The oracle records the budget it was built with, and g is derived from it.
        assert_eq!(o.epsilon().value(), 3.0);
        assert_eq!(o.g(), (o.epsilon().value().exp().floor() as u64) + 1);
    }

    #[test]
    fn estimates_track_truth_on_skewed_data() {
        let eps = Epsilon::new(3.0).unwrap();
        let mut oracle = FlhOracle::new_fast(eps, 7);
        let mut rng = StdRng::seed_from_u64(3);
        // 50% value 1, 30% value 2, 20% spread over 100 other values.
        let n = 200_000usize;
        let values: Vec<u64> = (0..n)
            .map(|i| match i % 10 {
                0..=4 => 1,
                5..=7 => 2,
                _ => 10 + (i as u64 % 100),
            })
            .collect();
        oracle.collect(&values, &mut rng);
        let e1 = oracle.estimate(1);
        let e2 = oracle.estimate(2);
        let e999 = oracle.estimate(999_999);
        assert!(
            (e1 - 0.5 * n as f64).abs() < 0.05 * n as f64,
            "estimate of 1: {e1}"
        );
        assert!(
            (e2 - 0.3 * n as f64).abs() < 0.05 * n as f64,
            "estimate of 2: {e2}"
        );
        assert!(
            e999.abs() < 0.05 * n as f64,
            "estimate of absent value: {e999}"
        );
    }

    #[test]
    fn optimal_like_is_not_less_accurate_than_tiny_pool() {
        // A pool of a single hash function collapses every value to the same mapping and
        // cannot distinguish colliding values; a large pool averages collisions away.
        let eps = Epsilon::new(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let n = 50_000usize;
        let values: Vec<u64> = (0..n).map(|i| (i % 50) as u64).collect();

        let mut tiny = FlhOracle::with_pool(eps, 1, 11, OlhVariant::Fast);
        tiny.collect(&values, &mut rng);
        let mut big = FlhOracle::new_optimal_like(eps, 11);
        big.collect(&values, &mut rng);

        let truth = n as f64 / 50.0;
        let err_tiny: f64 = (0..50u64).map(|v| (tiny.estimate(v) - truth).abs()).sum();
        let err_big: f64 = (0..50u64).map(|v| (big.estimate(v) - truth).abs()).sum();
        assert!(
            err_big < err_tiny,
            "large pool should beat a single hash: {err_big} vs {err_tiny}"
        );
    }

    #[test]
    fn names_and_bits() {
        let eps = Epsilon::new(4.0).unwrap();
        let fast = FlhOracle::new_fast(eps, 0);
        assert_eq!(fast.name(), "FLH");
        let opt = FlhOracle::new_optimal_like(eps, 0);
        assert_eq!(opt.name(), "OLH");
        // g = e^4 + 1 = 55 -> 6 bits; pool 512 -> 9 bits.
        assert_eq!(fast.report_bits(), 6 + 9);
        assert!(fast.pool_size() < opt.pool_size());
    }

    #[test]
    #[should_panic(expected = "at least one hash")]
    fn rejects_empty_pool() {
        let _ = FlhOracle::with_pool(Epsilon::new(1.0).unwrap(), 0, 0, OlhVariant::Fast);
    }
}
