//! The [`FrequencyOracle`] trait every baseline LDP mechanism implements.
//!
//! The paper's competitors (k-RR, FLH, Apple-HCMS) are all *frequency oracles*: they collect
//! locally perturbed reports and answer point queries "how many users hold value `d`?".
//! Join-size estimation on top of them sums `f̃_A(d)·f̃_B(d)` over the candidate domain
//! ([`crate::join`]). The trait keeps the harness generic over mechanisms and records the
//! per-user communication cost used in Fig. 7.

use rand::RngCore;

/// A locally differentially private frequency oracle.
///
/// Implementations own the server-side aggregation state; `collect` simulates the client-side
/// perturbation of each user's value followed by server-side aggregation of the report.
pub trait FrequencyOracle {
    /// Short mechanism name as used in the paper's figures (e.g. `"k-RR"`, `"FLH"`).
    fn name(&self) -> &'static str;

    /// Simulate the full LDP round trip for a batch of users: each entry of `values` is one
    /// user's private value; it is perturbed client-side and aggregated server-side.
    fn collect(&mut self, values: &[u64], rng: &mut dyn RngCore);

    /// De-biased estimate of the number of users holding `value`.
    fn estimate(&self, value: u64) -> f64;

    /// Number of reports aggregated so far.
    fn total_reports(&self) -> u64;

    /// Communication cost of a single client report, in bits (Fig. 7's unit).
    fn report_bits(&self) -> u64;

    /// Estimate the frequencies of every value in `domain`, in order.
    ///
    /// The default implementation calls [`FrequencyOracle::estimate`] per value; mechanisms
    /// with a cheaper batch path may override it.
    fn estimate_domain(&self, domain: &[u64]) -> Vec<f64> {
        domain.iter().map(|&d| self.estimate(d)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivially exact "oracle" used to exercise the trait's default methods.
    struct ExactOracle {
        counts: std::collections::HashMap<u64, u64>,
        n: u64,
    }

    impl FrequencyOracle for ExactOracle {
        fn name(&self) -> &'static str {
            "exact"
        }
        fn collect(&mut self, values: &[u64], _rng: &mut dyn RngCore) {
            for &v in values {
                *self.counts.entry(v).or_insert(0) += 1;
                self.n += 1;
            }
        }
        fn estimate(&self, value: u64) -> f64 {
            self.counts.get(&value).copied().unwrap_or(0) as f64
        }
        fn total_reports(&self) -> u64 {
            self.n
        }
        fn report_bits(&self) -> u64 {
            64
        }
    }

    #[test]
    fn default_estimate_domain_maps_estimate() {
        let mut oracle = ExactOracle {
            counts: Default::default(),
            n: 0,
        };
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        oracle.collect(&[1, 1, 2, 5], &mut rng);
        assert_eq!(
            oracle.estimate_domain(&[1, 2, 3, 5]),
            vec![2.0, 1.0, 0.0, 1.0]
        );
        assert_eq!(oracle.total_reports(), 4);
        assert_eq!(oracle.name(), "exact");
        assert_eq!(oracle.report_bits(), 64);
    }
}
