//! Error metrics.
//!
//! The paper reports three metrics (Section VII-A):
//!
//! * **AE** — `1/t · Σ |J − Ĵ|` over `t` testing rounds,
//! * **RE** — `1/t · Σ |J − Ĵ| / J`,
//! * **MSE** — `1/n · Σ_d (f(d) − f̃(d))²` for frequency estimation (Fig. 14).
//!
//! [`TrialErrors`] accumulates per-trial estimates and produces both AE and RE, which is how
//! every experiment binary uses it.

/// Absolute error of a single estimate.
#[inline]
pub fn absolute_error(truth: f64, estimate: f64) -> f64 {
    (truth - estimate).abs()
}

/// Relative error of a single estimate.
///
/// Follows the paper's definition `|J − Ĵ|/J`; if the true value is zero the error is defined
/// as `0` when the estimate is also zero and `∞` otherwise (the convention that keeps RE
/// monotone in |Ĵ|).
#[inline]
pub fn relative_error(truth: f64, estimate: f64) -> f64 {
    if truth == 0.0 {
        if estimate == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (truth - estimate).abs() / truth.abs()
    }
}

/// Mean squared error between a vector of true frequencies and their estimates.
///
/// # Panics
/// Panics if the two slices have different lengths or are empty.
pub fn mean_squared_error(truth: &[f64], estimates: &[f64]) -> f64 {
    assert_eq!(truth.len(), estimates.len(), "MSE needs matching vectors");
    assert!(!truth.is_empty(), "MSE of an empty vector is undefined");
    truth
        .iter()
        .zip(estimates.iter())
        .map(|(t, e)| (t - e) * (t - e))
        .sum::<f64>()
        / truth.len() as f64
}

/// Accumulator of per-trial join-size estimates against a (possibly per-trial) ground truth.
#[derive(Debug, Clone, Default)]
pub struct TrialErrors {
    absolute: Vec<f64>,
    relative: Vec<f64>,
}

impl TrialErrors {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one trial.
    pub fn record(&mut self, truth: f64, estimate: f64) {
        self.absolute.push(absolute_error(truth, estimate));
        self.relative.push(relative_error(truth, estimate));
    }

    /// Number of recorded trials.
    pub fn trials(&self) -> usize {
        self.absolute.len()
    }

    /// The paper's AE: mean absolute error over trials. Returns `None` with no trials.
    pub fn mean_absolute_error(&self) -> Option<f64> {
        mean(&self.absolute)
    }

    /// The paper's RE: mean relative error over trials. Returns `None` with no trials.
    pub fn mean_relative_error(&self) -> Option<f64> {
        mean(&self.relative)
    }

    /// Worst absolute error across trials (useful for bound checks).
    pub fn max_absolute_error(&self) -> Option<f64> {
        self.absolute
            .iter()
            .copied()
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }
}

fn mean(v: &[f64]) -> Option<f64> {
    if v.is_empty() {
        None
    } else {
        Some(v.iter().sum::<f64>() / v.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pointwise_metrics() {
        assert_eq!(absolute_error(10.0, 7.0), 3.0);
        assert_eq!(absolute_error(7.0, 10.0), 3.0);
        assert_eq!(relative_error(10.0, 7.0), 0.3);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert!(relative_error(0.0, 1.0).is_infinite());
    }

    #[test]
    fn mse_matches_hand_computation() {
        let truth = [1.0, 2.0, 3.0];
        let est = [1.0, 0.0, 6.0];
        assert!((mean_squared_error(&truth, &est) - (0.0 + 4.0 + 9.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "matching vectors")]
    fn mse_rejects_length_mismatch() {
        mean_squared_error(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn mse_rejects_empty() {
        mean_squared_error(&[], &[]);
    }

    #[test]
    fn trial_accumulator_averages() {
        let mut t = TrialErrors::new();
        assert_eq!(t.mean_absolute_error(), None);
        t.record(100.0, 90.0);
        t.record(100.0, 120.0);
        assert_eq!(t.trials(), 2);
        assert_eq!(t.mean_absolute_error(), Some(15.0));
        assert!((t.mean_relative_error().unwrap() - 0.15).abs() < 1e-12);
        assert_eq!(t.max_absolute_error(), Some(20.0));
    }

    proptest! {
        #[test]
        fn prop_metrics_are_nonnegative(truth in -1e9f64..1e9, est in -1e9f64..1e9) {
            prop_assert!(absolute_error(truth, est) >= 0.0);
            prop_assert!(relative_error(truth, est) >= 0.0);
        }

        #[test]
        fn prop_ae_symmetric_re_scaled(truth in 1.0f64..1e9, err in -1e6f64..1e6) {
            let est = truth + err;
            prop_assert!((absolute_error(truth, est) - err.abs()).abs() < 1e-6);
            prop_assert!((relative_error(truth, est) - err.abs() / truth).abs() < 1e-12);
        }

        #[test]
        fn prop_perfect_estimates_have_zero_error(values in proptest::collection::vec(0.0f64..1e6, 1..50)) {
            prop_assert_eq!(mean_squared_error(&values, &values), 0.0);
            let mut trials = TrialErrors::new();
            for &v in &values {
                trials.record(v, v);
            }
            prop_assert_eq!(trials.mean_absolute_error(), Some(0.0));
        }
    }
}
