//! # ldpjs-metrics
//!
//! The paper's error metrics (Section VII-A) and the small reporting toolkit the experiment
//! harness uses to print figure/table data:
//!
//! * [`error`] — Absolute Error (AE), Relative Error (RE) and Mean Squared Error (MSE),
//!   averaged over testing rounds exactly as the paper defines them.
//! * [`report`] — plain-text tables and CSV emission for the experiment binaries, so each
//!   binary prints the same rows/series the corresponding paper figure plots.
//! * [`telemetry`] — the runtime half: a dependency-free metric registry (counters,
//!   gauges, fixed-bucket histograms) with deterministic Prometheus-style text and JSON
//!   exporters, threaded through the live service/aggregator/kernel stack.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod report;
pub mod telemetry;

pub use error::{absolute_error, mean_squared_error, relative_error, TrialErrors};
pub use report::{csv_line, Table};
pub use telemetry::{
    parse_text_exposition, Counter, Gauge, Histogram, Sample, Snapshot, Stability, Telemetry, Value,
};
