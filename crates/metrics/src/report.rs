//! Plain-text reporting for the experiment harness.
//!
//! Every experiment binary prints (a) a human-readable table that mirrors the rows/series of
//! the corresponding paper figure and (b) machine-readable CSV lines prefixed with `csv,` so
//! results can be grepped out and plotted. Keeping the formatting in one place makes the
//! binaries short and the output uniform.

/// A simple column-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; the number of cells must match the number of headers.
    ///
    /// # Panics
    /// Panics if the row width does not match the header width.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} does not match header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table as an aligned text block.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1))),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render the table as CSV (header line plus one line per row), prefixed by the title as a
    /// comment line.
    pub fn to_csv(&self) -> String {
        let mut out = format!("# {}\n{}\n", self.title, self.headers.join(","));
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format one machine-readable CSV line with a `csv,` prefix (greppable from mixed output).
pub fn csv_line(experiment: &str, fields: &[String]) -> String {
    let mut parts = vec!["csv".to_string(), experiment.to_string()];
    parts.extend_from_slice(fields);
    parts.join(",")
}

/// Format a float in compact scientific notation for table cells.
pub fn sci(value: f64) -> String {
    if value == 0.0 {
        "0".to_string()
    } else if value.abs() >= 0.01 && value.abs() < 10_000.0 {
        format!("{value:.4}")
    } else {
        format!("{value:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("Fig. X", &["dataset", "AE"]);
        assert!(t.is_empty());
        t.add_row(vec!["Zipf".into(), "12.5".into()]);
        t.add_row(vec!["MovieLens".into(), "3".into()]);
        assert_eq!(t.len(), 2);
        let rendered = t.render();
        assert!(rendered.contains("== Fig. X =="));
        assert!(rendered.contains("dataset"));
        assert!(rendered.contains("MovieLens"));
        // Every data line has the same length because columns are padded.
        let lines: Vec<&str> = rendered.lines().skip(1).collect();
        assert_eq!(lines[1].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.add_row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_output_is_parseable() {
        let mut t = Table::new("Fig. Y", &["eps", "AE"]);
        t.add_row(vec!["1".into(), "2.5".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("# Fig. Y\neps,AE\n1,2.5\n"));
        assert_eq!(
            csv_line("fig5", &["Zipf".into(), "0.1".into()]),
            "csv,fig5,Zipf,0.1"
        );
    }

    #[test]
    fn sci_formatting() {
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(1.5), "1.5000");
        assert!(sci(1.0e9).contains('e'));
        assert!(sci(1.0e-6).contains('e'));
    }
}
