//! Runtime telemetry: a dependency-free, allocation-light metric registry.
//!
//! The offline half of this crate ([`crate::error`], [`crate::report`]) scores finished
//! experiments; this module is the *online* half — the registry the live service threads
//! through its ingest, rotation, cache, and query paths so a running deployment can answer
//! "what actually happened" without a debugger.
//!
//! Design constraints, in order:
//!
//! 1. **Deterministic exports.** Metrics live in a `BTreeMap` keyed by their full name
//!    (labels included), so every snapshot, text exposition, and JSON document is rendered
//!    in one stable order. Each metric further declares a [`Stability`] class:
//!    [`Stability::Deterministic`] metrics must be byte-identical across pinned-seed runs
//!    (report counts, rotations, cache hits), while [`Stability::Environment`] metrics may
//!    legitimately vary with the machine (timings, SIMD tier counts, per-shard splits).
//!    [`Telemetry::deterministic_snapshot`] filters to the first class, which is what the
//!    byte-stability tests pin.
//! 2. **Allocation-light hot path.** Handles ([`Counter`], [`Gauge`], [`Histogram`]) are
//!    pre-registered `Arc`s; recording is a single relaxed atomic op with no lock and no
//!    allocation. The registry lock is only taken at registration and snapshot time.
//! 3. **No wall clocks.** The registry never reads time. Durations are recorded by
//!    callers as integer nanoseconds obtained from *injected* `Instant`s (see the
//!    `telemetry-clock` xtask lint), keeping library code replayable.
//! 4. **Dependency-free.** Both exporters — Prometheus-style text exposition and a JSON
//!    snapshot — and their parsers are hand-rolled over `core`/`std` only.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Whether a metric's value is reproducible across pinned-seed runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stability {
    /// Byte-identical across runs with the same seeds and inputs, regardless of machine,
    /// shard count, or SIMD tier. These are the metrics replay tests pin.
    Deterministic,
    /// Legitimately varies with the execution environment: stage timings, which SIMD
    /// kernel tier ran, how work split across shards. Excluded from
    /// [`Telemetry::deterministic_snapshot`].
    Environment,
}

impl Stability {
    /// Stable lowercase identifier used by both exporters.
    pub fn as_str(self) -> &'static str {
        match self {
            Stability::Deterministic => "deterministic",
            Stability::Environment => "environment",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        match s {
            "deterministic" => Some(Stability::Deterministic),
            "environment" => Some(Stability::Environment),
            _ => None,
        }
    }
}

/// A monotonic counter handle. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge handle (non-negative). Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrite the current value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared state behind a [`Histogram`] handle.
#[derive(Debug)]
struct HistogramCore {
    /// Inclusive upper bounds of the finite buckets, strictly increasing.
    bounds: Vec<u64>,
    /// One cell per finite bucket plus a final overflow (`+Inf`) cell.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram handle. Cloning shares the underlying cells.
///
/// Bucket bounds are fixed at registration; recording is two relaxed atomic adds plus a
/// branchless-enough linear scan over a handful of bounds — no allocation, no lock.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let core = &*self.0;
        let idx = core
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(core.bounds.len());
        core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(v, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of recorded observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }
}

/// A registered instrument: the shared cells a snapshot reads.
#[derive(Debug, Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The registry: named instruments in stable (`BTreeMap`) order.
///
/// Cloning shares the registry — the service hands clones to its sub-components, and all
/// of them feed the same export surface.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Arc<Mutex<BTreeMap<String, (Stability, Instrument)>>>,
}

impl Telemetry {
    /// Fresh empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn with_map<T>(
        &self,
        f: impl FnOnce(&mut BTreeMap<String, (Stability, Instrument)>) -> T,
    ) -> T {
        // A poisoned lock only means a panicking thread died mid-registration; the map
        // itself is still structurally sound, so keep serving rather than propagate.
        let mut guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut guard)
    }

    /// Register (or re-attach to) the counter `name`.
    ///
    /// Registration is idempotent: a second call with the same name returns a handle to
    /// the same cell, so components re-created across epochs keep accumulating into one
    /// series. If `name` is already registered as a different instrument kind, a detached
    /// handle is returned (recorded values go nowhere) rather than panicking.
    pub fn counter(&self, name: &str, stability: Stability) -> Counter {
        self.with_map(|map| {
            match map
                .entry(name.to_string())
                .or_insert_with(|| (stability, Instrument::Counter(Counter::default())))
            {
                (_, Instrument::Counter(c)) => c.clone(),
                _ => Counter::default(),
            }
        })
    }

    /// Register (or re-attach to) the gauge `name`. Same idempotence rules as
    /// [`Telemetry::counter`].
    pub fn gauge(&self, name: &str, stability: Stability) -> Gauge {
        self.with_map(|map| {
            match map
                .entry(name.to_string())
                .or_insert_with(|| (stability, Instrument::Gauge(Gauge::default())))
            {
                (_, Instrument::Gauge(g)) => g.clone(),
                _ => Gauge::default(),
            }
        })
    }

    /// Register (or re-attach to) the histogram `name` with the given inclusive finite
    /// bucket upper `bounds` (an overflow bucket is always appended). Bounds must be
    /// strictly increasing; out-of-order duplicates are dropped rather than panicking.
    /// Same idempotence rules as [`Telemetry::counter`]; a re-registration keeps the
    /// original bounds.
    pub fn histogram(&self, name: &str, stability: Stability, bounds: &[u64]) -> Histogram {
        let mut clean: Vec<u64> = Vec::with_capacity(bounds.len());
        for &b in bounds {
            if clean.last().is_none_or(|&l| b > l) {
                clean.push(b);
            }
        }
        self.with_map(|map| {
            match map.entry(name.to_string()).or_insert_with(|| {
                let buckets = (0..=clean.len()).map(|_| AtomicU64::new(0)).collect();
                (
                    stability,
                    Instrument::Histogram(Histogram(Arc::new(HistogramCore {
                        bounds: clean.clone(),
                        buckets,
                        sum: AtomicU64::new(0),
                        count: AtomicU64::new(0),
                    }))),
                )
            }) {
                (_, Instrument::Histogram(h)) => h.clone(),
                _ => Histogram(Arc::new(HistogramCore {
                    bounds: clean,
                    buckets: vec![AtomicU64::new(0)],
                    sum: AtomicU64::new(0),
                    count: AtomicU64::new(0),
                })),
            }
        })
    }

    /// Materialize every registered metric into an immutable [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        self.with_map(|map| Snapshot {
            metrics: map
                .iter()
                .map(|(name, (stability, inst))| {
                    let value = match inst {
                        Instrument::Counter(c) => Value::Counter(c.get()),
                        Instrument::Gauge(g) => Value::Gauge(g.get()),
                        Instrument::Histogram(h) => {
                            let core = &*h.0;
                            let mut buckets: Vec<u64> = core
                                .buckets
                                .iter()
                                .map(|b| b.load(Ordering::Relaxed))
                                .collect();
                            let overflow = buckets.pop().unwrap_or(0);
                            Value::Histogram {
                                bounds: core.bounds.clone(),
                                buckets,
                                overflow,
                                sum: core.sum.load(Ordering::Relaxed),
                                count: core.count.load(Ordering::Relaxed),
                            }
                        }
                    };
                    (
                        name.clone(),
                        Sample {
                            stability: *stability,
                            value,
                        },
                    )
                })
                .collect(),
        })
    }

    /// Snapshot restricted to [`Stability::Deterministic`] metrics — the byte-stable
    /// subset replay tests compare across runs, shard counts, and machines.
    pub fn deterministic_snapshot(&self) -> Snapshot {
        self.snapshot().deterministic()
    }
}

/// One metric's captured value inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// The metric's declared stability class.
    pub stability: Stability,
    /// The captured value.
    pub value: Value,
}

/// The value half of a [`Sample`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// Monotonic counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(u64),
    /// Histogram reading: finite buckets, overflow bucket, running sum and count.
    Histogram {
        /// Inclusive upper bounds of the finite buckets.
        bounds: Vec<u64>,
        /// Per-finite-bucket observation counts (same length as `bounds`).
        buckets: Vec<u64>,
        /// Observations above the last finite bound.
        overflow: u64,
        /// Sum of all observed values.
        sum: u64,
        /// Total observation count.
        count: u64,
    },
}

/// An immutable, ordered capture of a [`Telemetry`] registry.
///
/// Snapshots are mergeable (multi-shard / multi-service roll-ups) and renderable as
/// Prometheus-style text or JSON; both renderings are byte-deterministic functions of the
/// snapshot contents.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Full metric name (labels included) → captured sample, in lexicographic order.
    pub metrics: BTreeMap<String, Sample>,
}

impl Snapshot {
    /// The subset of metrics declared [`Stability::Deterministic`].
    pub fn deterministic(&self) -> Snapshot {
        Snapshot {
            metrics: self
                .metrics
                .iter()
                .filter(|(_, s)| s.stability == Stability::Deterministic)
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Merge `other` into `self`: counters and histogram cells add, gauges take the
    /// maximum. A histogram whose bucket bounds disagree with the existing entry is
    /// skipped (the two series are not summable), never panicked on.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, sample) in &other.metrics {
            match self.metrics.get_mut(name) {
                None => {
                    self.metrics.insert(name.clone(), sample.clone());
                }
                Some(mine) => match (&mut mine.value, &sample.value) {
                    (Value::Counter(a), Value::Counter(b)) => *a += *b,
                    (Value::Gauge(a), Value::Gauge(b)) => *a = (*a).max(*b),
                    (
                        Value::Histogram {
                            bounds: ba,
                            buckets: ka,
                            overflow: oa,
                            sum: sa,
                            count: ca,
                        },
                        Value::Histogram {
                            bounds: bb,
                            buckets: kb,
                            overflow: ob,
                            sum: sb,
                            count: cb,
                        },
                    ) if ba == bb => {
                        for (a, b) in ka.iter_mut().zip(kb) {
                            *a += *b;
                        }
                        *oa += *ob;
                        *sa += *sb;
                        *ca += *cb;
                    }
                    _ => {}
                },
            }
        }
    }

    /// Render a Prometheus-style text exposition.
    ///
    /// Counters and gauges render as single samples; histograms expand into
    /// `_bucket{le=…}` / `_sum` / `_count` series with labels merged in. A `# TYPE` line
    /// precedes each new metric family. Output is byte-deterministic: same snapshot, same
    /// bytes.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        for (name, sample) in &self.metrics {
            let (base, labels) = split_labels(name);
            let kind = match sample.value {
                Value::Counter(_) => "counter",
                Value::Gauge(_) => "gauge",
                Value::Histogram { .. } => "histogram",
            };
            if base != last_family {
                let _ = writeln!(out, "# TYPE {base} {kind}");
                last_family = base.to_string();
            }
            match &sample.value {
                Value::Counter(v) | Value::Gauge(v) => {
                    let _ = writeln!(out, "{name} {v}");
                }
                Value::Histogram {
                    bounds,
                    buckets,
                    overflow,
                    sum,
                    count,
                } => {
                    let mut cumulative = 0u64;
                    for (bound, n) in bounds.iter().zip(buckets) {
                        cumulative += n;
                        let _ = writeln!(
                            out,
                            "{base}_bucket{{{}le=\"{bound}\"}} {cumulative}",
                            label_prefix(labels)
                        );
                    }
                    cumulative += overflow;
                    let _ = writeln!(
                        out,
                        "{base}_bucket{{{}le=\"+Inf\"}} {cumulative}",
                        label_prefix(labels)
                    );
                    let _ = writeln!(out, "{base}_sum{} {sum}", brace(labels));
                    let _ = writeln!(out, "{base}_count{} {count}", brace(labels));
                }
            }
        }
        out
    }

    /// Render the snapshot as a single-document JSON object.
    ///
    /// The format is the fixed shape [`Snapshot::from_json`] parses; together they
    /// round-trip exactly (`from_json(to_json(s)) == Ok(s)`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"metrics\":[");
        for (i, (name, sample)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"stability\":\"{}\"",
                json_string(name),
                sample.stability.as_str()
            );
            match &sample.value {
                Value::Counter(v) => {
                    let _ = write!(out, ",\"kind\":\"counter\",\"value\":{v}}}");
                }
                Value::Gauge(v) => {
                    let _ = write!(out, ",\"kind\":\"gauge\",\"value\":{v}}}");
                }
                Value::Histogram {
                    bounds,
                    buckets,
                    overflow,
                    sum,
                    count,
                } => {
                    let _ = write!(
                        out,
                        ",\"kind\":\"histogram\",\"bounds\":{},\"buckets\":{},\
                         \"overflow\":{overflow},\"sum\":{sum},\"count\":{count}}}",
                        json_u64_array(bounds),
                        json_u64_array(buckets)
                    );
                }
            }
        }
        out.push_str("]}");
        out
    }

    /// Parse a document produced by [`Snapshot::to_json`] back into a snapshot.
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let mut p = JsonCursor::new(text);
        p.expect('{')?;
        p.expect_key("metrics")?;
        p.expect('[')?;
        let mut metrics = BTreeMap::new();
        if !p.peek_is(']') {
            loop {
                let (name, sample) = parse_metric(&mut p)?;
                metrics.insert(name, sample);
                if !p.consume_if(',') {
                    break;
                }
            }
        }
        p.expect(']')?;
        p.expect('}')?;
        p.end()?;
        Ok(Snapshot { metrics })
    }
}

/// Split a full metric key into `(family, labels)`: `a{x="y"}` → `("a", "x=\"y\"")`.
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) => (&name[..i], name[i + 1..].trim_end_matches('}')),
        None => (name, ""),
    }
}

/// Histogram bucket label prefix: existing labels plus trailing comma, or empty.
fn label_prefix(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{labels},")
    }
}

/// Re-brace a label set for `_sum` / `_count` series; empty labels render bare.
fn brace(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    }
}

/// JSON-escape a string (quotes and backslashes; metric names contain `"` via labels).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_u64_array(xs: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{x}");
    }
    out.push(']');
    out
}

/// Minimal cursor over the fixed JSON shape [`Snapshot::to_json`] emits.
struct JsonCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonCursor<'a> {
    fn new(text: &'a str) -> Self {
        JsonCursor {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek_is(&mut self, c: char) -> bool {
        self.skip_ws();
        self.bytes.get(self.pos) == Some(&(c as u8))
    }

    fn consume_if(&mut self, c: char) -> bool {
        if self.peek_is(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.consume_if(c) {
            Ok(())
        } else {
            Err(format!("expected '{c}' at byte {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Metric names are ASCII by construction; pass other bytes through.
                    out.push(b as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn u64(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn u64_array(&mut self) -> Result<Vec<u64>, String> {
        self.expect('[')?;
        let mut out = Vec::new();
        if !self.peek_is(']') {
            loop {
                out.push(self.u64()?);
                if !self.consume_if(',') {
                    break;
                }
            }
        }
        self.expect(']')?;
        Ok(out)
    }

    /// Expect `"key":` exactly.
    fn expect_key(&mut self, key: &str) -> Result<(), String> {
        let got = self.string()?;
        if got != key {
            return Err(format!("expected key {key:?}, got {got:?}"));
        }
        self.expect(':')
    }

    fn end(&mut self) -> Result<(), String> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!("trailing bytes at {}", self.pos))
        }
    }
}

fn parse_metric(p: &mut JsonCursor<'_>) -> Result<(String, Sample), String> {
    p.expect('{')?;
    p.expect_key("name")?;
    let name = p.string()?;
    p.expect(',')?;
    p.expect_key("stability")?;
    let stability_raw = p.string()?;
    let stability = Stability::from_str(&stability_raw)
        .ok_or_else(|| format!("unknown stability {stability_raw:?}"))?;
    p.expect(',')?;
    p.expect_key("kind")?;
    let kind = p.string()?;
    let value = match kind.as_str() {
        "counter" => {
            p.expect(',')?;
            p.expect_key("value")?;
            Value::Counter(p.u64()?)
        }
        "gauge" => {
            p.expect(',')?;
            p.expect_key("value")?;
            Value::Gauge(p.u64()?)
        }
        "histogram" => {
            p.expect(',')?;
            p.expect_key("bounds")?;
            let bounds = p.u64_array()?;
            p.expect(',')?;
            p.expect_key("buckets")?;
            let buckets = p.u64_array()?;
            p.expect(',')?;
            p.expect_key("overflow")?;
            let overflow = p.u64()?;
            p.expect(',')?;
            p.expect_key("sum")?;
            let sum = p.u64()?;
            p.expect(',')?;
            p.expect_key("count")?;
            let count = p.u64()?;
            if bounds.len() != buckets.len() {
                return Err(format!(
                    "histogram {name:?}: {} bounds vs {} buckets",
                    bounds.len(),
                    buckets.len()
                ));
            }
            Value::Histogram {
                bounds,
                buckets,
                overflow,
                sum,
                count,
            }
        }
        other => return Err(format!("unknown metric kind {other:?}")),
    };
    p.expect('}')?;
    Ok((name, Sample { stability, value }))
}

/// Parse a Prometheus-style text exposition into `(series name, value)` samples.
///
/// Accepts exactly what [`Snapshot::to_text`] emits: `# `-prefixed comment lines and
/// `name[{labels}] value` sample lines. Returns an error on any malformed line, which is
/// what the CI example-run check asserts against.
pub fn parse_text_exposition(text: &str) -> Result<Vec<(String, u64)>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Labels may contain spaces in principle; the value is the suffix after the last
        // space *outside* braces — with our emitters, simply the last space.
        let Some(split) = line.rfind(' ') else {
            return Err(format!("line {}: no value separator", lineno + 1));
        };
        let (name, value) = (&line[..split], &line[split + 1..]);
        if name.is_empty() {
            return Err(format!("line {}: empty series name", lineno + 1));
        }
        let open = name.matches('{').count();
        let close = name.matches('}').count();
        if open != close || open > 1 {
            return Err(format!("line {}: unbalanced label braces", lineno + 1));
        }
        let value: u64 = value
            .parse()
            .map_err(|_| format!("line {}: bad sample value {value:?}", lineno + 1))?;
        out.push((name.to_string(), value));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_record_and_snapshot() {
        let t = Telemetry::new();
        let c = t.counter("svc_ingest_reports_total", Stability::Deterministic);
        c.add(40);
        c.inc();
        let g = t.gauge("svc_ledger_depth", Stability::Deterministic);
        g.set(7);
        g.set(3);
        let h = t.histogram("svc_batch_size", Stability::Deterministic, &[10, 100]);
        for v in [1, 5, 50, 5000] {
            h.record(v);
        }
        let snap = t.snapshot();
        assert_eq!(
            snap.metrics["svc_ingest_reports_total"].value,
            Value::Counter(41)
        );
        assert_eq!(snap.metrics["svc_ledger_depth"].value, Value::Gauge(3));
        assert_eq!(
            snap.metrics["svc_batch_size"].value,
            Value::Histogram {
                bounds: vec![10, 100],
                buckets: vec![2, 1],
                overflow: 1,
                sum: 5056,
                count: 4,
            }
        );
    }

    #[test]
    fn registration_is_idempotent_and_kind_mismatch_detaches() {
        let t = Telemetry::new();
        let a = t.counter("x", Stability::Deterministic);
        let b = t.counter("x", Stability::Deterministic);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        // A gauge under a counter's name must not corrupt the counter.
        let g = t.gauge("x", Stability::Deterministic);
        g.set(99);
        assert_eq!(
            t.snapshot().metrics["x"].value,
            Value::Counter(2),
            "kind mismatch must leave the original instrument untouched"
        );
    }

    #[test]
    fn deterministic_snapshot_filters_environment_metrics() {
        let t = Telemetry::new();
        t.counter("a_total", Stability::Deterministic).inc();
        t.counter("b_nanos", Stability::Environment).add(123);
        let det = t.deterministic_snapshot();
        assert!(det.metrics.contains_key("a_total"));
        assert!(!det.metrics.contains_key("b_nanos"));
        assert_eq!(t.snapshot().metrics.len(), 2);
    }

    #[test]
    fn merge_adds_counters_and_histograms_maxes_gauges() {
        let make = |c: u64, g: u64| {
            let t = Telemetry::new();
            t.counter("c", Stability::Deterministic).add(c);
            t.gauge("g", Stability::Deterministic).set(g);
            let h = t.histogram("h", Stability::Deterministic, &[10]);
            h.record(1);
            h.record(100);
            t.snapshot()
        };
        let mut a = make(5, 2);
        let b = make(7, 9);
        a.merge(&b);
        assert_eq!(a.metrics["c"].value, Value::Counter(12));
        assert_eq!(a.metrics["g"].value, Value::Gauge(9));
        assert_eq!(
            a.metrics["h"].value,
            Value::Histogram {
                bounds: vec![10],
                buckets: vec![2],
                overflow: 2,
                sum: 202,
                count: 4,
            }
        );
    }

    #[test]
    fn text_exposition_is_stable_and_parses() {
        let t = Telemetry::new();
        t.counter("z_total{attr=\"b\"}", Stability::Deterministic)
            .add(2);
        t.counter("z_total{attr=\"a\"}", Stability::Deterministic)
            .add(1);
        t.gauge("depth", Stability::Deterministic).set(4);
        let h = t.histogram("lat_ns{kind=\"join\"}", Stability::Environment, &[100, 200]);
        h.record(150);
        let text = t.snapshot().to_text();
        let again = t.snapshot().to_text();
        assert_eq!(text, again, "exposition must be deterministic");
        // BTreeMap order: depth, lat_ns, z_total{a}, z_total{b}.
        assert!(
            text.find("z_total{attr=\"a\"} 1").unwrap()
                < text.find("z_total{attr=\"b\"} 2").unwrap()
        );
        assert!(text.contains("# TYPE z_total counter"));
        assert!(text.contains("lat_ns_bucket{kind=\"join\",le=\"200\"} 1"));
        assert!(text.contains("lat_ns_bucket{kind=\"join\",le=\"+Inf\"} 1"));
        assert!(text.contains("lat_ns_sum{kind=\"join\"} 150"));
        let samples = parse_text_exposition(&text).expect("exposition parses");
        assert_eq!(
            samples
                .iter()
                .find(|(n, _)| n == "z_total{attr=\"b\"}")
                .map(|(_, v)| *v),
            Some(2)
        );
        assert!(parse_text_exposition("garbage with no value x").is_err());
    }

    #[test]
    fn json_round_trips_exactly() {
        let t = Telemetry::new();
        t.counter("a_total{attr=\"x\"}", Stability::Deterministic)
            .add(3);
        t.gauge("g", Stability::Environment).set(8);
        let h = t.histogram("h_ns", Stability::Environment, &[1, 10, 100]);
        h.record(0);
        h.record(12);
        h.record(100_000);
        let snap = t.snapshot();
        let json = snap.to_json();
        let back = Snapshot::from_json(&json).expect("round-trip parse");
        assert_eq!(back, snap);
        assert_eq!(back.to_json(), json);
        assert!(Snapshot::from_json("{\"metrics\":[}").is_err());
    }
}
