//! The memoized query cache: answers keyed by **(query kind, attribute set, epoch span)**,
//! merged estimation views (one store per estimator mode) keyed by (attribute, epoch-span),
//! all invalidated when a participating attribute rotates.
//!
//! Epoch spans — `(first_epoch, last_epoch)` over per-attribute, never-reused epoch ids —
//! identify immutable sealed data, so a cached answer can never go stale; invalidation on
//! rotation exists to (1) bound the cache to answers the *current* ring can still derive
//! and (2) keep `Latest`/`LastK` queries, which re-resolve to new spans after every
//! rotation, from accumulating dead entries.
//!
//! Result entries are bounded by a capacity with **least-recently-used** eviction: a lookup
//! hit promotes its entry to most-recently-used before the oldest entry is evicted, so a hot
//! merged-span answer (a dashboard's repeated join query) survives a value-keyed frequency
//! scan that churns thousands of one-shot entries past it. (The earlier insertion-order
//! eviction evicted exactly those hot entries first; the regression is pinned in this
//! module's tests via [`CacheStats`].)

use ldpjs_core::multiway::FinalizedEdgeSketch;
use ldpjs_core::FinalizedSketch;
use ldpjs_metrics::telemetry::Counter;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use crate::service::Explain;

/// A query answer as stored in (and served from) the cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct CachedAnswer {
    /// The estimate.
    pub value: f64,
    /// Sealed windows consulted (every participating attribute summed).
    pub windows: usize,
    /// Reports covered by those windows (every participating attribute summed).
    pub reports: u64,
    /// The provenance record captured when the answer was computed (its cache outcome is
    /// rewritten to `Hit` when served from here).
    pub explain: Explain,
}

/// The estimator mode a cached query was served under, for the per-mode stat breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum QueryMode {
    Plain,
    Plus,
    Edge,
}

impl QueryMode {
    fn index(self) -> usize {
        match self {
            QueryMode::Plain => 0,
            QueryMode::Plus => 1,
            QueryMode::Edge => 2,
        }
    }
}

/// Telemetry handles the owning service wires into the cache, so every hit/miss/eviction/
/// invalidation lands in the exporter the moment it happens. Indexed like [`QueryMode`].
#[derive(Debug, Clone, Default)]
pub(crate) struct CacheInstruments {
    pub hits: [Counter; 3],
    pub misses: [Counter; 3],
    pub evictions: Counter,
    pub invalidations: Counter,
}

/// Cache key: the query kind plus the participating attributes and the resolved epoch spans
/// the query covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) enum QueryKey {
    /// Plain join-size query over two attributes' spans (normalized so `a <= b`).
    Join {
        a: usize,
        b: usize,
        span_a: (u64, u64),
        span_b: (u64, u64),
    },
    /// LDPJoinSketch+ join-size query over two plus attributes' spans (normalized).
    PlusJoin {
        a: usize,
        b: usize,
        span_a: (u64, u64),
        span_b: (u64, u64),
    },
    /// Frequency query for one value over one attribute's span (plain or plus — an
    /// attribute has exactly one mode, so the kind is implied by the attribute).
    Frequency {
        attr: usize,
        value: u64,
        span: (u64, u64),
    },
    /// 3-way chain-join query `v1 ⋈ e ⋈ v3` over three attributes' spans.
    Chain3 {
        v1: usize,
        e: usize,
        v3: usize,
        span_v1: (u64, u64),
        span_e: (u64, u64),
        span_v3: (u64, u64),
    },
}

impl QueryKey {
    /// Build a plain join key normalized under operand order (the row product is commutative
    /// down to the bit level, so both orders share one entry).
    pub(crate) fn join(a: usize, span_a: (u64, u64), b: usize, span_b: (u64, u64)) -> Self {
        if a <= b {
            QueryKey::Join {
                a,
                b,
                span_a,
                span_b,
            }
        } else {
            QueryKey::Join {
                a: b,
                b: a,
                span_a: span_b,
                span_b: span_a,
            }
        }
    }

    /// Build a plus join key, normalized like [`QueryKey::join`] (the kernel's `JoinEst` is
    /// symmetric in its two states down to the reported diagnostics' orientation — the
    /// *estimate* both orders serve is bit-identical, so they share one entry).
    pub(crate) fn plus_join(a: usize, span_a: (u64, u64), b: usize, span_b: (u64, u64)) -> Self {
        if a <= b {
            QueryKey::PlusJoin {
                a,
                b,
                span_a,
                span_b,
            }
        } else {
            QueryKey::PlusJoin {
                a: b,
                b: a,
                span_a: span_b,
                span_b: span_a,
            }
        }
    }

    fn touches(&self, attr: usize) -> bool {
        match *self {
            QueryKey::Join { a, b, .. } | QueryKey::PlusJoin { a, b, .. } => a == attr || b == attr,
            QueryKey::Frequency { attr: f, .. } => f == attr,
            QueryKey::Chain3 { v1, e, v3, .. } => v1 == attr || e == attr || v3 == attr,
        }
    }
}

/// Hit/miss counters for one estimator mode (one lane of the per-mode breakdown in
/// [`CacheStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModeCacheStats {
    /// Queries of this mode answered from the cache.
    pub hits: u64,
    /// Queries of this mode that had to be computed.
    pub misses: u64,
}

/// Counters describing the cache's behaviour since service start.
///
/// Every counter here is **cumulative over the service lifetime**: neither rotation-driven
/// invalidation nor an explicit `clear_cache` resets any of them (only the point-in-time
/// sizes `entries`/`views` drop). That symmetry is pinned by a regression test — an earlier
/// draft of the clear path zeroed the breakdowns but not the totals, which made the
/// per-mode lanes disagree with `hits`/`misses` after a clear.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that had to be computed.
    pub misses: u64,
    /// Result entries currently held.
    pub entries: usize,
    /// Merged multi-window estimation views currently held (all estimator modes).
    pub views: usize,
    /// Invalidation events (one per rotation of any attribute, plus explicit clears).
    pub invalidations: u64,
    /// Result entries evicted by the capacity bound (least-recently-used first).
    pub evictions: u64,
    /// Plain-mode (LDPJoinSketch) hit/miss breakdown.
    pub plain: ModeCacheStats,
    /// Plus-mode (LDPJoinSketch+) hit/miss breakdown.
    pub plus: ModeCacheStats,
    /// Edge-mode (multi-way chain) hit/miss breakdown.
    pub edge: ModeCacheStats,
}

/// One cached result together with its recency stamp (the lazy-LRU bookkeeping).
#[derive(Debug, Clone, Copy)]
struct Entry {
    answer: CachedAnswer,
    /// The monotonic stamp of this entry's most recent insert-or-hit. Only the order-queue
    /// pair carrying the same stamp is live; older pairs for the key are stale.
    stamp: u64,
}

/// The service-wide memoization layer.
///
/// Result entries are bounded by `capacity` with least-recently-used eviction (hits promote;
/// see the module docs): frequency queries are keyed by arbitrary caller-supplied values, so
/// without a bound a domain scan against a quiet attribute (rotation being the only
/// invalidation trigger) would grow the always-on service's memory without limit. Merged
/// views need no bound of their own — ranges resolve to ring suffixes, so an attribute can
/// only ever have `retained_windows` distinct spans alive between rotations.
#[derive(Debug)]
pub(crate) struct QueryCache {
    capacity: usize,
    /// Ordered maps, not hash maps: `invalidate_attribute` and `prune_order` *iterate*
    /// these stores, and `BTreeMap` makes the visit order (hence eviction/invalidation
    /// bookkeeping and any future iteration) deterministic run to run.
    results: BTreeMap<QueryKey, Entry>,
    /// Recency queue of `(key, stamp)` pairs, oldest first. A pair is live only while the
    /// entry's stamp matches; promotions and invalidations leave stale pairs that pop (or
    /// are pruned) for free.
    order: VecDeque<(QueryKey, u64)>,
    /// Monotonic recency clock.
    clock: u64,
    views: BTreeMap<(usize, u64, u64), Arc<FinalizedSketch>>,
    edge_views: BTreeMap<(usize, u64, u64), Arc<FinalizedEdgeSketch>>,
    hits: u64,
    misses: u64,
    invalidations: u64,
    evictions: u64,
    mode_hits: [u64; 3],
    mode_misses: [u64; 3],
    instruments: Option<CacheInstruments>,
}

impl QueryCache {
    /// An empty cache bounded to `capacity` result entries.
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        QueryCache {
            capacity,
            results: BTreeMap::new(),
            order: VecDeque::new(),
            clock: 0,
            views: BTreeMap::new(),
            edge_views: BTreeMap::new(),
            hits: 0,
            misses: 0,
            invalidations: 0,
            evictions: 0,
            mode_hits: [0; 3],
            mode_misses: [0; 3],
            instruments: None,
        }
    }

    /// Wire telemetry handles in (or detach them with `None`). Counting is additive from
    /// this point on; the internal `u64` tallies are authoritative for [`CacheStats`].
    pub(crate) fn set_instruments(&mut self, instruments: Option<CacheInstruments>) {
        self.instruments = instruments;
    }

    /// Look a result up, counting the hit or miss under `mode`. A hit **promotes** the entry
    /// to most-recently-used, so hot entries survive churn from one-shot scans.
    pub(crate) fn lookup(&mut self, key: &QueryKey, mode: QueryMode) -> Option<CachedAnswer> {
        match self.results.get_mut(key) {
            Some(entry) => {
                self.hits += 1;
                self.mode_hits[mode.index()] += 1;
                if let Some(ins) = &self.instruments {
                    ins.hits[mode.index()].inc();
                }
                self.clock += 1;
                entry.stamp = self.clock;
                let answer = entry.answer;
                self.order.push_back((*key, self.clock));
                self.prune_order();
                Some(answer)
            }
            None => {
                self.misses += 1;
                self.mode_misses[mode.index()] += 1;
                if let Some(ins) = &self.instruments {
                    ins.misses[mode.index()].inc();
                }
                None
            }
        }
    }

    /// Store a freshly computed result, evicting the least-recently-used entries past the
    /// capacity bound.
    pub(crate) fn insert(&mut self, key: QueryKey, answer: CachedAnswer) {
        self.clock += 1;
        self.results.insert(
            key,
            Entry {
                answer,
                stamp: self.clock,
            },
        );
        self.order.push_back((key, self.clock));
        while self.results.len() > self.capacity {
            let Some((old, stamp)) = self.order.pop_front() else {
                break;
            };
            // Only the pair carrying the entry's current stamp is live; stale pairs (the
            // key was promoted, re-inserted, or invalidated since) pop without counting.
            if self.results.get(&old).is_some_and(|e| e.stamp == stamp) {
                self.results.remove(&old);
                self.evictions += 1;
                if let Some(ins) = &self.instruments {
                    ins.evictions.inc();
                }
            }
        }
        self.prune_order();
    }

    /// Promotions and invalidations leave stale pairs in the recency queue; prune it before
    /// it outgrows the live map by more than a constant factor.
    fn prune_order(&mut self) {
        if self.order.len() > self.capacity.saturating_mul(2).max(16) {
            let results = &self.results;
            self.order
                .retain(|(k, stamp)| results.get(k).is_some_and(|e| e.stamp == *stamp));
        }
    }

    /// A memoized merged plain view for `(attr, first_epoch, last_epoch)`, if present.
    pub(crate) fn view(&self, key: (usize, u64, u64)) -> Option<Arc<FinalizedSketch>> {
        self.views.get(&key).map(Arc::clone)
    }

    /// Memoize a merged multi-window plain view.
    pub(crate) fn insert_view(&mut self, key: (usize, u64, u64), view: Arc<FinalizedSketch>) {
        self.views.insert(key, view);
    }

    /// A memoized merged edge view for `(attr, first_epoch, last_epoch)`, if present.
    pub(crate) fn edge_view(&self, key: (usize, u64, u64)) -> Option<Arc<FinalizedEdgeSketch>> {
        self.edge_views.get(&key).map(Arc::clone)
    }

    /// Memoize a merged multi-window edge view.
    pub(crate) fn insert_edge_view(
        &mut self,
        key: (usize, u64, u64),
        view: Arc<FinalizedEdgeSketch>,
    ) {
        self.edge_views.insert(key, view);
    }

    /// Rotation hook: drop every result and merged view touching `attr`.
    pub(crate) fn invalidate_attribute(&mut self, attr: usize) {
        self.results.retain(|key, _| !key.touches(attr));
        self.views.retain(|&(a, _, _), _| a != attr);
        self.edge_views.retain(|&(a, _, _), _| a != attr);
        self.invalidations += 1;
        if let Some(ins) = &self.instruments {
            ins.invalidations.inc();
        }
    }

    /// Drop everything (the explicit `clear_cache` entry point; also counted as an
    /// invalidation).
    pub(crate) fn clear(&mut self) {
        // Drop the stores only: every cumulative counter — the totals *and* the per-mode
        // breakdowns — survives, so monitoring sees one uninterrupted series across clears.
        self.results.clear();
        self.order.clear();
        self.views.clear();
        self.edge_views.clear();
        self.invalidations += 1;
        if let Some(ins) = &self.instruments {
            ins.invalidations.inc();
        }
    }

    /// Current counters.
    pub(crate) fn stats(&self) -> CacheStats {
        let mode = |i: usize| ModeCacheStats {
            hits: self.mode_hits[i],
            misses: self.mode_misses[i],
        };
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.results.len(),
            views: self.views.len() + self.edge_views.len(),
            invalidations: self.invalidations,
            evictions: self.evictions,
            plain: mode(QueryMode::Plain.index()),
            plus: mode(QueryMode::Plus.index()),
            edge: mode(QueryMode::Edge.index()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ans(value: f64, windows: usize, reports: u64) -> CachedAnswer {
        CachedAnswer {
            value,
            windows,
            reports,
            explain: Explain::default(),
        }
    }

    #[test]
    fn join_keys_normalize_operand_order() {
        let k1 = QueryKey::join(3, (0, 4), 1, (2, 5));
        let k2 = QueryKey::join(1, (2, 5), 3, (0, 4));
        assert_eq!(k1, k2);
        let p1 = QueryKey::plus_join(3, (0, 4), 1, (2, 5));
        let p2 = QueryKey::plus_join(1, (2, 5), 3, (0, 4));
        assert_eq!(p1, p2);
        // Plain and plus joins over the same attributes/spans are distinct kinds.
        assert_ne!(k1, p1);
    }

    #[test]
    fn chain_keys_touch_all_three_attributes() {
        let key = QueryKey::Chain3 {
            v1: 0,
            e: 1,
            v3: 2,
            span_v1: (0, 0),
            span_e: (0, 0),
            span_v3: (0, 0),
        };
        assert!(key.touches(0) && key.touches(1) && key.touches(2));
        assert!(!key.touches(3));
    }

    #[test]
    fn capacity_bound_evicts_oldest_results_first() {
        let mut cache = QueryCache::with_capacity(3);
        let key = |v: u64| QueryKey::Frequency {
            attr: 0,
            value: v,
            span: (0, 0),
        };
        let ans = ans(0.0, 1, 1);
        for v in 0..10 {
            cache.insert(key(v), ans);
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 3, "bounded to capacity");
        assert_eq!(stats.evictions, 7);
        // The newest entries survive, the oldest are gone.
        assert!(cache.lookup(&key(9), QueryMode::Plain).is_some());
        assert!(cache.lookup(&key(0), QueryMode::Plain).is_none());
        // Stale order entries left by invalidation do not count as evictions.
        cache.invalidate_attribute(0);
        for v in 0..3 {
            cache.insert(key(v), ans);
        }
        assert_eq!(cache.stats().evictions, 7);
        assert_eq!(cache.stats().entries, 3);
    }

    #[test]
    fn hits_promote_entries_past_a_value_keyed_scan() {
        // The satellite regression: a hot entry (a dashboard's merged-span join answer)
        // must survive a frequency scan that churns `capacity` one-shot entries past it.
        // Under the old insertion-order eviction the hot entry — inserted first — was
        // evicted first despite being hit on every refresh.
        let mut cache = QueryCache::with_capacity(8);
        let hot = QueryKey::join(0, (0, 15), 1, (0, 15));
        let ans = ans(42.0, 32, 1_000);
        cache.insert(hot, ans);
        for v in 0..100u64 {
            // The dashboard refreshes (a hit promotes the hot entry) while the scan keeps
            // inserting fresh value-keyed entries.
            assert!(
                cache.lookup(&hot, QueryMode::Plain).is_some(),
                "hot entry evicted during the scan at v={v}"
            );
            cache.insert(
                QueryKey::Frequency {
                    attr: 0,
                    value: v,
                    span: (0, 15),
                },
                ans,
            );
        }
        // Still cached at the end, and the churn is visible in the eviction counter.
        assert_eq!(cache.lookup(&hot, QueryMode::Plain), Some(ans));
        let stats = cache.stats();
        assert_eq!(stats.entries, 8);
        assert_eq!(
            stats.evictions,
            100 - 7,
            "the scan's one-shot entries (and only those) were evicted"
        );
        assert_eq!(stats.misses, 0);
    }

    #[test]
    fn lookup_counts_hits_and_misses_and_invalidation_is_selective() {
        let mut cache = QueryCache::with_capacity(64);
        let key_a = QueryKey::join(0, (0, 1), 1, (0, 1));
        let key_b = QueryKey::Frequency {
            attr: 2,
            value: 7,
            span: (0, 0),
        };
        assert!(cache.lookup(&key_a, QueryMode::Plain).is_none());
        cache.insert(key_a, ans(1.0, 4, 100));
        cache.insert(key_b, ans(2.0, 1, 50));
        assert!(cache.lookup(&key_a, QueryMode::Plain).is_some());
        // Rotating attribute 0 drops the join touching it but keeps attribute 2's entry.
        cache.invalidate_attribute(0);
        assert!(cache.lookup(&key_a, QueryMode::Plain).is_none());
        assert!(cache.lookup(&key_b, QueryMode::Plus).is_some());
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.invalidations, 1);
        // The breakdowns partition the totals by mode.
        assert_eq!(stats.plain.hits, 1);
        assert_eq!(stats.plain.misses, 2);
        assert_eq!(stats.plus.hits, 1);
        assert_eq!(stats.plus.misses, 0);
        assert_eq!(stats.edge, ModeCacheStats::default());
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().invalidations, 2);
    }

    #[test]
    fn cumulative_counters_survive_clear() {
        // The clear/stats symmetry regression: `clear` drops stored answers and views but
        // must not reset any cumulative counter — totals AND per-mode breakdowns.
        let mut cache = QueryCache::with_capacity(2);
        let ins = CacheInstruments::default();
        cache.set_instruments(Some(ins.clone()));
        let key = |v: u64| QueryKey::Frequency {
            attr: 0,
            value: v,
            span: (0, 0),
        };
        for v in 0..4 {
            assert!(cache.lookup(&key(v), QueryMode::Plus).is_none());
            cache.insert(key(v), ans(v as f64, 1, 10));
        }
        assert!(cache.lookup(&key(3), QueryMode::Plus).is_some());
        let before = cache.stats();
        assert_eq!(before.hits, 1);
        assert_eq!(before.misses, 4);
        assert_eq!(before.evictions, 2);
        assert_eq!(before.plus, ModeCacheStats { hits: 1, misses: 4 });
        cache.clear();
        let after = cache.stats();
        assert_eq!(after.entries, 0, "stores emptied");
        assert_eq!(after.hits, before.hits);
        assert_eq!(after.misses, before.misses);
        assert_eq!(after.evictions, before.evictions);
        assert_eq!(after.plain, before.plain);
        assert_eq!(after.plus, before.plus);
        assert_eq!(after.edge, before.edge);
        assert_eq!(after.invalidations, before.invalidations + 1);
        // The wired telemetry handles track the same story.
        assert_eq!(ins.hits[1].get(), 1);
        assert_eq!(ins.misses[1].get(), 4);
        assert_eq!(ins.evictions.get(), 2);
        assert_eq!(ins.invalidations.get(), 1);
    }
}
