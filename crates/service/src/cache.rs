//! The memoized query cache: answers keyed by (attribute, epoch-span) pairs, merged
//! estimation views keyed by (attribute, epoch-span), both invalidated when the attribute
//! rotates.
//!
//! Epoch spans — `(first_epoch, last_epoch)` over per-attribute, never-reused epoch ids —
//! identify immutable sealed data, so a cached answer can never go stale; invalidation on
//! rotation exists to (1) bound the cache to answers the *current* ring can still derive
//! and (2) keep `Latest`/`LastK` queries, which re-resolve to new spans after every
//! rotation, from accumulating dead entries.

use ldpjs_core::FinalizedSketch;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// A query answer as stored in (and served from) the cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct CachedAnswer {
    /// The estimate.
    pub value: f64,
    /// Sealed windows consulted (both sides summed for a join).
    pub windows: usize,
    /// Reports covered by those windows (both sides summed for a join).
    pub reports: u64,
}

/// Cache key: the query shape plus the resolved epoch spans it covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum QueryKey {
    /// Join-size query over two attributes' spans (normalized so `a <= b`).
    Join {
        a: usize,
        b: usize,
        span_a: (u64, u64),
        span_b: (u64, u64),
    },
    /// Frequency query for one value over one attribute's span.
    Frequency {
        attr: usize,
        value: u64,
        span: (u64, u64),
    },
}

impl QueryKey {
    /// Build a join key normalized under operand order (the row product is commutative down
    /// to the bit level, so both orders share one entry).
    pub(crate) fn join(a: usize, span_a: (u64, u64), b: usize, span_b: (u64, u64)) -> Self {
        if a <= b {
            QueryKey::Join {
                a,
                b,
                span_a,
                span_b,
            }
        } else {
            QueryKey::Join {
                a: b,
                b: a,
                span_a: span_b,
                span_b: span_a,
            }
        }
    }

    fn touches(&self, attr: usize) -> bool {
        match *self {
            QueryKey::Join { a, b, .. } => a == attr || b == attr,
            QueryKey::Frequency { attr: f, .. } => f == attr,
        }
    }
}

/// Counters describing the cache's behaviour since service start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that had to be computed.
    pub misses: u64,
    /// Result entries currently held.
    pub entries: usize,
    /// Merged multi-window estimation views currently held.
    pub views: usize,
    /// Invalidation events (one per rotation of any attribute, plus explicit clears).
    pub invalidations: u64,
    /// Result entries evicted by the capacity bound (oldest first).
    pub evictions: u64,
}

/// The service-wide memoization layer.
///
/// Result entries are bounded by `capacity` with oldest-insertion-first eviction:
/// frequency queries are keyed by arbitrary caller-supplied values, so without a bound a
/// domain scan against a quiet attribute (rotation being the only invalidation trigger)
/// would grow the always-on service's memory without limit. Merged views need no bound of
/// their own — ranges resolve to ring suffixes, so an attribute can only ever have
/// `retained_windows` distinct spans alive between rotations.
#[derive(Debug)]
pub(crate) struct QueryCache {
    capacity: usize,
    results: HashMap<QueryKey, CachedAnswer>,
    /// Insertion order of result keys (may hold keys already invalidated; pruned lazily).
    order: VecDeque<QueryKey>,
    views: HashMap<(usize, u64, u64), Arc<FinalizedSketch>>,
    hits: u64,
    misses: u64,
    invalidations: u64,
    evictions: u64,
}

impl QueryCache {
    /// An empty cache bounded to `capacity` result entries.
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        QueryCache {
            capacity,
            results: HashMap::new(),
            order: VecDeque::new(),
            views: HashMap::new(),
            hits: 0,
            misses: 0,
            invalidations: 0,
            evictions: 0,
        }
    }

    /// Look a result up, counting the hit or miss.
    pub(crate) fn lookup(&mut self, key: &QueryKey) -> Option<CachedAnswer> {
        match self.results.get(key) {
            Some(ans) => {
                self.hits += 1;
                Some(*ans)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Store a freshly computed result, evicting the oldest entries past the capacity
    /// bound.
    pub(crate) fn insert(&mut self, key: QueryKey, answer: CachedAnswer) {
        self.results.insert(key, answer);
        self.order.push_back(key);
        while self.results.len() > self.capacity {
            let Some(old) = self.order.pop_front() else {
                break;
            };
            // Stale order entries (already invalidated) pop without counting as evictions.
            if self.results.remove(&old).is_some() {
                self.evictions += 1;
            }
        }
        // Invalidations can leave the order queue full of dead keys; prune it before it
        // outgrows the live map by more than a constant factor.
        if self.order.len() > self.capacity.saturating_mul(2) {
            let results = &self.results;
            self.order.retain(|k| results.contains_key(k));
        }
    }

    /// A memoized merged view for `(attr, first_epoch, last_epoch)`, if present.
    pub(crate) fn view(&self, key: (usize, u64, u64)) -> Option<Arc<FinalizedSketch>> {
        self.views.get(&key).map(Arc::clone)
    }

    /// Memoize a merged multi-window view.
    pub(crate) fn insert_view(&mut self, key: (usize, u64, u64), view: Arc<FinalizedSketch>) {
        self.views.insert(key, view);
    }

    /// Rotation hook: drop every result and merged view touching `attr`.
    pub(crate) fn invalidate_attribute(&mut self, attr: usize) {
        self.results.retain(|key, _| !key.touches(attr));
        self.views.retain(|&(a, _, _), _| a != attr);
        self.invalidations += 1;
    }

    /// Drop everything (the explicit `clear_cache` entry point; also counted as an
    /// invalidation).
    pub(crate) fn clear(&mut self) {
        self.results.clear();
        self.order.clear();
        self.views.clear();
        self.invalidations += 1;
    }

    /// Current counters.
    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.results.len(),
            views: self.views.len(),
            invalidations: self.invalidations,
            evictions: self.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_keys_normalize_operand_order() {
        let k1 = QueryKey::join(3, (0, 4), 1, (2, 5));
        let k2 = QueryKey::join(1, (2, 5), 3, (0, 4));
        assert_eq!(k1, k2);
    }

    #[test]
    fn capacity_bound_evicts_oldest_results_first() {
        let mut cache = QueryCache::with_capacity(3);
        let key = |v: u64| QueryKey::Frequency {
            attr: 0,
            value: v,
            span: (0, 0),
        };
        let ans = CachedAnswer {
            value: 0.0,
            windows: 1,
            reports: 1,
        };
        for v in 0..10 {
            cache.insert(key(v), ans);
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 3, "bounded to capacity");
        assert_eq!(stats.evictions, 7);
        // The newest entries survive, the oldest are gone.
        assert!(cache.lookup(&key(9)).is_some());
        assert!(cache.lookup(&key(0)).is_none());
        // Stale order entries left by invalidation do not count as evictions.
        cache.invalidate_attribute(0);
        for v in 0..3 {
            cache.insert(key(v), ans);
        }
        assert_eq!(cache.stats().evictions, 7);
        assert_eq!(cache.stats().entries, 3);
    }

    #[test]
    fn lookup_counts_hits_and_misses_and_invalidation_is_selective() {
        let mut cache = QueryCache::with_capacity(64);
        let key_a = QueryKey::join(0, (0, 1), 1, (0, 1));
        let key_b = QueryKey::Frequency {
            attr: 2,
            value: 7,
            span: (0, 0),
        };
        assert!(cache.lookup(&key_a).is_none());
        cache.insert(
            key_a,
            CachedAnswer {
                value: 1.0,
                windows: 4,
                reports: 100,
            },
        );
        cache.insert(
            key_b,
            CachedAnswer {
                value: 2.0,
                windows: 1,
                reports: 50,
            },
        );
        assert!(cache.lookup(&key_a).is_some());
        // Rotating attribute 0 drops the join touching it but keeps attribute 2's entry.
        cache.invalidate_attribute(0);
        assert!(cache.lookup(&key_a).is_none());
        assert!(cache.lookup(&key_b).is_some());
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.invalidations, 1);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().invalidations, 2);
    }
}
