//! # ldpjs-service
//!
//! The **online sketch service**: the always-on serving layer that turns the one-shot
//! LDPJoinSketch protocol (collect every report, aggregate, estimate once) into a
//! long-running system under continuous report traffic.
//!
//! * [`service::SketchService`] registers join attributes and accepts continuous
//!   [`ClientReport`](ldpjs_core::ClientReport) batches (from the plain client *or* the FAP
//!   client — both emit the same report type), feeding one parallel
//!   [`ShardedAggregator`](ldpjs_core::ShardedAggregator) per attribute.
//! * An **epoch rotator** seals the live engine every `epoch_reports` reports (or on an
//!   explicit [`service::SketchService::rotate`]) into an immutable
//!   [`window::WindowSnapshot`] kept in a bounded ring of recent windows. A snapshot holds
//!   both the sealed [`SketchBuilder`](ldpjs_core::SketchBuilder) — exact integer counters,
//!   mergeable at zero rounding error — and its finalized estimation view.
//! * **Window merge** re-aggregates the sealed raw counters before a single Hadamard
//!   restore, so a k-window merged sketch is **bit-identical** to one-shot aggregation of
//!   the same reports (property-tested across window splits).
//! * The **query layer** answers join-size and frequency queries over any
//!   [`window::WindowRange`] (`Latest`, `LastK`, `All`) with a memoized
//!   per-(attribute-pair, window-range) cache invalidated on rotation, so a repeated
//!   dashboard-style query costs a hash lookup instead of an `O(k·m)` row product.
//!
//! Attributes register in one of **three estimator modes**, all served by the shared
//! query-engine kernels of `ldpjs_core::kernel`:
//!
//! * **Plain** — LDPJoinSketch ingestion and Eq. 5 join-size / Theorem 7 frequency queries.
//! * **Plus** — LDPJoinSketch+: windows seal the three report lanes (phase-1 sample,
//!   phase-2 low/high FAP groups) as a [`PlusStateBuilder`](ldpjs_core::PlusStateBuilder);
//!   merged spans re-aggregate each lane exactly and **re-discover the frequent items on
//!   the merged phase-1 sketch** (cross-window FI reconciliation), so a full-span plus
//!   estimate is bit-identical to the one-shot
//!   [`ldp_join_plus_estimate_chunked`](ldpjs_core::ldp_join_plus_estimate_chunked).
//! * **Edge** — two-attribute 2-D edge sketches serving online multi-way
//!   [`chain_join_3`](service::SketchService::chain_join_3) queries.
//!
//! Epochs seal on a report-count threshold *or* a wall-clock budget
//! ([`ServiceConfig::epoch_duration`](service::ServiceConfig) with an injected clock),
//! whichever fires first.
//!
//! The crate is deliberately transport-free: report delivery, authentication and wire
//! decoding happen upstream ([`ClientReport::from_wire`](ldpjs_core::ClientReport)); this
//! layer owns windowing, retention, merging and query serving.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
mod observe;
pub mod service;
pub mod window;

pub use cache::{CacheStats, ModeCacheStats};
pub use service::{
    AttributeId, Explain, ExplainKernel, IngestSummary, PlusAttributeConfig, QueryClock,
    QueryResult, ServiceConfig, SketchService, SpanSource,
};
pub use window::{WindowRange, WindowSnapshot};
