//! # ldpjs-service
//!
//! The **online sketch service**: the always-on serving layer that turns the one-shot
//! LDPJoinSketch protocol (collect every report, aggregate, estimate once) into a
//! long-running system under continuous report traffic.
//!
//! * [`service::SketchService`] registers join attributes and accepts continuous
//!   [`ClientReport`](ldpjs_core::ClientReport) batches (from the plain client *or* the FAP
//!   client — both emit the same report type), feeding one parallel
//!   [`ShardedAggregator`](ldpjs_core::ShardedAggregator) per attribute.
//! * An **epoch rotator** seals the live engine every `epoch_reports` reports (or on an
//!   explicit [`service::SketchService::rotate`]) into an immutable
//!   [`window::WindowSnapshot`] kept in a bounded ring of recent windows. A snapshot holds
//!   both the sealed [`SketchBuilder`](ldpjs_core::SketchBuilder) — exact integer counters,
//!   mergeable at zero rounding error — and its finalized estimation view.
//! * **Window merge** re-aggregates the sealed raw counters before a single Hadamard
//!   restore, so a k-window merged sketch is **bit-identical** to one-shot aggregation of
//!   the same reports (property-tested across window splits).
//! * The **query layer** answers join-size and frequency queries over any
//!   [`window::WindowRange`] (`Latest`, `LastK`, `All`) with a memoized
//!   per-(attribute-pair, window-range) cache invalidated on rotation, so a repeated
//!   dashboard-style query costs a hash lookup instead of an `O(k·m)` row product.
//!
//! The crate is deliberately transport-free: report delivery, authentication and wire
//! decoding happen upstream ([`ClientReport::from_wire`](ldpjs_core::ClientReport)); this
//! layer owns windowing, retention, merging and query serving.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cache;
pub mod service;
pub mod window;

pub use cache::CacheStats;
pub use service::{AttributeId, IngestSummary, QueryResult, ServiceConfig, SketchService};
pub use window::{WindowRange, WindowSnapshot};
