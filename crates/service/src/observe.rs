//! Telemetry wiring of the online service: the metric naming scheme, the per-attribute and
//! service-wide instrument bundles, and the label formatter shared by the pull-gauge
//! refresh.
//!
//! Everything here follows the registry's two-tier stability model
//! ([`Stability`](ldpjs_metrics::telemetry::Stability)):
//!
//! * **Deterministic** — fully determined by the report stream and the service
//!   configuration: ingest/rotation/eviction counters, ring and ledger depths, cache
//!   hit/miss/eviction counters, per-kind query counters. These are byte-stable across
//!   pinned-seed runs *and* across shard counts, which is what the cross-shard snapshot
//!   property test pins.
//! * **Environment** — shaped by the machine: per-shard residency, parallel-vs-inline
//!   ingest path counts, SIMD kernel dispatch tiers, and every stage-timing histogram.
//!   They are exported but filtered from deterministic snapshots.
//!
//! Timings never read the wall clock here: the service records them only through its
//! injected query clock (see `SketchService::set_query_clock`), the same pattern the epoch
//! rotator already uses, so the workspace `determinism`/`telemetry-clock` lints stay clean.

use crate::cache::CacheInstruments;
use ldpjs_core::AggregatorInstruments;
use ldpjs_metrics::telemetry::{Counter, Gauge, Histogram, Stability, Telemetry};

/// Indexes into the per-kind arrays of [`ServiceInstruments`].
pub(crate) const K_JOIN: usize = 0;
pub(crate) const K_PLUS_JOIN: usize = 1;
pub(crate) const K_FREQUENCY: usize = 2;
pub(crate) const K_CHAIN3: usize = 3;
const KINDS: [&str; 4] = ["join", "plus_join", "frequency", "chain3"];

/// Nanosecond buckets of the stage-timing histograms: powers of four from 1µs to ~1s, wide
/// enough to cover a cache hit and a cold 2²⁴-counter span assembly in one scheme.
const NS_BUCKETS: [u64; 11] = [
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_024_000,
    4_096_000,
    16_384_000,
    65_536_000,
    262_144_000,
    1_048_576_000,
];

/// `base{k1="v1",k2="v2"}` — the exporter's label grammar, built without a formatter to
/// keep registration allocation-light.
pub(crate) fn labeled(base: &str, labels: &[(&str, &str)]) -> String {
    let mut out = String::with_capacity(base.len() + 24);
    out.push_str(base);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
    out
}

/// Telemetry handles of one registered attribute. Registered once at attribute
/// registration; the engine-attached aggregator bundle is re-attached to every fresh
/// engine the rotator creates, so the series survive rotation.
#[derive(Debug, Clone)]
pub(crate) struct AttributeInstruments {
    /// Reports absorbed into the live engine (all ingest entry points).
    pub reports: Counter,
    /// Ingest calls absorbed (batch granularity).
    pub batches: Counter,
    /// Reports of rejected batches (the whole batch counts: rejection is atomic).
    pub rejected_reports: Counter,
    /// Rejected batches rolled back without touching the live state.
    pub rollbacks: Counter,
    /// Epochs sealed (explicit, count-triggered and time-triggered rotations alike).
    pub rotations: Counter,
    /// Windows evicted past the retention bound.
    pub evictions: Counter,
    /// Sealed windows currently retained in the ring.
    pub windows: Gauge,
    /// Prefix entries currently held by the span ledger (aligned with the ring).
    pub ledger_depth: Gauge,
    /// Reports sitting in the live (unsealed) engine.
    pub live_reports: Gauge,
    /// Engine-level handles (plain attributes only: shard residency, parallel-vs-inline
    /// path, cross-shard rollback events) — all [`Stability::Environment`].
    pub agg: Option<AggregatorInstruments>,
}

impl AttributeInstruments {
    /// Register the attribute's full series under `{attr="name",mode="…"}` labels.
    /// `shards` is `Some` for plain attributes, which also get the engine-level bundle.
    pub fn register(
        telemetry: &Telemetry,
        name: &str,
        mode: &'static str,
        shards: Option<usize>,
    ) -> Self {
        let det = Stability::Deterministic;
        let env = Stability::Environment;
        let am = [("attr", name), ("mode", mode)];
        let a = [("attr", name)];
        let counter = |base: &str| telemetry.counter(&labeled(base, &am), det);
        let agg = shards.map(|shards| AggregatorInstruments {
            shard_reports: (0..shards)
                .map(|s| {
                    telemetry.gauge(
                        &labeled(
                            "ldpjs_shard_reports",
                            &[("attr", name), ("shard", &s.to_string())],
                        ),
                        env,
                    )
                })
                .collect(),
            parallel_batches: telemetry
                .counter(&labeled("ldpjs_ingest_parallel_batches_total", &a), env),
            inline_batches: telemetry
                .counter(&labeled("ldpjs_ingest_inline_batches_total", &a), env),
            rollbacks: telemetry.counter(&labeled("ldpjs_shard_rollback_events_total", &a), env),
        });
        AttributeInstruments {
            reports: counter("ldpjs_ingest_reports_total"),
            batches: counter("ldpjs_ingest_batches_total"),
            rejected_reports: counter("ldpjs_ingest_rejected_reports_total"),
            rollbacks: counter("ldpjs_ingest_rollbacks_total"),
            rotations: counter("ldpjs_rotations_total"),
            evictions: counter("ldpjs_window_evictions_total"),
            windows: telemetry.gauge(&labeled("ldpjs_windows_retained", &a), det),
            ledger_depth: telemetry.gauge(&labeled("ldpjs_ledger_depth", &a), det),
            live_reports: telemetry.gauge(&labeled("ldpjs_live_reports", &a), det),
            agg,
        }
    }
}

/// Service-wide handles: one answered-query counter per kind (deterministic) and the
/// clock-gated stage-timing histograms (environment — and silent until a query clock is
/// injected).
#[derive(Debug)]
pub(crate) struct ServiceInstruments {
    pub queries: [Counter; 4],
    pub total_ns: [Histogram; 4],
    pub assemble_ns: [Histogram; 4],
    pub kernel_ns: [Histogram; 4],
}

impl ServiceInstruments {
    pub fn register(telemetry: &Telemetry) -> Self {
        let hist = |stage: &str| {
            KINDS.map(|kind| {
                telemetry.histogram(
                    &labeled("ldpjs_query_ns", &[("kind", kind), ("stage", stage)]),
                    Stability::Environment,
                    &NS_BUCKETS,
                )
            })
        };
        ServiceInstruments {
            queries: KINDS.map(|kind| {
                telemetry.counter(
                    &labeled("ldpjs_queries_total", &[("kind", kind)]),
                    Stability::Deterministic,
                )
            }),
            total_ns: hist("total"),
            assemble_ns: hist("assemble"),
            kernel_ns: hist("kernel"),
        }
    }
}

/// Register the query-cache series (per-mode hits/misses plus the eviction and
/// invalidation totals) and bundle the handles for `QueryCache::set_instruments`.
pub(crate) fn register_cache_instruments(telemetry: &Telemetry) -> CacheInstruments {
    let det = Stability::Deterministic;
    let per_mode = |base: &str| {
        ["plain", "plus", "edge"]
            .map(|mode| telemetry.counter(&labeled(base, &[("mode", mode)]), det))
    };
    CacheInstruments {
        hits: per_mode("ldpjs_cache_hits_total"),
        misses: per_mode("ldpjs_cache_misses_total"),
        evictions: telemetry.counter("ldpjs_cache_evictions_total", det),
        invalidations: telemetry.counter("ldpjs_cache_invalidations_total", det),
    }
}
