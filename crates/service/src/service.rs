//! The [`SketchService`]: continuous per-attribute ingestion in three estimator modes
//! (plain, LDPJoinSketch+, edge), the epoch rotator with report-count *and* wall-clock
//! triggers, and the cached window-range query layer driving the shared estimator kernels.

use crate::cache::{CachedAnswer, QueryCache, QueryKey, QueryMode};
use crate::observe::{
    labeled, register_cache_instruments, AttributeInstruments, ServiceInstruments, K_CHAIN3,
    K_FREQUENCY, K_JOIN, K_PLUS_JOIN,
};
use crate::window::{SealedWindow, WindowRange, WindowSnapshot};
use ldpjs_common::batch::ReportBatch;
use ldpjs_common::error::{Error, Result};
use ldpjs_common::hash::RowHashes;
use ldpjs_common::privacy::Epsilon;
use ldpjs_common::{kernel_dispatch_snapshot, KernelDispatchSnapshot};
use ldpjs_core::multiway::{
    EdgeReport, EdgeSketchBuilder, FinalizedEdgeSketch, LdpEdgeSketchClient,
};
use ldpjs_core::{
    bounds, ChainKernel, ClientReport, DomainIndex, FiPolicy, FinalizedPlusState, FinalizedSketch,
    LdpJoinSketchClient, PlainKernel, PlusConfig, PlusKernel, PlusReportBatch, PlusStateBuilder,
    ShardedAggregator,
};
use ldpjs_metrics::telemetry::{Snapshot, Stability, Telemetry};
use ldpjs_sketch::compass::JoinAttribute;
use ldpjs_sketch::SketchParams;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use crate::cache::CacheStats;

/// Static configuration of a [`SketchService`], shared by every registered attribute.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Sketch dimensions `(k, m)` used by every attribute.
    pub params: SketchParams,
    /// Privacy budget every client perturbs with.
    pub eps: Epsilon,
    /// Shards of each plain attribute's live ingestion engine.
    pub shards: usize,
    /// Seal the live engine into a window once it holds at least this many reports.
    /// Rotation happens at batch granularity: the batch that crosses the threshold
    /// completes its window, so windows can slightly exceed this count.
    pub epoch_reports: u64,
    /// Wall-clock epoch trigger: seal the live engine once the epoch has been open for this
    /// long, alongside the report-count trigger (whichever fires first rotates; rotation
    /// resets both). The clock is *injected* — ingestion stamps the epoch's opening via
    /// [`SketchService::ingest_at`]-style entry points, and quiet attributes are swept by
    /// [`SketchService::rotate_if_elapsed`] — so tests (and deterministic replays) control
    /// time explicitly. `None` disables the time trigger.
    pub epoch_duration: Option<Duration>,
    /// How many sealed windows the per-attribute ring retains; older windows are evicted.
    pub retained_windows: usize,
    /// How many memoized query results the cache holds before evicting least-recently-used
    /// (frequency queries are keyed by caller-supplied values, so the result cache needs an
    /// explicit bound to keep a long-lived service's memory flat).
    pub cache_capacity: usize,
}

impl ServiceConfig {
    /// A configuration with serving defaults: 2 shards, 64Ki-report epochs, no time
    /// trigger, 16 retained windows, 4096 cached results.
    pub fn new(params: SketchParams, eps: Epsilon) -> Self {
        ServiceConfig {
            params,
            eps,
            shards: 2,
            epoch_reports: 64 * 1024,
            epoch_duration: None,
            retained_windows: 16,
            cache_capacity: 4_096,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(Error::InvalidWorkload(
                "a sketch service needs at least one ingestion shard".into(),
            ));
        }
        if self.epoch_reports == 0 {
            return Err(Error::InvalidWorkload(
                "epoch_reports must be positive (every epoch needs at least one report)".into(),
            ));
        }
        if self.epoch_duration == Some(Duration::ZERO) {
            return Err(Error::InvalidWorkload(
                "epoch_duration must be positive (use None to disable the time trigger)".into(),
            ));
        }
        if self.retained_windows == 0 {
            return Err(Error::InvalidWorkload(
                "retained_windows must be positive (the ring must hold at least one window)".into(),
            ));
        }
        if self.cache_capacity == 0 {
            return Err(Error::InvalidWorkload(
                "cache_capacity must be positive (set it to 1 to effectively disable reuse)".into(),
            ));
        }
        Ok(())
    }
}

/// Per-attribute configuration of the LDPJoinSketch+ estimator mode: the frequent-item
/// discovery policy, the `JoinEst` kernel knobs, and the public candidate domain scanned at
/// discovery time.
#[derive(Debug, Clone)]
pub struct PlusAttributeConfig {
    /// Fixed frequent-item threshold θ (ignored when `adaptive` is set).
    pub threshold: f64,
    /// Run the confidence-driven estimator (adaptive θ, median FI discovery, shift-free
    /// JoinEst, bound-capped recombination).
    pub adaptive: bool,
    /// Classic mode only: reproduce Algorithm 5's unscaled non-target subtraction.
    pub paper_literal_subtraction: bool,
    /// Classic mode only: inverse-variance weighting of the rescaled partials.
    pub variance_weighted_recombination: bool,
    /// The public candidate domain frequent-item discovery scans (join-attribute domains
    /// are public metadata; only the values *held by users* are private).
    pub domain: Arc<Vec<u64>>,
}

impl PlusAttributeConfig {
    /// Defaults matching the large-n serving regime: adaptive mode on.
    pub fn new(domain: Vec<u64>) -> Self {
        PlusAttributeConfig {
            threshold: 0.01,
            adaptive: true,
            paper_literal_subtraction: false,
            variance_weighted_recombination: false,
            domain: Arc::new(domain),
        }
    }

    /// Import the estimator knobs of an offline [`PlusConfig`], so a service attribute can
    /// be configured to answer bit-identically to a given one-shot run.
    pub fn from_plus_config(config: &PlusConfig, domain: Vec<u64>) -> Self {
        PlusAttributeConfig {
            threshold: config.threshold,
            adaptive: config.adaptive,
            paper_literal_subtraction: config.paper_literal_subtraction,
            variance_weighted_recombination: config.variance_weighted_recombination,
            domain: Arc::new(domain),
        }
    }

    fn policy(&self) -> FiPolicy {
        FiPolicy {
            threshold: self.threshold,
            adaptive: self.adaptive,
        }
    }

    fn kernel(&self) -> PlusKernel {
        PlusKernel {
            adaptive: self.adaptive,
            paper_literal_subtraction: self.paper_literal_subtraction,
            variance_weighted_recombination: self.variance_weighted_recombination,
        }
    }
}

/// Opaque handle to a registered join attribute (cheap to copy, valid for the service's
/// lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AttributeId(usize);

impl AttributeId {
    /// The attribute's index in registration order.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// What one ingestion call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestSummary {
    /// Reports absorbed into the live engine by this call.
    pub reports: u64,
    /// Epochs sealed by this call (0 or 1: rotation is batch-granular).
    pub rotations: u64,
}

/// One answered query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryResult {
    /// The estimate.
    pub value: f64,
    /// Sealed windows consulted (every participating attribute summed).
    pub windows: usize,
    /// Reports covered by those windows (every participating attribute summed).
    pub reports: u64,
    /// Whether the answer came from the memoization cache.
    pub cached: bool,
    /// Query provenance: which kernel ran, how the spans were assembled, and the analytical
    /// error prediction that seeds the error-aware planner.
    pub explain: Explain,
}

/// The estimator kernel that computed a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExplainKernel {
    /// [`PlainKernel`] — Eq. 5 join size / Theorem 7 frequency.
    #[default]
    Plain,
    /// [`PlusKernel`] — the LDPJoinSketch+ `JoinEst` / phase-1 frequency estimator.
    Plus,
    /// [`ChainKernel`] — the 3-way chain estimator.
    Chain,
}

impl ExplainKernel {
    /// The kernel's exporter-facing name.
    pub fn as_str(self) -> &'static str {
        match self {
            ExplainKernel::Plain => "plain",
            ExplainKernel::Plus => "plus",
            ExplainKernel::Chain => "chain",
        }
    }
}

/// How a query's merged span views were assembled. Ordered by cost, so a multi-operand
/// query reports the most expensive assembly among its operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum SpanSource {
    /// Every operand resolved to a single sealed window, whose precomputed view was
    /// borrowed outright.
    #[default]
    SingleWindow,
    /// At least one multi-window operand was served from an already-materialized merged
    /// view (the per-span memo store, or the plus ledger's rotation-time materialization).
    MemoizedView,
    /// At least one operand's merged view was assembled cold from the span ledger's
    /// spectrum prefixes on this query.
    LedgerAssembled,
}

impl SpanSource {
    /// The source's exporter-facing name.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanSource::SingleWindow => "single_window",
            SpanSource::MemoizedView => "memoized_view",
            SpanSource::LedgerAssembled => "ledger_assembled",
        }
    }
}

/// Per-query provenance, carried by every [`QueryResult`] (and stored with the cached
/// answer, so hits replay the original record with only the cache outcome rewritten).
///
/// The predicted columns are the paper's analytical bounds evaluated on the spans actually
/// queried — Theorem 5's error radius and the Theorem 4-derived estimator variance for join
/// kinds, the Theorem 7 variance for frequency — using each span's exact report count as
/// its F1. They are the seed of the error-aware query planner (ROADMAP item 5): a planner
/// can compare the predicted error of candidate spans *before* running any kernel.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Explain {
    /// The kernel that computed the answer.
    pub kernel: ExplainKernel,
    /// How the merged span views were assembled (most expensive operand).
    pub span_source: SpanSource,
    /// Whether this record was served from the memoization cache.
    pub cached: bool,
    /// Sealed windows merged across every operand.
    pub windows: usize,
    /// Frequent items carried by the operands' reconciled FI sets (plus kernels; 0
    /// otherwise).
    pub frequent_items: usize,
    /// Predicted estimator variance on the queried spans.
    pub predicted_variance: f64,
    /// Predicted error radius (Theorem 5 for joins; one standard deviation for frequency;
    /// the heavier pairwise Theorem 5 radius as a planner heuristic for chains).
    pub predicted_error: f64,
}

/// The estimator mode a registered attribute runs in (with its mode-specific static state).
#[derive(Debug, Clone)]
enum AttributeKind {
    /// Plain LDPJoinSketch ingestion and queries.
    Plain { hashes: Arc<RowHashes> },
    /// LDPJoinSketch+ three-lane ingestion, FI reconciliation and `JoinEst` queries.
    Plus {
        seed: u64,
        config: PlusAttributeConfig,
        /// Pre-hashed scan index over `config.domain` for the phase-1 hash family: every
        /// seal-time and merged-span frequent-item discovery routes through it instead of
        /// re-hashing `k · |domain|` candidates per scan (bit-identical results).
        index: Arc<DomainIndex>,
    },
    /// Two-attribute edge-sketch ingestion for multi-way chain queries.
    Edge {
        attr_a: JoinAttribute,
        attr_b: JoinAttribute,
    },
}

impl AttributeKind {
    fn mode_name(&self) -> &'static str {
        match self {
            AttributeKind::Plain { .. } => "plain",
            AttributeKind::Plus { .. } => "plus",
            AttributeKind::Edge { .. } => "edge",
        }
    }
}

/// The live (unsealed) accumulation engine of one attribute, shaped by its mode.
#[derive(Debug)]
enum LiveEngine {
    Plain(ShardedAggregator),
    Plus(PlusStateBuilder),
    Edge(EdgeSketchBuilder),
}

impl LiveEngine {
    fn reports(&self) -> u64 {
        match self {
            LiveEngine::Plain(engine) => engine.reports(),
            LiveEngine::Plus(builder) => builder.reports(),
            LiveEngine::Edge(builder) => builder.reports(),
        }
    }
}

/// Cumulative per-lane state of the span ledger: the **unscaled Hadamard spectra** of one or
/// more exact-counter lanes (one for plain, three for plus), plus the lanes' report counts.
///
/// Counters are exact ±1 integer sums, so each lane's unscaled FWHT is computed exactly in
/// f64 (every intermediate is an integer far below 2⁵³), and the transform is linear —
/// adding or subtracting two windows' spectra yields, bit for bit, the spectrum of their
/// merged or differenced counters. That is what lets the ledger live in the Hadamard domain:
/// spans assemble by element-wise subtraction with **zero transforms at query time**.
#[derive(Debug, Clone)]
struct SpectrumEntry {
    /// Per-lane unscaled spectra (`k·m` elements each).
    lanes: Vec<Vec<f64>>,
    /// Per-lane exact report counts.
    reports: Vec<u64>,
}

impl SpectrumEntry {
    fn zero(lanes: usize, len: usize) -> Self {
        SpectrumEntry {
            lanes: vec![vec![0.0; len]; lanes],
            reports: vec![0; lanes],
        }
    }

    /// `self + window` as a new entry, consuming the window's freshly computed spectra
    /// (exact integer additions lane- and element-wise).
    fn plus_window(&self, mut window_lanes: Vec<Vec<f64>>, window_reports: &[u64]) -> Self {
        debug_assert_eq!(window_lanes.len(), self.lanes.len());
        for (lane, acc) in window_lanes.iter_mut().zip(&self.lanes) {
            for (v, &a) in lane.iter_mut().zip(acc) {
                *v += a;
            }
        }
        let reports = self
            .reports
            .iter()
            .zip(window_reports)
            .map(|(&a, &w)| a + w)
            .collect();
        SpectrumEntry {
            lanes: window_lanes,
            reports,
        }
    }
}

/// The incremental merged-span state of one attribute: cumulative (prefix-sum) entries
/// aligned window-for-window with the retained ring, plus the cumulative sum of everything
/// already evicted.
///
/// Maintained at rotation only — sealing a window *adds* its lanes to the last prefix,
/// evicting the oldest window *moves* its prefix into the origin — so a merged span over
/// the suffix `start..len` is assembled per query as the single exact subtraction
/// `prefix[len−1] − prefix[start−1]` (or `− origin` for the full ring) instead of cloning
/// and counter-wise merging every covered window.
///
/// Plain and plus ledgers keep their prefixes as unscaled Hadamard spectra (see
/// [`SpectrumEntry`]): a cold span query is one element-wise subtraction fused with one
/// de-bias multiply per element ([`FinalizedSketch::from_spectrum_diff`]) — no counter
/// merge and no FWHT on the query path at all. Because the spectra are exact integers and
/// the transform is linear, the result is bit-identical to merging every covered window's
/// builders from scratch and finalizing — property-tested in this module.
///
/// The plus ledger goes one step further: every suffix span changes on every rotation (each
/// gains the new window), so rotation also **materializes** the merged
/// [`FinalizedPlusState`] of every span start from the spectra — including the span's
/// frequent-item re-discovery, the expensive domain scan. A cold plus span query is then an
/// `Arc` clone; the per-span assembly and FI maintenance run once per rotation instead of
/// once per cold query. (Memory: `retained_windows` states of three `k·m` lanes each per
/// plus attribute.) Edge windows are 2-D and queried rarely, so their ledger stays in the
/// counter domain.
#[derive(Debug)]
enum SpanLedger {
    Plain {
        params: SketchParams,
        eps: Epsilon,
        hashes: Arc<RowHashes>,
        origin: SpectrumEntry,
        prefix: VecDeque<SpectrumEntry>,
    },
    Plus {
        params: SketchParams,
        eps: Epsilon,
        /// The `(phase1, low, high)` lane hash families, captured at registration.
        lane_hashes: [Arc<RowHashes>; 3],
        origin: SpectrumEntry,
        prefix: VecDeque<SpectrumEntry>,
        /// `spans[start]` = the materialized merged state over the suffix `start..len`,
        /// rebuilt at every rotation (`spans[len−1]` shares the newest window's sealed
        /// view).
        spans: Vec<Arc<FinalizedPlusState>>,
    },
    Edge {
        origin: EdgeSketchBuilder,
        prefix: VecDeque<EdgeSketchBuilder>,
    },
}

impl SpanLedger {
    /// Fold a freshly sealed window's counters into the ledger (the rotation hook). The
    /// per-lane FWHTs charged here are the only transforms the ledger ever runs — queries
    /// reuse them for every span that covers this window.
    fn push(&mut self, window: &WindowSnapshot) {
        match (self, window.state()) {
            (SpanLedger::Plain { origin, prefix, .. }, SealedWindow::Plain { sealed, .. }) => {
                let last = prefix.back().unwrap_or(origin);
                let next = last.plus_window(vec![sealed.spectrum()], &[sealed.reports()]);
                prefix.push_back(next);
            }
            (SpanLedger::Plus { origin, prefix, .. }, SealedWindow::Plus { sealed, .. }) => {
                let (phase1, low, high) = sealed.lane_builders();
                let (rp, rl, rh) = sealed.lane_reports();
                let last = prefix.back().unwrap_or(origin);
                let next = last.plus_window(
                    vec![phase1.spectrum(), low.spectrum(), high.spectrum()],
                    &[rp, rl, rh],
                );
                prefix.push_back(next);
            }
            (SpanLedger::Edge { origin, prefix }, SealedWindow::Edge { sealed, .. }) => {
                let mut next = prefix.back().unwrap_or(origin).clone();
                next.merge(sealed)
                    // lint:allow(panic-freedom) — invariant: every window of one attribute
                    // is built from the same registration, so attributes and ε always match.
                    .expect("windows of one attribute share attributes and ε");
                prefix.push_back(next);
            }
            _ => unreachable!("attribute kind and ledger are constructed together"),
        }
    }

    /// Prefix entries currently held (always aligned with the window ring's length).
    fn depth(&self) -> usize {
        match self {
            SpanLedger::Plain { prefix, .. } => prefix.len(),
            SpanLedger::Plus { prefix, .. } => prefix.len(),
            SpanLedger::Edge { prefix, .. } => prefix.len(),
        }
    }

    /// Absorb the evicted oldest window into the origin (the eviction hook): the popped
    /// prefix *is* the cumulative sum up to and including that window.
    fn evict(&mut self) {
        match self {
            SpanLedger::Plain { origin, prefix, .. } => {
                // lint:allow(panic-freedom) — invariant: evict only runs when the window
                // ring overflows, and push kept one ledger entry per ring window.
                *origin = prefix.pop_front().expect("ledger aligned with windows");
            }
            SpanLedger::Plus { origin, prefix, .. } => {
                // lint:allow(panic-freedom) — invariant: evict only runs when the window
                // ring overflows, and push kept one ledger entry per ring window.
                *origin = prefix.pop_front().expect("ledger aligned with windows");
            }
            SpanLedger::Edge { origin, prefix } => {
                // lint:allow(panic-freedom) — invariant: evict only runs when the window
                // ring overflows, and push kept one ledger entry per ring window.
                *origin = prefix.pop_front().expect("ledger aligned with windows");
            }
        }
    }

    /// Finalize the merged plain view of the suffix span `start..len`: one fused spectrum
    /// subtraction + de-bias multiply per element, no FWHT.
    fn plain_span(&self, start: usize) -> FinalizedSketch {
        let SpanLedger::Plain {
            params,
            eps,
            hashes,
            origin,
            prefix,
        } = self
        else {
            unreachable!("mode checked by the query layer");
        };
        // lint:allow(panic-freedom) — invariant: span resolution rejects empty rings, so
        // a resolved span implies at least one ledger prefix entry.
        let last = prefix.back().expect("span resolution rejects empty rings");
        let base = if start == 0 {
            origin
        } else {
            &prefix[start - 1]
        };
        FinalizedSketch::from_spectrum_diff(
            *params,
            *eps,
            Arc::clone(hashes),
            last.reports[0] - base.reports[0],
            &last.lanes[0],
            &base.lanes[0],
        )
    }

    /// The materialized merged plus state of the suffix span `start..len` (rebuilt at every
    /// rotation) — a cold plus span query is this `Arc` clone.
    fn plus_span(&self, start: usize) -> Arc<FinalizedPlusState> {
        let SpanLedger::Plus { spans, .. } = self else {
            unreachable!("mode checked by the query layer");
        };
        Arc::clone(&spans[start])
    }

    /// Rebuild the materialized per-start merged plus states after a rotation: every suffix
    /// span gained the new window (and eviction shifted the starts), so each is assembled
    /// fresh from the spectrum prefixes — three fused subtract+scale passes and one indexed
    /// FI re-discovery per span, bit-identical to merging the covered windows from scratch.
    /// `newest` (the just-sealed window's view, discovery already run at sealing) is shared
    /// as the one-window span.
    fn refresh_plus_spans(
        &mut self,
        policy: FiPolicy,
        index: &DomainIndex,
        newest: Arc<FinalizedPlusState>,
    ) {
        let SpanLedger::Plus {
            params,
            eps,
            lane_hashes,
            origin,
            prefix,
            spans,
        } = self
        else {
            unreachable!("mode checked by the rotation hook");
        };
        let len = prefix.len();
        // lint:allow(panic-freedom) — invariant: the rotation hook calls refresh right
        // after push, so the prefix is never empty here.
        let last = prefix.back().expect("refresh runs right after a push");
        spans.clear();
        for start in 0..len - 1 {
            let base = if start == 0 {
                &*origin
            } else {
                &prefix[start - 1]
            };
            let mk = |l: usize| {
                FinalizedSketch::from_spectrum_diff(
                    *params,
                    *eps,
                    Arc::clone(&lane_hashes[l]),
                    last.reports[l] - base.reports[l],
                    &last.lanes[l],
                    &base.lanes[l],
                )
            };
            let (phase1, low, high) = (mk(0), mk(1), mk(2));
            spans.push(Arc::new(FinalizedPlusState::new_indexed(
                phase1, low, high, policy, index,
            )));
        }
        spans.push(newest);
    }

    /// Assemble the merged edge builder of the suffix span `start..len`.
    fn edge_span(&self, start: usize) -> EdgeSketchBuilder {
        let SpanLedger::Edge { origin, prefix } = self else {
            unreachable!("mode checked by the query layer");
        };
        // lint:allow(panic-freedom) — invariant: span resolution rejects empty rings, so
        // a resolved span implies at least one ledger prefix entry.
        let last = prefix.back().expect("span resolution rejects empty rings");
        let base = if start == 0 {
            origin
        } else {
            &prefix[start - 1]
        };
        last.difference(base)
            // lint:allow(panic-freedom) — invariant: each prefix entry is the previous
            // entry plus one window, so `last` always dominates `base` counter-wise.
            .expect("every ledger prefix is a superset of its predecessors")
    }
}

/// One registered join attribute: its mode, the live engine, the bounded ring of sealed
/// epoch windows, and the prefix-sum span ledger kept aligned with that ring.
#[derive(Debug)]
struct Attribute {
    name: String,
    kind: AttributeKind,
    live: LiveEngine,
    windows: VecDeque<WindowSnapshot>,
    ledger: SpanLedger,
    next_epoch: u64,
    evicted: u64,
    total_reports: u64,
    /// When the current epoch's first report arrived (the injected-clock stamp the time
    /// trigger measures from). `None` while the live engine is empty.
    epoch_opened_at: Option<Instant>,
    /// The attribute's registered telemetry handles (see [`crate::observe`]).
    instruments: AttributeInstruments,
}

/// An injected clock for per-query stage timings: the service never reads the wall clock
/// on the query path itself (the workspace determinism/telemetry-clock lints forbid it in
/// library code) — timings only flow when a clock is installed through
/// [`SketchService::set_query_clock`], mirroring the epoch rotator's `*_at` entry points.
#[derive(Clone)]
pub struct QueryClock(Arc<dyn Fn() -> Instant + Send + Sync>);

impl QueryClock {
    /// Wrap a clock function (a fake for deterministic replays, `Instant::now` via
    /// [`QueryClock::wall`] for deployments).
    pub fn new(clock: impl Fn() -> Instant + Send + Sync + 'static) -> Self {
        QueryClock(Arc::new(clock))
    }

    /// The process wall clock.
    pub fn wall() -> Self {
        // lint:allow(determinism) — the one wall-clock constructor, opt-in by design;
        // deterministic runs build the clock from a fake via `QueryClock::new`.
        QueryClock::new(Instant::now)
    }

    fn now(&self) -> Instant {
        (self.0)()
    }
}

impl std::fmt::Debug for QueryClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("QueryClock(..)")
    }
}

/// The online sketch service: epoch-windowed continuous ingestion, mergeable snapshots, and
/// a cached query layer over the shared estimator kernels.
///
/// ```
/// use ldpjs_core::{Epsilon, SketchParams};
/// use ldpjs_service::{ServiceConfig, SketchService, WindowRange};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut config = ServiceConfig::new(
///     SketchParams::new(8, 256).unwrap(),
///     Epsilon::new(4.0).unwrap(),
/// );
/// config.epoch_reports = 1_000;
/// let mut service = SketchService::new(config).unwrap();
/// // Join partners share the public hash seed — that is what makes their sketches joinable.
/// let orders = service.register_attribute("orders.user_id", 7).unwrap();
/// let clicks = service.register_attribute("clicks.user_id", 7).unwrap();
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let client = service.client(orders).unwrap();
/// let values: Vec<u64> = (0..2_000).map(|i| i % 50).collect();
/// service.ingest(orders, &client.perturb_all(&values, &mut rng)).unwrap();
/// let client = service.client(clicks).unwrap();
/// service.ingest(clicks, &client.perturb_all(&values, &mut rng)).unwrap();
/// service.rotate(orders).unwrap();
/// service.rotate(clicks).unwrap();
///
/// let first = service.join_size(orders, clicks, WindowRange::All).unwrap();
/// let again = service.join_size(orders, clicks, WindowRange::All).unwrap();
/// assert!(!first.cached && again.cached);
/// assert_eq!(first.value, again.value);
/// ```
#[derive(Debug)]
pub struct SketchService {
    config: ServiceConfig,
    attributes: Vec<Attribute>,
    cache: QueryCache,
    telemetry: Telemetry,
    instruments: ServiceInstruments,
    query_clock: Option<QueryClock>,
    /// The process-wide SIMD dispatch counters at construction: exported dispatch counts
    /// are the delta against this, so each service reports its own kernel activity even
    /// when several services (or tests) share the process.
    dispatch_baseline: KernelDispatchSnapshot,
}

impl SketchService {
    /// Create an empty service.
    ///
    /// # Errors
    /// [`Error::InvalidWorkload`] if the configuration is degenerate (zero shards, epoch
    /// size, duration, or retention).
    pub fn new(config: ServiceConfig) -> Result<Self> {
        config.validate()?;
        let telemetry = Telemetry::new();
        let instruments = ServiceInstruments::register(&telemetry);
        let mut cache = QueryCache::with_capacity(config.cache_capacity);
        cache.set_instruments(Some(register_cache_instruments(&telemetry)));
        Ok(SketchService {
            config,
            attributes: Vec::new(),
            cache,
            telemetry,
            instruments,
            query_clock: None,
            dispatch_baseline: kernel_dispatch_snapshot(),
        })
    }

    /// The service configuration.
    #[inline]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Register a **plain** join attribute under `name` with the public hash-family seed
    /// `seed`.
    ///
    /// Attributes that will be joined against each other must share `seed` (the protocol's
    /// public common randomness); attributes that never join may use distinct seeds.
    ///
    /// # Errors
    /// [`Error::InvalidWorkload`] if `name` is already registered.
    pub fn register_attribute(&mut self, name: &str, seed: u64) -> Result<AttributeId> {
        let hashes = Arc::new(RowHashes::from_seed(
            seed,
            self.config.params.rows(),
            self.config.params.columns(),
        ));
        let live = LiveEngine::Plain(fresh_plain_engine(&self.config, &hashes));
        let counters = self.config.params.rows() * self.config.params.columns();
        let ledger = SpanLedger::Plain {
            params: self.config.params,
            eps: self.config.eps,
            hashes: Arc::clone(&hashes),
            origin: SpectrumEntry::zero(1, counters),
            prefix: VecDeque::new(),
        };
        self.register(name, AttributeKind::Plain { hashes }, live, ledger)
    }

    /// Register an **LDPJoinSketch+** attribute: three-lane ingestion
    /// ([`PlusReportBatch`]es), per-window sealed phase-1/phase-2 builders, and
    /// `JoinEst`-backed join-size and frequency queries with cross-window FI
    /// reconciliation. Join partners must share `seed` *and* estimator knobs.
    ///
    /// # Errors
    /// [`Error::InvalidWorkload`] if `name` is already registered.
    pub fn register_plus_attribute(
        &mut self,
        name: &str,
        seed: u64,
        config: PlusAttributeConfig,
    ) -> Result<AttributeId> {
        let builder = PlusStateBuilder::new(self.config.params, self.config.eps, seed);
        let (phase1, low, high) = builder.lane_builders();
        let lane_hashes = [
            Arc::clone(phase1.hashes()),
            Arc::clone(low.hashes()),
            Arc::clone(high.hashes()),
        ];
        let live = LiveEngine::Plus(builder);
        let counters = self.config.params.rows() * self.config.params.columns();
        let ledger = SpanLedger::Plus {
            params: self.config.params,
            eps: self.config.eps,
            lane_hashes,
            origin: SpectrumEntry::zero(3, counters),
            prefix: VecDeque::new(),
            spans: Vec::new(),
        };
        // Hash the public candidate domain through the phase-1 family once, at
        // registration; every discovery scan of this attribute reuses the index.
        let phase1_hashes = RowHashes::from_seed(
            seed,
            self.config.params.rows(),
            self.config.params.columns(),
        );
        let index = Arc::new(DomainIndex::new(&phase1_hashes, Arc::clone(&config.domain)));
        self.register(
            name,
            AttributeKind::Plus {
                seed,
                config,
                index,
            },
            live,
            ledger,
        )
    }

    /// Register an **edge** attribute — a two-attribute table summarised by a 2-D edge
    /// sketch for multi-way chain queries. The two hash families are derived from
    /// `(seed_a, seed_b)` at the service's `(k, m)`; plain vertex attributes registered
    /// with the same seeds are chain-joinable against it.
    ///
    /// # Errors
    /// [`Error::InvalidWorkload`] if `name` is already registered.
    pub fn register_edge_attribute(
        &mut self,
        name: &str,
        seed_a: u64,
        seed_b: u64,
    ) -> Result<AttributeId> {
        let attr_a = JoinAttribute::from_seed(
            seed_a,
            self.config.params.rows(),
            self.config.params.columns(),
        );
        let attr_b = JoinAttribute::from_seed(
            seed_b,
            self.config.params.rows(),
            self.config.params.columns(),
        );
        let live = LiveEngine::Edge(
            EdgeSketchBuilder::new(attr_a.clone(), attr_b.clone(), self.config.eps)
                // lint:allow(panic-freedom) — invariant: both attributes were just derived
                // from the service's single (k, m), so the replica counts match.
                .expect("attributes derived at equal (k, m) always share the replica count"),
        );
        let ledger = SpanLedger::Edge {
            origin: EdgeSketchBuilder::new(attr_a.clone(), attr_b.clone(), self.config.eps)
                // lint:allow(panic-freedom) — invariant: both attributes were just derived
                // from the service's single (k, m), so the replica counts match.
                .expect("attributes derived at equal (k, m) always share the replica count"),
            prefix: VecDeque::new(),
        };
        self.register(name, AttributeKind::Edge { attr_a, attr_b }, live, ledger)
    }

    fn register(
        &mut self,
        name: &str,
        kind: AttributeKind,
        mut live: LiveEngine,
        ledger: SpanLedger,
    ) -> Result<AttributeId> {
        if self.attributes.iter().any(|a| a.name == name) {
            return Err(Error::InvalidWorkload(format!(
                "attribute '{name}' is already registered"
            )));
        }
        let shards = match &live {
            LiveEngine::Plain(_) => Some(self.config.shards),
            _ => None,
        };
        let instruments =
            AttributeInstruments::register(&self.telemetry, name, kind.mode_name(), shards);
        if let LiveEngine::Plain(engine) = &mut live {
            engine.set_instruments(instruments.agg.clone());
        }
        self.attributes.push(Attribute {
            name: name.to_string(),
            kind,
            live,
            windows: VecDeque::with_capacity(self.config.retained_windows),
            ledger,
            next_epoch: 0,
            evicted: 0,
            total_reports: 0,
            epoch_opened_at: None,
            instruments,
        });
        Ok(AttributeId(self.attributes.len() - 1))
    }

    /// Resolve an attribute handle by name.
    pub fn attribute_id(&self, name: &str) -> Option<AttributeId> {
        self.attributes
            .iter()
            .position(|a| a.name == name)
            .map(AttributeId)
    }

    /// The attribute's registered name.
    pub fn attribute_name(&self, attr: AttributeId) -> Result<&str> {
        Ok(&self.attr(attr)?.name)
    }

    /// The attribute's estimator mode name (`"plain"`, `"plus"` or `"edge"`).
    pub fn attribute_mode(&self, attr: AttributeId) -> Result<&'static str> {
        Ok(self.attr(attr)?.kind.mode_name())
    }

    /// A client-side encoder sharing a **plain** attribute's public hash family (for
    /// simulation and tests; real deployments ship the `(params, eps, seed)` triple to
    /// devices).
    ///
    /// # Errors
    /// [`Error::ModeMismatch`] for plus or edge attributes — their client simulations are
    /// [`LdpJoinSketchPlus::stream_plus_reports`](ldpjs_core::LdpJoinSketchPlus::stream_plus_reports)
    /// and [`SketchService::edge_client`] respectively.
    pub fn client(&self, attr: AttributeId) -> Result<LdpJoinSketchClient> {
        let a = self.attr(attr)?;
        match &a.kind {
            AttributeKind::Plain { hashes } => Ok(LdpJoinSketchClient::with_hashes(
                self.config.params,
                self.config.eps,
                Arc::clone(hashes),
            )),
            other => Err(mode_mismatch(&a.name, other.mode_name(), "a plain client")),
        }
    }

    /// A client-side encoder for an **edge** attribute's two-attribute tuples.
    ///
    /// # Errors
    /// [`Error::ModeMismatch`] for plain or plus attributes.
    pub fn edge_client(&self, attr: AttributeId) -> Result<LdpEdgeSketchClient> {
        let a = self.attr(attr)?;
        match &a.kind {
            AttributeKind::Edge { attr_a, attr_b } => {
                Ok(
                    LdpEdgeSketchClient::new(attr_a.clone(), attr_b.clone(), self.config.eps)
                        // lint:allow(panic-freedom) — invariant: registration derived both
                        // attributes from the service's single (k, m), so replicas match.
                        .expect("registered edge attributes share the replica count"),
                )
            }
            other => Err(mode_mismatch(&a.name, other.mode_name(), "an edge client")),
        }
    }

    /// Absorb a batch of perturbed plain client reports, auto-rotating if an epoch trigger
    /// fires (clock stamped `Instant::now()`; see [`SketchService::ingest_at`]).
    ///
    /// # Errors
    /// [`Error::UnknownAttribute`] for a bad handle; [`Error::ModeMismatch`] if the
    /// attribute is not plain; [`Error::ReportOutOfRange`] if a report does not fit the
    /// sketch (the batch is rejected atomically).
    pub fn ingest(&mut self, attr: AttributeId, reports: &[ClientReport]) -> Result<IngestSummary> {
        // lint:allow(determinism) — wall-clock convenience wrapper by design; replayable
        // callers (and all tests) inject the clock through `ingest_at`.
        self.ingest_at(attr, reports, Instant::now())
    }

    /// [`SketchService::ingest`] with an explicit clock reading — the injected-clock entry
    /// point the wall-clock epoch trigger measures from.
    pub fn ingest_at(
        &mut self,
        attr: AttributeId,
        reports: &[ClientReport],
        now: Instant,
    ) -> Result<IngestSummary> {
        let idx = attr.index();
        let a = self
            .attributes
            .get_mut(idx)
            .ok_or_else(|| unknown_attribute(idx))?;
        match &mut a.live {
            LiveEngine::Plain(engine) => {
                if let Err(err) = engine.ingest(reports) {
                    a.instruments.rejected_reports.add(reports.len() as u64);
                    a.instruments.rollbacks.inc();
                    return Err(err);
                }
            }
            _ => {
                return Err(mode_mismatch(
                    &a.name,
                    a.kind.mode_name(),
                    "plain report ingestion",
                ))
            }
        }
        a.instruments.reports.add(reports.len() as u64);
        a.instruments.batches.inc();
        Ok(self.after_ingest(idx, reports.len() as u64, now))
    }

    /// Absorb an already-packed sign-split report batch into a plain attribute — the
    /// zero-copy ingest entry point for clients emitting packed SoA batches
    /// ([`LdpJoinSketchClient::perturb_batch`]-style pipelines), auto-rotating if an epoch
    /// trigger fires. Bit-identical to [`SketchService::ingest`] over the same reports.
    ///
    /// # Errors
    /// [`Error::UnknownAttribute`] for a bad handle; [`Error::ModeMismatch`] if the
    /// attribute is not plain; [`Error::IncompatibleSketches`] if the batch shape does not
    /// match the service's sketch (the batch is rejected atomically).
    pub fn ingest_batch(
        &mut self,
        attr: AttributeId,
        batch: &ReportBatch,
    ) -> Result<IngestSummary> {
        // lint:allow(determinism) — wall-clock convenience wrapper by design; replayable
        // callers (and all tests) inject the clock through `ingest_batch_at`.
        self.ingest_batch_at(attr, batch, Instant::now())
    }

    /// [`SketchService::ingest_batch`] with an explicit clock reading.
    pub fn ingest_batch_at(
        &mut self,
        attr: AttributeId,
        batch: &ReportBatch,
        now: Instant,
    ) -> Result<IngestSummary> {
        let idx = attr.index();
        let a = self
            .attributes
            .get_mut(idx)
            .ok_or_else(|| unknown_attribute(idx))?;
        match &mut a.live {
            LiveEngine::Plain(engine) => {
                if let Err(err) = engine.ingest_batch(batch) {
                    a.instruments.rejected_reports.add(batch.len() as u64);
                    a.instruments.rollbacks.inc();
                    return Err(err);
                }
            }
            _ => {
                return Err(mode_mismatch(
                    &a.name,
                    a.kind.mode_name(),
                    "packed report-batch ingestion",
                ))
            }
        }
        a.instruments.reports.add(batch.len() as u64);
        a.instruments.batches.inc();
        Ok(self.after_ingest(idx, batch.len() as u64, now))
    }

    /// Absorb one labeled LDPJoinSketch+ report batch (three lanes) into a plus attribute,
    /// auto-rotating if an epoch trigger fires.
    ///
    /// # Errors
    /// [`Error::UnknownAttribute`], [`Error::ModeMismatch`] if the attribute is not plus,
    /// [`Error::ReportOutOfRange`] (the batch is rejected atomically across all lanes).
    pub fn ingest_plus(
        &mut self,
        attr: AttributeId,
        batch: &PlusReportBatch,
    ) -> Result<IngestSummary> {
        // lint:allow(determinism) — wall-clock convenience wrapper by design; replayable
        // callers (and all tests) inject the clock through `ingest_plus_at`.
        self.ingest_plus_at(attr, batch, Instant::now())
    }

    /// [`SketchService::ingest_plus`] with an explicit clock reading.
    pub fn ingest_plus_at(
        &mut self,
        attr: AttributeId,
        batch: &PlusReportBatch,
        now: Instant,
    ) -> Result<IngestSummary> {
        let idx = attr.index();
        let a = self
            .attributes
            .get_mut(idx)
            .ok_or_else(|| unknown_attribute(idx))?;
        match &mut a.live {
            LiveEngine::Plus(builder) => {
                if let Err(err) = builder.absorb_batch(batch) {
                    a.instruments.rejected_reports.add(batch.len() as u64);
                    a.instruments.rollbacks.inc();
                    return Err(err);
                }
            }
            _ => {
                return Err(mode_mismatch(
                    &a.name,
                    a.kind.mode_name(),
                    "plus report-batch ingestion",
                ))
            }
        }
        a.instruments.reports.add(batch.len() as u64);
        a.instruments.batches.inc();
        Ok(self.after_ingest(idx, batch.len() as u64, now))
    }

    /// Absorb a batch of perturbed edge reports into an edge attribute, auto-rotating if an
    /// epoch trigger fires.
    ///
    /// # Errors
    /// [`Error::UnknownAttribute`], [`Error::ModeMismatch`] if the attribute is not an edge
    /// attribute, [`Error::ReportOutOfRange`] (the batch is rejected atomically).
    pub fn ingest_edge(
        &mut self,
        attr: AttributeId,
        reports: &[EdgeReport],
    ) -> Result<IngestSummary> {
        // lint:allow(determinism) — wall-clock convenience wrapper by design; replayable
        // callers (and all tests) inject the clock through `ingest_edge_at`.
        self.ingest_edge_at(attr, reports, Instant::now())
    }

    /// [`SketchService::ingest_edge`] with an explicit clock reading.
    pub fn ingest_edge_at(
        &mut self,
        attr: AttributeId,
        reports: &[EdgeReport],
        now: Instant,
    ) -> Result<IngestSummary> {
        let idx = attr.index();
        let a = self
            .attributes
            .get_mut(idx)
            .ok_or_else(|| unknown_attribute(idx))?;
        match &mut a.live {
            LiveEngine::Edge(builder) => {
                if let Err(err) = builder.absorb_all(reports) {
                    a.instruments.rejected_reports.add(reports.len() as u64);
                    a.instruments.rollbacks.inc();
                    return Err(err);
                }
            }
            _ => {
                return Err(mode_mismatch(
                    &a.name,
                    a.kind.mode_name(),
                    "edge report ingestion",
                ))
            }
        }
        a.instruments.reports.add(reports.len() as u64);
        a.instruments.batches.inc();
        Ok(self.after_ingest(idx, reports.len() as u64, now))
    }

    /// Shared post-ingest bookkeeping: stamp the epoch's opening, then fire whichever epoch
    /// trigger (report count or wall clock) is due.
    fn after_ingest(&mut self, idx: usize, absorbed: u64, now: Instant) -> IngestSummary {
        let config = self.config;
        let a = &mut self.attributes[idx];
        a.total_reports += absorbed;
        if absorbed > 0 && a.epoch_opened_at.is_none() {
            a.epoch_opened_at = Some(now);
        }
        let live = a.live.reports();
        a.instruments.live_reports.set(live);
        let count_due = live >= config.epoch_reports;
        let time_due = config.epoch_duration.is_some_and(|d| {
            a.epoch_opened_at
                .is_some_and(|opened| now.duration_since(opened) >= d)
        });
        let mut rotations = 0;
        if live > 0 && (count_due || time_due) {
            rotate_attribute(&config, &mut self.cache, idx, a);
            rotations = 1;
        }
        IngestSummary {
            reports: absorbed,
            rotations,
        }
    }

    /// Explicitly seal the attribute's live engine into a new epoch window (a no-op
    /// returning `None` when the live engine holds no reports).
    ///
    /// Returns the sealed window's epoch id. Every rotation — explicit or automatic —
    /// invalidates the query cache entries touching this attribute.
    pub fn rotate(&mut self, attr: AttributeId) -> Result<Option<u64>> {
        let config = self.config;
        let idx = attr.index();
        let a = self
            .attributes
            .get_mut(idx)
            .ok_or_else(|| unknown_attribute(idx))?;
        Ok(rotate_attribute(&config, &mut self.cache, idx, a))
    }

    /// The wall-clock sweep of the time-based epoch trigger: seal the attribute's live
    /// engine if [`ServiceConfig::epoch_duration`] is configured, the engine holds reports,
    /// and the epoch has been open at least that long as of `now`. Returns the sealed epoch
    /// id if the trigger fired.
    ///
    /// Call this periodically (with the deployment's real clock) so attributes with
    /// trickling traffic still seal epochs on schedule; batch ingestion checks the same
    /// trigger inline.
    pub fn rotate_if_elapsed(&mut self, attr: AttributeId, now: Instant) -> Result<Option<u64>> {
        let config = self.config;
        let idx = attr.index();
        let a = self
            .attributes
            .get_mut(idx)
            .ok_or_else(|| unknown_attribute(idx))?;
        let Some(duration) = config.epoch_duration else {
            return Ok(None);
        };
        let due = a.live.reports() > 0
            && a.epoch_opened_at
                .is_some_and(|opened| now.duration_since(opened) >= duration);
        if !due {
            return Ok(None);
        }
        Ok(rotate_attribute(&config, &mut self.cache, idx, a))
    }

    /// Sweep **every** registered attribute with the time-based epoch trigger in one call:
    /// each attribute whose live engine holds reports and whose epoch has been open at
    /// least [`ServiceConfig::epoch_duration`] as of `now` is sealed, exactly as
    /// [`Self::rotate_if_elapsed`] would seal it one id at a time. Returns the
    /// `(attribute, epoch)` pairs that rotated, oldest registration first.
    ///
    /// This is the deployment-friendly form of the trigger: one periodic timer covers the
    /// whole service, so a quiet attribute still seals its epoch on schedule even when no
    /// ingest for *that attribute* arrives to check the trigger inline. No-op (returns an
    /// empty vec) when no epoch duration is configured.
    pub fn rotate_elapsed(&mut self, now: Instant) -> Vec<(AttributeId, u64)> {
        let config = self.config;
        let Some(duration) = config.epoch_duration else {
            return Vec::new();
        };
        let mut rotated = Vec::new();
        for (idx, a) in self.attributes.iter_mut().enumerate() {
            let due = a.live.reports() > 0
                && a.epoch_opened_at
                    .is_some_and(|opened| now.duration_since(opened) >= duration);
            if !due {
                continue;
            }
            if let Some(epoch) = rotate_attribute(&config, &mut self.cache, idx, a) {
                rotated.push((AttributeId(idx), epoch));
            }
        }
        rotated
    }

    /// Number of sealed windows the ring currently retains for `attr`.
    pub fn window_count(&self, attr: AttributeId) -> Result<usize> {
        Ok(self.attr(attr)?.windows.len())
    }

    /// Reports currently sitting in the attribute's live (unsealed) engine.
    pub fn live_reports(&self, attr: AttributeId) -> Result<u64> {
        Ok(self.attr(attr)?.live.reports())
    }

    /// Windows evicted from the ring so far (sealed but no longer queryable).
    pub fn evicted_windows(&self, attr: AttributeId) -> Result<u64> {
        Ok(self.attr(attr)?.evicted)
    }

    /// Lifetime reports ingested for `attr` (live + sealed + evicted).
    pub fn total_reports(&self, attr: AttributeId) -> Result<u64> {
        Ok(self.attr(attr)?.total_reports)
    }

    /// The sealed windows of `attr`, oldest first (epoch ids, report counts and per-window
    /// views — the raw material for custom dashboards).
    pub fn windows(&self, attr: AttributeId) -> Result<impl Iterator<Item = &WindowSnapshot>> {
        Ok(self.attr(attr)?.windows.iter())
    }

    /// The merged plain estimation view covering `range`: a single window's view is
    /// borrowed, a multi-window range re-aggregates the sealed exact counters and restores
    /// once (then memoizes the merged view per epoch span).
    ///
    /// The returned sketch is **bit-identical** to finalizing one builder that absorbed
    /// every report of the covered windows — the window-merge guarantee.
    ///
    /// # Errors
    /// [`Error::ModeMismatch`] if `attr` is not a plain attribute.
    pub fn merged_view(
        &mut self,
        attr: AttributeId,
        range: WindowRange,
    ) -> Result<Arc<FinalizedSketch>> {
        let idx = attr.index();
        let a = self
            .attributes
            .get(idx)
            .ok_or_else(|| unknown_attribute(idx))?;
        require_plain(a)?;
        let meta = resolve_span(a, range)?;
        Ok(plain_span_view(&mut self.cache, idx, a, &meta))
    }

    /// The merged LDPJoinSketch+ estimation state covering `range`, assembled by the span
    /// ledger with **cross-window FI reconciliation** — the frequent items were
    /// re-discovered on the *merged* phase-1 sketch under the attribute's policy at
    /// rotation (and the kernel's high partial re-masks the merged phase-2 sketches with
    /// that set).
    ///
    /// # Errors
    /// [`Error::ModeMismatch`] if `attr` is not a plus attribute.
    pub fn merged_plus_state(
        &mut self,
        attr: AttributeId,
        range: WindowRange,
    ) -> Result<Arc<FinalizedPlusState>> {
        let idx = attr.index();
        let a = self
            .attributes
            .get(idx)
            .ok_or_else(|| unknown_attribute(idx))?;
        let AttributeKind::Plus { .. } = &a.kind else {
            return Err(mode_mismatch(
                &a.name,
                a.kind.mode_name(),
                "a merged plus state",
            ));
        };
        let meta = resolve_span(a, range)?;
        Ok(plus_span_view(a, &meta))
    }

    /// Plain join-size estimate between two attributes over `range` (resolved per attribute
    /// against its own ring), served from the memoization cache when possible and computed
    /// by the shared [`PlainKernel`].
    ///
    /// # Errors
    /// [`Error::UnknownAttribute`], [`Error::ModeMismatch`] unless both attributes are
    /// plain, [`Error::WindowUnavailable`] / [`Error::InvalidWorkload`] from range
    /// resolution, or [`Error::IncompatibleSketches`] if the attributes do not share a hash
    /// seed.
    pub fn join_size(
        &mut self,
        a: AttributeId,
        b: AttributeId,
        range: WindowRange,
    ) -> Result<QueryResult> {
        let started = self.clock_now();
        let (ia, ib) = (a.index(), b.index());
        let attr_a = self
            .attributes
            .get(ia)
            .ok_or_else(|| unknown_attribute(ia))?;
        let attr_b = self
            .attributes
            .get(ib)
            .ok_or_else(|| unknown_attribute(ib))?;
        require_plain(attr_a)?;
        require_plain(attr_b)?;
        let meta_a = resolve_span(attr_a, range)?;
        let meta_b = resolve_span(attr_b, range)?;
        let key = QueryKey::join(ia, meta_a.epochs, ib, meta_b.epochs);
        if let Some(ans) = self.cache.lookup(&key, QueryMode::Plain) {
            self.finish_query(K_JOIN, started, None);
            return Ok(served(ans, true));
        }
        let span_source = plain_span_source(&self.cache, ia, &meta_a).max(plain_span_source(
            &self.cache,
            ib,
            &meta_b,
        ));
        let va = plain_span_view(&mut self.cache, ia, attr_a, &meta_a);
        let vb = plain_span_view(&mut self.cache, ib, attr_b, &meta_b);
        let assembled = self.clock_now();
        let value = PlainKernel.join_size(&va, &vb)?;
        let (f1a, f1b) = (meta_a.reports as f64, meta_b.reports as f64);
        let ans = CachedAnswer {
            value,
            windows: meta_a.windows + meta_b.windows,
            reports: meta_a.reports + meta_b.reports,
            explain: Explain {
                kernel: ExplainKernel::Plain,
                span_source,
                cached: false,
                windows: meta_a.windows + meta_b.windows,
                frequent_items: 0,
                predicted_variance: bounds::group_variance_bound(
                    self.config.params,
                    self.config.eps,
                    f1a,
                    f1b,
                    1.0,
                ),
                predicted_error: bounds::error_bound(self.config.params, self.config.eps, f1a, f1b),
            },
        };
        self.cache.insert(key, ans);
        self.finish_query(K_JOIN, started, assembled);
        Ok(served(ans, false))
    }

    /// LDPJoinSketch+ join-size estimate between two plus attributes over `range`: merged
    /// per-lane windows with cross-window FI reconciliation, estimated by the shared
    /// [`PlusKernel`] `JoinEst`, served from the cache when possible.
    ///
    /// For a full-ring span this estimate is **bit-identical** to
    /// [`ldp_join_plus_estimate_chunked`](ldpjs_core::ldp_join_plus_estimate_chunked) over
    /// the concatenated report stream (the windowed-plus guarantee, property-tested and
    /// pinned at 1M reports/table in `tests/online_service.rs`).
    ///
    /// # Errors
    /// [`Error::UnknownAttribute`], [`Error::ModeMismatch`] unless both attributes are
    /// plus, [`Error::WindowUnavailable`] / [`Error::InvalidWorkload`] from range
    /// resolution, [`Error::IncompatibleSketches`] if the attributes do not share seeds.
    pub fn plus_join_size(
        &mut self,
        a: AttributeId,
        b: AttributeId,
        range: WindowRange,
    ) -> Result<QueryResult> {
        let started = self.clock_now();
        let (ia, ib) = (a.index(), b.index());
        let attr_a = self
            .attributes
            .get(ia)
            .ok_or_else(|| unknown_attribute(ia))?;
        let attr_b = self
            .attributes
            .get(ib)
            .ok_or_else(|| unknown_attribute(ib))?;
        let AttributeKind::Plus { config: cfg_a, .. } = &attr_a.kind else {
            return Err(mode_mismatch(
                &attr_a.name,
                attr_a.kind.mode_name(),
                "a plus join-size query",
            ));
        };
        let AttributeKind::Plus { config: cfg_b, .. } = &attr_b.kind else {
            return Err(mode_mismatch(
                &attr_b.name,
                attr_b.kind.mode_name(),
                "a plus join-size query",
            ));
        };
        // The answer is computed with ONE kernel and cached under an operand-order-
        // normalized key, so partners must agree on every estimator knob — otherwise
        // `plus_join_size(a, b)` and `plus_join_size(b, a)` would alias one cache entry
        // while selecting different kernels.
        if cfg_a.kernel() != cfg_b.kernel() || cfg_a.policy() != cfg_b.policy() {
            return Err(Error::ModeMismatch(format!(
                "plus join partners '{}' and '{}' disagree on estimator knobs \
                 (threshold/adaptive/paper-literal/variance-weighted must match)",
                attr_a.name, attr_b.name
            )));
        }
        let meta_a = resolve_span(attr_a, range)?;
        let meta_b = resolve_span(attr_b, range)?;
        let key = QueryKey::plus_join(ia, meta_a.epochs, ib, meta_b.epochs);
        if let Some(ans) = self.cache.lookup(&key, QueryMode::Plus) {
            self.finish_query(K_PLUS_JOIN, started, None);
            return Ok(served(ans, true));
        }
        let span_source = plus_span_source(&meta_a).max(plus_span_source(&meta_b));
        let sa = plus_span_view(attr_a, &meta_a);
        let sb = plus_span_view(attr_b, &meta_b);
        let assembled = self.clock_now();
        let estimate = cfg_a.kernel().join_est(&sa, &sb)?;
        // Theorems 4/5 bound the plain estimator at the spans' F1s; for the plus kernel
        // they serve as the conservative envelope (its non-target separation only removes
        // error terms), which is exactly what a cost-based planner wants to rank spans by.
        let (f1a, f1b) = (meta_a.reports as f64, meta_b.reports as f64);
        let ans = CachedAnswer {
            value: estimate.join_size,
            windows: meta_a.windows + meta_b.windows,
            reports: meta_a.reports + meta_b.reports,
            explain: Explain {
                kernel: ExplainKernel::Plus,
                span_source,
                cached: false,
                windows: meta_a.windows + meta_b.windows,
                frequent_items: sa.frequent_items().len() + sb.frequent_items().len(),
                predicted_variance: bounds::group_variance_bound(
                    self.config.params,
                    self.config.eps,
                    f1a,
                    f1b,
                    1.0,
                ),
                predicted_error: bounds::error_bound(self.config.params, self.config.eps, f1a, f1b),
            },
        };
        self.cache.insert(key, ans);
        self.finish_query(K_PLUS_JOIN, started, assembled);
        Ok(served(ans, false))
    }

    /// Frequency estimate of `value` in `attr` over `range`, served from the cache when
    /// possible. Plain attributes answer with the Theorem 7 estimator ([`PlainKernel`]);
    /// plus attributes answer with the sample-scaled phase-1 estimator ([`PlusKernel`]).
    ///
    /// # Errors
    /// [`Error::ModeMismatch`] for edge attributes (an edge sketch summarises tuples, not a
    /// single attribute's values).
    pub fn frequency(
        &mut self,
        attr: AttributeId,
        value: u64,
        range: WindowRange,
    ) -> Result<QueryResult> {
        let started = self.clock_now();
        let idx = attr.index();
        let a = self
            .attributes
            .get(idx)
            .ok_or_else(|| unknown_attribute(idx))?;
        if matches!(a.kind, AttributeKind::Edge { .. }) {
            return Err(mode_mismatch(
                &a.name,
                a.kind.mode_name(),
                "a frequency query",
            ));
        }
        let meta = resolve_span(a, range)?;
        let mode = match &a.kind {
            AttributeKind::Plus { .. } => QueryMode::Plus,
            _ => QueryMode::Plain,
        };
        let key = QueryKey::Frequency {
            attr: idx,
            value,
            span: meta.epochs,
        };
        if let Some(ans) = self.cache.lookup(&key, mode) {
            self.finish_query(K_FREQUENCY, started, None);
            return Ok(served(ans, true));
        }
        let f1 = meta.reports as f64;
        let (estimate, assembled, kernel, span_source, frequent_items, f2) = match &a.kind {
            AttributeKind::Plain { .. } => {
                let span_source = plain_span_source(&self.cache, idx, &meta);
                let v = plain_span_view(&mut self.cache, idx, a, &meta);
                let assembled = self.clock_now();
                // The span's own self-join estimate is its F2 — the quantity Theorem 7's
                // variance is stated in — clamped from below by F1 (F2 ≥ F1 always holds
                // for integer counts; the noisy estimate can dip under it).
                let f2 = PlainKernel.join_size(&v, &v).unwrap_or(f1).max(f1);
                let est = PlainKernel.frequency(&v, value);
                (est, assembled, ExplainKernel::Plain, span_source, 0, f2)
            }
            AttributeKind::Plus { config, .. } => {
                let span_source = plus_span_source(&meta);
                let s = plus_span_view(a, &meta);
                let assembled = self.clock_now();
                let est = config.kernel().frequency(&s, value);
                // The merged phase-1 lane is not a full-stream sketch, so no cheap F2
                // estimate exists here; F1 is its distinct-values floor.
                (
                    est,
                    assembled,
                    ExplainKernel::Plus,
                    span_source,
                    s.frequent_items().len(),
                    f1,
                )
            }
            AttributeKind::Edge { .. } => unreachable!("rejected above"),
        };
        let variance = bounds::frequency_variance(self.config.params, self.config.eps, f1, f2);
        let ans = CachedAnswer {
            value: estimate,
            windows: meta.windows,
            reports: meta.reports,
            explain: Explain {
                kernel,
                span_source,
                cached: false,
                windows: meta.windows,
                frequent_items,
                predicted_variance: variance,
                predicted_error: variance.max(0.0).sqrt(),
            },
        };
        self.cache.insert(key, ans);
        self.finish_query(K_FREQUENCY, started, assembled);
        Ok(served(ans, false))
    }

    /// 3-way chain-join estimate `|T1(A) ⋈ T2(A,B) ⋈ T3(B)|` over `range`: `v1` and `v3`
    /// are plain vertex attributes, `edge` is an edge attribute whose hash families they
    /// must share. Each attribute's span resolves against its own ring; merged views feed
    /// the shared [`ChainKernel`]; answers are cached per (kind, attribute set, spans).
    ///
    /// # Errors
    /// [`Error::ModeMismatch`] unless the modes are (plain, edge, plain);
    /// [`Error::IncompatibleSketches`] if the hash families do not line up.
    pub fn chain_join_3(
        &mut self,
        v1: AttributeId,
        edge: AttributeId,
        v3: AttributeId,
        range: WindowRange,
    ) -> Result<QueryResult> {
        let started = self.clock_now();
        let (i1, ie, i3) = (v1.index(), edge.index(), v3.index());
        let attr_1 = self
            .attributes
            .get(i1)
            .ok_or_else(|| unknown_attribute(i1))?;
        let attr_e = self
            .attributes
            .get(ie)
            .ok_or_else(|| unknown_attribute(ie))?;
        let attr_3 = self
            .attributes
            .get(i3)
            .ok_or_else(|| unknown_attribute(i3))?;
        require_plain(attr_1)?;
        require_plain(attr_3)?;
        if !matches!(attr_e.kind, AttributeKind::Edge { .. }) {
            return Err(mode_mismatch(
                &attr_e.name,
                attr_e.kind.mode_name(),
                "the edge operand of a chain query",
            ));
        }
        let meta_1 = resolve_span(attr_1, range)?;
        let meta_e = resolve_span(attr_e, range)?;
        let meta_3 = resolve_span(attr_3, range)?;
        let key = QueryKey::Chain3 {
            v1: i1,
            e: ie,
            v3: i3,
            span_v1: meta_1.epochs,
            span_e: meta_e.epochs,
            span_v3: meta_3.epochs,
        };
        if let Some(ans) = self.cache.lookup(&key, QueryMode::Edge) {
            self.finish_query(K_CHAIN3, started, None);
            return Ok(served(ans, true));
        }
        let span_source = plain_span_source(&self.cache, i1, &meta_1)
            .max(edge_span_source(&self.cache, ie, &meta_e))
            .max(plain_span_source(&self.cache, i3, &meta_3));
        let s1 = plain_span_view(&mut self.cache, i1, attr_1, &meta_1);
        let se = edge_span_view(&mut self.cache, ie, attr_e, &meta_e);
        let s3 = plain_span_view(&mut self.cache, i3, attr_3, &meta_3);
        let assembled = self.clock_now();
        let value = ChainKernel.chain_3(&s1, &se, &s3)?;
        // No closed-form 3-way bound exists in the paper; as the planner-seeding heuristic,
        // report the Theorem 5 radius of the heavier pairwise join (edge vs. the larger
        // vertex span) — a true composed chain bound is ROADMAP item 5 territory.
        let f1e = meta_e.reports as f64;
        let f1v = meta_1.reports.max(meta_3.reports) as f64;
        let ans = CachedAnswer {
            value,
            windows: meta_1.windows + meta_e.windows + meta_3.windows,
            reports: meta_1.reports + meta_e.reports + meta_3.reports,
            explain: Explain {
                kernel: ExplainKernel::Chain,
                span_source,
                cached: false,
                windows: meta_1.windows + meta_e.windows + meta_3.windows,
                frequent_items: 0,
                predicted_variance: bounds::group_variance_bound(
                    self.config.params,
                    self.config.eps,
                    f1e,
                    f1v,
                    1.0,
                ),
                predicted_error: bounds::error_bound(self.config.params, self.config.eps, f1e, f1v),
            },
        };
        self.cache.insert(key, ans);
        self.finish_query(K_CHAIN3, started, assembled);
        Ok(served(ans, false))
    }

    /// Cache behaviour counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drop every memoized answer and merged view (counted as an invalidation). Cumulative
    /// cache counters — totals and per-mode breakdowns alike — survive the clear.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// The service's telemetry registry — live handles shared with every instrumented
    /// sub-component. Useful for registering caller-side metrics into the same exposition,
    /// or for merging several services' snapshots.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Install (or with `None` remove) the injected clock that enables per-query stage
    /// timing histograms. Without a clock the query path never reads time at all.
    pub fn set_query_clock(&mut self, clock: Option<QueryClock>) {
        self.query_clock = clock;
    }

    /// Full point-in-time telemetry snapshot: refreshes the pull-style gauges (cache sizes,
    /// SIMD kernel dispatch deltas against this service's construction baseline), then
    /// materializes every registered metric.
    pub fn telemetry_snapshot(&self) -> Snapshot {
        self.refresh_pull_gauges();
        self.telemetry.snapshot()
    }

    /// The deterministic slice of [`SketchService::telemetry_snapshot`]: only metrics that
    /// are byte-stable across pinned-seed runs *and* shard counts (timings, shard splits
    /// and SIMD tiers are filtered out). Two runs over the same report stream produce
    /// byte-identical text/JSON renderings of this snapshot.
    pub fn deterministic_telemetry_snapshot(&self) -> Snapshot {
        self.refresh_pull_gauges();
        self.telemetry.deterministic_snapshot()
    }

    /// The Prometheus-style text exposition of the full snapshot.
    pub fn metrics_text(&self) -> String {
        self.telemetry_snapshot().to_text()
    }

    /// The JSON exposition of the full snapshot (round-trips through
    /// [`Snapshot::from_json`](ldpjs_metrics::telemetry::Snapshot::from_json)).
    pub fn metrics_json(&self) -> String {
        self.telemetry_snapshot().to_json()
    }

    /// Refresh the gauges that are *read* at export time instead of written on the hot
    /// path: cache store sizes, and the SIMD kernel dispatch counters attributed to this
    /// service (process-wide totals minus the construction-time baseline).
    fn refresh_pull_gauges(&self) {
        let det = Stability::Deterministic;
        let stats = self.cache.stats();
        self.telemetry
            .gauge("ldpjs_cache_entries", det)
            .set(stats.entries as u64);
        self.telemetry
            .gauge("ldpjs_cache_views", det)
            .set(stats.views as u64);
        let delta = kernel_dispatch_snapshot().delta_since(&self.dispatch_baseline);
        for (series, calls) in delta.series() {
            let (kernel, tier) = series.split_once('_').unwrap_or((series, "unknown"));
            self.telemetry
                .gauge(
                    &labeled(
                        "ldpjs_kernel_dispatch_total",
                        &[("kernel", kernel), ("tier", tier)],
                    ),
                    Stability::Environment,
                )
                .set(calls);
        }
    }

    /// The injected clock's reading, if one is installed.
    fn clock_now(&self) -> Option<Instant> {
        self.query_clock.as_ref().map(QueryClock::now)
    }

    /// Count an answered query and, when the injected clock is installed, record its stage
    /// timings (`assemble` = span resolution + view assembly, `kernel` = estimator run;
    /// cache hits record only `total`).
    fn finish_query(&self, kind: usize, started: Option<Instant>, assembled: Option<Instant>) {
        self.instruments.queries[kind].inc();
        let (Some(t0), Some(clock)) = (started, self.query_clock.as_ref()) else {
            return;
        };
        let end = clock.now();
        if let Some(t1) = assembled {
            self.instruments.assemble_ns[kind].record(saturating_ns(t1.duration_since(t0)));
            self.instruments.kernel_ns[kind].record(saturating_ns(end.duration_since(t1)));
        }
        self.instruments.total_ns[kind].record(saturating_ns(end.duration_since(t0)));
    }

    fn attr(&self, attr: AttributeId) -> Result<&Attribute> {
        self.attributes
            .get(attr.index())
            .ok_or_else(|| unknown_attribute(attr.index()))
    }
}

fn saturating_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

fn unknown_attribute(index: usize) -> Error {
    Error::UnknownAttribute(format!("no attribute registered with index {index}"))
}

fn mode_mismatch(name: &str, mode: &str, wanted: &str) -> Error {
    Error::ModeMismatch(format!(
        "attribute '{name}' runs in {mode} mode and cannot serve {wanted}"
    ))
}

fn require_plain(attr: &Attribute) -> Result<()> {
    match attr.kind {
        AttributeKind::Plain { .. } => Ok(()),
        _ => Err(mode_mismatch(
            &attr.name,
            attr.kind.mode_name(),
            "a plain query operand",
        )),
    }
}

fn fresh_plain_engine(config: &ServiceConfig, hashes: &Arc<RowHashes>) -> ShardedAggregator {
    ShardedAggregator::with_hashes(config.params, config.eps, Arc::clone(hashes), config.shards)
        // lint:allow(panic-freedom) — invariant: `ServiceConfig` validated a non-zero
        // shard count at service construction, the only way this is reached.
        .expect("shard count validated at service construction")
}

/// Seal `attr`'s live engine into a window, evict past the retention bound, and invalidate
/// the attribute's cache entries. Returns the new window's epoch id, or `None` if the live
/// engine was empty.
fn rotate_attribute(
    config: &ServiceConfig,
    cache: &mut QueryCache,
    idx: usize,
    attr: &mut Attribute,
) -> Option<u64> {
    if attr.live.reports() == 0 {
        return None;
    }
    let epoch = attr.next_epoch;
    let window = match (&attr.kind, &mut attr.live) {
        (AttributeKind::Plain { hashes }, LiveEngine::Plain(engine)) => {
            let engine = std::mem::replace(engine, fresh_plain_engine(config, hashes));
            WindowSnapshot::seal_plain(epoch, engine.into_builder())
        }
        (
            AttributeKind::Plus {
                seed,
                config: plus,
                index,
            },
            LiveEngine::Plus(builder),
        ) => {
            let sealed = std::mem::replace(
                builder,
                PlusStateBuilder::new(config.params, config.eps, *seed),
            );
            WindowSnapshot::seal_plus(epoch, sealed, plus.policy(), index)
        }
        (AttributeKind::Edge { attr_a, attr_b }, LiveEngine::Edge(builder)) => {
            let fresh = EdgeSketchBuilder::new(attr_a.clone(), attr_b.clone(), config.eps)
                // lint:allow(panic-freedom) — invariant: registration derived both
                // attributes from the service's single (k, m), so replica counts match.
                .expect("registered edge attributes share the replica count");
            let sealed = std::mem::replace(builder, fresh);
            WindowSnapshot::seal_edge(epoch, sealed)
        }
        _ => unreachable!("attribute kind and live engine are constructed together"),
    };
    attr.next_epoch += 1;
    // A fresh plain engine replaced the sealed one above: re-attach the attribute's
    // engine-level telemetry handles so the shard/path series keep accumulating.
    if let LiveEngine::Plain(engine) = &mut attr.live {
        engine.set_instruments(attr.instruments.agg.clone());
    }
    // Keep the prefix-sum ledger aligned with the ring: sealing adds the new window's
    // lanes to a clone of the last cumulative builder, eviction folds the oldest prefix
    // into the origin.
    attr.ledger.push(&window);
    attr.windows.push_back(window);
    if attr.windows.len() > config.retained_windows {
        attr.windows.pop_front();
        attr.ledger.evict();
        attr.evicted += 1;
        attr.instruments.evictions.inc();
    }
    attr.instruments.rotations.inc();
    attr.instruments.windows.set(attr.windows.len() as u64);
    attr.instruments
        .ledger_depth
        .set(attr.ledger.depth() as u64);
    attr.instruments.live_reports.set(0);
    // Plus attributes additionally re-materialize every suffix span's merged state (and
    // its reconciled frequent-item set) here, at rotation, so cold span queries are Arc
    // clones instead of per-query assembly + domain scans.
    if let AttributeKind::Plus {
        config: plus,
        index,
        ..
    } = &attr.kind
    {
        // lint:allow(panic-freedom) — invariant: a window was pushed onto the ring a few
        // lines above, so `back()` is always populated here.
        let newest = match attr.windows.back().expect("window pushed above").state() {
            SealedWindow::Plus { view, .. } => Arc::clone(view),
            _ => unreachable!("attribute kind and windows are constructed together"),
        };
        attr.ledger.refresh_plus_spans(plus.policy(), index, newest);
    }
    attr.epoch_opened_at = None;
    cache.invalidate_attribute(idx);
    Some(epoch)
}

/// Metadata of a resolved window span.
struct SpanMeta {
    start: usize,
    windows: usize,
    reports: u64,
    epochs: (u64, u64),
}

fn resolve_span(attr: &Attribute, range: WindowRange) -> Result<SpanMeta> {
    let len = attr.windows.len();
    let start = range.resolve(len, &attr.name)?;
    let covered = attr.windows.range(start..);
    let reports = covered.clone().map(|w| w.reports()).sum();
    Ok(SpanMeta {
        start,
        windows: len - start,
        reports,
        epochs: (attr.windows[start].epoch(), attr.windows[len - 1].epoch()),
    })
}

/// The (possibly memoized) merged plain estimation view of an already-resolved span.
///
/// # Panics
/// Debug-asserts that every covered window is plain (the caller checked the mode).
fn plain_span_view(
    cache: &mut QueryCache,
    idx: usize,
    attr: &Attribute,
    meta: &SpanMeta,
) -> Arc<FinalizedSketch> {
    let window_view = |w: &WindowSnapshot| match w.state() {
        SealedWindow::Plain { view, .. } => Arc::clone(view),
        _ => unreachable!("mode checked by the query layer"),
    };
    if meta.windows == 1 {
        // Single-window queries borrow the snapshot's precomputed view.
        window_view(&attr.windows[meta.start])
    } else if let Some(v) = cache.view((idx, meta.epochs.0, meta.epochs.1)) {
        v
    } else {
        // Assemble the span's restored sketch straight from the spectrum ledger — one
        // exact prefix subtraction in the Hadamard domain plus one de-bias multiply per
        // element, no counter merge and no FWHT: bit-identical to merging every covered
        // window from scratch (and therefore to one-shot aggregation of the covered
        // reports).
        let view = Arc::new(attr.ledger.plain_span(meta.start));
        cache.insert_view((idx, meta.epochs.0, meta.epochs.1), Arc::clone(&view));
        view
    }
}

/// The merged plus estimation state of an already-resolved span, straight from the
/// materialized span ledger (single-window spans borrow the snapshot's sealed view).
fn plus_span_view(attr: &Attribute, meta: &SpanMeta) -> Arc<FinalizedPlusState> {
    if meta.windows == 1 {
        match attr.windows[meta.start].state() {
            SealedWindow::Plus { view, .. } => Arc::clone(view),
            _ => unreachable!("mode checked by the query layer"),
        }
    } else {
        // Materialized in the span ledger at rotation (spectra assembled, frequent items
        // re-discovered through the attribute's pre-hashed domain index — bit-identical
        // to the from-scratch window merge and unindexed scan); a cold query just clones
        // the Arc, so no memoization layer is needed.
        attr.ledger.plus_span(meta.start)
    }
}

/// The (possibly memoized) merged edge estimation view of an already-resolved span.
fn edge_span_view(
    cache: &mut QueryCache,
    idx: usize,
    attr: &Attribute,
    meta: &SpanMeta,
) -> Arc<FinalizedEdgeSketch> {
    if meta.windows == 1 {
        match attr.windows[meta.start].state() {
            SealedWindow::Edge { view, .. } => Arc::clone(view),
            _ => unreachable!("mode checked by the query layer"),
        }
    } else if let Some(v) = cache.edge_view((idx, meta.epochs.0, meta.epochs.1)) {
        v
    } else {
        let view = Arc::new(attr.ledger.edge_span(meta.start).finalize());
        cache.insert_edge_view((idx, meta.epochs.0, meta.epochs.1), Arc::clone(&view));
        view
    }
}

/// The assembly path `plain_span_view` will take for this span, observed *before* the view
/// is built (so a cold assembly is not misreported as memoized).
fn plain_span_source(cache: &QueryCache, idx: usize, meta: &SpanMeta) -> SpanSource {
    if meta.windows == 1 {
        SpanSource::SingleWindow
    } else if cache.view((idx, meta.epochs.0, meta.epochs.1)).is_some() {
        SpanSource::MemoizedView
    } else {
        SpanSource::LedgerAssembled
    }
}

/// Plus spans are materialized by the ledger at rotation, so every multi-window plus span
/// is served memoized (a cold query is an `Arc` clone).
fn plus_span_source(meta: &SpanMeta) -> SpanSource {
    if meta.windows == 1 {
        SpanSource::SingleWindow
    } else {
        SpanSource::MemoizedView
    }
}

/// The assembly path `edge_span_view` will take for this span (same contract as
/// [`plain_span_source`]).
fn edge_span_source(cache: &QueryCache, idx: usize, meta: &SpanMeta) -> SpanSource {
    if meta.windows == 1 {
        SpanSource::SingleWindow
    } else if cache
        .edge_view((idx, meta.epochs.0, meta.epochs.1))
        .is_some()
    {
        SpanSource::MemoizedView
    } else {
        SpanSource::LedgerAssembled
    }
}

fn served(ans: CachedAnswer, cached: bool) -> QueryResult {
    let mut explain = ans.explain;
    explain.cached = cached;
    QueryResult {
        value: ans.value,
        windows: ans.windows,
        reports: ans.reports,
        cached,
        explain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldpjs_core::{
        ldp_join_plus_estimate_chunked, LdpJoinSketchPlus, PlusTableRole, SketchBuilder,
    };
    use ldpjs_data::{StreamingJoinWorkload, ValueGenerator, ZipfGenerator};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config(k: usize, m: usize) -> ServiceConfig {
        ServiceConfig::new(SketchParams::new(k, m).unwrap(), Epsilon::new(4.0).unwrap())
    }

    /// A service whose epochs only rotate explicitly (threshold out of reach).
    fn manual_service(k: usize, m: usize, retained: usize) -> SketchService {
        let mut cfg = config(k, m);
        cfg.epoch_reports = u64::MAX;
        cfg.retained_windows = retained;
        SketchService::new(cfg).unwrap()
    }

    fn reports_for(
        service: &SketchService,
        attr: AttributeId,
        n: usize,
        seed: u64,
    ) -> Vec<ClientReport> {
        let gen = ZipfGenerator::new(1.5, 500);
        let mut rng = StdRng::seed_from_u64(seed);
        let values = gen.sample_many(n, &mut rng);
        service.client(attr).unwrap().perturb_all(&values, &mut rng)
    }

    #[test]
    fn packed_batch_ingestion_matches_report_ingestion_bitwise() {
        // The zero-copy packed entry point must land on exactly the sketch the AoS report
        // entry point produces for the same underlying values, and count reports the same.
        let gen = ZipfGenerator::new(1.5, 500);
        let mut service_a = manual_service(6, 64, 4);
        let mut service_b = manual_service(6, 64, 4);
        let a = service_a.register_attribute("x", 7).unwrap();
        let b = service_b.register_attribute("x", 7).unwrap();
        for round in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(40 + round);
            let values = gen.sample_many(2_000, &mut rng);
            let client = service_a.client(a).unwrap();
            let reports = client.perturb_all(&values, &mut StdRng::seed_from_u64(round));
            let batch = client
                .perturb_batch(&values, &mut StdRng::seed_from_u64(round))
                .unwrap();
            service_a.ingest(a, &reports).unwrap();
            service_b.ingest_batch(b, &batch).unwrap();
        }
        service_a.rotate(a).unwrap();
        service_b.rotate(b).unwrap();
        let via_reports = service_a.merged_view(a, WindowRange::All).unwrap();
        let via_batches = service_b.merged_view(b, WindowRange::All).unwrap();
        assert_eq!(via_reports.reports(), via_batches.reports());
        assert_eq!(
            via_reports.restored_counters(),
            via_batches.restored_counters()
        );
        // Mode mismatch is rejected.
        let mut plus_service = manual_service(6, 64, 4);
        let p = plus_service
            .register_plus_attribute("p", 7, PlusAttributeConfig::new((0..10).collect()))
            .unwrap();
        let empty = ReportBatch::new(6, 64).unwrap();
        assert!(matches!(
            plus_service.ingest_batch(p, &empty),
            Err(Error::ModeMismatch(_))
        ));
    }

    #[test]
    fn rejects_degenerate_configurations() {
        let mut cfg = config(4, 64);
        cfg.shards = 0;
        assert!(SketchService::new(cfg).is_err());
        let mut cfg = config(4, 64);
        cfg.epoch_reports = 0;
        assert!(SketchService::new(cfg).is_err());
        let mut cfg = config(4, 64);
        cfg.retained_windows = 0;
        assert!(SketchService::new(cfg).is_err());
        let mut cfg = config(4, 64);
        cfg.cache_capacity = 0;
        assert!(SketchService::new(cfg).is_err());
        let mut cfg = config(4, 64);
        cfg.epoch_duration = Some(Duration::ZERO);
        assert!(SketchService::new(cfg).is_err());
    }

    #[test]
    fn result_cache_stays_bounded_under_a_frequency_domain_scan() {
        // Frequency queries are keyed by arbitrary caller values; a dashboard scanning a
        // large domain against a quiet attribute must not grow the service without limit.
        let mut cfg = config(6, 64);
        cfg.epoch_reports = u64::MAX;
        cfg.cache_capacity = 16;
        let mut service = SketchService::new(cfg).unwrap();
        let attr = service.register_attribute("a", 3).unwrap();
        service
            .ingest(attr, &reports_for(&service, attr, 400, 7))
            .unwrap();
        service.rotate(attr).unwrap();
        for v in 0..100u64 {
            assert!(!service.frequency(attr, v, WindowRange::All).unwrap().cached);
        }
        let stats = service.cache_stats();
        assert_eq!(stats.entries, 16, "bounded to cache_capacity");
        assert_eq!(stats.evictions, 84);
        // The newest answers are still warm, the oldest were evicted.
        assert!(
            service
                .frequency(attr, 99, WindowRange::All)
                .unwrap()
                .cached
        );
        assert!(!service.frequency(attr, 0, WindowRange::All).unwrap().cached);
    }

    #[test]
    fn hot_join_answer_survives_a_frequency_scan_via_lru_promotion() {
        // The cache-eviction satellite at service level: a dashboard's repeated join query
        // (promoted on every hit) must survive a value-keyed frequency scan that churns the
        // small result cache end to end.
        let mut cfg = config(6, 64);
        cfg.epoch_reports = u64::MAX;
        cfg.cache_capacity = 8;
        let mut service = SketchService::new(cfg).unwrap();
        let a = service.register_attribute("a", 3).unwrap();
        let b = service.register_attribute("b", 3).unwrap();
        for (attr, seed) in [(a, 1u64), (b, 2)] {
            service
                .ingest(attr, &reports_for(&service, attr, 400, seed))
                .unwrap();
            service.rotate(attr).unwrap();
        }
        let cold = service.join_size(a, b, WindowRange::All).unwrap();
        assert!(!cold.cached);
        for v in 0..50u64 {
            let refreshed = service.join_size(a, b, WindowRange::All).unwrap();
            assert!(
                refreshed.cached,
                "hot join entry evicted by the scan at v={v}"
            );
            assert_eq!(refreshed.value, cold.value);
            service.frequency(a, v, WindowRange::All).unwrap();
        }
        let stats = service.cache_stats();
        assert_eq!(stats.entries, 8);
        assert!(
            stats.evictions >= 40,
            "the scan churned the cache: {stats:?}"
        );
        assert!(service.join_size(a, b, WindowRange::All).unwrap().cached);
    }

    #[test]
    fn registration_is_name_unique_and_resolvable() {
        let mut service = manual_service(4, 64, 4);
        let a = service.register_attribute("orders.user_id", 1).unwrap();
        assert!(service.register_attribute("orders.user_id", 2).is_err());
        let b = service.register_attribute("clicks.user_id", 1).unwrap();
        assert_ne!(a, b);
        assert_eq!(service.attribute_id("clicks.user_id"), Some(b));
        assert_eq!(service.attribute_id("nope"), None);
        assert_eq!(service.attribute_name(a).unwrap(), "orders.user_id");
        assert_eq!(service.attribute_mode(a).unwrap(), "plain");
        // Unknown handles are rejected everywhere.
        let bogus = AttributeId(99);
        assert!(matches!(
            service.ingest(bogus, &[]),
            Err(Error::UnknownAttribute(_))
        ));
        assert!(matches!(
            service.join_size(a, bogus, WindowRange::All),
            Err(Error::UnknownAttribute(_))
        ));
    }

    #[test]
    fn mode_mismatch_is_a_first_class_error_everywhere() {
        let mut service = manual_service(6, 64, 4);
        let plain = service.register_attribute("plain", 1).unwrap();
        let plus = service
            .register_plus_attribute("plus", 1, PlusAttributeConfig::new((0..64).collect()))
            .unwrap();
        let edge = service.register_edge_attribute("edge", 2, 3).unwrap();
        assert_eq!(service.attribute_mode(plus).unwrap(), "plus");
        assert_eq!(service.attribute_mode(edge).unwrap(), "edge");

        // Ingestion is mode-checked.
        assert!(matches!(
            service.ingest(plus, &[]),
            Err(Error::ModeMismatch(_))
        ));
        assert!(matches!(
            service.ingest_plus(plain, &PlusReportBatch::default()),
            Err(Error::ModeMismatch(_))
        ));
        assert!(matches!(
            service.ingest_edge(plain, &[]),
            Err(Error::ModeMismatch(_))
        ));
        // Clients are mode-checked.
        assert!(matches!(service.client(plus), Err(Error::ModeMismatch(_))));
        assert!(matches!(
            service.edge_client(plain),
            Err(Error::ModeMismatch(_))
        ));
        assert!(service.edge_client(edge).is_ok());
        // Queries are mode-checked before span resolution (so the errors do not depend on
        // whether anything was sealed yet).
        assert!(matches!(
            service.join_size(plain, plus, WindowRange::All),
            Err(Error::ModeMismatch(_))
        ));
        assert!(matches!(
            service.plus_join_size(plain, plus, WindowRange::All),
            Err(Error::ModeMismatch(_))
        ));
        assert!(matches!(
            service.plus_join_size(plus, edge, WindowRange::All),
            Err(Error::ModeMismatch(_))
        ));
        // Plus partners with mismatched estimator knobs are rejected before any span
        // resolution: one kernel answers a cache entry both operand orders share.
        let mut other_cfg = PlusAttributeConfig::new((0..64).collect());
        other_cfg.adaptive = false;
        let plus2 = service
            .register_plus_attribute("plus2", 1, other_cfg)
            .unwrap();
        assert!(matches!(
            service.plus_join_size(plus, plus2, WindowRange::All),
            Err(Error::ModeMismatch(_))
        ));
        assert!(matches!(
            service.frequency(edge, 1, WindowRange::All),
            Err(Error::ModeMismatch(_))
        ));
        assert!(matches!(
            service.chain_join_3(plain, plain, plain, WindowRange::All),
            Err(Error::ModeMismatch(_))
        ));
        assert!(matches!(
            service.chain_join_3(plus, edge, plain, WindowRange::All),
            Err(Error::ModeMismatch(_))
        ));
        assert!(matches!(
            service.merged_view(plus, WindowRange::All),
            Err(Error::ModeMismatch(_))
        ));
        assert!(matches!(
            service.merged_plus_state(plain, WindowRange::All),
            Err(Error::ModeMismatch(_))
        ));
    }

    #[test]
    fn auto_rotation_seals_at_the_batch_that_crosses_the_threshold() {
        let mut cfg = config(6, 64);
        cfg.epoch_reports = 1_000;
        let mut service = SketchService::new(cfg).unwrap();
        let attr = service.register_attribute("a", 3).unwrap();
        let reports = reports_for(&service, attr, 2_500, 9);
        // Batches of 400: rotations complete at cumulative 1200 and 2400 reports.
        let mut rotations = 0;
        for batch in reports.chunks(400) {
            rotations += service.ingest(attr, batch).unwrap().rotations;
        }
        assert_eq!(rotations, 2);
        assert_eq!(service.window_count(attr).unwrap(), 2);
        let sealed: Vec<u64> = service
            .windows(attr)
            .unwrap()
            .map(|w| w.reports())
            .collect();
        assert_eq!(sealed, vec![1_200, 1_200]);
        assert_eq!(service.live_reports(attr).unwrap(), 100);
        assert_eq!(service.total_reports(attr).unwrap(), 2_500);
        // The tail only becomes queryable after an explicit rotation.
        let epoch = service.rotate(attr).unwrap();
        assert_eq!(epoch, Some(2));
        assert_eq!(service.rotate(attr).unwrap(), None, "empty live is a no-op");
        assert_eq!(service.window_count(attr).unwrap(), 3);
        assert_eq!(service.live_reports(attr).unwrap(), 0);
    }

    #[test]
    fn time_and_count_triggers_race_and_reset_each_other() {
        // Both triggers armed: 1000-report count threshold, 10s wall-clock budget.
        let mut cfg = config(6, 64);
        cfg.epoch_reports = 1_000;
        cfg.epoch_duration = Some(Duration::from_secs(10));
        let mut service = SketchService::new(cfg).unwrap();
        let attr = service.register_attribute("a", 3).unwrap();
        let reports = reports_for(&service, attr, 2_600, 9);
        let t0 = Instant::now();

        // Round 1: the COUNT trigger wins — 3×400 reports land within 2s of wall clock.
        for (i, batch) in reports[..1_200].chunks(400).enumerate() {
            let summary = service
                .ingest_at(attr, batch, t0 + Duration::from_secs(i as u64))
                .unwrap();
            assert_eq!(summary.rotations, u64::from(i == 2), "batch {i}");
        }
        assert_eq!(service.window_count(attr).unwrap(), 1);
        assert_eq!(service.live_reports(attr).unwrap(), 0);

        // Round 2: the TIME trigger wins — 400 reports trickle in at t+3s, then the sweep
        // at t+14s (11s after the epoch opened) seals them despite the count being far
        // below threshold. The count trigger's clock restarted with the rotation.
        service
            .ingest_at(attr, &reports[1_200..1_600], t0 + Duration::from_secs(3))
            .unwrap();
        assert_eq!(
            service
                .rotate_if_elapsed(attr, t0 + Duration::from_secs(12))
                .unwrap(),
            None,
            "only 9s since the epoch opened at t+3s"
        );
        assert_eq!(
            service
                .rotate_if_elapsed(attr, t0 + Duration::from_secs(14))
                .unwrap(),
            Some(1)
        );
        let sealed: Vec<u64> = service
            .windows(attr)
            .unwrap()
            .map(|w| w.reports())
            .collect();
        assert_eq!(sealed, vec![1_200, 400]);

        // Round 3: the time trigger also fires inline on a slow ingest — a batch arriving
        // 20s after the epoch opened seals it without reaching the count threshold.
        service
            .ingest_at(attr, &reports[1_600..1_700], t0 + Duration::from_secs(20))
            .unwrap();
        let summary = service
            .ingest_at(attr, &reports[1_700..1_800], t0 + Duration::from_secs(31))
            .unwrap();
        assert_eq!(summary.rotations, 1, "inline time trigger");
        assert_eq!(service.window_count(attr).unwrap(), 3);

        // An empty live engine never rotates, whatever the clock says.
        assert_eq!(
            service
                .rotate_if_elapsed(attr, t0 + Duration::from_secs(1_000))
                .unwrap(),
            None
        );
        // With no epoch_duration configured the sweep is a no-op.
        let mut quiet = manual_service(6, 64, 4);
        let q = quiet.register_attribute("q", 1).unwrap();
        quiet.ingest(q, &reports[..100]).unwrap();
        assert_eq!(
            quiet
                .rotate_if_elapsed(q, Instant::now() + Duration::from_secs(3_600))
                .unwrap(),
            None
        );
    }

    #[test]
    fn ring_retention_evicts_oldest_windows() {
        let mut service = manual_service(4, 64, 3);
        let attr = service.register_attribute("a", 5).unwrap();
        let reports = reports_for(&service, attr, 500, 11);
        for (i, batch) in reports.chunks(100).enumerate() {
            service.ingest(attr, batch).unwrap();
            assert_eq!(service.rotate(attr).unwrap(), Some(i as u64));
        }
        assert_eq!(service.window_count(attr).unwrap(), 3);
        assert_eq!(service.evicted_windows(attr).unwrap(), 2);
        // The retained suffix is epochs {2, 3, 4}; lifetime accounting is unaffected.
        let epochs: Vec<u64> = service.windows(attr).unwrap().map(|w| w.epoch()).collect();
        assert_eq!(epochs, vec![2, 3, 4]);
        assert_eq!(service.total_reports(attr).unwrap(), 500);
    }

    #[test]
    fn window_merge_is_bit_identical_to_single_pass_aggregation() {
        let mut service = manual_service(8, 128, 8);
        let attr = service.register_attribute("a", 21).unwrap();
        let reports = reports_for(&service, attr, 5_003, 13);
        for batch in reports.chunks(1_301) {
            service.ingest(attr, batch).unwrap();
            service.rotate(attr).unwrap();
        }
        assert_eq!(service.window_count(attr).unwrap(), 4);
        let merged = service.merged_view(attr, WindowRange::All).unwrap();

        let mut single = SketchBuilder::new(
            SketchParams::new(8, 128).unwrap(),
            Epsilon::new(4.0).unwrap(),
            21,
        );
        single.absorb_all(&reports).unwrap();
        let reference = single.finalize();
        assert_eq!(merged.reports(), reference.reports());
        assert_eq!(merged.restored_counters(), reference.restored_counters());
    }

    #[test]
    fn query_ranges_cover_the_expected_window_suffixes() {
        let mut service = manual_service(8, 128, 8);
        let a = service.register_attribute("a", 3).unwrap();
        let b = service.register_attribute("b", 3).unwrap();
        for (i, n) in [(0u64, 300usize), (1, 400), (2, 500)] {
            service
                .ingest(a, &reports_for(&service, a, n, 100 + i))
                .unwrap();
            service.rotate(a).unwrap();
            service
                .ingest(b, &reports_for(&service, b, n, 200 + i))
                .unwrap();
            service.rotate(b).unwrap();
        }
        let latest = service.join_size(a, b, WindowRange::Latest).unwrap();
        assert_eq!((latest.windows, latest.reports), (2, 1_000));
        let last2 = service.join_size(a, b, WindowRange::LastK(2)).unwrap();
        assert_eq!((last2.windows, last2.reports), (4, 1_800));
        let all = service.join_size(a, b, WindowRange::All).unwrap();
        assert_eq!((all.windows, all.reports), (6, 2_400));
        // Over-long LastK clamps to the ring.
        let clamped = service.join_size(a, b, WindowRange::LastK(99)).unwrap();
        assert_eq!(clamped.value, all.value);
        assert!(matches!(
            service.join_size(a, b, WindowRange::LastK(0)),
            Err(Error::InvalidWorkload(_))
        ));
        // An attribute with no sealed windows is unqueryable.
        let c = service.register_attribute("c", 3).unwrap();
        assert!(matches!(
            service.join_size(a, c, WindowRange::All),
            Err(Error::WindowUnavailable(_))
        ));
    }

    #[test]
    fn repeated_queries_hit_the_cache_and_rotation_invalidates() {
        let mut service = manual_service(8, 128, 8);
        let a = service.register_attribute("a", 7).unwrap();
        let b = service.register_attribute("b", 7).unwrap();
        let c = service.register_attribute("c", 7).unwrap();
        for (attr, seed) in [(a, 1u64), (b, 2), (c, 3)] {
            for batch_seed in 0..2u64 {
                service
                    .ingest(
                        attr,
                        &reports_for(&service, attr, 600, seed * 10 + batch_seed),
                    )
                    .unwrap();
                service.rotate(attr).unwrap();
            }
        }
        let cold = service.join_size(a, b, WindowRange::All).unwrap();
        assert!(!cold.cached);
        let warm = service.join_size(a, b, WindowRange::All).unwrap();
        assert!(warm.cached);
        assert_eq!(warm.value, cold.value);
        // Operand order shares the entry (the product is commutative bit-for-bit).
        assert!(service.join_size(b, a, WindowRange::All).unwrap().cached);
        // A frequency query on the same span is its own entry.
        let f_cold = service.frequency(a, 0, WindowRange::All).unwrap();
        assert!(!f_cold.cached);
        let f_warm = service.frequency(a, 0, WindowRange::All).unwrap();
        assert!(f_warm.cached);
        assert_eq!(f_warm.value, f_cold.value);
        let stats = service.cache_stats();
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 2);
        assert!(stats.entries >= 2 && stats.views >= 1);

        // Rotating an *unrelated* attribute keeps the entries warm …
        service
            .ingest(c, &reports_for(&service, c, 100, 99))
            .unwrap();
        service.rotate(c).unwrap();
        assert!(service.join_size(a, b, WindowRange::All).unwrap().cached);
        // … but rotating a participant invalidates them.
        service
            .ingest(a, &reports_for(&service, a, 100, 98))
            .unwrap();
        service.rotate(a).unwrap();
        let recomputed = service.join_size(a, b, WindowRange::All).unwrap();
        assert!(!recomputed.cached);
        assert_ne!(recomputed.reports, cold.reports);
        // clear_cache drops everything.
        service.clear_cache();
        assert_eq!(service.cache_stats().entries, 0);
        assert!(!service.join_size(a, b, WindowRange::All).unwrap().cached);
    }

    #[test]
    fn join_partners_must_share_the_hash_seed() {
        let mut service = manual_service(6, 64, 4);
        let a = service.register_attribute("a", 1).unwrap();
        let b = service.register_attribute("b", 2).unwrap();
        for attr in [a, b] {
            service
                .ingest(attr, &reports_for(&service, attr, 200, 5))
                .unwrap();
            service.rotate(attr).unwrap();
        }
        assert!(matches!(
            service.join_size(a, b, WindowRange::All),
            Err(Error::IncompatibleSketches(_))
        ));
    }

    #[test]
    fn windowed_estimates_track_truth_at_service_scale() {
        // Sanity: the serving path is still a correct estimator — two attributes with the
        // same value stream joined over all windows tracks the exact join size.
        let mut cfg = config(12, 512);
        cfg.epoch_reports = 10_000;
        cfg.retained_windows = 8;
        let mut service = SketchService::new(cfg).unwrap();
        let a = service.register_attribute("a", 17).unwrap();
        let b = service.register_attribute("b", 17).unwrap();
        let gen = ZipfGenerator::new(1.4, 5_000);
        let mut rng = StdRng::seed_from_u64(3);
        let va = gen.sample_many(60_000, &mut rng);
        let vb = gen.sample_many(60_000, &mut rng);
        let mut rng = StdRng::seed_from_u64(4);
        for (attr, values) in [(a, &va), (b, &vb)] {
            let client = service.client(attr).unwrap();
            for chunk in values.chunks(8_192) {
                service
                    .ingest(attr, &client.perturb_all(chunk, &mut rng))
                    .unwrap();
            }
            service.rotate(attr).unwrap();
        }
        assert!(service.window_count(a).unwrap() >= 4);
        let truth = ldpjs_common::stats::exact_join_size(&va, &vb) as f64;
        let est = service.join_size(a, b, WindowRange::All).unwrap();
        let re = (est.value - truth).abs() / truth;
        assert!(
            re < 0.3,
            "relative error {re} (est {}, truth {truth})",
            est.value
        );
    }

    /// Drive the canonical plus report stream (discovery + labeled batches) into a pair of
    /// plus attributes, rotating after every `batches_per_window` batches.
    fn drive_plus_pair(
        service: &mut SketchService,
        a: AttributeId,
        b: AttributeId,
        est: &LdpJoinSketchPlus,
        workload: &StreamingJoinWorkload<ZipfGenerator>,
        rng_seed: u64,
        batches_per_window: usize,
    ) {
        let discovery = est
            .discover_frequent_items_chunked(
                &workload.table_a,
                &workload.table_b,
                &workload.domain(),
                rng_seed,
            )
            .unwrap();
        for (attr, table, role) in [
            (a, &workload.table_a, PlusTableRole::A),
            (b, &workload.table_b, PlusTableRole::B),
        ] {
            let mut in_window = 0usize;
            est.stream_plus_reports(
                table,
                role,
                &discovery.frequent_items,
                rng_seed,
                true,
                &mut |batch| {
                    service.ingest_plus(attr, batch)?;
                    in_window += 1;
                    if in_window == batches_per_window {
                        service.rotate(attr)?;
                        in_window = 0;
                    }
                    Ok(())
                },
            )
            .unwrap();
            service.rotate(attr).unwrap();
        }
    }

    #[test]
    fn elapsed_sweep_rotates_quiet_attributes_without_their_own_ingest() {
        let mut cfg = config(4, 64);
        cfg.epoch_reports = u64::MAX;
        cfg.epoch_duration = Some(Duration::from_secs(3600));
        let mut service = SketchService::new(cfg).unwrap();
        let busy = service.register_attribute("busy", 3).unwrap();
        let quiet = service.register_attribute("quiet", 4).unwrap();
        service
            .ingest(busy, &reports_for(&service, busy, 60, 1))
            .unwrap();
        service
            .ingest(quiet, &reports_for(&service, quiet, 60, 2))
            .unwrap();

        // Both epochs just opened: the sweep finds nothing due.
        assert!(service.rotate_elapsed(Instant::now()).is_empty());
        assert_eq!(service.window_count(quiet).unwrap(), 0);

        // Past the epoch duration, ONE sweep call seals every due attribute — including
        // `quiet`, which saw no ingest (and hence no inline trigger check) since its epoch
        // opened.
        let later = Instant::now() + Duration::from_secs(7200);
        let rotated = service.rotate_elapsed(later);
        assert_eq!(rotated.len(), 2);
        assert!(rotated.contains(&(busy, 0)) && rotated.contains(&(quiet, 0)));
        assert_eq!(service.window_count(quiet).unwrap(), 1);
        assert_eq!(service.live_reports(quiet).unwrap(), 0);

        // Empty live engines never produce empty windows, however stale the clock says
        // they are.
        assert!(service
            .rotate_elapsed(later + Duration::from_secs(7200))
            .is_empty());
        assert_eq!(service.window_count(busy).unwrap(), 1);
    }

    #[test]
    fn plus_attribute_answers_join_frequency_and_caches() {
        let n = 30_000usize;
        let chunk = 2_048usize;
        let params = SketchParams::new(12, 128).unwrap();
        let eps = Epsilon::new(4.0).unwrap();
        let generator = ZipfGenerator::new(1.6, 2_000);
        let w = StreamingJoinWorkload::generate("plus-svc", &generator, n, chunk, 901).unwrap();
        let truth = w.true_join_size() as f64;

        let mut plus_cfg = PlusConfig::new(params, eps);
        plus_cfg.sampling_rate = 0.1;
        plus_cfg.adaptive = true;
        plus_cfg.seed = 77;
        let est = LdpJoinSketchPlus::new(plus_cfg).unwrap();

        let mut cfg = ServiceConfig::new(params, eps);
        cfg.epoch_reports = u64::MAX;
        cfg.retained_windows = 16;
        let mut service = SketchService::new(cfg).unwrap();
        let attr_cfg = PlusAttributeConfig::from_plus_config(&plus_cfg, w.domain());
        let a = service
            .register_plus_attribute("a", plus_cfg.seed, attr_cfg.clone())
            .unwrap();
        let b = service
            .register_plus_attribute("b", plus_cfg.seed, attr_cfg)
            .unwrap();
        drive_plus_pair(&mut service, a, b, &est, &w, 55, 4);

        let windows = service.window_count(a).unwrap();
        assert!(windows >= 3, "expected a multi-window ring, got {windows}");
        // Join-size over every range resolves and answers sanely.
        for range in [WindowRange::Latest, WindowRange::LastK(2), WindowRange::All] {
            let q = service.plus_join_size(a, b, range).unwrap();
            assert!(!q.cached);
            assert!(q.value.is_finite());
            let again = service.plus_join_size(a, b, range).unwrap();
            assert!(again.cached, "repeat of {range:?} must hit the cache");
            assert_eq!(again.value.to_bits(), q.value.to_bits());
        }
        // The all-window estimate tracks the exact join size.
        let all = service.plus_join_size(a, b, WindowRange::All).unwrap();
        let re = (all.value - truth).abs() / truth;
        assert!(
            re < 0.35,
            "windowed plus RE {re} (est {}, truth {truth})",
            all.value
        );

        // The full-span estimate is bit-identical to the one-shot chunked protocol.
        let one_shot =
            ldp_join_plus_estimate_chunked(&w.table_a, &w.table_b, &w.domain(), plus_cfg, 55)
                .unwrap();
        assert_eq!(
            all.value.to_bits(),
            one_shot.join_size.to_bits(),
            "windowed-plus full span diverged from the one-shot protocol"
        );

        // Plus frequency queries: the heaviest Zipf value tracks its true count.
        let f = service.frequency(a, 0, WindowRange::All).unwrap();
        assert!(!f.cached);
        assert!(service.frequency(a, 0, WindowRange::All).unwrap().cached);
        let truth_f = w.count_a(0) as f64;
        assert!(truth_f > 0.0);
        let fre = (f.value - truth_f).abs() / truth_f;
        assert!(
            fre < 0.4,
            "plus frequency RE {fre} (est {}, truth {truth_f})",
            f.value
        );

        // Rotation invalidates plus entries like plain ones.
        let more = StreamingJoinWorkload::generate("plus-svc2", &generator, 8 * chunk, chunk, 902)
            .unwrap();
        drive_plus_pair(&mut service, a, b, &est, &more, 56, 4);
        assert!(
            !service
                .plus_join_size(a, b, WindowRange::All)
                .unwrap()
                .cached
        );
    }

    #[test]
    fn chain_join_queries_are_online_citizens() {
        use ldpjs_common::stats::exact_chain_join_3;
        let params = SketchParams::new(9, 256).unwrap();
        let mut cfg = ServiceConfig::new(params, Epsilon::new(4.0).unwrap());
        cfg.epoch_reports = u64::MAX;
        let mut service = SketchService::new(cfg).unwrap();
        let v1 = service.register_attribute("t1.a", 100).unwrap();
        let edge = service.register_edge_attribute("t2.ab", 100, 101).unwrap();
        let v3 = service.register_attribute("t3.b", 101).unwrap();

        // Skewed tables as in the multiway suite.
        let skewed = |n: usize, domain: u64, seed: u64| -> Vec<u64> {
            use rand::Rng;
            let mut rng = StdRng::seed_from_u64(seed);
            (0..n)
                .map(|_| {
                    let u: f64 = rng.gen::<f64>().max(1e-12);
                    ((u.powf(-1.3) - 1.0) as u64).min(domain - 1)
                })
                .collect()
        };
        let t1v = skewed(40_000, 500, 1);
        let t3v = skewed(40_000, 500, 4);
        let t2v: Vec<(u64, u64)> = skewed(40_000, 500, 2)
            .into_iter()
            .zip(skewed(40_000, 500, 3))
            .collect();
        let truth = exact_chain_join_3(&t1v, &t2v, &t3v) as f64;

        let mut rng = StdRng::seed_from_u64(7);
        // Vertex ingestion in two windows each; edge ingestion in three windows.
        for (attr, values) in [(v1, &t1v), (v3, &t3v)] {
            let client = service.client(attr).unwrap();
            for half in values.chunks(values.len() / 2 + 1) {
                service
                    .ingest(attr, &client.perturb_all(half, &mut rng))
                    .unwrap();
                service.rotate(attr).unwrap();
            }
        }
        let edge_client = service.edge_client(edge).unwrap();
        for part in t2v.chunks(t2v.len() / 3 + 1) {
            service
                .ingest_edge(edge, &edge_client.perturb_all(part, &mut rng))
                .unwrap();
            service.rotate(edge).unwrap();
        }
        assert_eq!(service.window_count(edge).unwrap(), 3);

        let cold = service
            .chain_join_3(v1, edge, v3, WindowRange::All)
            .unwrap();
        assert!(!cold.cached);
        assert_eq!(cold.windows, 2 + 3 + 2);
        let re = (cold.value - truth).abs() / truth;
        assert!(
            re < 0.5,
            "chain RE {re} (est {}, truth {truth})",
            cold.value
        );
        // Cached on repeat; invalidated when any participant rotates.
        let warm = service
            .chain_join_3(v1, edge, v3, WindowRange::All)
            .unwrap();
        assert!(warm.cached);
        assert_eq!(warm.value.to_bits(), cold.value.to_bits());
        service
            .ingest_edge(edge, &edge_client.perturb_all(&t2v[..100], &mut rng))
            .unwrap();
        service.rotate(edge).unwrap();
        assert!(
            !service
                .chain_join_3(v1, edge, v3, WindowRange::All)
                .unwrap()
                .cached
        );
        // Mismatched hash families are rejected.
        let stranger = service.register_attribute("t4.c", 999).unwrap();
        let client = service.client(stranger).unwrap();
        service
            .ingest(stranger, &client.perturb_all(&t1v[..100], &mut rng))
            .unwrap();
        service.rotate(stranger).unwrap();
        assert!(matches!(
            service.chain_join_3(stranger, edge, v3, WindowRange::All),
            Err(Error::IncompatibleSketches(_))
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The window-merge satellite guarantee: splitting any report multiset across
        /// {1, 2, 4, 7} windows, rotating after each split, and merging the snapshots is
        /// bit-identical to single-pass aggregation of the same reports — the same
        /// exactness the sharded engine pins, lifted to the window layer.
        #[test]
        fn prop_window_split_is_bit_identical_to_single_pass(
            n in 1usize..800,
            seed in any::<u64>(),
        ) {
            // Must match `manual_service`'s (params, eps) — the de-bias scale is part of
            // the restore, so a mismatched ε would break bit-identity by construction.
            let params = SketchParams::new(6, 64).unwrap();
            let eps = Epsilon::new(4.0).unwrap();
            let gen = ZipfGenerator::new(1.3, 200);
            let mut rng = StdRng::seed_from_u64(seed);
            let values = gen.sample_many(n, &mut rng);
            let client = LdpJoinSketchClient::new(params, eps, 77);
            let reports = client.perturb_all(&values, &mut rng);

            let mut single = SketchBuilder::new(params, eps, 77);
            single.absorb_all(&reports).unwrap();
            let reference = single.finalize();

            for windows in [1usize, 2, 4, 7] {
                let mut service = manual_service(6, 64, 8);
                let attr = service.register_attribute("a", 77).unwrap();
                let per = n.div_ceil(windows);
                for part in reports.chunks(per) {
                    service.ingest(attr, part).unwrap();
                    service.rotate(attr).unwrap();
                }
                let merged = service.merged_view(attr, WindowRange::All).unwrap();
                prop_assert_eq!(merged.reports(), reference.reports());
                prop_assert!(
                    merged.restored_counters() == reference.restored_counters(),
                    "windows={} n={}: merged windows diverged from single-pass",
                    windows,
                    n
                );
            }
        }

        /// The windowed-plus tentpole guarantee, mirrored on the plain-path property test:
        /// splitting the labeled plus report stream across arbitrary {1, 2, 4, 7}-window
        /// rings and merging the full span is **bit-identical** to the one-shot
        /// `ldp_join_plus_estimate_chunked` over the concatenated stream.
        #[test]
        fn prop_windowed_plus_split_is_bit_identical_to_one_shot_chunked(
            case_seed in 0u64..2_000,
        ) {
            let n = 3_000usize;
            let chunk = 256usize;
            let params = SketchParams::new(8, 64).unwrap();
            let eps = Epsilon::new(4.0).unwrap();
            let generator = ZipfGenerator::new(1.8, 500);
            let w = StreamingJoinWorkload::generate("prop-plus", &generator, n, chunk, case_seed)
                .unwrap();
            let mut plus_cfg = PlusConfig::new(params, eps);
            plus_cfg.sampling_rate = 0.1;
            plus_cfg.adaptive = true;
            plus_cfg.seed = case_seed ^ 0xF00D;
            let est = LdpJoinSketchPlus::new(plus_cfg).unwrap();
            let rng_seed = case_seed.wrapping_mul(31).wrapping_add(5);
            let one_shot = ldp_join_plus_estimate_chunked(
                &w.table_a,
                &w.table_b,
                &w.domain(),
                plus_cfg,
                rng_seed,
            )
            .unwrap();

            for windows in [1usize, 2, 4, 7] {
                let mut cfg = ServiceConfig::new(params, eps);
                cfg.epoch_reports = u64::MAX;
                cfg.retained_windows = 16;
                let mut service = SketchService::new(cfg).unwrap();
                let attr_cfg = PlusAttributeConfig::from_plus_config(&plus_cfg, w.domain());
                let a = service
                    .register_plus_attribute("a", plus_cfg.seed, attr_cfg.clone())
                    .unwrap();
                let b = service
                    .register_plus_attribute("b", plus_cfg.seed, attr_cfg)
                    .unwrap();
                let batches = n.div_ceil(chunk);
                drive_plus_pair(&mut service, a, b, &est, &w, rng_seed, batches.div_ceil(windows));
                let merged = service.plus_join_size(a, b, WindowRange::All).unwrap();
                prop_assert!(
                    merged.value.to_bits() == one_shot.join_size.to_bits(),
                    "windows={}: windowed plus diverged from one-shot (windowed {}, one-shot {})",
                    windows,
                    merged.value,
                    one_shot.join_size
                );
            }
        }

        /// The incremental merged-span ledger guarantee: across random rotate/evict
        /// sequences, every span the service assembles by prefix-sum subtraction (what
        /// `merged_plus_state` serves) is **bit-identical** — all three restored lanes,
        /// the rediscovered frequent-item set, and the screening threshold — to merging
        /// the retained windows' sealed lanes from scratch. The 3-window ring forces
        /// evictions, so full-span queries exercise the ledger origin that has absorbed
        /// evicted history.
        #[test]
        fn prop_plus_span_ledger_is_bit_identical_to_from_scratch_merging(
            case_seed in 0u64..2_000,
        ) {
            use rand::Rng;
            let n = 2_000usize;
            let chunk = 128usize;
            let params = SketchParams::new(6, 64).unwrap();
            let eps = Epsilon::new(4.0).unwrap();
            let generator = ZipfGenerator::new(1.7, 300);
            let w = StreamingJoinWorkload::generate("prop-ledger", &generator, n, chunk, case_seed)
                .unwrap();
            let mut plus_cfg = PlusConfig::new(params, eps);
            plus_cfg.sampling_rate = 0.1;
            plus_cfg.adaptive = true;
            plus_cfg.seed = case_seed ^ 0xBEEF;
            let est = LdpJoinSketchPlus::new(plus_cfg).unwrap();
            let rng_seed = case_seed.wrapping_mul(131).wrapping_add(17);
            let domain = w.domain();
            let discovery = est
                .discover_frequent_items_chunked(&w.table_a, &w.table_b, &domain, rng_seed)
                .unwrap();

            let mut cfg = ServiceConfig::new(params, eps);
            cfg.epoch_reports = u64::MAX;
            cfg.retained_windows = 3; // small ring: later rotations evict into the origin
            let mut service = SketchService::new(cfg).unwrap();
            let attr_cfg = PlusAttributeConfig::from_plus_config(&plus_cfg, domain.clone());
            let a = service
                .register_plus_attribute("a", plus_cfg.seed, attr_cfg)
                .unwrap();

            // Random rotation cadence: 1–4 ingested batches per sealed window.
            let mut cadence = StdRng::seed_from_u64(case_seed ^ 0x5EED);
            let mut left = 0usize;
            est.stream_plus_reports(
                &w.table_a,
                PlusTableRole::A,
                &discovery.frequent_items,
                rng_seed,
                true,
                &mut |batch| {
                    if left == 0 {
                        left = cadence.gen_range(1usize..5);
                    }
                    service.ingest_plus(a, batch)?;
                    left -= 1;
                    if left == 0 {
                        service.rotate(a)?;
                    }
                    Ok(())
                },
            )
            .unwrap();
            if service.live_reports(a).unwrap() > 0 {
                service.rotate(a).unwrap();
            }

            let sealed: Vec<PlusStateBuilder> = service
                .windows(a)
                .unwrap()
                .map(|snap| snap.plus_builder().unwrap().clone())
                .collect();
            prop_assert!(!sealed.is_empty());
            let policy = FiPolicy::from_config(&plus_cfg);
            for start in 0..sealed.len() {
                let range = if start == 0 {
                    WindowRange::All
                } else {
                    WindowRange::LastK(sealed.len() - start)
                };
                let merged = service.merged_plus_state(a, range).unwrap();
                let mut from_scratch = sealed[start].clone();
                for later in &sealed[start + 1..] {
                    from_scratch.merge(later).unwrap();
                }
                let reference = from_scratch.finalize_view(policy, &domain);
                prop_assert_eq!(merged.reports(), reference.reports());
                prop_assert_eq!(merged.frequent_items(), reference.frequent_items());
                prop_assert!(merged.threshold().to_bits() == reference.threshold().to_bits());
                for (name, got, want) in [
                    ("phase1", merged.phase1(), reference.phase1()),
                    ("low", merged.low(), reference.low()),
                    ("high", merged.high(), reference.high()),
                ] {
                    prop_assert!(
                        got.restored_counters() == want.restored_counters(),
                        "start={} evicted={}: ledger-assembled {} lane diverged from \
                         from-scratch merge",
                        start,
                        service.evicted_windows(a).unwrap(),
                        name
                    );
                }
            }
        }
    }

    // ---------------------------------------------------------------------------------
    // Telemetry layer
    // ---------------------------------------------------------------------------------

    use crate::cache::ModeCacheStats;
    use ldpjs_metrics::telemetry::Stability as TStability;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Read one deterministic counter back through the registry's idempotent registration.
    fn counter_value(service: &SketchService, name: &str) -> u64 {
        service
            .telemetry()
            .counter(name, TStability::Deterministic)
            .get()
    }

    #[test]
    fn rejected_batch_rolls_back_and_only_bumps_rejection_counters() {
        let mut service = manual_service(6, 64, 4);
        let id = service.register_attribute("t.a", 7).unwrap();
        let client = service.client(id).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let values: Vec<u64> = (0..100).collect();
        let good = client.perturb_all(&values, &mut rng);
        service.ingest(id, &good).unwrap();
        let name = |base: &str| format!("{base}{{attr=\"t.a\",mode=\"plain\"}}");
        assert_eq!(
            counter_value(&service, &name("ldpjs_ingest_reports_total")),
            100
        );
        assert_eq!(
            counter_value(&service, &name("ldpjs_ingest_batches_total")),
            1
        );

        // One report of the batch is unabsorbable; the whole batch must reject atomically
        // and land only in the rejection/rollback series.
        let mut bad = good.clone();
        bad[50].row = 999;
        assert!(service.ingest(id, &bad).is_err());
        assert_eq!(
            counter_value(&service, &name("ldpjs_ingest_rollbacks_total")),
            1
        );
        assert_eq!(
            counter_value(&service, &name("ldpjs_ingest_rejected_reports_total")),
            100
        );
        // Every other counter — and the live state itself — is untouched.
        assert_eq!(
            counter_value(&service, &name("ldpjs_ingest_reports_total")),
            100
        );
        assert_eq!(
            counter_value(&service, &name("ldpjs_ingest_batches_total")),
            1
        );
        assert_eq!(counter_value(&service, &name("ldpjs_rotations_total")), 0);
        assert_eq!(service.live_reports(id).unwrap(), 100);
    }

    #[test]
    fn query_results_carry_provenance() {
        let mut service = manual_service(6, 64, 8);
        let a = service.register_attribute("t.a", 7).unwrap();
        let b = service.register_attribute("t.b", 7).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let values: Vec<u64> = (0..300).map(|i| i % 23).collect();
        for id in [a, b] {
            let client = service.client(id).unwrap();
            for _ in 0..2 {
                let reports = client.perturb_all(&values, &mut rng);
                service.ingest(id, &reports).unwrap();
                service.rotate(id).unwrap();
            }
        }

        // Cold multi-window join: assembled from the span ledger by the plain kernel, with
        // the Theorem 4/5 predictions evaluated at the spans' exact report counts.
        let cold = service.join_size(a, b, WindowRange::All).unwrap();
        assert_eq!(cold.explain.kernel, ExplainKernel::Plain);
        assert_eq!(cold.explain.span_source, SpanSource::LedgerAssembled);
        assert!(!cold.explain.cached);
        assert_eq!(cold.explain.windows, 4);
        assert_eq!(cold.explain.frequent_items, 0);
        let cfg = *service.config();
        assert_eq!(
            cold.explain.predicted_error.to_bits(),
            bounds::error_bound(cfg.params, cfg.eps, 600.0, 600.0).to_bits()
        );
        assert_eq!(
            cold.explain.predicted_variance.to_bits(),
            bounds::group_variance_bound(cfg.params, cfg.eps, 600.0, 600.0, 1.0).to_bits()
        );

        // A hit replays the stored record with only the cache outcome rewritten.
        let hit = service.join_size(a, b, WindowRange::All).unwrap();
        assert!(hit.cached && hit.explain.cached);
        assert_eq!(hit.explain.span_source, SpanSource::LedgerAssembled);
        assert_eq!(hit.explain.predicted_error, cold.explain.predicted_error);

        // The join memoized attribute a's merged span view, so a frequency query over the
        // same span reports the memoized path; a Latest query borrows the single window.
        let warm = service.frequency(a, 3, WindowRange::All).unwrap();
        assert_eq!(warm.explain.span_source, SpanSource::MemoizedView);
        assert!(warm.explain.predicted_variance > 0.0);
        let single = service.frequency(a, 3, WindowRange::Latest).unwrap();
        assert_eq!(single.explain.span_source, SpanSource::SingleWindow);
    }

    #[test]
    fn cache_counters_survive_clear_cache() {
        let mut service = manual_service(6, 64, 4);
        let a = service.register_attribute("t.a", 7).unwrap();
        let b = service.register_attribute("t.b", 7).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let values: Vec<u64> = (0..200).collect();
        for id in [a, b] {
            let client = service.client(id).unwrap();
            let reports = client.perturb_all(&values, &mut rng);
            service.ingest(id, &reports).unwrap();
            service.rotate(id).unwrap();
        }
        service.join_size(a, b, WindowRange::All).unwrap();
        service.join_size(a, b, WindowRange::All).unwrap();
        let before = service.cache_stats();
        assert_eq!((before.hits, before.misses), (1, 1));
        assert_eq!(before.plain, ModeCacheStats { hits: 1, misses: 1 });

        service.clear_cache();
        let after = service.cache_stats();
        assert_eq!(after.entries, 0);
        assert_eq!(after.hits, before.hits);
        assert_eq!(after.misses, before.misses);
        assert_eq!(after.plain, before.plain);
        assert_eq!(after.invalidations, before.invalidations + 1);
        // The exporter-side counters tell the same uninterrupted story.
        assert_eq!(
            counter_value(&service, "ldpjs_cache_hits_total{mode=\"plain\"}"),
            1
        );
        assert_eq!(
            counter_value(&service, "ldpjs_cache_misses_total{mode=\"plain\"}"),
            1
        );
    }

    #[test]
    fn injected_query_clock_records_stage_timings() {
        let mut service = manual_service(6, 64, 4);
        let a = service.register_attribute("t.a", 7).unwrap();
        let b = service.register_attribute("t.b", 7).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let values: Vec<u64> = (0..200).collect();
        for id in [a, b] {
            let client = service.client(id).unwrap();
            let reports = client.perturb_all(&values, &mut rng);
            service.ingest(id, &reports).unwrap();
            service.rotate(id).unwrap();
        }
        // Without a clock, no timing is ever recorded (the query path reads no time).
        service.join_size(a, b, WindowRange::All).unwrap();
        fn hist(service: &SketchService, stage: &str) -> ldpjs_metrics::telemetry::Histogram {
            service.telemetry().histogram(
                &format!("ldpjs_query_ns{{kind=\"join\",stage=\"{stage}\"}}"),
                TStability::Environment,
                &[],
            )
        }
        assert_eq!(hist(&service, "total").count(), 0);

        // A deterministic fake clock: each reading advances by 3µs.
        let base = Instant::now();
        let ticks = Arc::new(AtomicU64::new(0));
        let t = Arc::clone(&ticks);
        service.set_query_clock(Some(QueryClock::new(move || {
            base + Duration::from_micros(3 * t.fetch_add(1, Ordering::Relaxed))
        })));
        service.clear_cache();
        service.join_size(a, b, WindowRange::All).unwrap(); // miss: all three stages
        service.join_size(a, b, WindowRange::All).unwrap(); // hit: total only
        assert_eq!(hist(&service, "total").count(), 2);
        assert_eq!(hist(&service, "assemble").count(), 1);
        assert_eq!(hist(&service, "kernel").count(), 1);
        assert_eq!(
            counter_value(&service, "ldpjs_queries_total{kind=\"join\"}"),
            3
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// The observability determinism contract: the deterministic snapshot — and both of
        /// its renderings — is byte-identical across repeated pinned-seed runs AND across
        /// shard counts, because everything machine-shaped (shard residency, ingest path,
        /// SIMD tier, timings) is classified `Environment` and filtered out.
        #[test]
        fn prop_deterministic_snapshot_stable_across_shards(seed in 0u64..1_000) {
            let run = |shards: usize| -> (String, String) {
                let mut cfg = config(6, 64);
                cfg.shards = shards;
                cfg.epoch_reports = 400;
                cfg.retained_windows = 3;
                let mut service = SketchService::new(cfg).unwrap();
                let a = service.register_attribute("t.a", 7).unwrap();
                let b = service.register_attribute("t.b", 7).unwrap();
                let mut rng = StdRng::seed_from_u64(seed);
                let values: Vec<u64> = (0..2_000).map(|i| i % 37).collect();
                for id in [a, b] {
                    let client = service.client(id).unwrap();
                    let reports = client.perturb_all(&values, &mut rng);
                    for chunk in reports.chunks(250) {
                        service.ingest(id, chunk).unwrap();
                    }
                }
                for _ in 0..3 {
                    service.join_size(a, b, WindowRange::All).unwrap();
                    service.frequency(a, 5, WindowRange::LastK(2)).unwrap();
                }
                let snap = service.deterministic_telemetry_snapshot();
                (snap.to_text(), snap.to_json())
            };
            let (text, json) = run(1);
            // Repeated pinned-seed run: byte-identical.
            prop_assert_eq!(run(1), (text.clone(), json.clone()));
            // Shard-count sweep: byte-identical.
            for shards in [2usize, 4, 7] {
                let (t, j) = run(shards);
                prop_assert!(t == text, "text diverged at shards={}", shards);
                prop_assert!(j == json, "json diverged at shards={}", shards);
            }
            // And the JSON exposition round-trips losslessly.
            let parsed = Snapshot::from_json(&json).unwrap();
            prop_assert_eq!(parsed.to_json(), json);
        }
    }
}
